# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_donation_system "/root/repo/build/examples/donation_system")
set_tests_properties(example_donation_system PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_thin_client_audit "/root/repo/build/examples/thin_client_audit")
set_tests_properties(example_thin_client_audit PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_supply_chain_trace "/root/repo/build/examples/supply_chain_trace")
set_tests_properties(example_supply_chain_trace PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
