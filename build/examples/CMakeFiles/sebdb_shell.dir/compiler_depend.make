# Empty compiler generated dependencies file for sebdb_shell.
# This may be replaced when dependencies are built.
