file(REMOVE_RECURSE
  "CMakeFiles/sebdb_shell.dir/sebdb_shell.cpp.o"
  "CMakeFiles/sebdb_shell.dir/sebdb_shell.cpp.o.d"
  "sebdb_shell"
  "sebdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
