# Empty dependencies file for donation_system.
# This may be replaced when dependencies are built.
