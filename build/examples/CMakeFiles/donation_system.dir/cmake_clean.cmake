file(REMOVE_RECURSE
  "CMakeFiles/donation_system.dir/donation_system.cpp.o"
  "CMakeFiles/donation_system.dir/donation_system.cpp.o.d"
  "donation_system"
  "donation_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/donation_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
