# Empty compiler generated dependencies file for thin_client_audit.
# This may be replaced when dependencies are built.
