file(REMOVE_RECURSE
  "CMakeFiles/thin_client_audit.dir/thin_client_audit.cpp.o"
  "CMakeFiles/thin_client_audit.dir/thin_client_audit.cpp.o.d"
  "thin_client_audit"
  "thin_client_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thin_client_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
