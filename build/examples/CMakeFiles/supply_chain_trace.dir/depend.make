# Empty dependencies file for supply_chain_trace.
# This may be replaced when dependencies are built.
