file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_trace.dir/supply_chain_trace.cpp.o"
  "CMakeFiles/supply_chain_trace.dir/supply_chain_trace.cpp.o.d"
  "supply_chain_trace"
  "supply_chain_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
