# Empty dependencies file for bench_join_onoff.
# This may be replaced when dependencies are built.
