file(REMOVE_RECURSE
  "CMakeFiles/bench_join_onoff.dir/bench_join_onoff.cc.o"
  "CMakeFiles/bench_join_onoff.dir/bench_join_onoff.cc.o.d"
  "bench_join_onoff"
  "bench_join_onoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
