# Empty compiler generated dependencies file for bench_tracking2d.
# This may be replaced when dependencies are built.
