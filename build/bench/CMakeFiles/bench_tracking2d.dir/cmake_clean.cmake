file(REMOVE_RECURSE
  "CMakeFiles/bench_tracking2d.dir/bench_tracking2d.cc.o"
  "CMakeFiles/bench_tracking2d.dir/bench_tracking2d.cc.o.d"
  "bench_tracking2d"
  "bench_tracking2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracking2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
