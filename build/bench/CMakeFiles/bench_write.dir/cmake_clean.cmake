file(REMOVE_RECURSE
  "CMakeFiles/bench_write.dir/bench_write.cc.o"
  "CMakeFiles/bench_write.dir/bench_write.cc.o.d"
  "bench_write"
  "bench_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
