file(REMOVE_RECURSE
  "CMakeFiles/bench_range.dir/bench_range.cc.o"
  "CMakeFiles/bench_range.dir/bench_range.cc.o.d"
  "bench_range"
  "bench_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
