file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_chainsql.dir/bench_vs_chainsql.cc.o"
  "CMakeFiles/bench_vs_chainsql.dir/bench_vs_chainsql.cc.o.d"
  "bench_vs_chainsql"
  "bench_vs_chainsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_chainsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
