# Empty dependencies file for bench_vs_chainsql.
# This may be replaced when dependencies are built.
