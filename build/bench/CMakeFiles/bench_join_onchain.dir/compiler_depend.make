# Empty compiler generated dependencies file for bench_join_onchain.
# This may be replaced when dependencies are built.
