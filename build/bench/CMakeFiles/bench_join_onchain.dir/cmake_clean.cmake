file(REMOVE_RECURSE
  "CMakeFiles/bench_join_onchain.dir/bench_join_onchain.cc.o"
  "CMakeFiles/bench_join_onchain.dir/bench_join_onchain.cc.o.d"
  "bench_join_onchain"
  "bench_join_onchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_onchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
