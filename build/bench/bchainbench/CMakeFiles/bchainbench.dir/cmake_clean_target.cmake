file(REMOVE_RECURSE
  "libbchainbench.a"
)
