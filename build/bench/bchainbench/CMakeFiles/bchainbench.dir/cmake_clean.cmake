file(REMOVE_RECURSE
  "CMakeFiles/bchainbench.dir/bench_chain.cc.o"
  "CMakeFiles/bchainbench.dir/bench_chain.cc.o.d"
  "libbchainbench.a"
  "libbchainbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bchainbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
