# Empty dependencies file for bchainbench.
# This may be replaced when dependencies are built.
