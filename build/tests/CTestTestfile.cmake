# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/bptree_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/auth_test[1]_include.cmake")
include("/root/repo/build/tests/offchain_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
