# Empty compiler generated dependencies file for offchain_test.
# This may be replaced when dependencies are built.
