file(REMOVE_RECURSE
  "CMakeFiles/offchain_test.dir/offchain_test.cc.o"
  "CMakeFiles/offchain_test.dir/offchain_test.cc.o.d"
  "offchain_test"
  "offchain_test.pdb"
  "offchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
