
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sebdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sebdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/sebdb_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/sebdb_network.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/sebdb_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/offchain/CMakeFiles/sebdb_offchain.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sebdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sebdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
