add_test([=[BChainBenchIntegrationTest.AllSevenQueries]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=BChainBenchIntegrationTest.AllSevenQueries]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[BChainBenchIntegrationTest.AllSevenQueries]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS BChainBenchIntegrationTest.AllSevenQueries)
