file(REMOVE_RECURSE
  "CMakeFiles/sebdb_sql.dir/catalog.cc.o"
  "CMakeFiles/sebdb_sql.dir/catalog.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/cost_model.cc.o"
  "CMakeFiles/sebdb_sql.dir/cost_model.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/eval.cc.o"
  "CMakeFiles/sebdb_sql.dir/eval.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/executor.cc.o"
  "CMakeFiles/sebdb_sql.dir/executor.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/executor_join.cc.o"
  "CMakeFiles/sebdb_sql.dir/executor_join.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/index_set.cc.o"
  "CMakeFiles/sebdb_sql.dir/index_set.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/lexer.cc.o"
  "CMakeFiles/sebdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/parser.cc.o"
  "CMakeFiles/sebdb_sql.dir/parser.cc.o.d"
  "CMakeFiles/sebdb_sql.dir/result.cc.o"
  "CMakeFiles/sebdb_sql.dir/result.cc.o.d"
  "libsebdb_sql.a"
  "libsebdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
