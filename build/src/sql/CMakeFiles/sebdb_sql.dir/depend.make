# Empty dependencies file for sebdb_sql.
# This may be replaced when dependencies are built.
