file(REMOVE_RECURSE
  "libsebdb_sql.a"
)
