
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/catalog.cc" "src/sql/CMakeFiles/sebdb_sql.dir/catalog.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/catalog.cc.o.d"
  "/root/repo/src/sql/cost_model.cc" "src/sql/CMakeFiles/sebdb_sql.dir/cost_model.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/cost_model.cc.o.d"
  "/root/repo/src/sql/eval.cc" "src/sql/CMakeFiles/sebdb_sql.dir/eval.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/eval.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/sebdb_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/executor_join.cc" "src/sql/CMakeFiles/sebdb_sql.dir/executor_join.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/executor_join.cc.o.d"
  "/root/repo/src/sql/index_set.cc" "src/sql/CMakeFiles/sebdb_sql.dir/index_set.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/index_set.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/sebdb_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/sebdb_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/result.cc" "src/sql/CMakeFiles/sebdb_sql.dir/result.cc.o" "gcc" "src/sql/CMakeFiles/sebdb_sql.dir/result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/auth/CMakeFiles/sebdb_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sebdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/offchain/CMakeFiles/sebdb_offchain.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sebdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
