# Empty dependencies file for sebdb_offchain.
# This may be replaced when dependencies are built.
