file(REMOVE_RECURSE
  "CMakeFiles/sebdb_offchain.dir/offchain_db.cc.o"
  "CMakeFiles/sebdb_offchain.dir/offchain_db.cc.o.d"
  "libsebdb_offchain.a"
  "libsebdb_offchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_offchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
