file(REMOVE_RECURSE
  "libsebdb_offchain.a"
)
