
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offchain/offchain_db.cc" "src/offchain/CMakeFiles/sebdb_offchain.dir/offchain_db.cc.o" "gcc" "src/offchain/CMakeFiles/sebdb_offchain.dir/offchain_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/sebdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sebdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
