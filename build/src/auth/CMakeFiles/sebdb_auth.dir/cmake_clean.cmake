file(REMOVE_RECURSE
  "CMakeFiles/sebdb_auth.dir/ali.cc.o"
  "CMakeFiles/sebdb_auth.dir/ali.cc.o.d"
  "CMakeFiles/sebdb_auth.dir/credibility.cc.o"
  "CMakeFiles/sebdb_auth.dir/credibility.cc.o.d"
  "CMakeFiles/sebdb_auth.dir/mbtree.cc.o"
  "CMakeFiles/sebdb_auth.dir/mbtree.cc.o.d"
  "libsebdb_auth.a"
  "libsebdb_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
