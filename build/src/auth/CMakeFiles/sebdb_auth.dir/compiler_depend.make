# Empty compiler generated dependencies file for sebdb_auth.
# This may be replaced when dependencies are built.
