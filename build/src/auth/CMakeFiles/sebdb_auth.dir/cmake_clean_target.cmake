file(REMOVE_RECURSE
  "libsebdb_auth.a"
)
