
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/engine.cc" "src/consensus/CMakeFiles/sebdb_consensus.dir/engine.cc.o" "gcc" "src/consensus/CMakeFiles/sebdb_consensus.dir/engine.cc.o.d"
  "/root/repo/src/consensus/kafka_orderer.cc" "src/consensus/CMakeFiles/sebdb_consensus.dir/kafka_orderer.cc.o" "gcc" "src/consensus/CMakeFiles/sebdb_consensus.dir/kafka_orderer.cc.o.d"
  "/root/repo/src/consensus/pbft.cc" "src/consensus/CMakeFiles/sebdb_consensus.dir/pbft.cc.o" "gcc" "src/consensus/CMakeFiles/sebdb_consensus.dir/pbft.cc.o.d"
  "/root/repo/src/consensus/tendermint.cc" "src/consensus/CMakeFiles/sebdb_consensus.dir/tendermint.cc.o" "gcc" "src/consensus/CMakeFiles/sebdb_consensus.dir/tendermint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/sebdb_network.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sebdb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
