# Empty dependencies file for sebdb_consensus.
# This may be replaced when dependencies are built.
