file(REMOVE_RECURSE
  "CMakeFiles/sebdb_consensus.dir/engine.cc.o"
  "CMakeFiles/sebdb_consensus.dir/engine.cc.o.d"
  "CMakeFiles/sebdb_consensus.dir/kafka_orderer.cc.o"
  "CMakeFiles/sebdb_consensus.dir/kafka_orderer.cc.o.d"
  "CMakeFiles/sebdb_consensus.dir/pbft.cc.o"
  "CMakeFiles/sebdb_consensus.dir/pbft.cc.o.d"
  "CMakeFiles/sebdb_consensus.dir/tendermint.cc.o"
  "CMakeFiles/sebdb_consensus.dir/tendermint.cc.o.d"
  "libsebdb_consensus.a"
  "libsebdb_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
