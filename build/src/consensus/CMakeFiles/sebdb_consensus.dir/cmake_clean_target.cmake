file(REMOVE_RECURSE
  "libsebdb_consensus.a"
)
