file(REMOVE_RECURSE
  "CMakeFiles/sebdb_common.dir/bitmap.cc.o"
  "CMakeFiles/sebdb_common.dir/bitmap.cc.o.d"
  "CMakeFiles/sebdb_common.dir/clock.cc.o"
  "CMakeFiles/sebdb_common.dir/clock.cc.o.d"
  "CMakeFiles/sebdb_common.dir/coding.cc.o"
  "CMakeFiles/sebdb_common.dir/coding.cc.o.d"
  "CMakeFiles/sebdb_common.dir/crc32.cc.o"
  "CMakeFiles/sebdb_common.dir/crc32.cc.o.d"
  "CMakeFiles/sebdb_common.dir/sha256.cc.o"
  "CMakeFiles/sebdb_common.dir/sha256.cc.o.d"
  "CMakeFiles/sebdb_common.dir/status.cc.o"
  "CMakeFiles/sebdb_common.dir/status.cc.o.d"
  "libsebdb_common.a"
  "libsebdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
