file(REMOVE_RECURSE
  "libsebdb_common.a"
)
