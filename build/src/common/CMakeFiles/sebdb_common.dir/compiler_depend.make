# Empty compiler generated dependencies file for sebdb_common.
# This may be replaced when dependencies are built.
