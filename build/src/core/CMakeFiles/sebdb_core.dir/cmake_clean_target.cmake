file(REMOVE_RECURSE
  "libsebdb_core.a"
)
