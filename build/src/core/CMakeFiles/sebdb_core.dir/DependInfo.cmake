
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_control.cc" "src/core/CMakeFiles/sebdb_core.dir/access_control.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/access_control.cc.o.d"
  "/root/repo/src/core/chain_manager.cc" "src/core/CMakeFiles/sebdb_core.dir/chain_manager.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/chain_manager.cc.o.d"
  "/root/repo/src/core/chainsql_baseline.cc" "src/core/CMakeFiles/sebdb_core.dir/chainsql_baseline.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/chainsql_baseline.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/sebdb_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/node.cc.o.d"
  "/root/repo/src/core/procedure.cc" "src/core/CMakeFiles/sebdb_core.dir/procedure.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/procedure.cc.o.d"
  "/root/repo/src/core/signer.cc" "src/core/CMakeFiles/sebdb_core.dir/signer.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/signer.cc.o.d"
  "/root/repo/src/core/thin_client.cc" "src/core/CMakeFiles/sebdb_core.dir/thin_client.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/thin_client.cc.o.d"
  "/root/repo/src/core/thin_client_transport.cc" "src/core/CMakeFiles/sebdb_core.dir/thin_client_transport.cc.o" "gcc" "src/core/CMakeFiles/sebdb_core.dir/thin_client_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/sebdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/sebdb_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/sebdb_network.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/sebdb_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sebdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/offchain/CMakeFiles/sebdb_offchain.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sebdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
