file(REMOVE_RECURSE
  "CMakeFiles/sebdb_core.dir/access_control.cc.o"
  "CMakeFiles/sebdb_core.dir/access_control.cc.o.d"
  "CMakeFiles/sebdb_core.dir/chain_manager.cc.o"
  "CMakeFiles/sebdb_core.dir/chain_manager.cc.o.d"
  "CMakeFiles/sebdb_core.dir/chainsql_baseline.cc.o"
  "CMakeFiles/sebdb_core.dir/chainsql_baseline.cc.o.d"
  "CMakeFiles/sebdb_core.dir/node.cc.o"
  "CMakeFiles/sebdb_core.dir/node.cc.o.d"
  "CMakeFiles/sebdb_core.dir/procedure.cc.o"
  "CMakeFiles/sebdb_core.dir/procedure.cc.o.d"
  "CMakeFiles/sebdb_core.dir/signer.cc.o"
  "CMakeFiles/sebdb_core.dir/signer.cc.o.d"
  "CMakeFiles/sebdb_core.dir/thin_client.cc.o"
  "CMakeFiles/sebdb_core.dir/thin_client.cc.o.d"
  "CMakeFiles/sebdb_core.dir/thin_client_transport.cc.o"
  "CMakeFiles/sebdb_core.dir/thin_client_transport.cc.o.d"
  "libsebdb_core.a"
  "libsebdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
