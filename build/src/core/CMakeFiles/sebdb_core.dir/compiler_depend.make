# Empty compiler generated dependencies file for sebdb_core.
# This may be replaced when dependencies are built.
