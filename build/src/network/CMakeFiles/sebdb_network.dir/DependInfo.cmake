
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/gossip.cc" "src/network/CMakeFiles/sebdb_network.dir/gossip.cc.o" "gcc" "src/network/CMakeFiles/sebdb_network.dir/gossip.cc.o.d"
  "/root/repo/src/network/rpc.cc" "src/network/CMakeFiles/sebdb_network.dir/rpc.cc.o" "gcc" "src/network/CMakeFiles/sebdb_network.dir/rpc.cc.o.d"
  "/root/repo/src/network/sim_network.cc" "src/network/CMakeFiles/sebdb_network.dir/sim_network.cc.o" "gcc" "src/network/CMakeFiles/sebdb_network.dir/sim_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/sebdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
