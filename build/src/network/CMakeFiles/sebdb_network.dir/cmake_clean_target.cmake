file(REMOVE_RECURSE
  "libsebdb_network.a"
)
