file(REMOVE_RECURSE
  "CMakeFiles/sebdb_network.dir/gossip.cc.o"
  "CMakeFiles/sebdb_network.dir/gossip.cc.o.d"
  "CMakeFiles/sebdb_network.dir/rpc.cc.o"
  "CMakeFiles/sebdb_network.dir/rpc.cc.o.d"
  "CMakeFiles/sebdb_network.dir/sim_network.cc.o"
  "CMakeFiles/sebdb_network.dir/sim_network.cc.o.d"
  "libsebdb_network.a"
  "libsebdb_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
