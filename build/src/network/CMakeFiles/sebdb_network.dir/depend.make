# Empty dependencies file for sebdb_network.
# This may be replaced when dependencies are built.
