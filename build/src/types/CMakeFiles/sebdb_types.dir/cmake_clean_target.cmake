file(REMOVE_RECURSE
  "libsebdb_types.a"
)
