file(REMOVE_RECURSE
  "CMakeFiles/sebdb_types.dir/schema.cc.o"
  "CMakeFiles/sebdb_types.dir/schema.cc.o.d"
  "CMakeFiles/sebdb_types.dir/transaction.cc.o"
  "CMakeFiles/sebdb_types.dir/transaction.cc.o.d"
  "CMakeFiles/sebdb_types.dir/value.cc.o"
  "CMakeFiles/sebdb_types.dir/value.cc.o.d"
  "libsebdb_types.a"
  "libsebdb_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
