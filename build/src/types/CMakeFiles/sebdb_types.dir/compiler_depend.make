# Empty compiler generated dependencies file for sebdb_types.
# This may be replaced when dependencies are built.
