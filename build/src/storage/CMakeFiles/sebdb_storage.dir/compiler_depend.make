# Empty compiler generated dependencies file for sebdb_storage.
# This may be replaced when dependencies are built.
