
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/sebdb_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/sebdb_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/block_store.cc" "src/storage/CMakeFiles/sebdb_storage.dir/block_store.cc.o" "gcc" "src/storage/CMakeFiles/sebdb_storage.dir/block_store.cc.o.d"
  "/root/repo/src/storage/file.cc" "src/storage/CMakeFiles/sebdb_storage.dir/file.cc.o" "gcc" "src/storage/CMakeFiles/sebdb_storage.dir/file.cc.o.d"
  "/root/repo/src/storage/merkle_tree.cc" "src/storage/CMakeFiles/sebdb_storage.dir/merkle_tree.cc.o" "gcc" "src/storage/CMakeFiles/sebdb_storage.dir/merkle_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/sebdb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sebdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
