file(REMOVE_RECURSE
  "CMakeFiles/sebdb_storage.dir/block.cc.o"
  "CMakeFiles/sebdb_storage.dir/block.cc.o.d"
  "CMakeFiles/sebdb_storage.dir/block_store.cc.o"
  "CMakeFiles/sebdb_storage.dir/block_store.cc.o.d"
  "CMakeFiles/sebdb_storage.dir/file.cc.o"
  "CMakeFiles/sebdb_storage.dir/file.cc.o.d"
  "CMakeFiles/sebdb_storage.dir/merkle_tree.cc.o"
  "CMakeFiles/sebdb_storage.dir/merkle_tree.cc.o.d"
  "libsebdb_storage.a"
  "libsebdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
