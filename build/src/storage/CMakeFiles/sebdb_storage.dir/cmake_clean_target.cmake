file(REMOVE_RECURSE
  "libsebdb_storage.a"
)
