file(REMOVE_RECURSE
  "CMakeFiles/sebdb_index.dir/bitmap_index.cc.o"
  "CMakeFiles/sebdb_index.dir/bitmap_index.cc.o.d"
  "CMakeFiles/sebdb_index.dir/block_index.cc.o"
  "CMakeFiles/sebdb_index.dir/block_index.cc.o.d"
  "CMakeFiles/sebdb_index.dir/histogram.cc.o"
  "CMakeFiles/sebdb_index.dir/histogram.cc.o.d"
  "CMakeFiles/sebdb_index.dir/layered_index.cc.o"
  "CMakeFiles/sebdb_index.dir/layered_index.cc.o.d"
  "libsebdb_index.a"
  "libsebdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sebdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
