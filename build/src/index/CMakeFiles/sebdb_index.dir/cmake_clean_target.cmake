file(REMOVE_RECURSE
  "libsebdb_index.a"
)
