# Empty compiler generated dependencies file for sebdb_index.
# This may be replaced when dependencies are built.
