// Adapts one named harness to the libFuzzer entry point. Each fuzz target
// compiles this file with -DSEBDB_FUZZ_ENTRY=<function>.
#include "fuzz/harnesses.h"

#ifndef SEBDB_FUZZ_ENTRY
#error "compile with -DSEBDB_FUZZ_ENTRY=sebdb::fuzz::<harness>"
#endif

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return SEBDB_FUZZ_ENTRY(data, size);
}
