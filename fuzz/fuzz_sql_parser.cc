// SQL lexer + parser: statements arrive verbatim from clients (thin client
// RPC, stored procedures), so the whole pipeline must reject garbage without
// crashing, unbounded recursion, or hangs. Anything that parses is printed
// back, which walks the full AST.
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/harnesses.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sebdb {
namespace fuzz {

int FuzzSqlParser(const uint8_t* data, size_t size) {
  const std::string_view sql(reinterpret_cast<const char*>(data), size);

  std::vector<Token> tokens;
  (void)Tokenize(sql, &tokens);

  StatementPtr statement;
  (void)ParseStatement(sql, &statement);
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
