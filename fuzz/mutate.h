// Deterministic input mutations shared by the standalone fuzz driver and the
// corpus regression test. No libFuzzer dependency: a fixed-seed xorshift
// generator applies bit flips, byte substitutions, truncations, duplications
// and splices, so every run explores the same neighborhood of the corpus and
// failures reproduce from just (file, round).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace sebdb {
namespace fuzz {

/// Deterministic 64-bit xorshift* generator.
class DeterministicRng {
 public:
  explicit DeterministicRng(uint64_t seed) : state_(seed ? seed : 0x9e3779b9) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

/// Produces mutation number `round` of `base`. Rounds with the same (base,
/// seed, round) always produce the same bytes.
inline std::string MutateInput(const std::string& base, uint64_t seed,
                               uint64_t round) {
  DeterministicRng rng(seed * 0x100000001b3ULL + round + 1);
  std::string out = base;
  const int kind = static_cast<int>(rng.Uniform(6));
  switch (kind) {
    case 0: {  // flip a single bit
      if (out.empty()) break;
      size_t pos = rng.Uniform(out.size());
      out[pos] = static_cast<char>(out[pos] ^ (1u << rng.Uniform(8)));
      break;
    }
    case 1: {  // overwrite a byte with a boundary-ish value
      if (out.empty()) break;
      static constexpr uint8_t kInteresting[] = {0x00, 0x01, 0x7f, 0x80,
                                                 0xff, 0xfe, 0x20, 0x0a};
      out[rng.Uniform(out.size())] =
          static_cast<char>(kInteresting[rng.Uniform(8)]);
      break;
    }
    case 2: {  // truncate
      out.resize(rng.Uniform(out.size() + 1));
      break;
    }
    case 3: {  // duplicate a slice onto the tail
      if (out.empty()) break;
      size_t start = rng.Uniform(out.size());
      size_t len = rng.Uniform(out.size() - start) + 1;
      out.append(out, start, len);
      break;
    }
    case 4: {  // insert random bytes
      size_t pos = rng.Uniform(out.size() + 1);
      size_t count = rng.Uniform(8) + 1;
      std::string blob;
      for (size_t i = 0; i < count; i++) {
        blob.push_back(static_cast<char>(rng.Next() & 0xff));
      }
      out.insert(pos, blob);
      break;
    }
    default: {  // corrupt a whole run of bytes
      if (out.empty()) break;
      size_t start = rng.Uniform(out.size());
      size_t len = std::min<size_t>(rng.Uniform(16) + 1, out.size() - start);
      for (size_t i = 0; i < len; i++) {
        out[start + i] = static_cast<char>(rng.Next() & 0xff);
      }
      break;
    }
  }
  return out;
}

}  // namespace fuzz
}  // namespace sebdb
