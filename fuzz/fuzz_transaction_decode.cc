// Transaction and Value binary decode: the bytes arrive in block bodies and
// gossip messages, so arbitrary input must be cleanly rejected, and anything
// accepted must round-trip byte-identically (decode(encode(t)) == t guards
// against parser/serializer divergence, which would split consensus).
#include <string>

#include "common/slice.h"
#include "fuzz/harnesses.h"
#include "types/transaction.h"
#include "types/value.h"

namespace sebdb {
namespace fuzz {

int FuzzTransactionDecode(const uint8_t* data, size_t size) {
  const Slice raw(reinterpret_cast<const char*>(data), size);

  {
    Slice input = raw;
    Transaction txn;
    if (Transaction::DecodeFrom(&input, &txn).ok()) {
      std::string reencoded;
      txn.EncodeTo(&reencoded);
      Slice again(reencoded);
      Transaction txn2;
      if (!Transaction::DecodeFrom(&again, &txn2).ok() || !(txn == txn2)) {
        __builtin_trap();  // accepted input must round-trip
      }
      (void)txn.Hash();
      (void)txn.SigningPayload();
      (void)txn.ToString();
    }
  }

  {
    Slice input = raw;
    Value value;
    if (Value::DecodeFrom(&input, &value)) {
      std::string reencoded;
      value.EncodeTo(&reencoded);
      Slice again(reencoded);
      Value value2;
      if (!Value::DecodeFrom(&again, &value2) ||
          value.CompareTotal(value2) != 0) {
        __builtin_trap();
      }
      (void)value.ToString();
    }
  }
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
