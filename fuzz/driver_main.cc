// Standalone driver for the fuzz harnesses, used where libFuzzer is not
// available (the default GCC toolchain). It replays every corpus file
// through LLVMFuzzerTestOneInput and then feeds it a fixed number of
// deterministic mutations per seed, so the same binary doubles as the
// `fuzz-smoke` ctest target: a crash or sanitizer report fails the test.
//
//   <harness> [--mutations N] [--seed S] <corpus-file-or-dir>...
//
// With a clang toolchain, build with -DSEBDB_LIBFUZZER=ON instead and this
// file is replaced by libFuzzer's own driver for coverage-guided runs.
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/mutate.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

void CollectInputs(const std::string& path, std::vector<std::string>* files) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    fprintf(stderr, "fuzz driver: cannot stat %s\n", path.c_str());
    exit(2);
  }
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(path);
    return;
  }
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    fprintf(stderr, "fuzz driver: cannot open dir %s\n", path.c_str());
    exit(2);
  }
  std::vector<std::string> entries;
  while (struct dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    entries.push_back(path + "/" + entry->d_name);
  }
  closedir(dir);
  // Sort for run-to-run determinism; readdir order is filesystem-dependent.
  std::sort(entries.begin(), entries.end());
  for (const auto& e : entries) CollectInputs(e, files);
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t mutations = 0;
  uint64_t seed = 1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--mutations") == 0 && i + 1 < argc) {
      mutations = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = strtoull(argv[++i], nullptr, 10);
    } else {
      CollectInputs(argv[i], &files);
    }
  }
  if (files.empty()) {
    fprintf(stderr, "usage: %s [--mutations N] [--seed S] <corpus>...\n",
            argv[0]);
    return 2;
  }

  uint64_t executed = 0;
  for (const auto& path : files) {
    std::string bytes;
    if (!ReadFile(path, &bytes)) {
      fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
      return 2;
    }
    RunOne(bytes);
    executed++;
    for (uint64_t round = 0; round < mutations; round++) {
      RunOne(sebdb::fuzz::MutateInput(bytes, seed, round));
      executed++;
    }
  }
  // Also probe the empty input and a few fully random blobs.
  RunOne(std::string());
  sebdb::fuzz::DeterministicRng rng(seed);
  for (int i = 0; i < 16; i++) {
    std::string blob;
    size_t len = rng.Uniform(512);
    for (size_t j = 0; j < len; j++) {
      blob.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    RunOne(blob);
    executed++;
  }
  printf("fuzz driver: %llu inputs, no findings\n",
         static_cast<unsigned long long>(executed));
  return 0;
}
