// TCP frame codec: the exact bytes a node reads off an accepted socket
// before anything else sees them — the hottest hostile surface in the
// multi-process deployment. Contract under fuzzing: reject-or-round-trip.
// Any input either fails decode with a clean Status (never a crash, never
// an allocation beyond the declared cap) or decodes to a message that
// re-encodes to an accepted, semantically identical frame.
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "fuzz/harnesses.h"
#include "network/frame.h"

namespace sebdb {
namespace fuzz {

int FuzzTcpFrame(const uint8_t* data, size_t size) {
  const Slice raw(reinterpret_cast<const char*>(data), size);

  // Header-only path, as ReaderLoop uses it on the first 13 bytes. A small
  // cap makes the length-bound check reachable with tiny inputs.
  if (size >= kFrameHeaderBytes) {
    FrameHeader header;
    (void)DecodeFrameHeader(raw.data(), /*max_frame_bytes=*/1 << 16, &header);
  }

  {
    Slice input = raw;
    Message message;
    if (DecodeFrame(&input, kDefaultMaxFrameBytes, &message).ok()) {
      // Accepted ⇒ the type passed the allowlist and the ids are bounded.
      if (!IsAllowedMessageType(message.type) || message.from.empty() ||
          message.from.size() > kMaxEndpointIdBytes || message.to.empty() ||
          message.to.size() > kMaxEndpointIdBytes) {
        __builtin_trap();
      }
      // Accepted ⇒ must round-trip exactly.
      std::string reencoded;
      EncodeFrame(message, &reencoded);
      Slice again(reencoded);
      Message message2;
      if (!DecodeFrame(&again, kDefaultMaxFrameBytes, &message2).ok() ||
          !again.empty() || message2.type != message.type ||
          message2.from != message.from || message2.to != message.to ||
          message2.payload != message.payload) {
        __builtin_trap();
      }
    }
  }

  // Payload-only path with an attacker-chosen CRC split off the front, so
  // the fuzzer can explore payload parsing without solving CRC32 first.
  if (size >= 4) {
    uint32_t crc = DecodeFixed32(raw.data());
    Slice payload(raw.data() + 4, size - 4);
    Message message;
    (void)DecodeFramePayload(payload, crc, &message);
  }
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
