// Page and checkpoint-manifest decode: the exact bytes the persistence
// layer reads back from disk. A page image crosses the trust boundary on
// every buffer-pool fault (checkpoint files survive crashes and bit rot);
// a manifest record is parsed at every startup to pick the recovery point.
// Both must reject arbitrary bytes without crashing, and anything they
// accept must re-encode/re-decode losslessly.
#include <cstring>
#include <string>

#include "common/slice.h"
#include "fuzz/harnesses.h"
#include "storage/checkpoint.h"
#include "storage/page.h"

namespace sebdb {
namespace fuzz {

int FuzzPageDecode(const uint8_t* data, size_t size) {
  const Slice raw(reinterpret_cast<const char*>(data), size);

  {
    // As-is: only exactly kPageSize bytes may ever decode.
    PageType type;
    Slice payload;
    if (DecodePage(raw, &type, &payload).ok()) {
      if (size != kPageSize || payload.size() > kMaxPagePayload) {
        __builtin_trap();
      }
    }
  }
  {
    // Zero-padded to a full page, the way a torn image would reach the
    // decoder if size checks slipped: the CRC must still gate acceptance,
    // and an accepted payload must round-trip through EncodePage.
    std::string padded(kPageSize, '\0');
    std::memcpy(padded.data(), data, std::min(size, kPageSize));
    PageType type;
    Slice payload;
    if (DecodePage(padded, &type, &payload).ok()) {
      // The CRC covers header + payload, not the zero padding, so an
      // accepted page must re-encode identically over that covered prefix
      // (the re-encoding canonicalizes any garbage padding to zeros).
      std::string reencoded;
      if (!EncodePage(type, payload, &reencoded).ok() ||
          reencoded.compare(0, kPageHeaderSize + payload.size(), padded, 0,
                            kPageHeaderSize + payload.size()) != 0) {
        __builtin_trap();
      }
    }
  }
  {
    Slice input = raw;
    CheckpointRecord rec;
    if (CheckpointManager::DecodeManifestRecord(&input, &rec)) {
      std::string reencoded;
      CheckpointManager::EncodeManifestRecord(rec, &reencoded);
      Slice again(reencoded);
      CheckpointRecord rec2;
      if (!CheckpointManager::DecodeManifestRecord(&again, &rec2) ||
          !again.empty() || rec2.id != rec.id || rec2.height != rec.height ||
          rec2.files.size() != rec.files.size()) {
        __builtin_trap();  // accepted record must round-trip
      }
    }
  }
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
