// Block record decode: the exact bytes a node receives from gossip peers and
// reads back from segment files. Covers the full-record path (header +
// transactions + Merkle validation) and the point-access decoders used by
// the block store's transaction reads.
#include <string>

#include "common/slice.h"
#include "fuzz/harnesses.h"
#include "storage/block.h"

namespace sebdb {
namespace fuzz {

int FuzzBlockDecode(const uint8_t* data, size_t size) {
  const Slice raw(reinterpret_cast<const char*>(data), size);

  {
    Slice input = raw;
    Block block;
    if (Block::DecodeFrom(&input, &block).ok()) {
      // Validation recomputes the Merkle root and the header hash; both must
      // cope with whatever decode accepted.
      (void)block.Validate();
      std::string reencoded;
      block.EncodeTo(&reencoded);
      Slice again(reencoded);
      Block block2;
      if (!Block::DecodeFrom(&again, &block2).ok() ||
          block2.height() != block.height() ||
          block2.transactions().size() != block.transactions().size()) {
        __builtin_trap();  // accepted input must round-trip
      }
    }
  }

  {
    Slice input = raw;
    BlockHeader header;
    (void)BlockHeader::DecodeFrom(&input, &header);
  }
  {
    BlockHeader header;
    (void)Block::DecodeHeader(raw, &header);
  }
  {
    // Point access as used by BlockStore::ReadTransaction; probe the first
    // few indexes so out-of-range handling is exercised too.
    for (uint32_t index = 0; index < 3; index++) {
      Transaction txn;
      (void)Block::DecodeOneTransaction(raw, index, &txn);
    }
  }
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
