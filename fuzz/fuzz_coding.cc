// Varint / fixed / length-prefixed coding primitives: every network payload
// and storage record is assembled from these, so they are the innermost
// untrusted-input surface. Successful decodes must re-encode to bytes that
// decode to the same value (canonical-form check for varints).
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "fuzz/harnesses.h"

namespace sebdb {
namespace fuzz {

int FuzzCoding(const uint8_t* data, size_t size) {
  const Slice raw(reinterpret_cast<const char*>(data), size);

  {
    Slice input = raw;
    uint32_t v32;
    while (GetVarint32(&input, &v32)) {
      std::string enc;
      PutVarint32(&enc, v32);
      Slice again(enc);
      uint32_t back;
      if (!GetVarint32(&again, &back) || back != v32 || !again.empty()) {
        __builtin_trap();
      }
    }
  }
  {
    Slice input = raw;
    uint64_t v64;
    while (GetVarint64(&input, &v64)) {
      std::string enc;
      PutVarint64(&enc, v64);
      Slice again(enc);
      uint64_t back;
      if (!GetVarint64(&again, &back) || back != v64 || !again.empty()) {
        __builtin_trap();
      }
    }
  }
  {
    Slice input = raw;
    int64_t s64;
    while (GetVarSigned64(&input, &s64)) {
      std::string enc;
      PutVarSigned64(&enc, s64);
      Slice again(enc);
      int64_t back;
      if (!GetVarSigned64(&again, &back) || back != s64) __builtin_trap();
    }
  }
  {
    Slice input = raw;
    Slice piece;
    while (GetLengthPrefixed(&input, &piece)) {
      std::string enc;
      PutLengthPrefixed(&enc, piece);
      Slice again(enc);
      Slice back;
      if (!GetLengthPrefixed(&again, &back) ||
          back.ToString() != piece.ToString()) {
        __builtin_trap();
      }
    }
  }
  {
    Slice input = raw;
    uint16_t f16;
    uint32_t f32;
    uint64_t f64;
    (void)GetFixed16(&input, &f16);
    (void)GetFixed32(&input, &f32);
    (void)GetFixed64(&input, &f64);
  }
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
