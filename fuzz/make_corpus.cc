// Regenerates the checked-in seed corpora under fuzz/corpus/. Each seed is a
// small *valid* input for its harness, so mutation fuzzing starts near the
// interesting accept/reject boundary instead of deep in reject-everything
// territory. Deterministic: rerunning produces byte-identical files.
//
//   make_corpus <output-dir>   # e.g. make_corpus fuzz/corpus
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "auth/mbtree.h"
#include "common/coding.h"
#include "network/frame.h"
#include "storage/block.h"
#include "storage/checkpoint.h"
#include "storage/page.h"
#include "types/transaction.h"
#include "types/value.h"

namespace sebdb {
namespace {

void WriteFile(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    fprintf(stderr, "make_corpus: cannot write %s\n", path.c_str());
    exit(2);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void MakeDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    fprintf(stderr, "make_corpus: cannot mkdir %s\n", path.c_str());
    exit(2);
  }
}

Transaction MakeTxn(uint64_t tid, const std::string& table,
                    const std::string& sender, Timestamp ts,
                    std::vector<Value> values) {
  Transaction txn;
  txn.set_tid(tid);
  txn.set_ts(ts);
  txn.set_sender(sender);
  txn.set_tname(table);
  txn.set_signature("seed-signature");
  txn.set_values(std::move(values));
  return txn;
}

void TransactionSeeds(const std::string& dir) {
  {
    std::string bytes;
    MakeTxn(1, "donate", "org1", 1000,
            {Value::Str("disaster-relief"), Value::Int(250)})
        .EncodeTo(&bytes);
    WriteFile(dir, "txn_donate", bytes);
  }
  {
    std::string bytes;
    MakeTxn(7, "readings", "sensor-12", 99999,
            {Value::Double(21.5), Value::Bool(true), Value::Null(),
             Value::Ts(123456789)})
        .EncodeTo(&bytes);
    WriteFile(dir, "txn_all_types", bytes);
  }
  {
    Decimal dec;
    (void)Decimal::FromString("12345.67", &dec);
    std::string bytes;
    MakeTxn(42, "transfer", "alice", 5000,
            {Value::Dec(dec), Value::Str(std::string(300, 'x'))})
        .EncodeTo(&bytes);
    WriteFile(dir, "txn_decimal_bigstr", bytes);
  }
  {
    // A bare Value encoding (the harness also decodes raw values).
    std::string bytes;
    Value::Str("standalone-value").EncodeTo(&bytes);
    WriteFile(dir, "value_str", bytes);
  }
}

Block MakeBlock(BlockId height, TransactionId first_tid, int num_txns) {
  BlockBuilder builder;
  builder.SetHeight(height)
      .SetPrevHash(Hash256{})
      .SetTimestamp(1000 + height)
      .SetFirstTid(first_tid);
  for (int i = 0; i < num_txns; i++) {
    builder.AddTransaction(MakeTxn(first_tid + i, "donate",
                                   "org" + std::to_string(i), 1000 + i,
                                   {Value::Int(i), Value::Str("seed")}));
  }
  return std::move(builder).Build("packager-signature");
}

void BlockSeeds(const std::string& dir) {
  {
    std::string bytes;
    MakeBlock(0, 1, 0).EncodeTo(&bytes);
    WriteFile(dir, "block_empty", bytes);
  }
  {
    std::string bytes;
    MakeBlock(1, 1, 1).EncodeTo(&bytes);
    WriteFile(dir, "block_one_txn", bytes);
  }
  {
    std::string bytes;
    MakeBlock(12, 100, 5).EncodeTo(&bytes);
    WriteFile(dir, "block_five_txns", bytes);
  }
  {
    // A bare header (the harness also decodes raw headers).
    std::string bytes;
    MakeBlock(3, 10, 2).header().EncodeTo(&bytes);
    WriteFile(dir, "header_only", bytes);
  }
}

void CodingSeeds(const std::string& dir) {
  {
    std::string bytes;
    PutVarint32(&bytes, 0);
    PutVarint32(&bytes, 127);
    PutVarint32(&bytes, 128);
    PutVarint32(&bytes, 0xffffffffu);
    WriteFile(dir, "varint32_boundaries", bytes);
  }
  {
    std::string bytes;
    PutVarint64(&bytes, 0xffffffffffffffffull);
    PutVarSigned64(&bytes, -1);
    PutVarSigned64(&bytes, INT64_MIN);
    WriteFile(dir, "varint64_extremes", bytes);
  }
  {
    std::string bytes;
    PutLengthPrefixed(&bytes, Slice("hello"));
    PutLengthPrefixed(&bytes, Slice(""));
    PutLengthPrefixed(&bytes, Slice(std::string(200, 'z')));
    WriteFile(dir, "length_prefixed", bytes);
  }
  {
    std::string bytes;
    PutFixed16(&bytes, 0xbeef);
    PutFixed32(&bytes, 0xdeadbeefu);
    PutFixed64(&bytes, 0x0123456789abcdefull);
    WriteFile(dir, "fixed_widths", bytes);
  }
}

void SqlSeeds(const std::string& dir) {
  WriteFile(dir, "create",
            "CREATE TABLE donate (donor STRING, amount INT64);");
  WriteFile(dir, "insert",
            "INSERT INTO donate VALUES ('relief', 250);");
  WriteFile(dir, "select_where",
            "SELECT donor, amount FROM donate WHERE amount > 100 AND "
            "block_id < 50;");
  WriteFile(dir, "select_join",
            "SELECT a.donor, b.amount FROM donate a JOIN transfer b ON "
            "a.donor = b.sender WHERE a.amount >= 10;");
  WriteFile(dir, "aggregate",
            "SELECT donor, SUM(amount) FROM donate GROUP BY donor;");
  WriteFile(dir, "trace",
            "SELECT * FROM donate WHERE timestamp BETWEEN 100 AND 200;");
}

void VoSeeds(const std::string& dir) {
  std::vector<MbTree::Entry> entries;
  for (int i = 0; i < 40; i++) {
    std::string record;
    Value::Int(i * 10).EncodeTo(&record);  // key prefix, as KeyOfRecord expects
    record += "payload-" + std::to_string(i);
    entries.push_back(MbTree::Entry{Value::Int(i * 10), record});
  }
  auto tree = MbTree::Build(std::move(entries));
  {
    VerificationObject vo;
    Value lo = Value::Int(100), hi = Value::Int(200);
    if (!tree->ProveRange(&lo, &hi, &vo).ok()) exit(2);
    std::string bytes;
    vo.EncodeTo(&bytes);
    WriteFile(dir, "vo_mid_range", bytes);
  }
  {
    VerificationObject vo;
    if (!tree->ProveRange(nullptr, nullptr, &vo).ok()) exit(2);
    std::string bytes;
    vo.EncodeTo(&bytes);
    WriteFile(dir, "vo_full_range", bytes);
  }
  {
    VerificationObject vo;
    Value lo = Value::Int(1), hi = Value::Int(2);  // empty range
    if (!tree->ProveRange(&lo, &hi, &vo).ok()) exit(2);
    std::string bytes;
    vo.EncodeTo(&bytes);
    WriteFile(dir, "vo_empty_range", bytes);
  }
}

void TcpFrameSeeds(const std::string& dir) {
  {
    std::string bytes;
    EncodeFrame(Message{"gossip.digest", "node1", "node2", "digest-body"},
                &bytes);
    WriteFile(dir, "frame_gossip", bytes);
  }
  {
    std::string bytes;
    EncodeFrame(Message{"rpc.request", "client-0", "node1",
                        std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8) +
                            "body"},
                &bytes);
    WriteFile(dir, "frame_rpc_request", bytes);
  }
  {
    std::string bytes;
    EncodeFrame(Message{"net.ping", "node1", "node2", ""}, &bytes);
    WriteFile(dir, "frame_heartbeat", bytes);
  }
  {
    // Empty body, minimal ids: the smallest accepted frame.
    std::string bytes;
    EncodeFrame(Message{"tm.vote", "a", "b", ""}, &bytes);
    WriteFile(dir, "frame_min", bytes);
  }
  {
    // Two frames back to back: the decoder must consume exactly one.
    std::string bytes;
    EncodeFrame(Message{"repair.pull", "node2", "node3", "range"}, &bytes);
    EncodeFrame(Message{"repair.push", "node3", "node2", "blocks"}, &bytes);
    WriteFile(dir, "frame_pair", bytes);
  }
  {
    // Boundary seed: maximum-length endpoint ids.
    std::string bytes;
    EncodeFrame(Message{"kafka.submit", std::string(kMaxEndpointIdBytes, 'f'),
                        std::string(kMaxEndpointIdBytes, 't'), "x"},
                &bytes);
    WriteFile(dir, "frame_max_ids", bytes);
  }
}

void PageSeeds(const std::string& dir) {
  {
    std::string bytes;
    if (!EncodePage(PageType::kBlob, "checkpoint blob payload", &bytes).ok()) {
      exit(2);
    }
    WriteFile(dir, "page_blob", bytes);
  }
  {
    // A leaf page the way DiskBpTreeBuilder lays one out: next pointer,
    // entry count, then key/value pairs.
    std::string payload;
    PutFixed32(&payload, 0xFFFFFFFFu);  // kInvalidPageId: last leaf
    PutVarint32(&payload, 2);
    PutVarint64(&payload, 10);  // key 10
    PutLengthPrefixed(&payload, Slice("value-a"));
    PutVarint64(&payload, 20);  // key 20
    PutLengthPrefixed(&payload, Slice("value-b"));
    std::string bytes;
    if (!EncodePage(PageType::kBTreeLeaf, payload, &bytes).ok()) exit(2);
    WriteFile(dir, "page_leaf", bytes);
  }
  {
    std::string bytes;
    if (!EncodePage(PageType::kBTreeInternal, std::string(kMaxPagePayload, 'i'),
                    &bytes)
             .ok()) {
      exit(2);
    }
    WriteFile(dir, "page_full_internal", bytes);
  }
  {
    CheckpointRecord rec;
    rec.id = 3;
    rec.height = 4096;
    rec.files.push_back({"ckpt_2_bidx", 8 * kPageSize});
    rec.files.push_back({"ckpt_3_bidx", 2 * kPageSize});
    rec.files.push_back({"ckpt_3_meta", kPageSize});
    std::string bytes;
    CheckpointManager::EncodeManifestRecord(rec, &bytes);
    WriteFile(dir, "manifest_record", bytes);
  }
  {
    CheckpointRecord rec;  // empty-chain checkpoint: no files
    rec.id = 1;
    rec.height = 1;
    std::string bytes;
    CheckpointManager::EncodeManifestRecord(rec, &bytes);
    WriteFile(dir, "manifest_record_min", bytes);
  }
}

}  // namespace
}  // namespace sebdb

int main(int argc, char** argv) {
  if (argc != 2) {
    fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  sebdb::MakeDir(root);
  struct {
    const char* name;
    void (*fill)(const std::string&);
  } kSets[] = {
      {"transaction_decode", sebdb::TransactionSeeds},
      {"block_decode", sebdb::BlockSeeds},
      {"coding", sebdb::CodingSeeds},
      {"sql_parser", sebdb::SqlSeeds},
      {"vo_verify", sebdb::VoSeeds},
      {"page_decode", sebdb::PageSeeds},
      {"tcp_frame", sebdb::TcpFrameSeeds},
  };
  for (const auto& set : kSets) {
    const std::string dir = root + "/" + set.name;
    sebdb::MakeDir(dir);
    set.fill(dir);
  }
  printf("make_corpus: wrote seeds under %s\n", root.c_str());
  return 0;
}
