// Fuzz entry points for SEBDB's untrusted input surfaces. Each function has
// the libFuzzer contract (return 0, never crash, no leaks); entry.cc adapts
// the selected one to LLVMFuzzerTestOneInput, so the same code runs under a
// real libFuzzer build (clang -fsanitize=fuzzer) and under the standalone
// corpus-replay driver (driver_main.cc) everywhere else.
//
// Untrusted surfaces covered (anything that crosses the network or is read
// back from disk):
//   - Transaction / Value binary decode (gossip payloads, block bodies)
//   - Block record decode + header + Merkle validation (gossip, segments)
//   - varint / fixed / length-prefixed coding primitives
//   - SQL lexer + parser (client-submitted statements)
//   - MB-tree verification-object decode + range verification (query proofs)
//   - checkpoint page images + manifest records (index persistence files)
//   - TCP wire frames (every byte an accepted socket delivers)
#pragma once

#include <cstddef>
#include <cstdint>

namespace sebdb {
namespace fuzz {

int FuzzTransactionDecode(const uint8_t* data, size_t size);
int FuzzBlockDecode(const uint8_t* data, size_t size);
int FuzzCoding(const uint8_t* data, size_t size);
int FuzzSqlParser(const uint8_t* data, size_t size);
int FuzzVoVerify(const uint8_t* data, size_t size);
int FuzzPageDecode(const uint8_t* data, size_t size);
int FuzzTcpFrame(const uint8_t* data, size_t size);

}  // namespace fuzz
}  // namespace sebdb
