// MB-tree verification-object decode and client-side range verification:
// the VO comes from an untrusted server, and VerifyRange is exactly the code
// a client runs on it. Decoded garbage must be rejected (soundness errors,
// not crashes), and a forged VO must never verify against a root it does not
// hash to — we check that with a fixed trusted root no mutation can match.
#include <string>
#include <vector>

#include "auth/mbtree.h"
#include "common/slice.h"
#include "fuzz/harnesses.h"
#include "types/value.h"

namespace sebdb {
namespace fuzz {

namespace {

// Clients re-derive index keys from returned records; mirror the executor's
// convention of a Value-encoded key prefix, falling back to rejection.
Status KeyOfRecord(const Slice& record, Value* key) {
  Slice input = record;
  if (!Value::DecodeFrom(&input, key)) {
    return Status::InvalidArgument("record carries no decodable key");
  }
  return Status::OK();
}

}  // namespace

int FuzzVoVerify(const uint8_t* data, size_t size) {
  Slice input(reinterpret_cast<const char*>(data), size);
  VerificationObject vo;
  if (!VerificationObject::DecodeFrom(&input, &vo).ok()) return 0;

  // An arbitrary "trusted" root: all-0xab. Verification must either fail
  // cleanly or — astronomically unlikely — succeed; it must never crash.
  Hash256 trusted;
  trusted.bytes.fill(0xab);
  const Value lo = Value::Int(0);
  const Value hi = Value::Int(1'000'000);
  std::vector<std::string> records;
  (void)MbTree::VerifyRange(trusted, vo, &lo, &hi, KeyOfRecord, &records);

  // The reconstruction path with open bounds walks different branches.
  records.clear();
  Hash256 root;
  (void)MbTree::ReconstructRoot(vo, nullptr, nullptr, KeyOfRecord, &records,
                                &root);
  return 0;
}

}  // namespace fuzz
}  // namespace sebdb
