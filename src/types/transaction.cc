#include "types/transaction.h"

#include "common/coding.h"

namespace sebdb {

Value Transaction::GetColumn(int index) const {
  switch (index) {
    case 0:
      return Value::Int(static_cast<int64_t>(tid_));
    case 1:
      return Value::Ts(ts_);
    case 2:
      return Value::Str(signature_);
    case 3:
      return Value::Str(sender_);
    case 4:
      return Value::Str(tname_);
    default: {
      int app = index - Schema::kNumSystemColumns;
      if (app < 0 || app >= static_cast<int>(values_.size())) {
        return Value::Null();
      }
      return values_[app];
    }
  }
}

Status Transaction::GetColumnByName(const Schema& schema,
                                    std::string_view name, Value* out) const {
  int idx = schema.ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound("no column named " + std::string(name));
  }
  *out = GetColumn(idx);
  return Status::OK();
}

std::string Transaction::SigningPayload() const {
  std::string payload;
  PutVarSigned64(&payload, ts_);
  PutLengthPrefixed(&payload, sender_);
  PutLengthPrefixed(&payload, tname_);
  PutVarint32(&payload, static_cast<uint32_t>(values_.size()));
  for (const auto& v : values_) v.EncodeTo(&payload);
  return payload;
}

void Transaction::EncodeTo(std::string* dst) const {
  PutVarint64(dst, tid_);
  PutVarSigned64(dst, ts_);
  PutLengthPrefixed(dst, signature_);
  PutLengthPrefixed(dst, sender_);
  PutLengthPrefixed(dst, tname_);
  PutVarint32(dst, static_cast<uint32_t>(values_.size()));
  for (const auto& v : values_) v.EncodeTo(dst);
}

Status Transaction::DecodeFrom(Slice* input, Transaction* out) {
  uint64_t tid;
  int64_t ts;
  Slice sig, sender, tname;
  uint32_t n;
  if (!GetVarint64(input, &tid) || !GetVarSigned64(input, &ts) ||
      !GetLengthPrefixed(input, &sig) || !GetLengthPrefixed(input, &sender) ||
      !GetLengthPrefixed(input, &tname) || !GetVarint32(input, &n)) {
    return Status::Corruption("truncated transaction");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Value v;
    if (!Value::DecodeFrom(input, &v)) {
      return Status::Corruption("truncated transaction value");
    }
    values.push_back(std::move(v));
  }
  out->tid_ = tid;
  out->ts_ = ts;
  out->signature_ = sig.ToString();
  out->sender_ = sender.ToString();
  out->tname_ = tname.ToString();
  out->values_ = std::move(values);
  return Status::OK();
}

Hash256 Transaction::Hash() const {
  std::string enc;
  EncodeTo(&enc);
  return Sha256::Digest(enc);
}

size_t Transaction::ByteSize() const {
  size_t n = sizeof(Transaction) + sender_.capacity() + tname_.capacity() +
             signature_.capacity();
  for (const auto& v : values_) n += v.ByteSize();
  return n;
}

std::string Transaction::ToString() const {
  std::string out = tname_ + "[tid=" + std::to_string(tid_) +
                    ", ts=" + std::to_string(ts_) + ", sender=" + sender_ +
                    "](";
  for (size_t i = 0; i < values_.size(); i++) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

bool Transaction::operator==(const Transaction& o) const {
  return tid_ == o.tid_ && ts_ == o.ts_ && sender_ == o.sender_ &&
         tname_ == o.tname_ && signature_ == o.signature_ &&
         values_ == o.values_;
}

}  // namespace sebdb
