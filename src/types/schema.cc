#include "types/schema.h"

#include <algorithm>
#include <cctype>

#include "common/coding.h"

namespace sebdb {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

Status Schema::Create(std::string table_name,
                      std::vector<ColumnDef> app_columns, Schema* out) {
  if (table_name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  Schema s;
  s.table_name_ = ToLower(table_name);
  s.columns_ = {
      {kTid, ValueType::kInt64},   {kTs, ValueType::kTimestamp},
      {kSig, ValueType::kString},  {kSenId, ValueType::kString},
      {kTname, ValueType::kString},
  };
  for (auto& col : app_columns) {
    col.name = ToLower(col.name);
    for (const auto& existing : s.columns_) {
      if (existing.name == col.name) {
        return Status::InvalidArgument("duplicate or reserved column name: " +
                                       col.name);
      }
    }
    s.columns_.push_back(std::move(col));
  }
  *out = std::move(s);
  return Status::OK();
}

int Schema::ColumnIndex(std::string_view name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == lower) return static_cast<int>(i);
  }
  return -1;
}

std::vector<ColumnDef> Schema::AppColumns() const {
  return std::vector<ColumnDef>(columns_.begin() + kNumSystemColumns,
                                columns_.end());
}

void Schema::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, table_name_);
  PutVarint32(dst, static_cast<uint32_t>(num_app_columns()));
  for (int i = kNumSystemColumns; i < num_columns(); i++) {
    PutLengthPrefixed(dst, columns_[i].name);
    dst->push_back(static_cast<char>(columns_[i].type));
  }
}

Status Schema::DecodeFrom(Slice* input, Schema* out) {
  Slice name;
  uint32_t n;
  if (!GetLengthPrefixed(input, &name) || !GetVarint32(input, &n)) {
    return Status::Corruption("truncated schema");
  }
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Slice col_name;
    if (!GetLengthPrefixed(input, &col_name) || input->empty()) {
      return Status::Corruption("truncated schema column");
    }
    auto type = static_cast<ValueType>((*input)[0]);
    input->remove_prefix(1);
    cols.push_back({col_name.ToString(), type});
  }
  return Create(name.ToString(), std::move(cols), out);
}

std::string Schema::ToString() const {
  std::string out = table_name_ + "(";
  bool first = true;
  for (int i = kNumSystemColumns; i < num_columns(); i++) {
    if (!first) out += ", ";
    first = false;
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace sebdb
