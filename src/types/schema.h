// Relational schema for a transaction type (paper §III-A). Every table has
// five system-level columns (Tid, Ts, Sig, SenID, Tname) automatically
// prepended to the user-declared application-level columns.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "types/value.h"

namespace sebdb {

struct ColumnDef {
  std::string name;
  ValueType type;

  bool operator==(const ColumnDef&) const = default;
};

class Schema {
 public:
  /// Names of the automatic system-level columns, in declaration order.
  static constexpr const char* kTid = "tid";
  static constexpr const char* kTs = "ts";
  static constexpr const char* kSig = "sig";
  static constexpr const char* kSenId = "senid";
  static constexpr const char* kTname = "tname";
  static constexpr int kNumSystemColumns = 5;

  Schema() = default;
  /// Builds a schema for table_name from user-declared columns; the system
  /// columns are added automatically. Fails on duplicate or reserved names.
  static Status Create(std::string table_name, std::vector<ColumnDef> app_columns,
                       Schema* out);

  const std::string& table_name() const { return table_name_; }

  /// All columns, system columns first.
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int num_app_columns() const {
    return num_columns() - kNumSystemColumns;
  }

  /// Index of a column by (case-insensitive) name, or -1.
  int ColumnIndex(std::string_view name) const;
  bool IsSystemColumn(int index) const { return index < kNumSystemColumns; }

  /// Application column defs only (columns()[5..]).
  std::vector<ColumnDef> AppColumns() const;

  /// Serialization used by the catalog's schema-sync transactions.
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Schema* out);

  bool operator==(const Schema&) const = default;

  std::string ToString() const;  // "donate(donor string, ...)" for EXPLAIN

 private:
  std::string table_name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace sebdb
