// Transaction: one on-chain tuple (paper §IV-A). Carries the five
// system-level attributes (Tid, Ts, Sig, SenID, Tname) plus the
// application-level attribute values declared by the table's schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/sha256.h"
#include "common/slice.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace sebdb {

/// Global transaction id: position in the chain's total order, assigned at
/// block packaging time (monotone across blocks, per the block-level index
/// invariant in §IV-B).
using TransactionId = uint64_t;

class Transaction {
 public:
  Transaction() = default;
  Transaction(std::string tname, std::vector<Value> values)
      : tname_(std::move(tname)), values_(std::move(values)) {}

  TransactionId tid() const { return tid_; }
  Timestamp ts() const { return ts_; }
  const std::string& sender() const { return sender_; }
  const std::string& tname() const { return tname_; }
  const std::string& signature() const { return signature_; }
  const std::vector<Value>& values() const { return values_; }

  void set_tid(TransactionId tid) { tid_ = tid; }
  void set_ts(Timestamp ts) { ts_ = ts; }
  void set_sender(std::string sender) { sender_ = std::move(sender); }
  void set_tname(std::string tname) { tname_ = std::move(tname); }
  void set_signature(std::string sig) { signature_ = std::move(sig); }
  void set_values(std::vector<Value> values) { values_ = std::move(values); }

  /// Returns the value at a schema column index; indexes 0..4 synthesize the
  /// system columns, the rest read the application attributes.
  Value GetColumn(int index) const;
  /// Column lookup by name against the given schema; NotFound if absent.
  Status GetColumnByName(const Schema& schema, std::string_view name,
                         Value* out) const;

  /// Bytes covered by the signature: everything except tid and signature
  /// (tid is assigned after signing, by the orderer).
  std::string SigningPayload() const;

  /// Full binary encoding (appended to block bodies and gossip messages).
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Transaction* out);

  /// SHA-256 over the full encoding; leaf hash of the block Merkle tree.
  Hash256 Hash() const;

  /// Approximate in-memory footprint, used by the transaction cache.
  size_t ByteSize() const;

  std::string ToString() const;

  bool operator==(const Transaction& o) const;

 private:
  TransactionId tid_ = 0;
  Timestamp ts_ = 0;
  std::string sender_;
  std::string tname_;
  std::string signature_;
  std::vector<Value> values_;
};

}  // namespace sebdb
