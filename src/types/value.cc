#include "types/value.h"

#include <bit>
#include <charconv>
#include <cmath>

#include "common/coding.h"

namespace sebdb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kDecimal:
      return "decimal";
    case ValueType::kString:
      return "string";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

bool ParseValueType(std::string_view name, ValueType* out) {
  if (name == "bool") *out = ValueType::kBool;
  else if (name == "int" || name == "int64" || name == "integer" ||
           name == "bigint")
    *out = ValueType::kInt64;
  else if (name == "double" || name == "float") *out = ValueType::kDouble;
  else if (name == "decimal" || name == "numeric") *out = ValueType::kDecimal;
  else if (name == "string" || name == "varchar" || name == "text")
    *out = ValueType::kString;
  else if (name == "timestamp") *out = ValueType::kTimestamp;
  else return false;
  return true;
}

Decimal Decimal::FromDouble(double v) {
  return Decimal{static_cast<int64_t>(std::llround(v * kScale))};
}

Status Decimal::FromString(std::string_view s, Decimal* out) {
  if (s.empty()) return Status::InvalidArgument("empty decimal literal");
  bool neg = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  int64_t int_part = 0;
  int64_t frac_part = 0;
  int frac_digits = 0;
  bool saw_digit = false;
  bool in_frac = false;
  for (; i < s.size(); i++) {
    char c = s[i];
    if (c == '.') {
      if (in_frac) return Status::InvalidArgument("malformed decimal");
      in_frac = true;
      continue;
    }
    if (c < '0' || c > '9') return Status::InvalidArgument("malformed decimal");
    saw_digit = true;
    if (!in_frac) {
      int_part = int_part * 10 + (c - '0');
    } else if (frac_digits < 4) {
      frac_part = frac_part * 10 + (c - '0');
      frac_digits++;
    }
    // Digits past the 4th fractional place are truncated.
  }
  if (!saw_digit) return Status::InvalidArgument("malformed decimal");
  while (frac_digits < 4) {
    frac_part *= 10;
    frac_digits++;
  }
  int64_t scaled = int_part * kScale + frac_part;
  out->scaled = neg ? -scaled : scaled;
  return Status::OK();
}

std::string Decimal::ToString() const {
  int64_t v = scaled;
  std::string sign;
  if (v < 0) {
    sign = "-";
    v = -v;
  }
  int64_t int_part = v / kScale;
  int64_t frac = v % kScale;
  std::string out = sign + std::to_string(int_part);
  if (frac != 0) {
    char buf[8];
    snprintf(buf, sizeof(buf), ".%04lld", static_cast<long long>(frac));
    std::string f(buf);
    while (f.back() == '0') f.pop_back();
    out += f;
  }
  return out;
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

double Value::NumericValue() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kDecimal:
      return AsDecimal().ToDouble();
    default:
      return 0.0;
  }
}

Status Value::Compare(const Value& other, int* result) const {
  ValueType a = type(), b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    *result = (a == b) ? 0 : (a == ValueType::kNull ? -1 : 1);
    return Status::OK();
  }
  if (a == b || (IsNumeric() && other.IsNumeric())) {
    *result = CompareTotal(other);
    return Status::OK();
  }
  return Status::InvalidArgument(std::string("cannot compare ") +
                                 ValueTypeName(a) + " with " +
                                 ValueTypeName(b));
}

int Value::CompareTotal(const Value& other) const {
  ValueType a = type(), b = other.type();
  if (IsNumeric() && other.IsNumeric()) {
    // Exact path for identical representations; magnitude path otherwise.
    if (a == b) {
      switch (a) {
        case ValueType::kInt64: {
          int64_t x = AsInt(), y = other.AsInt();
          return x < y ? -1 : (x > y ? 1 : 0);
        }
        case ValueType::kDecimal: {
          int64_t x = AsDecimal().scaled, y = other.AsDecimal().scaled;
          return x < y ? -1 : (x > y ? 1 : 0);
        }
        default: {
          double x = AsDouble(), y = other.AsDouble();
          return x < y ? -1 : (x > y ? 1 : 0);
        }
      }
    }
    double x = NumericValue(), y = other.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) return a < b ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return AsBool() == other.AsBool() ? 0 : (AsBool() ? 1 : -1);
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
    case ValueType::kTimestamp: {
      Timestamp x = AsTimestamp(), y = other.AsTimestamp();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numeric handled above
  }
}

void Value::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      dst->push_back(AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      PutVarSigned64(dst, AsInt());
      break;
    case ValueType::kDouble:
      PutFixed64(dst, std::bit_cast<uint64_t>(AsDouble()));
      break;
    case ValueType::kDecimal:
      PutVarSigned64(dst, AsDecimal().scaled);
      break;
    case ValueType::kString:
      PutLengthPrefixed(dst, AsString());
      break;
    case ValueType::kTimestamp:
      PutVarSigned64(dst, AsTimestamp());
      break;
  }
}

bool Value::DecodeFrom(Slice* input, Value* out) {
  if (input->empty()) return false;
  auto t = static_cast<ValueType>((*input)[0]);
  input->remove_prefix(1);
  switch (t) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kBool: {
      if (input->empty()) return false;
      bool b = (*input)[0] != 0;
      input->remove_prefix(1);
      *out = Value::Bool(b);
      return true;
    }
    case ValueType::kInt64: {
      int64_t v;
      if (!GetVarSigned64(input, &v)) return false;
      *out = Value::Int(v);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t u;
      if (!GetFixed64(input, &u)) return false;
      *out = Value::Double(std::bit_cast<double>(u));
      return true;
    }
    case ValueType::kDecimal: {
      int64_t v;
      if (!GetVarSigned64(input, &v)) return false;
      *out = Value::Dec(Decimal{v});
      return true;
    }
    case ValueType::kString: {
      Slice s;
      if (!GetLengthPrefixed(input, &s)) return false;
      *out = Value::Str(s.ToString());
      return true;
    }
    case ValueType::kTimestamp: {
      int64_t v;
      if (!GetVarSigned64(input, &v)) return false;
      *out = Value::Ts(v);
      return true;
    }
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kDecimal:
      return AsDecimal().ToString();
    case ValueType::kString:
      return AsString();
    case ValueType::kTimestamp:
      return std::to_string(AsTimestamp());
  }
  return "?";
}

size_t Value::ByteSize() const {
  size_t base = sizeof(Value);
  if (type() == ValueType::kString) base += AsString().capacity();
  return base;
}

size_t Value::HashCode() const {
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return AsBool() ? 1 : 2;
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
    case ValueType::kTimestamp:
      return std::hash<int64_t>{}(AsTimestamp());
    default: {
      // Hash numerics by magnitude so Int(5), Dec(5), Double(5) collide
      // (they compare equal, so they must hash equal).
      double d = NumericValue();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
  }
}

}  // namespace sebdb
