// Typed attribute values for on-chain tuples and off-chain rows.
// Supported types mirror the paper ("string, various flavors of numbers"):
// bool, int64, double, fixed-point decimal, string, timestamp.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/clock.h"
#include "common/slice.h"
#include "common/status.h"

namespace sebdb {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kDecimal = 4,
  kString = 5,
  kTimestamp = 6,
};

/// Name used in CREATE statements ("int", "decimal", ...).
const char* ValueTypeName(ValueType t);
/// Parses a type name; returns false if unknown.
bool ParseValueType(std::string_view name, ValueType* out);

/// Fixed-point decimal with 4 fractional digits, stored as a scaled int64.
/// Chosen over binary floating point so monetary amounts compare exactly.
struct Decimal {
  static constexpr int64_t kScale = 10000;  // 10^4
  int64_t scaled = 0;

  static Decimal FromInt(int64_t v) { return Decimal{v * kScale}; }
  static Decimal FromDouble(double v);
  /// Parses "[-]digits[.digits]" with up to 4 fractional digits.
  static Status FromString(std::string_view s, Decimal* out);

  double ToDouble() const { return static_cast<double>(scaled) / kScale; }
  std::string ToString() const;

  bool operator==(const Decimal&) const = default;
  auto operator<=>(const Decimal&) const = default;
};

/// A dynamically-typed value. Ordering between two numeric values of
/// different types compares their numeric magnitude; any other cross-type
/// comparison is an error surfaced by Value::Compare.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value Dec(Decimal d) { return Value(Repr(d)); }
  static Value Str(std::string s) { return Value(Repr(std::move(s))); }
  static Value Ts(Timestamp t) { return Value(Repr(TsRepr{t})); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool IsNumeric() const {
    ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble ||
           t == ValueType::kDecimal;
  }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  Decimal AsDecimal() const { return std::get<Decimal>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  Timestamp AsTimestamp() const { return std::get<TsRepr>(v_).micros; }

  /// Numeric magnitude of any numeric value (int promoted, decimal unscaled).
  double NumericValue() const;

  /// Three-way comparison. Returns InvalidArgument for incomparable types;
  /// NULL compares equal to NULL and less than everything else.
  Status Compare(const Value& other, int* result) const;

  /// Comparison for index keys: never fails; falls back to type-then-value
  /// ordering for heterogenous keys. Consistent with Compare when Compare
  /// succeeds.
  int CompareTotal(const Value& other) const;

  bool operator==(const Value& other) const {
    return CompareTotal(other) == 0;
  }
  bool operator<(const Value& other) const {
    return CompareTotal(other) < 0;
  }

  /// Binary self-describing encoding (1 type byte + payload).
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, Value* out);

  /// Rendering used by result printers and EXPLAIN.
  std::string ToString() const;

  /// Approximate in-memory footprint, used for cache charging.
  size_t ByteSize() const;

  /// Hash suitable for hash joins (equal values hash equal across numeric
  /// representations of integral magnitude).
  size_t HashCode() const;

 private:
  struct TsRepr {
    Timestamp micros;
    bool operator==(const TsRepr&) const = default;
    auto operator<=>(const TsRepr&) const = default;
  };
  using Repr = std::variant<std::monostate, bool, int64_t, double, Decimal,
                            std::string, TsRepr>;
  explicit Value(Repr r) : v_(std::move(r)) {}

  Repr v_;
};

}  // namespace sebdb
