// Kafka-style ordering service (substitutes Apache Kafka 1.0.0 in the
// paper's write benchmark). One participant acts as the broker: it sequences
// submitted transactions in a single topic partition and cuts blocks when
// the batch reaches max_batch_txns or the batch timeout fires — the same
// cut-by-size-or-timeout dynamics that shape Fig. 7's latency curve. Ordered
// batches are broadcast to every participant and delivered in sequence.
// Crash-fault-tolerant only (like Fabric's Kafka orderer), no BFT.
#pragma once

#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/admission.h"
#include "common/thread_annotations.h"
#include "consensus/engine.h"
#include "network/network.h"

namespace sebdb {

class KafkaOrderer : public ConsensusEngine {
 public:
  KafkaOrderer(std::string node_id, std::string broker_id,
               std::vector<std::string> participants, Network* network,
               ConsensusOptions options, BatchCommitFn commit_fn);
  ~KafkaOrderer() override;

  std::string name() const override { return "kafka"; }
  Status Start() override;
  void Stop() override;
  Status Submit(Transaction txn, std::function<void(Status)> done) override;
  uint64_t committed_batches() const override;
  MempoolStats mempool_stats() const override;
  void OnExternalCommit(const std::vector<Transaction>& txns) override;

  /// Routes "kafka.*" messages; wire into the node's network handler.
  void HandleMessage(const Message& message);

  bool is_broker() const { return node_id_ == broker_id_; }

 private:
  void OnSubmit(const Message& message);
  void OnDeliver(const Message& message);
  void OnNack(const Message& message);
  void OnDupAck(const Message& message);
  void CutBatchLocked() REQUIRES(mu_);  // pending -> batch, broadcast
  void CutterLoop();  // broker: timeout-based cutting
  /// Applies buffered batches in sequence order; called with mu_ held,
  /// releases it around the commit hook and completion callbacks.
  void DeliverReady() REQUIRES(mu_);

  const std::string node_id_;
  const std::string broker_id_;
  const std::vector<std::string> participants_;
  Network* network_;
  const ConsensusOptions options_;
  BatchCommitFn commit_fn_;
  // Submit-side controller: charges txns this node originated, released
  // when they deliver (or are nacked by the broker). Internally
  // synchronized, safe to call under mu_.
  AdmissionController admission_;
  // Broker-side controller: bounds the pending queue; a shed submission is
  // nacked back to the origin with a retry hint (backpressure propagation).
  AdmissionController broker_admission_;

  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread cutter_;
  CondVar cutter_cv_;

  // Broker state.
  std::vector<Transaction> pending_ GUARDED_BY(mu_);
  int64_t first_pending_micros_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  // Keys the broker already sequenced: dedups resubmissions (a client that
  // timed out and resubmitted an already-ordered txn must not double-order
  // it).
  std::unordered_set<std::string> sequenced_keys_ GUARDED_BY(mu_);

  // Every participant: in-order delivery.
  std::map<uint64_t, std::vector<Transaction>> reorder_buffer_
      GUARDED_BY(mu_);
  uint64_t next_deliver_seq_ GUARDED_BY(mu_) = 0;
  uint64_t committed_batches_ GUARDED_BY(mu_) = 0;
  bool delivering_ GUARDED_BY(mu_) = false;

  // Local completion callbacks, keyed by transaction content hash.
  std::unordered_map<std::string, std::function<void(Status)>> done_
      GUARDED_BY(mu_);
};

}  // namespace sebdb
