// Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI'99) — the BFT
// option of SEBDB's pluggable consensus layer. n = 3f+1 replicas; the view's
// primary batches client requests (same size/timeout cutting as the Kafka
// orderer) and drives the three-phase protocol:
//   pre-prepare (primary)  ->  prepare (all, 2f matching to become prepared)
//   ->  commit (all, 2f+1 matching to become committed-local).
// Batches are delivered in sequence order. A progress timer triggers view
// changes: replicas that hold undelivered requests and see no progress
// broadcast VIEW-CHANGE; on 2f+1 the new primary installs the view and
// re-proposes outstanding requests (replicas re-send pending requests to the
// new primary).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/admission.h"
#include "common/sha256.h"
#include "common/thread_annotations.h"
#include "consensus/engine.h"
#include "network/network.h"

namespace sebdb {

struct PbftOptions {
  /// No-progress interval after which a replica suspects the primary.
  int64_t view_timeout_millis = 1000;
  /// Pending requests older than this are re-sent to the current primary
  /// (client retransmission in the PBFT paper): a request whose original
  /// broadcast was lost — dropped by a partition or shed by an overloaded
  /// primary — still reaches a primary eventually.
  int64_t request_retry_millis = 500;
};

class PbftEngine : public ConsensusEngine {
 public:
  /// `participants` is the agreed replica list; its order defines replica
  /// numbering and the view's primary: primary(view) = participants[view % n].
  PbftEngine(std::string node_id, std::vector<std::string> participants,
             Network* network, ConsensusOptions options,
             BatchCommitFn commit_fn, PbftOptions pbft_options = PbftOptions());
  ~PbftEngine() override;

  std::string name() const override { return "pbft"; }
  Status Start() override;
  void Stop() override;
  Status Submit(Transaction txn, std::function<void(Status)> done) override;
  uint64_t committed_batches() const override;
  MempoolStats mempool_stats() const override;
  void OnExternalCommit(const std::vector<Transaction>& txns) override;

  void HandleMessage(const Message& message);

  uint64_t view() const;
  bool is_primary() const;
  int max_faulty() const { return f_; }

 private:
  struct SlotState {
    std::string batch_payload;  // encoded batch (set by pre-prepare)
    Hash256 digest;
    bool preprepared = false;
    std::set<std::string> prepares;  // replicas that sent matching PREPARE
    std::set<std::string> commits;   // replicas that sent matching COMMIT
    bool sent_commit = false;
    bool delivered = false;
  };

  std::string PrimaryOf(uint64_t view) const {
    return participants_[view % participants_.size()];
  }

  void OnRequest(const Message& message);
  void AddToBatchLocked(Transaction txn) REQUIRES(mu_);
  void OnPrePrepare(const Message& message);
  void OnPrepare(const Message& message);
  void OnCommit(const Message& message);
  void OnViewChange(const Message& message);
  void OnNewView(const Message& message);

  void CutBatchLocked() REQUIRES(mu_);
  void MaybePrepareLocked(uint64_t seq) REQUIRES(mu_);
  void MaybeCommitLocked(uint64_t seq) REQUIRES(mu_);
  /// Delivers committed slots in order; releases mu_ around the commit
  /// hook and completion callbacks.
  void DeliverReadyLocked() REQUIRES(mu_);
  void TimerLoop();
  void BroadcastToReplicas(const std::string& type,
                           const std::string& payload);
  void StartViewChangeLocked(uint64_t new_view) REQUIRES(mu_);
  void EnterViewLocked(uint64_t new_view) REQUIRES(mu_);

  const std::string node_id_;
  const std::vector<std::string> participants_;
  Network* network_;
  const ConsensusOptions options_;
  BatchCommitFn commit_fn_;
  const PbftOptions pbft_options_;
  const int f_;
  // Bounds pending_requests_ (every replica holds undelivered requests, so
  // every replica admission-checks them). Internally synchronized, safe to
  // call under mu_.
  AdmissionController admission_;

  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread timer_;
  CondVar timer_cv_;

  uint64_t view_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;  // primary: next sequence to assign
  uint64_t next_deliver_seq_ GUARDED_BY(mu_) = 0;
  uint64_t committed_batches_ GUARDED_BY(mu_) = 0;
  bool delivering_ GUARDED_BY(mu_) = false;
  std::map<uint64_t, SlotState> slots_ GUARDED_BY(mu_);  // keyed by seq

  // Primary batching.
  std::vector<Transaction> batch_pending_ GUARDED_BY(mu_);
  int64_t first_pending_micros_ GUARDED_BY(mu_) = 0;

  // Requests this node accepted from clients and not yet seen committed.
  struct PendingRequest {
    Transaction txn;
    std::function<void(Status)> done;
    int64_t last_sent_micros = 0;  // retransmission timer
  };
  std::unordered_map<std::string, PendingRequest> pending_requests_
      GUARDED_BY(mu_);
  // Keys ever batched by this node as primary (primary-side dedup), and keys
  // of committed transactions (guards against re-admitting stale requests).
  std::unordered_set<std::string> batched_keys_ GUARDED_BY(mu_);
  std::unordered_set<std::string> committed_keys_ GUARDED_BY(mu_);
  int64_t last_progress_micros_ GUARDED_BY(mu_) = 0;

  // View change bookkeeping: view -> replicas voting for it.
  std::map<uint64_t, std::set<std::string>> view_votes_ GUARDED_BY(mu_);
  bool in_view_change_ GUARDED_BY(mu_) = false;
  uint64_t highest_reported_seq_ GUARDED_BY(mu_) = 0;  // from VIEW-CHANGE

  // Committed batch payloads served to lagging replicas (state transfer).
  std::map<uint64_t, std::string> delivered_payloads_ GUARDED_BY(mu_);
};

}  // namespace sebdb
