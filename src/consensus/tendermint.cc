#include "consensus/tendermint.h"

#include <chrono>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

namespace {

constexpr char kTxType[] = "tm.tx";
constexpr char kProposalType[] = "tm.proposal";
constexpr char kPrevoteType[] = "tm.prevote";
constexpr char kPrecommitType[] = "tm.precommit";

int64_t NowMicros() { return SteadyNowMicros(); }

std::string TxnKey(const Transaction& txn) { return txn.Hash().ToHex(); }

bool GetHash(Slice* input, Hash256* out) {
  if (input->size() < 32) return false;
  memcpy(out->bytes.data(), input->data(), 32);
  input->remove_prefix(32);
  return true;
}

}  // namespace

TendermintEngine::TendermintEngine(std::string node_id,
                                   std::vector<std::string> participants,
                                   Network* network,
                                   ConsensusOptions options,
                                   BatchCommitFn commit_fn,
                                   TendermintOptions tm_options)
    : node_id_(std::move(node_id)),
      participants_(std::move(participants)),
      network_(network),
      options_(std::move(options)),
      commit_fn_(std::move(commit_fn)),
      tm_options_(tm_options),
      admission_(options_.admission) {
  height_ = options_.start_sequence;
}

TendermintEngine::~TendermintEngine() { Stop(); }

Status TendermintEngine::Start() {
  MutexLock lock(&mu_);
  if (running_) return Status::Busy("engine already started");
  running_ = true;
  round_started_micros_ = NowMicros();
  timer_ = std::thread([this] { TimerLoop(); });
  return Status::OK();
}

void TendermintEngine::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
    timer_cv_.NotifyAll();
  }
  if (timer_.joinable()) timer_.join();
  std::unordered_map<std::string, std::function<void(Status)>> pending;
  {
    MutexLock lock(&mu_);
    pending.swap(done_);
  }
  for (auto& [key, done] : pending) {
    if (done) done(Status::Aborted("consensus engine stopped"));
  }
  admission_.Clear();
}

uint64_t TendermintEngine::height() const {
  MutexLock lock(&mu_);
  return height_;
}

void TendermintEngine::SerialWork(size_t txn_count) const {
  // Spin for txn_count * serial_txn_cost_micros, modeling the serial
  // CheckTx/DeliverTx pipeline.
  if (tm_options_.serial_txn_cost_micros <= 0 || txn_count == 0) return;
  int64_t until = NowMicros() + static_cast<int64_t>(txn_count) *
                                    tm_options_.serial_txn_cost_micros;
  while (NowMicros() < until) {
    // busy wait, like a single-threaded ABCI app
  }
}

void TendermintEngine::BroadcastToReplicas(const std::string& type,
                                           const std::string& payload) {
  for (const auto& replica : participants_) {
    if (replica == node_id_) continue;
    network_->Send(Message{type, node_id_, replica, payload});
  }
}

Status TendermintEngine::Submit(Transaction txn,
                                std::function<void(Status)> done) {
  if (options_.validator) {
    Status s = options_.validator(txn);
    if (!s.ok()) {
      if (done) done(s);
      return s;
    }
  }
  // Serial CheckTx before mempool admission.
  SerialWork(1);
  std::string key = TxnKey(txn);
  std::string payload;
  txn.EncodeTo(&payload);
  Status admit = admission_.Admit(key, txn.sender(), payload.size());
  if (!admit.ok()) {
    if (done) done(admit);
    return admit;
  }
  {
    MutexLock lock(&mu_);
    if (!running_) {
      admission_.Release(key);
      return Status::Aborted("engine not running");
    }
    if (done) done_[key] = std::move(done);
    if (!mempool_keys_.contains(key)) {
      if (mempool_.empty()) first_mempool_micros_ = NowMicros();
      mempool_keys_.insert(key);
      mempool_.push_back(std::move(txn));  // admitted: charged above
    }
    MaybeProposeLocked();
  }
  BroadcastToReplicas(kTxType, payload);
  return Status::OK();
}

void TendermintEngine::HandleMessage(const Message& message) {
  if (message.type == kTxType) OnTx(message);
  else if (message.type == kProposalType) OnProposal(message);
  else if (message.type == kPrevoteType) OnPrevote(message);
  else if (message.type == kPrecommitType) OnPrecommit(message);
}

void TendermintEngine::OnTx(const Message& message) {
  Transaction txn;
  Slice input(message.payload);
  if (!Transaction::DecodeFrom(&input, &txn).ok()) return;
  // Serial CheckTx on gossiped transactions too.
  SerialWork(1);
  std::string key = TxnKey(txn);
  // Shedding a gossiped txn is safe: it stays in the origin's mempool and
  // commits through the origin's proposals.
  if (!admission_.Admit(key, txn.sender(), message.payload.size()).ok()) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_) {
    admission_.Release(key);
    return;
  }
  if (mempool_keys_.contains(key)) return;
  if (mempool_.empty()) first_mempool_micros_ = NowMicros();
  mempool_keys_.insert(key);
  mempool_.push_back(std::move(txn));  // admitted: charged above
  MaybeProposeLocked();
}

void TendermintEngine::MaybeProposeLocked() {
  if (ProposerOf(height_, round_) != node_id_ ||
      round_state_.have_proposal || mempool_.empty()) {
    return;
  }
  bool full = mempool_.size() >= options_.max_batch_txns;
  bool timed_out = NowMicros() - first_mempool_micros_ >=
                   options_.batch_timeout_millis * 1000;
  if (!full && !timed_out) return;

  // Copy (not pop) the batch: the transactions stay in the mempool until a
  // commit sweeps them, so abandoning this round cannot lose them.
  std::vector<Transaction> batch;
  size_t take = std::min<size_t>(options_.max_batch_txns, mempool_.size());
  batch.assign(mempool_.begin(),
               mempool_.begin() + static_cast<ptrdiff_t>(take));

  std::string batch_payload;
  EncodeBatch(batch, &batch_payload);
  round_state_.proposal_payload = batch_payload;
  round_state_.digest = BatchDigest(batch_payload);
  round_state_.have_proposal = true;

  std::string payload;
  PutVarint64(&payload, height_);
  PutVarint32(&payload, round_);
  PutLengthPrefixed(&payload, batch_payload);
  BroadcastToReplicas(kProposalType, payload);

  // Proposer prevotes its own proposal.
  round_state_.sent_prevote = true;
  round_state_.prevotes.insert(node_id_);
  std::string vote;
  PutVarint64(&vote, height_);
  PutVarint32(&vote, round_);
  vote.append(reinterpret_cast<const char*>(round_state_.digest.bytes.data()),
              32);
  BroadcastToReplicas(kPrevoteType, vote);
  MaybePrecommitLocked();
}

void TendermintEngine::OnProposal(const Message& message) {
  Slice input(message.payload);
  uint64_t height;
  uint32_t round;
  Slice batch_payload;
  if (!GetVarint64(&input, &height) || !GetVarint32(&input, &round) ||
      !GetLengthPrefixed(&input, &batch_payload)) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_ || height != height_ || round < round_) return;
  if (message.from != ProposerOf(height_, round)) return;
  if (round > round_) {
    // Round catch-up: a valid proposal for a later round of this height
    // means the proposer already timed out the rounds we are still in.
    // Jump forward instead of dropping it — otherwise nodes whose round
    // timers drifted apart drop every proposal and the height stalls.
    round_ = round;
    round_state_ = RoundState();
    round_started_micros_ = NowMicros();
  }
  if (round_state_.have_proposal) return;
  round_state_.proposal_payload = batch_payload.ToString();
  round_state_.digest = BatchDigest(round_state_.proposal_payload);
  round_state_.have_proposal = true;

  if (!round_state_.sent_prevote) {
    round_state_.sent_prevote = true;
    round_state_.prevotes.insert(node_id_);
    std::string vote;
    PutVarint64(&vote, height_);
    PutVarint32(&vote, round_);
    vote.append(
        reinterpret_cast<const char*>(round_state_.digest.bytes.data()), 32);
    BroadcastToReplicas(kPrevoteType, vote);
  }
  MaybePrecommitLocked();
}

void TendermintEngine::OnPrevote(const Message& message) {
  Slice input(message.payload);
  uint64_t height;
  uint32_t round;
  Hash256 digest;
  if (!GetVarint64(&input, &height) || !GetVarint32(&input, &round) ||
      !GetHash(&input, &digest)) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_ || height != height_ || round != round_) return;
  if (round_state_.have_proposal && digest != round_state_.digest) return;
  round_state_.prevotes.insert(message.from);
  MaybePrecommitLocked();
}

void TendermintEngine::MaybePrecommitLocked() {
  if (!round_state_.have_proposal || round_state_.sent_precommit) return;
  if (static_cast<int>(round_state_.prevotes.size()) < QuorumSize()) return;
  round_state_.sent_precommit = true;
  round_state_.precommits.insert(node_id_);
  std::string vote;
  PutVarint64(&vote, height_);
  PutVarint32(&vote, round_);
  vote.append(reinterpret_cast<const char*>(round_state_.digest.bytes.data()),
              32);
  BroadcastToReplicas(kPrecommitType, vote);
  MaybeCommitLocked();
}

void TendermintEngine::OnPrecommit(const Message& message) {
  Slice input(message.payload);
  uint64_t height;
  uint32_t round;
  Hash256 digest;
  if (!GetVarint64(&input, &height) || !GetVarint32(&input, &round) ||
      !GetHash(&input, &digest)) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_ || height != height_ || round != round_) return;
  if (round_state_.have_proposal && digest != round_state_.digest) return;
  round_state_.precommits.insert(message.from);
  MaybeCommitLocked();
}

void TendermintEngine::MaybeCommitLocked() {
  if (!round_state_.have_proposal || committing_) return;
  if (static_cast<int>(round_state_.precommits.size()) < QuorumSize()) return;
  committing_ = true;

  std::vector<Transaction> batch;
  Slice input(round_state_.proposal_payload);
  if (!DecodeBatch(&input, &batch).ok()) batch.clear();

  uint64_t seq = height_;
  height_++;
  round_ = 0;
  round_state_ = RoundState();
  round_started_micros_ = NowMicros();
  committed_batches_++;

  // Remove committed transactions from the mempool and collect callbacks.
  std::vector<std::function<void(Status)>> to_fire;
  for (const auto& txn : batch) {
    std::string key = TxnKey(txn);
    admission_.Release(key);
    mempool_keys_.erase(key);
    auto done_it = done_.find(key);
    if (done_it != done_.end()) {
      if (done_it->second) to_fire.push_back(std::move(done_it->second));
      done_.erase(done_it);
    }
  }
  for (auto it = mempool_.begin(); it != mempool_.end();) {
    if (!mempool_keys_.contains(TxnKey(*it))) it = mempool_.erase(it);
    else ++it;
  }
  if (!mempool_.empty()) first_mempool_micros_ = NowMicros();

  mu_.Unlock();
  // Deliver hands the ordered batch to the application in one call; the
  // execute stage lives behind commit_fn_ (ChainManager's order-then-execute
  // scheduler, DESIGN.md §13), which applies non-conflicting transactions
  // concurrently — so no per-txn serial DeliverTx spin here anymore.
  // CheckTx (Submit) keeps its serial cost model.
  if (commit_fn_) commit_fn_(seq, std::move(batch));
  for (auto& done : to_fire) done(Status::OK());
  mu_.Lock();
  committing_ = false;
  MaybeProposeLocked();
}

void TendermintEngine::TimerLoop() {
  MutexLock lock(&mu_);
  while (running_) {
    timer_cv_.WaitFor(mu_, std::chrono::milliseconds(50));
    if (!running_) return;
    MaybeProposeLocked();
    // Round timeout: rotate the proposer within the same height. A round
    // that *has* a proposal but failed to commit within the timeout is
    // rotated too — its votes are lost, never arriving (the batch itself is
    // safe: proposed transactions stay in the mempool until commit).
    if (!committing_ && (round_state_.have_proposal || !mempool_.empty()) &&
        NowMicros() - round_started_micros_ >
            tm_options_.propose_timeout_millis * 1000) {
      round_++;
      round_state_ = RoundState();
      round_started_micros_ = NowMicros();
      MaybeProposeLocked();
    }
  }
}

uint64_t TendermintEngine::committed_batches() const {
  MutexLock lock(&mu_);
  return committed_batches_;
}

MempoolStats TendermintEngine::mempool_stats() const {
  MempoolStats out;
  out.admission = admission_.stats();
  out.bytes = out.admission.cur_bytes;
  MutexLock lock(&mu_);
  out.depth = mempool_.size();
  return out;
}

void TendermintEngine::OnExternalCommit(const std::vector<Transaction>& txns) {
  std::vector<std::function<void(Status)>> to_fire;
  {
    MutexLock lock(&mu_);
    bool swept = false;
    for (const auto& txn : txns) {
      std::string key = TxnKey(txn);
      admission_.Release(key);
      swept |= mempool_keys_.erase(key) > 0;
      auto done_it = done_.find(key);
      if (done_it != done_.end()) {
        if (done_it->second) to_fire.push_back(std::move(done_it->second));
        done_.erase(done_it);
      }
    }
    if (swept) {
      for (auto it = mempool_.begin(); it != mempool_.end();) {
        if (!mempool_keys_.contains(TxnKey(*it))) it = mempool_.erase(it);
        else ++it;
      }
      if (!mempool_.empty()) first_mempool_micros_ = NowMicros();
    }
  }
  for (auto& done : to_fire) done(Status::OK());
}

}  // namespace sebdb
