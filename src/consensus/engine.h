// Pluggable consensus (paper §III-B: "SEBDB uses plug-in pattern, allowing
// users to select different consensus protocol"; the evaluation runs KAFKA
// and Tendermint, and PBFT is supported). An engine ingests client
// transactions, agrees on an order, cuts batches (by size or timeout — the
// write benchmark sets 200 transactions / 200 ms), and delivers committed
// batches to the node in strict sequence order. The node turns each batch
// into a block.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/admission.h"
#include "common/status.h"
#include "types/transaction.h"

namespace sebdb {

struct ConsensusOptions {
  /// Cut a batch once it holds this many transactions...
  uint32_t max_batch_txns = 200;
  /// ...or once this much real time elapsed since the first queued txn.
  int64_t batch_timeout_millis = 200;
  /// Per-transaction admission check (signature verification etc.).
  std::function<Status(const Transaction&)> validator;
  /// First batch sequence this engine assigns/delivers. A restarted node
  /// passes its recovered chain height - 1 so new batches extend the chain
  /// instead of colliding with already-applied heights (which the chain
  /// manager would silently treat as duplicates).
  uint64_t start_sequence = 0;
  /// Caps on the engine's ingress queue (mempool / orderer pending queue).
  /// Every engine charges transactions against an AdmissionController built
  /// from these options before enqueueing them.
  AdmissionOptions admission;
};

/// Called on each node, in strictly increasing `seq` (0, 1, 2, ...), with the
/// agreed transaction batch. The node packages the batch into block `seq`+1
/// (block 0 being the genesis block).
using BatchCommitFn =
    std::function<void(uint64_t seq, std::vector<Transaction> txns)>;

/// Snapshot of an engine's ingress queue, surfaced through SebdbNode stats
/// next to CacheStats/RecoveryStats.
struct MempoolStats {
  uint64_t depth = 0;  // transactions queued awaiting ordering
  uint64_t bytes = 0;  // encoded bytes charged against the admission cap
  AdmissionStats admission;
};

class ConsensusEngine {
 public:
  virtual ~ConsensusEngine() = default;

  virtual std::string name() const = 0;
  virtual Status Start() = 0;
  virtual void Stop() = 0;

  /// Submits a client transaction. `done` fires on this node once the
  /// transaction is committed (or with an error) — the response the write
  /// benchmark's closed-loop clients wait for.
  virtual Status Submit(Transaction txn, std::function<void(Status)> done) = 0;

  /// Batches delivered so far on this node.
  virtual uint64_t committed_batches() const = 0;

  /// Ingress-queue and admission counters for this node.
  virtual MempoolStats mempool_stats() const { return MempoolStats(); }

  /// Notifies the engine that `txns` were committed outside its delivery
  /// path (the node applied a block learned through gossip anti-entropy,
  /// e.g. after a healed partition). The engine resolves matching pending
  /// submissions (fires their done callbacks with OK) and releases their
  /// admission charges, so clients on a partitioned-then-healed node do not
  /// hang on transactions that committed while delivery messages were lost.
  virtual void OnExternalCommit(const std::vector<Transaction>& /*txns*/) {}
};

/// Wire helpers shared by the engines.
void EncodeBatch(const std::vector<Transaction>& txns, std::string* dst);
Status DecodeBatch(Slice* input, std::vector<Transaction>* out);
/// Content digest used by PBFT/Tendermint votes.
Hash256 BatchDigest(const std::string& encoded_batch);

}  // namespace sebdb
