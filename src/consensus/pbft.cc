#include "consensus/pbft.h"

#include <chrono>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

namespace {

constexpr char kRequestType[] = "pbft.request";
constexpr char kPrePrepareType[] = "pbft.preprepare";
constexpr char kPrepareType[] = "pbft.prepare";
constexpr char kCommitType[] = "pbft.commit";
constexpr char kViewChangeType[] = "pbft.viewchange";
constexpr char kNewViewType[] = "pbft.newview";
constexpr char kFetchType[] = "pbft.fetch";
constexpr char kFetchedType[] = "pbft.fetched";

int64_t NowMicros() { return SteadyNowMicros(); }

std::string TxnKey(const Transaction& txn) { return txn.Hash().ToHex(); }

bool GetHash(Slice* input, Hash256* out) {
  if (input->size() < 32) return false;
  memcpy(out->bytes.data(), input->data(), 32);
  input->remove_prefix(32);
  return true;
}

}  // namespace

PbftEngine::PbftEngine(std::string node_id,
                       std::vector<std::string> participants,
                       Network* network, ConsensusOptions options,
                       BatchCommitFn commit_fn, PbftOptions pbft_options)
    : node_id_(std::move(node_id)),
      participants_(std::move(participants)),
      network_(network),
      options_(std::move(options)),
      commit_fn_(std::move(commit_fn)),
      pbft_options_(pbft_options),
      f_(static_cast<int>((participants_.size() - 1) / 3)),
      admission_(options_.admission) {
  next_seq_ = options_.start_sequence;
  next_deliver_seq_ = options_.start_sequence;
}

PbftEngine::~PbftEngine() { Stop(); }

Status PbftEngine::Start() {
  MutexLock lock(&mu_);
  if (running_) return Status::Busy("engine already started");
  running_ = true;
  last_progress_micros_ = NowMicros();
  timer_ = std::thread([this] { TimerLoop(); });
  return Status::OK();
}

void PbftEngine::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
    timer_cv_.NotifyAll();
  }
  if (timer_.joinable()) timer_.join();
  std::unordered_map<std::string, PendingRequest> pending;
  {
    MutexLock lock(&mu_);
    pending.swap(pending_requests_);
  }
  for (auto& [key, request] : pending) {
    if (request.done) request.done(Status::Aborted("consensus engine stopped"));
  }
  admission_.Clear();
}

uint64_t PbftEngine::view() const {
  MutexLock lock(&mu_);
  return view_;
}

bool PbftEngine::is_primary() const {
  MutexLock lock(&mu_);
  return PrimaryOf(view_) == node_id_;
}

void PbftEngine::BroadcastToReplicas(const std::string& type,
                                     const std::string& payload) {
  for (const auto& replica : participants_) {
    if (replica == node_id_) continue;
    network_->Send(Message{type, node_id_, replica, payload});
  }
}

Status PbftEngine::Submit(Transaction txn, std::function<void(Status)> done) {
  if (options_.validator) {
    Status s = options_.validator(txn);
    if (!s.ok()) {
      if (done) done(s);
      return s;
    }
  }
  std::string payload;
  txn.EncodeTo(&payload);
  std::string key = TxnKey(txn);
  Status admit = admission_.Admit(key, txn.sender(), payload.size());
  if (!admit.ok()) {
    if (done) done(admit);
    return admit;
  }
  bool already_committed = false;
  {
    MutexLock lock(&mu_);
    if (!running_) {
      admission_.Release(key);
      return Status::Aborted("engine not running");
    }
    // Resubmission of an already-committed txn (a caller that timed out and
    // retried): ack immediately, it committed exactly once.
    if (committed_keys_.contains(key)) {
      admission_.Release(key);
      already_committed = true;
    } else {
      // Every replica learns about the request (so every honest replica
      // arms a progress timer and can demand a view change if the primary
      // stalls); only the origin holds the completion callback.
      pending_requests_[key] =
          PendingRequest{txn, std::move(done), NowMicros()};
      if (PrimaryOf(view_) == node_id_ && !in_view_change_) {
        AddToBatchLocked(std::move(txn));
      }
    }
  }
  if (already_committed) {
    if (done) done(Status::OK());
    return Status::OK();
  }
  BroadcastToReplicas(kRequestType, payload);
  return Status::OK();
}

void PbftEngine::AddToBatchLocked(Transaction txn) {
  std::string key = TxnKey(txn);
  if (batched_keys_.contains(key)) return;  // duplicate / re-sent request
  batched_keys_.insert(std::move(key));
  if (batch_pending_.empty()) first_pending_micros_ = NowMicros();
  // Every path here (Submit, OnRequest, view-change re-propose,
  // retransmission) admission-checked the txn when it entered
  // pending_requests_.
  batch_pending_.push_back(std::move(txn));  // admitted: charged on entry
  if (batch_pending_.size() >= options_.max_batch_txns) CutBatchLocked();
}

void PbftEngine::HandleMessage(const Message& message) {
  if (message.type == kRequestType) OnRequest(message);
  else if (message.type == kPrePrepareType) OnPrePrepare(message);
  else if (message.type == kPrepareType) OnPrepare(message);
  else if (message.type == kCommitType) OnCommit(message);
  else if (message.type == kViewChangeType) OnViewChange(message);
  else if (message.type == kNewViewType) OnNewView(message);
  else if (message.type == kFetchType) {
    // Serve committed batches for state transfer after a view change. A
    // production implementation ships a 2f+1 commit certificate with each
    // batch; within the simulation's crash-fault state-transfer scenario we
    // return the payload alone.
    Slice input(message.payload);
    uint64_t seq;
    if (!GetVarint64(&input, &seq)) return;
    std::string payload;
    {
      MutexLock lock(&mu_);
      auto it = delivered_payloads_.find(seq);
      if (it == delivered_payloads_.end()) return;
      PutVarint64(&payload, seq);
      PutLengthPrefixed(&payload, it->second);
    }
    network_->Send(Message{kFetchedType, node_id_, message.from, payload});
  } else if (message.type == kFetchedType) {
    Slice input(message.payload);
    uint64_t seq;
    Slice batch_payload;
    if (!GetVarint64(&input, &seq) ||
        !GetLengthPrefixed(&input, &batch_payload)) {
      return;
    }
    MutexLock lock(&mu_);
    SlotState& slot = slots_[seq];
    if (slot.delivered) return;
    slot.batch_payload = batch_payload.ToString();
    slot.digest = BatchDigest(slot.batch_payload);
    slot.preprepared = true;
    // Mark committed via fetch.
    slot.commits.clear();
    for (const auto& p : participants_) slot.commits.insert(p);
    DeliverReadyLocked();
  }
}

void PbftEngine::OnRequest(const Message& message) {
  Transaction txn;
  Slice input(message.payload);
  if (!Transaction::DecodeFrom(&input, &txn).ok()) return;
  MutexLock lock(&mu_);
  if (!running_) return;
  std::string key = TxnKey(txn);
  if (!pending_requests_.contains(key) && !committed_keys_.contains(key)) {
    // New request: admission-check before holding it. Shedding is silent —
    // the origin's retransmission timer re-sends it once load drains.
    Status admit =
        admission_.Admit(key, txn.sender(), message.payload.size());
    if (!admit.ok()) return;
    pending_requests_[key] = PendingRequest{txn, nullptr, NowMicros()};
  }
  if (PrimaryOf(view_) == node_id_ && !in_view_change_ &&
      !committed_keys_.contains(key)) {
    AddToBatchLocked(std::move(txn));
  }
}

void PbftEngine::CutBatchLocked() {
  if (batch_pending_.empty()) return;
  std::vector<Transaction> batch;
  batch.swap(batch_pending_);
  uint64_t seq = next_seq_++;

  std::string batch_payload;
  EncodeBatch(batch, &batch_payload);

  SlotState& slot = slots_[seq];
  slot.batch_payload = batch_payload;
  slot.digest = BatchDigest(batch_payload);
  slot.preprepared = true;

  std::string payload;
  PutVarint64(&payload, view_);
  PutVarint64(&payload, seq);
  PutLengthPrefixed(&payload, batch_payload);
  BroadcastToReplicas(kPrePrepareType, payload);
  MaybePrepareLocked(seq);
}

void PbftEngine::OnPrePrepare(const Message& message) {
  Slice input(message.payload);
  uint64_t msg_view, seq;
  Slice batch_payload;
  if (!GetVarint64(&input, &msg_view) || !GetVarint64(&input, &seq) ||
      !GetLengthPrefixed(&input, &batch_payload)) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_ || msg_view != view_ || in_view_change_) return;
  if (message.from != PrimaryOf(view_)) return;  // only the primary proposes
  SlotState& slot = slots_[seq];
  if (slot.preprepared || slot.delivered) return;
  slot.batch_payload = batch_payload.ToString();
  slot.digest = BatchDigest(slot.batch_payload);
  slot.preprepared = true;
  if (seq >= next_seq_) next_seq_ = seq + 1;

  // Backup: broadcast PREPARE and count our own vote.
  std::string payload;
  PutVarint64(&payload, view_);
  PutVarint64(&payload, seq);
  payload.append(reinterpret_cast<const char*>(slot.digest.bytes.data()), 32);
  BroadcastToReplicas(kPrepareType, payload);
  slot.prepares.insert(node_id_);
  MaybePrepareLocked(seq);
}

void PbftEngine::OnPrepare(const Message& message) {
  Slice input(message.payload);
  uint64_t msg_view, seq;
  Hash256 digest;
  if (!GetVarint64(&input, &msg_view) || !GetVarint64(&input, &seq) ||
      !GetHash(&input, &digest)) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_ || msg_view != view_ || in_view_change_) return;
  SlotState& slot = slots_[seq];
  if (slot.preprepared && slot.digest != digest) return;  // equivocation
  slot.prepares.insert(message.from);
  MaybePrepareLocked(seq);
}

void PbftEngine::MaybePrepareLocked(uint64_t seq) {
  SlotState& slot = slots_[seq];
  if (!slot.preprepared || slot.sent_commit) return;
  // Prepared: pre-prepare plus 2f matching prepares.
  if (static_cast<int>(slot.prepares.size()) < 2 * f_) return;
  slot.sent_commit = true;
  std::string payload;
  PutVarint64(&payload, view_);
  PutVarint64(&payload, seq);
  payload.append(reinterpret_cast<const char*>(slot.digest.bytes.data()), 32);
  BroadcastToReplicas(kCommitType, payload);
  slot.commits.insert(node_id_);
  MaybeCommitLocked(seq);
}

void PbftEngine::OnCommit(const Message& message) {
  Slice input(message.payload);
  uint64_t msg_view, seq;
  Hash256 digest;
  if (!GetVarint64(&input, &msg_view) || !GetVarint64(&input, &seq) ||
      !GetHash(&input, &digest)) {
    return;
  }
  MutexLock lock(&mu_);
  if (!running_ || msg_view != view_ || in_view_change_) return;
  SlotState& slot = slots_[seq];
  if (slot.preprepared && slot.digest != digest) return;
  slot.commits.insert(message.from);
  MaybeCommitLocked(seq);
}

void PbftEngine::MaybeCommitLocked(uint64_t seq) {
  SlotState& slot = slots_[seq];
  if (!slot.preprepared || slot.delivered) return;
  if (static_cast<int>(slot.commits.size()) < 2 * f_ + 1) return;
  DeliverReadyLocked();
}

void PbftEngine::DeliverReadyLocked() {
  if (delivering_) return;
  delivering_ = true;
  while (true) {
    auto it = slots_.find(next_deliver_seq_);
    if (it == slots_.end()) break;
    SlotState& slot = it->second;
    if (!slot.preprepared || slot.delivered ||
        static_cast<int>(slot.commits.size()) < 2 * f_ + 1) {
      break;
    }
    slot.delivered = true;
    uint64_t seq = next_deliver_seq_++;
    committed_batches_++;
    last_progress_micros_ = NowMicros();
    delivered_payloads_[seq] = slot.batch_payload;

    std::vector<Transaction> batch;
    Slice input(slot.batch_payload);
    if (!DecodeBatch(&input, &batch).ok()) {
      batch.clear();
    }
    std::vector<std::function<void(Status)>> to_fire;
    for (const auto& txn : batch) {
      std::string key = TxnKey(txn);
      admission_.Release(key);
      committed_keys_.insert(key);
      batched_keys_.insert(key);
      auto done_it = pending_requests_.find(key);
      if (done_it != pending_requests_.end()) {
        if (done_it->second.done) to_fire.push_back(std::move(done_it->second.done));
        pending_requests_.erase(done_it);
      }
    }
    mu_.Unlock();
    // The ordered batch executes behind commit_fn_ through the shared
    // order-then-execute apply scheduler (DESIGN.md §13) — same code path
    // as gossip apply and startup replay.
    if (commit_fn_) commit_fn_(seq, std::move(batch));
    for (auto& done : to_fire) done(Status::OK());
    mu_.Lock();
  }
  delivering_ = false;
}

void PbftEngine::TimerLoop() {
  MutexLock lock(&mu_);
  while (running_) {
    timer_cv_.WaitFor(mu_, std::chrono::milliseconds(100));
    if (!running_) return;
    // Primary: cut a batch when the packaging timeout elapses.
    if (PrimaryOf(view_) == node_id_ && !in_view_change_ &&
        !batch_pending_.empty()) {
      int64_t deadline =
          first_pending_micros_ + options_.batch_timeout_millis * 1000;
      if (NowMicros() >= deadline) CutBatchLocked();
    }
    // Any replica: re-send stale pending requests to the current primary
    // (client retransmission). Covers requests whose original broadcast was
    // lost to a partition or shed by an overloaded primary.
    if (!in_view_change_ && pbft_options_.request_retry_millis > 0) {
      int64_t now = NowMicros();
      int64_t stale_micros = pbft_options_.request_retry_millis * 1000;
      std::vector<Transaction> stale;
      for (auto& [key, request] : pending_requests_) {
        if (now - request.last_sent_micros < stale_micros) continue;
        request.last_sent_micros = now;
        stale.push_back(request.txn);
        if (stale.size() >= 64) break;  // bound the per-tick burst
      }
      std::string primary = PrimaryOf(view_);
      for (auto& txn : stale) {
        if (primary == node_id_) {
          AddToBatchLocked(std::move(txn));
        } else {
          std::string payload;
          txn.EncodeTo(&payload);
          network_->Send(Message{kRequestType, node_id_, primary, payload});
        }
      }
    }
    // Any replica: suspect the primary when requests stall.
    if (!pending_requests_.empty() &&
        NowMicros() - last_progress_micros_ >
            pbft_options_.view_timeout_millis * 1000) {
      StartViewChangeLocked(view_ + 1);
      last_progress_micros_ = NowMicros();  // back off before escalating
    }
  }
}

void PbftEngine::StartViewChangeLocked(uint64_t new_view) {
  if (new_view <= view_) return;
  in_view_change_ = true;
  view_votes_[new_view].insert(node_id_);
  std::string payload;
  PutVarint64(&payload, new_view);
  PutVarint64(&payload, next_deliver_seq_);
  BroadcastToReplicas(kViewChangeType, payload);
  // A single vote can already be decisive in tiny clusters (2f+1 == 1).
  if (static_cast<int>(view_votes_[new_view].size()) >= 2 * f_ + 1) {
    EnterViewLocked(new_view);
  }
}

void PbftEngine::OnViewChange(const Message& message) {
  Slice input(message.payload);
  uint64_t new_view, peer_delivered;
  if (!GetVarint64(&input, &new_view)) return;
  if (!GetVarint64(&input, &peer_delivered)) peer_delivered = 0;
  MutexLock lock(&mu_);
  if (!running_ || new_view <= view_) return;
  view_votes_[new_view].insert(message.from);
  if (peer_delivered > highest_reported_seq_) {
    highest_reported_seq_ = peer_delivered;
  }
  // Join the view change once f+1 peers demand it (we may not have timed
  // out ourselves yet).
  if (static_cast<int>(view_votes_[new_view].size()) >= f_ + 1 &&
      !view_votes_[new_view].contains(node_id_)) {
    StartViewChangeLocked(new_view);
  }
  if (static_cast<int>(view_votes_[new_view].size()) >= 2 * f_ + 1) {
    EnterViewLocked(new_view);
  }
}

void PbftEngine::EnterViewLocked(uint64_t new_view) {
  if (new_view <= view_) return;
  view_ = new_view;
  in_view_change_ = false;
  // Drop undelivered in-flight slots; their requests are still pending and
  // get re-proposed in the new view.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (!it->second.delivered) it = slots_.erase(it);
    else ++it;
  }
  next_seq_ = std::max(next_seq_, next_deliver_seq_);
  batch_pending_.clear();
  // Keys batched in dropped slots must be re-batchable by a future primary
  // stint; only committed keys stay deduplicated.
  batched_keys_ = committed_keys_;
  last_progress_micros_ = NowMicros();

  // Catch up on batches other replicas already delivered.
  if (highest_reported_seq_ > next_deliver_seq_) {
    for (uint64_t seq = next_deliver_seq_; seq < highest_reported_seq_;
         seq++) {
      std::string payload;
      PutVarint64(&payload, seq);
      BroadcastToReplicas(kFetchType, payload);
    }
  }

  if (PrimaryOf(view_) == node_id_) {
    std::string payload;
    PutVarint64(&payload, view_);
    BroadcastToReplicas(kNewViewType, payload);
    next_seq_ = std::max(next_seq_, highest_reported_seq_);
    // Re-propose every request we know about.
    std::vector<Transaction> to_batch;
    for (const auto& [key, request] : pending_requests_) {
      to_batch.push_back(request.txn);
    }
    for (auto& txn : to_batch) AddToBatchLocked(std::move(txn));
  } else {
    // Re-send our pending requests to the new primary (it may never have
    // seen them).
    std::string primary = PrimaryOf(view_);
    for (auto& [key, request] : pending_requests_) {
      request.last_sent_micros = NowMicros();
      std::string payload;
      request.txn.EncodeTo(&payload);
      network_->Send(Message{kRequestType, node_id_, primary, payload});
    }
  }
}

void PbftEngine::OnNewView(const Message& message) {
  Slice input(message.payload);
  uint64_t new_view;
  if (!GetVarint64(&input, &new_view)) return;
  MutexLock lock(&mu_);
  if (!running_ || new_view <= view_) return;
  if (message.from != PrimaryOf(new_view)) return;
  EnterViewLocked(new_view);
}

uint64_t PbftEngine::committed_batches() const {
  MutexLock lock(&mu_);
  return committed_batches_;
}

MempoolStats PbftEngine::mempool_stats() const {
  MempoolStats out;
  out.admission = admission_.stats();
  out.bytes = out.admission.cur_bytes;
  MutexLock lock(&mu_);
  out.depth = pending_requests_.size();
  return out;
}

void PbftEngine::OnExternalCommit(const std::vector<Transaction>& txns) {
  std::vector<std::function<void(Status)>> to_fire;
  {
    MutexLock lock(&mu_);
    for (const auto& txn : txns) {
      std::string key = TxnKey(txn);
      admission_.Release(key);
      committed_keys_.insert(key);
      batched_keys_.insert(key);
      auto it = pending_requests_.find(key);
      if (it != pending_requests_.end()) {
        if (it->second.done) to_fire.push_back(std::move(it->second.done));
        pending_requests_.erase(it);
      }
    }
  }
  for (auto& done : to_fire) done(Status::OK());
}

}  // namespace sebdb
