#include "consensus/kafka_orderer.h"

#include <chrono>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

namespace {

constexpr char kSubmitType[] = "kafka.submit";
constexpr char kDeliverType[] = "kafka.deliver";
// Broker -> origin backpressure: the broker shed a submission; payload is
// the txn key plus a retry_after_millis hint.
constexpr char kNackType[] = "kafka.nack";
// Broker -> origin: the submission duplicates an already-sequenced txn;
// payload is the txn key. The origin acks its caller with OK — the txn
// committed (or is in flight to commit) exactly once, so a client that
// resubmitted after a timeout does not hang waiting for a second delivery
// that exactly-once ordering will never produce.
constexpr char kDupAckType[] = "kafka.dup_ack";

int64_t NowMicros() { return SteadyNowMicros(); }

std::string TxnKey(const Transaction& txn) {
  return txn.Hash().ToHex();
}

}  // namespace

KafkaOrderer::KafkaOrderer(std::string node_id, std::string broker_id,
                           std::vector<std::string> participants,
                           Network* network, ConsensusOptions options,
                           BatchCommitFn commit_fn)
    : node_id_(std::move(node_id)),
      broker_id_(std::move(broker_id)),
      participants_(std::move(participants)),
      network_(network),
      options_(std::move(options)),
      commit_fn_(std::move(commit_fn)),
      admission_(options_.admission),
      broker_admission_(options_.admission) {
  next_seq_ = options_.start_sequence;
  next_deliver_seq_ = options_.start_sequence;
}

KafkaOrderer::~KafkaOrderer() { Stop(); }

Status KafkaOrderer::Start() {
  MutexLock lock(&mu_);
  if (running_) return Status::Busy("engine already started");
  running_ = true;
  if (is_broker()) {
    cutter_ = std::thread([this] { CutterLoop(); });
  }
  return Status::OK();
}

void KafkaOrderer::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
    cutter_cv_.NotifyAll();
  }
  if (cutter_.joinable()) cutter_.join();
  // Fail any callers still waiting for a commit.
  std::unordered_map<std::string, std::function<void(Status)>> pending_done;
  {
    MutexLock lock(&mu_);
    pending_done.swap(done_);
  }
  for (auto& [key, done] : pending_done) {
    if (done) done(Status::Aborted("consensus engine stopped"));
  }
  admission_.Clear();
  broker_admission_.Clear();
}

Status KafkaOrderer::Submit(Transaction txn,
                            std::function<void(Status)> done) {
  if (options_.validator) {
    Status s = options_.validator(txn);
    if (!s.ok()) {
      if (done) done(s);
      return s;
    }
  }
  std::string key = TxnKey(txn);
  std::string payload;
  txn.EncodeTo(&payload);
  // Submit-side admission: bounds this node's in-flight submissions. A
  // resubmission of an in-flight txn dedups (not double-counted) and is
  // re-sent to the broker, which dedups sequenced keys on its side.
  Status admit = admission_.Admit(key, txn.sender(), payload.size());
  if (!admit.ok()) {
    if (done) done(admit);
    return admit;
  }
  {
    MutexLock lock(&mu_);
    if (!running_) {
      admission_.Release(key);
      return Status::Aborted("engine not running");
    }
    if (done) done_[key] = std::move(done);
  }
  network_->Send(Message{kSubmitType, node_id_, broker_id_, payload});
  return Status::OK();
}

void KafkaOrderer::HandleMessage(const Message& message) {
  if (message.type == kSubmitType) {
    OnSubmit(message);
  } else if (message.type == kDeliverType) {
    OnDeliver(message);
  } else if (message.type == kNackType) {
    OnNack(message);
  } else if (message.type == kDupAckType) {
    OnDupAck(message);
  }
}

void KafkaOrderer::OnSubmit(const Message& message) {
  if (!is_broker()) return;
  Transaction txn;
  Slice input(message.payload);
  if (!Transaction::DecodeFrom(&input, &txn).ok()) return;
  std::string key = TxnKey(txn);
  MutexLock lock(&mu_);
  if (!running_) return;
  // Resubmission of an already-ordered txn: do not order it again
  // (exactly-once), but ack the origin so a timed-out-and-retrying caller
  // learns the txn went through.
  if (sequenced_keys_.contains(key)) {
    std::string ack;
    PutLengthPrefixed(&ack, key);
    network_->Send(Message{kDupAckType, node_id_, message.from, ack});
    return;
  }
  bool duplicate = false;
  Status admit =
      broker_admission_.Admit(key, txn.sender(), message.payload.size(),
                              &duplicate);
  if (!admit.ok()) {
    // Shed: propagate backpressure to the origin instead of queueing
    // without bound. The origin fails the caller with the retry hint.
    std::string nack;
    PutLengthPrefixed(&nack, key);
    PutVarint64(&nack, static_cast<uint64_t>(admit.retry_after_millis()));
    network_->Send(Message{kNackType, node_id_, message.from, nack});
    return;
  }
  if (duplicate) return;  // already queued, awaiting a cut
  if (pending_.empty()) first_pending_micros_ = NowMicros();
  pending_.push_back(std::move(txn));  // admitted: charged above
  if (pending_.size() >= options_.max_batch_txns) {
    CutBatchLocked();
  }
}

void KafkaOrderer::CutBatchLocked() {
  if (pending_.empty()) return;
  std::vector<Transaction> batch;
  batch.swap(pending_);
  uint64_t seq = next_seq_++;
  for (const auto& txn : batch) {
    std::string key = TxnKey(txn);
    broker_admission_.Release(key);
    sequenced_keys_.insert(key);
  }

  std::string payload;
  PutVarint64(&payload, seq);
  EncodeBatch(batch, &payload);
  for (const auto& participant : participants_) {
    network_->Send(Message{kDeliverType, node_id_, participant, payload});
  }
}

void KafkaOrderer::CutterLoop() {
  MutexLock lock(&mu_);
  while (running_) {
    if (pending_.empty()) {
      cutter_cv_.WaitFor(
          mu_, std::chrono::milliseconds(options_.batch_timeout_millis));
      continue;
    }
    int64_t deadline =
        first_pending_micros_ + options_.batch_timeout_millis * 1000;
    int64_t now = NowMicros();
    if (now >= deadline) {
      CutBatchLocked();
    } else {
      cutter_cv_.WaitFor(mu_, std::chrono::microseconds(deadline - now));
    }
  }
}

void KafkaOrderer::OnDeliver(const Message& message) {
  Slice input(message.payload);
  uint64_t seq;
  std::vector<Transaction> batch;
  if (!GetVarint64(&input, &seq) || !DecodeBatch(&input, &batch).ok()) return;
  MutexLock lock(&mu_);
  reorder_buffer_[seq] = std::move(batch);
  DeliverReady();
}

void KafkaOrderer::DeliverReady() {
  // Single drainer at a time: keeps commit_fn invocations strictly ordered
  // even though they run outside the lock.
  if (delivering_) return;
  delivering_ = true;
  while (true) {
    auto it = reorder_buffer_.find(next_deliver_seq_);
    if (it == reorder_buffer_.end()) break;
    std::vector<Transaction> batch = std::move(it->second);
    reorder_buffer_.erase(it);
    uint64_t seq = next_deliver_seq_++;
    committed_batches_++;

    // Collect completion callbacks for transactions we submitted.
    std::vector<std::function<void(Status)>> to_fire;
    for (const auto& txn : batch) {
      std::string key = TxnKey(txn);
      admission_.Release(key);
      auto done_it = done_.find(key);
      if (done_it != done_.end()) {
        to_fire.push_back(std::move(done_it->second));
        done_.erase(done_it);
      }
    }
    // Invoke the commit hook and callbacks outside the lock. Execution of
    // the ordered batch happens behind commit_fn_ through the shared
    // order-then-execute apply scheduler (DESIGN.md §13).
    mu_.Unlock();
    if (commit_fn_) commit_fn_(seq, std::move(batch));
    for (auto& done : to_fire) {
      if (done) done(Status::OK());
    }
    mu_.Lock();
  }
  delivering_ = false;
}

void KafkaOrderer::OnNack(const Message& message) {
  Slice input(message.payload);
  Slice key_slice;
  uint64_t retry_after = 0;
  if (!GetLengthPrefixed(&input, &key_slice) ||
      !GetVarint64(&input, &retry_after)) {
    return;
  }
  std::string key = key_slice.ToString();
  std::function<void(Status)> done;
  {
    MutexLock lock(&mu_);
    auto it = done_.find(key);
    if (it != done_.end()) {
      done = std::move(it->second);
      done_.erase(it);
    }
  }
  admission_.Release(key);
  if (done) {
    done(Status::ResourceExhausted("shed by orderer",
                                   static_cast<int64_t>(retry_after)));
  }
}

void KafkaOrderer::OnDupAck(const Message& message) {
  Slice input(message.payload);
  Slice key_slice;
  if (!GetLengthPrefixed(&input, &key_slice)) return;
  std::string key = key_slice.ToString();
  std::function<void(Status)> done;
  {
    MutexLock lock(&mu_);
    auto it = done_.find(key);
    if (it != done_.end()) {
      done = std::move(it->second);
      done_.erase(it);
    }
  }
  admission_.Release(key);
  if (done) done(Status::OK());
}

uint64_t KafkaOrderer::committed_batches() const {
  MutexLock lock(&mu_);
  return committed_batches_;
}

MempoolStats KafkaOrderer::mempool_stats() const {
  MempoolStats out;
  AdmissionStats broker = broker_admission_.stats();
  out.admission = MergeAdmissionStats(admission_.stats(), broker);
  out.bytes = broker.cur_bytes;
  MutexLock lock(&mu_);
  out.depth = pending_.size();
  return out;
}

void KafkaOrderer::OnExternalCommit(const std::vector<Transaction>& txns) {
  std::vector<std::function<void(Status)>> to_fire;
  {
    MutexLock lock(&mu_);
    for (const auto& txn : txns) {
      std::string key = TxnKey(txn);
      admission_.Release(key);
      auto it = done_.find(key);
      if (it != done_.end()) {
        if (it->second) to_fire.push_back(std::move(it->second));
        done_.erase(it);
      }
    }
  }
  for (auto& done : to_fire) done(Status::OK());
}

}  // namespace sebdb
