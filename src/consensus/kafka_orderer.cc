#include "consensus/kafka_orderer.h"

#include <chrono>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

namespace {

constexpr char kSubmitType[] = "kafka.submit";
constexpr char kDeliverType[] = "kafka.deliver";

int64_t NowMicros() { return SteadyNowMicros(); }

std::string TxnKey(const Transaction& txn) {
  return txn.Hash().ToHex();
}

}  // namespace

KafkaOrderer::KafkaOrderer(std::string node_id, std::string broker_id,
                           std::vector<std::string> participants,
                           SimNetwork* network, ConsensusOptions options,
                           BatchCommitFn commit_fn)
    : node_id_(std::move(node_id)),
      broker_id_(std::move(broker_id)),
      participants_(std::move(participants)),
      network_(network),
      options_(std::move(options)),
      commit_fn_(std::move(commit_fn)) {
  next_seq_ = options_.start_sequence;
  next_deliver_seq_ = options_.start_sequence;
}

KafkaOrderer::~KafkaOrderer() { Stop(); }

Status KafkaOrderer::Start() {
  MutexLock lock(&mu_);
  if (running_) return Status::Busy("engine already started");
  running_ = true;
  if (is_broker()) {
    cutter_ = std::thread([this] { CutterLoop(); });
  }
  return Status::OK();
}

void KafkaOrderer::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
    cutter_cv_.NotifyAll();
  }
  if (cutter_.joinable()) cutter_.join();
  // Fail any callers still waiting for a commit.
  std::unordered_map<std::string, std::function<void(Status)>> pending_done;
  {
    MutexLock lock(&mu_);
    pending_done.swap(done_);
  }
  for (auto& [key, done] : pending_done) {
    if (done) done(Status::Aborted("consensus engine stopped"));
  }
}

Status KafkaOrderer::Submit(Transaction txn,
                            std::function<void(Status)> done) {
  if (options_.validator) {
    Status s = options_.validator(txn);
    if (!s.ok()) {
      if (done) done(s);
      return s;
    }
  }
  {
    MutexLock lock(&mu_);
    if (!running_) return Status::Aborted("engine not running");
    if (done) done_[TxnKey(txn)] = std::move(done);
  }
  std::string payload;
  txn.EncodeTo(&payload);
  network_->Send(Message{kSubmitType, node_id_, broker_id_, payload});
  return Status::OK();
}

void KafkaOrderer::HandleMessage(const Message& message) {
  if (message.type == kSubmitType) {
    OnSubmit(message);
  } else if (message.type == kDeliverType) {
    OnDeliver(message);
  }
}

void KafkaOrderer::OnSubmit(const Message& message) {
  if (!is_broker()) return;
  Transaction txn;
  Slice input(message.payload);
  if (!Transaction::DecodeFrom(&input, &txn).ok()) return;
  MutexLock lock(&mu_);
  if (!running_) return;
  if (pending_.empty()) first_pending_micros_ = NowMicros();
  pending_.push_back(std::move(txn));
  if (pending_.size() >= options_.max_batch_txns) {
    CutBatchLocked();
  }
}

void KafkaOrderer::CutBatchLocked() {
  if (pending_.empty()) return;
  std::vector<Transaction> batch;
  batch.swap(pending_);
  uint64_t seq = next_seq_++;

  std::string payload;
  PutVarint64(&payload, seq);
  EncodeBatch(batch, &payload);
  for (const auto& participant : participants_) {
    network_->Send(Message{kDeliverType, node_id_, participant, payload});
  }
}

void KafkaOrderer::CutterLoop() {
  MutexLock lock(&mu_);
  while (running_) {
    if (pending_.empty()) {
      cutter_cv_.WaitFor(
          mu_, std::chrono::milliseconds(options_.batch_timeout_millis));
      continue;
    }
    int64_t deadline =
        first_pending_micros_ + options_.batch_timeout_millis * 1000;
    int64_t now = NowMicros();
    if (now >= deadline) {
      CutBatchLocked();
    } else {
      cutter_cv_.WaitFor(mu_, std::chrono::microseconds(deadline - now));
    }
  }
}

void KafkaOrderer::OnDeliver(const Message& message) {
  Slice input(message.payload);
  uint64_t seq;
  std::vector<Transaction> batch;
  if (!GetVarint64(&input, &seq) || !DecodeBatch(&input, &batch).ok()) return;
  MutexLock lock(&mu_);
  reorder_buffer_[seq] = std::move(batch);
  DeliverReady();
}

void KafkaOrderer::DeliverReady() {
  // Single drainer at a time: keeps commit_fn invocations strictly ordered
  // even though they run outside the lock.
  if (delivering_) return;
  delivering_ = true;
  while (true) {
    auto it = reorder_buffer_.find(next_deliver_seq_);
    if (it == reorder_buffer_.end()) break;
    std::vector<Transaction> batch = std::move(it->second);
    reorder_buffer_.erase(it);
    uint64_t seq = next_deliver_seq_++;
    committed_batches_++;

    // Collect completion callbacks for transactions we submitted.
    std::vector<std::function<void(Status)>> to_fire;
    for (const auto& txn : batch) {
      auto done_it = done_.find(TxnKey(txn));
      if (done_it != done_.end()) {
        to_fire.push_back(std::move(done_it->second));
        done_.erase(done_it);
      }
    }
    // Invoke the commit hook and callbacks outside the lock.
    mu_.Unlock();
    if (commit_fn_) commit_fn_(seq, std::move(batch));
    for (auto& done : to_fire) {
      if (done) done(Status::OK());
    }
    mu_.Lock();
  }
  delivering_ = false;
}

uint64_t KafkaOrderer::committed_batches() const {
  MutexLock lock(&mu_);
  return committed_batches_;
}

}  // namespace sebdb
