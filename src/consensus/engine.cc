#include "consensus/engine.h"

#include "common/coding.h"
#include "common/sha256.h"

namespace sebdb {

void EncodeBatch(const std::vector<Transaction>& txns, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(txns.size()));
  for (const auto& txn : txns) txn.EncodeTo(dst);
}

Status DecodeBatch(Slice* input, std::vector<Transaction>* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return Status::Corruption("truncated batch");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Transaction txn;
    Status s = Transaction::DecodeFrom(input, &txn);
    if (!s.ok()) return s;
    out->push_back(std::move(txn));
  }
  return Status::OK();
}

Hash256 BatchDigest(const std::string& encoded_batch) {
  return Sha256::Digest(encoded_batch);
}

}  // namespace sebdb
