// Tendermint-style BFT engine (substitutes Tendermint 0.19.3 in the write
// benchmark). Height-based rounds with a rotating proposer:
//   proposal (proposer of the round) -> prevote (all) -> precommit on >2/3
//   prevotes -> commit on >2/3 precommits.
// Submitted transactions enter a gossiped mempool after a *serial* CheckTx;
// committed transactions pass through a *serial* DeliverTx. The paper
// attributes Tendermint's limited throughput exactly to this serial
// check-then-deliver path, so both are modeled with a configurable per-
// transaction cost.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/admission.h"
#include "common/sha256.h"
#include "common/thread_annotations.h"
#include "consensus/engine.h"
#include "network/network.h"

namespace sebdb {

struct TendermintOptions {
  /// Simulated serial work per transaction in CheckTx (admission-side
  /// validation). Deliver-side execution cost is no longer spun here: the
  /// execute stage belongs to the application's apply scheduler (see
  /// ChainOptions::execute_cost_micros), which overlaps it across
  /// conflict-free transactions instead of serializing it.
  int64_t serial_txn_cost_micros = 50;
  /// Proposal timeout: after this, the next round's proposer takes over.
  int64_t propose_timeout_millis = 1000;
};

class TendermintEngine : public ConsensusEngine {
 public:
  TendermintEngine(std::string node_id, std::vector<std::string> participants,
                   Network* network, ConsensusOptions options,
                   BatchCommitFn commit_fn,
                   TendermintOptions tm_options = TendermintOptions());
  ~TendermintEngine() override;

  std::string name() const override { return "tendermint"; }
  Status Start() override;
  void Stop() override;
  Status Submit(Transaction txn, std::function<void(Status)> done) override;
  uint64_t committed_batches() const override;
  MempoolStats mempool_stats() const override;
  void OnExternalCommit(const std::vector<Transaction>& txns) override;

  void HandleMessage(const Message& message);

  uint64_t height() const;

 private:
  struct RoundState {
    std::string proposal_payload;
    Hash256 digest;
    bool have_proposal = false;
    bool sent_prevote = false;
    bool sent_precommit = false;
    std::set<std::string> prevotes;
    std::set<std::string> precommits;
  };

  std::string ProposerOf(uint64_t height, uint32_t round) const {
    return participants_[(height + round) % participants_.size()];
  }
  int QuorumSize() const {  // strictly more than 2/3
    return static_cast<int>(participants_.size() * 2 / 3) + 1;
  }

  void OnTx(const Message& message);
  void OnProposal(const Message& message);
  void OnPrevote(const Message& message);
  void OnPrecommit(const Message& message);
  void MaybeProposeLocked() REQUIRES(mu_);
  void MaybePrecommitLocked() REQUIRES(mu_);
  void MaybeCommitLocked() REQUIRES(mu_);
  void TimerLoop();
  void BroadcastToReplicas(const std::string& type,
                           const std::string& payload);
  void SerialWork(size_t txn_count) const;

  const std::string node_id_;
  const std::vector<std::string> participants_;
  Network* network_;
  const ConsensusOptions options_;
  BatchCommitFn commit_fn_;
  const TendermintOptions tm_options_;
  // Bounds the mempool; internally synchronized, safe to call under mu_.
  AdmissionController admission_;

  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread timer_;
  CondVar timer_cv_;

  uint64_t height_ GUARDED_BY(mu_) = 0;  // next batch sequence to commit
  uint32_t round_ GUARDED_BY(mu_) = 0;
  int64_t round_started_micros_ GUARDED_BY(mu_) = 0;
  RoundState round_state_ GUARDED_BY(mu_);
  bool committing_ GUARDED_BY(mu_) = false;

  // Mempool in arrival order; keys deduplicate gossiped transactions.
  std::deque<Transaction> mempool_ GUARDED_BY(mu_);
  std::unordered_set<std::string> mempool_keys_ GUARDED_BY(mu_);
  int64_t first_mempool_micros_ GUARDED_BY(mu_) = 0;

  uint64_t committed_batches_ GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, std::function<void(Status)>> done_
      GUARDED_BY(mu_);
};

}  // namespace sebdb
