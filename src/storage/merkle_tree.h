// Merkle hash tree over a block's transactions (paper §I, §IV-A). Provides
// the transRoot header field, per-leaf inclusion proofs, and proof
// verification — the basis of simple authenticated queries and of the thin
// client's basic approach (Fig. 17–19 baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"

namespace sebdb {

/// One step of an audit path: a sibling hash and which side it sits on.
struct MerkleProofStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

struct MerkleProof {
  uint32_t leaf_index = 0;
  std::vector<MerkleProofStep> steps;
};

class MerkleTree {
 public:
  /// Builds the tree bottom-up. With zero leaves the root is the zero hash;
  /// odd levels duplicate the last node (Bitcoin convention).
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Inclusion proof for the i-th leaf.
  Status ProveLeaf(uint32_t index, MerkleProof* proof) const;

  /// Recomputes the root from a leaf hash and its audit path.
  static Hash256 RootFromProof(const Hash256& leaf, const MerkleProof& proof);

  /// Convenience: computes only the root, without keeping the levels.
  static Hash256 ComputeRoot(const std::vector<Hash256>& leaves);

 private:
  size_t num_leaves_;
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Hash256>> levels_;
  Hash256 root_;
};

}  // namespace sebdb
