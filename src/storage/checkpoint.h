// CheckpointManager: shadow-paging publication protocol for index
// checkpoints. A checkpoint is a set of immutable page files plus one
// manifest record binding them to a chain height. Page files are written
// first (through the BufferManager) and synced; only then is the record
// appended to the MANIFEST — a CRC-framed, append-only log reusing the block
// store's frame/fsync discipline (the Env seam has no rename, so atomic
// swap is "append one record whose frame either wholly survives or is
// truncated away"). The newest record whose files all exist at their exact
// recorded sizes wins at recovery; anything later that was torn by a crash
// — mid-page-file or mid-manifest-append — self-heals by falling back to
// the previous usable record. Files referenced by no decoded record are
// garbage from crashed builds and are removed at Open; files a new record
// stops referencing are removed after Publish.
//
// Externally synchronized: ChainManager drives Open/Publish from one thread
// (checkpointing happens under its commit lock).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_manager.h"

namespace sebdb {

struct CheckpointFile {
  std::string name;  // relative to the checkpoint directory
  uint64_t size = 0;
};

struct CheckpointRecord {
  uint64_t id = 0;      // monotone per-checkpoint ordinal (file name prefix)
  uint64_t height = 0;  // blocks [0, height) are covered
  std::vector<CheckpointFile> files;
};

class CheckpointManager {
 public:
  /// Scans `dir` (created if missing): parses the MANIFEST, truncates any
  /// torn tail, selects the newest usable record, and removes orphaned
  /// files. Always succeeds on a healthy-but-empty directory.
  static Status Open(Env* env, const std::string& dir,
                     std::unique_ptr<CheckpointManager>* out);

  /// Newest record whose files all exist at their exact sizes, or nullptr.
  const CheckpointRecord* latest() const {
    return usable_ < records_.size() ? &records_[usable_] : nullptr;
  }
  size_t num_records() const { return records_.size(); }
  /// True when Open dropped a torn manifest tail.
  bool manifest_truncated() const { return manifest_truncated_; }

  /// Id for the next checkpoint build (max decoded id + 1).
  uint64_t next_id() const;

  /// Durably appends `rec` (append + Sync + SyncDir) and then deletes files
  /// the superseded record referenced but `rec` does not.
  Status Publish(const CheckpointRecord& rec);

  const std::string& dir() const { return dir_; }
  std::string FilePath(const std::string& name) const {
    return dir_ + "/" + name;
  }
  Env* env() const { return env_; }

  /// Manifest record frame payload codec (fuzzed: fuzz_manifest_decode).
  static void EncodeManifestRecord(const CheckpointRecord& rec,
                                   std::string* dst);
  static bool DecodeManifestRecord(Slice* in, CheckpointRecord* rec);

  /// Chunks `bytes` into kBlob pages appended to `file`. The caller flushes.
  static Status WriteBlobFile(BufferManager* pool, BufferManager::FileId file,
                              const Slice& bytes);
  /// Reassembles a standalone blob page file (validating every page) without
  /// going through a pool — used for checkpoint meta before indexes exist.
  static Status ReadBlobFile(Env* env, const std::string& path,
                             std::string* out);
  /// Same reassembly over bytes already in memory — the receive side of
  /// checkpoint state sync, where the page file arrived over the network.
  static Status DecodeBlobPages(const Slice& bytes, std::string* out);

  /// Zero-run transfer codec for checkpoint state sync. Page files are
  /// fixed-size frames whose nodes rarely fill them, so the raw images are
  /// mostly zero padding; shipping (and SHA-256-binding) a run-length
  /// transfer image cuts the bytes a lagging peer must fetch and hash by
  /// 10-100x. Format: repeated [varint32 literal_len][literal bytes]
  /// [varint32 zero_run], consuming the input exactly. Deterministic, so
  /// the descriptor hash of the transfer image identifies the raw file.
  static void CompressZeroRuns(const Slice& raw, std::string* out);
  /// Inverse; fails on truncated/garbled input or if the decoded size is
  /// not exactly `raw_size` (the size the checkpoint record declares).
  static Status DecompressZeroRuns(const Slice& transfer, uint64_t raw_size,
                                   std::string* out);

 private:
  CheckpointManager(Env* env, std::string dir)
      : env_(env), dir_(std::move(dir)) {}

  Status Load();
  bool RecordUsable(const CheckpointRecord& rec) const;
  void DropUnreferencedFiles();

  Env* env_;
  std::string dir_;
  std::unique_ptr<WritableFile> writer_;
  std::vector<CheckpointRecord> records_;
  size_t usable_ = static_cast<size_t>(-1);  // index into records_
  bool manifest_truncated_ = false;
};

}  // namespace sebdb
