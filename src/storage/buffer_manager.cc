#include "storage/buffer_manager.h"

#include <algorithm>

namespace sebdb {

// A resident page. `data` is the full encoded page; payload_off/len index
// into it. The bytes are written once (on fault or append) and immutable
// afterwards, so pinned readers touch them without the pool lock.
struct BufferManager::Frame {
  FileId file = 0;
  PageId page = 0;
  std::string data;
  PageType type = PageType::kBlob;
  uint32_t payload_len = 0;
  int pins = 0;
  bool dirty = false;
  bool in_lru = false;
  std::list<Frame*>::iterator lru_pos;
};

PageType BufferManager::PageRef::type() const { return frame_->type; }

Slice BufferManager::PageRef::payload() const {
  return Slice(frame_->data.data() + kPageHeaderSize, frame_->payload_len);
}

void BufferManager::PageRef::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

BufferManager::BufferManager(BufferPoolOptions options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

BufferManager::~BufferManager() = default;

Status BufferManager::OpenFile(const std::string& path, FileId* id) {
  uint64_t size = 0;
  Status s = env_->FileSize(path, &size);
  if (!s.ok()) return s;
  if (size % kPageSize != 0) {
    return Status::Corruption("page file " + path +
                              " is not a whole number of pages");
  }
  MutexLock lock(&mu_);
  auto fs = std::make_unique<FileState>();
  fs->path = path;
  fs->num_pages = static_cast<PageId>(size / kPageSize);
  fs->flushed_pages = fs->num_pages;
  *id = static_cast<FileId>(files_.size());
  files_.push_back(std::move(fs));
  return Status::OK();
}

Status BufferManager::CreateFile(const std::string& path, FileId* id) {
  uint64_t size = 0;
  if (env_->FileSize(path, &size).ok() && size > 0) {
    // Env's writable files are append-only; a leftover file (crashed
    // checkpoint build) must be removed first so pages land at offset 0.
    Status s = env_->RemoveFile(path);
    if (!s.ok()) return s;
  }
  std::unique_ptr<WritableFile> writer;
  Status s = env_->NewWritableFile(path, &writer);
  if (!s.ok()) return s;
  MutexLock lock(&mu_);
  auto fs = std::make_unique<FileState>();
  fs->path = path;
  fs->writable = true;
  fs->writer = std::move(writer);
  *id = static_cast<FileId>(files_.size());
  files_.push_back(std::move(fs));
  return Status::OK();
}

void BufferManager::DropFile(FileId id) {
  MutexLock lock(&mu_);
  if (id >= files_.size() || files_[id] == nullptr) return;
  FileState* fs = files_[id].get();
  for (PageId p = 0; p < fs->num_pages; p++) {
    auto it = frames_.find(FrameKey(id, p));
    if (it == frames_.end()) continue;
    Frame* frame = it->second.get();
    if (frame->in_lru) lru_.erase(frame->lru_pos);
    if (frame->dirty) dirty_bytes_ -= kPageSize;
    usage_ -= kPageSize;
    frames_.erase(it);
  }
  fs->dirty.clear();
  if (fs->writer != nullptr) fs->writer->Close().ok();
  files_[id] = nullptr;
}

Status BufferManager::Pin(FileId file, PageId page, PageRef* out) {
  const ReadableFile* reader = nullptr;
  std::string path;
  {
    MutexLock lock(&mu_);
    if (file >= files_.size() || files_[file] == nullptr) {
      return Status::InvalidArgument("unknown buffer pool file");
    }
    FileState* fs = files_[file].get();
    if (page >= fs->num_pages) {
      return Status::InvalidArgument("page " + std::to_string(page) +
                                     " past end of " + fs->path);
    }
    auto it = frames_.find(FrameKey(file, page));
    if (it != frames_.end()) {
      Frame* frame = it->second.get();
      hits_++;
      if (frame->in_lru) {
        lru_.erase(frame->lru_pos);
        frame->in_lru = false;
      }
      if (frame->pins++ == 0) pinned_++;
      *out = PageRef(this, frame);
      return Status::OK();
    }
    misses_++;
    // Every unflushed page has a resident dirty frame, so a miss is always
    // below the flushed prefix and readable from disk.
    if (fs->reader == nullptr) {
      Status s = env_->NewReadableFile(fs->path, &fs->reader);
      if (!s.ok()) return s;
    }
    // The reader pointer stays valid outside the lock: it is only destroyed
    // by DropFile/destruction, which callers must not race with Pin.
    reader = fs->reader.get();
    path = fs->path;
  }

  std::string buf;
  Status s =
      reader->Read(static_cast<uint64_t>(page) * kPageSize, kPageSize, &buf);
  if (!s.ok()) return s;
  if (buf.size() != kPageSize) {
    return Status::IOError("short page read from " + path);
  }
  PageType type;
  Slice payload;
  s = DecodePage(Slice(buf), &type, &payload);
  if (!s.ok()) return s;

  MutexLock lock(&mu_);
  // Re-check: a concurrent fault may have installed the frame meanwhile.
  auto it = frames_.find(FrameKey(file, page));
  if (it == frames_.end()) {
    auto frame = std::make_unique<Frame>();
    frame->file = file;
    frame->page = page;
    frame->data = std::move(buf);
    frame->type = type;
    frame->payload_len = static_cast<uint32_t>(payload.size());
    it = frames_.emplace(FrameKey(file, page), std::move(frame)).first;
    usage_ += kPageSize;
    EvictIfNeeded();
  }
  Frame* frame = it->second.get();
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
  if (frame->pins++ == 0) pinned_++;
  *out = PageRef(this, frame);
  return Status::OK();
}

void BufferManager::Unpin(Frame* frame) {
  MutexLock lock(&mu_);
  if (--frame->pins == 0) {
    pinned_--;
    if (!frame->dirty) {
      lru_.push_front(frame);
      frame->lru_pos = lru_.begin();
      frame->in_lru = true;
      EvictIfNeeded();
    }
  }
}

void BufferManager::EvictIfNeeded() {
  while (usage_ > options_.capacity_bytes && !lru_.empty()) {
    Frame* victim = lru_.back();
    lru_.pop_back();
    usage_ -= kPageSize;
    evictions_++;
    frames_.erase(FrameKey(victim->file, victim->page));
  }
}

Status BufferManager::AppendPage(FileId file, PageType type,
                                 const Slice& payload, PageId* page) {
  MutexLock lock(&mu_);
  if (file >= files_.size() || files_[file] == nullptr) {
    return Status::InvalidArgument("unknown buffer pool file");
  }
  FileState* fs = files_[file].get();
  if (!fs->writable) {
    return Status::InvalidArgument("file " + fs->path + " is read-only");
  }
  if (fs->failed) {
    return Status::IOError("file " + fs->path +
                           " wedged by an earlier write failure");
  }
  auto frame = std::make_unique<Frame>();
  Status s = EncodePage(type, payload, &frame->data);
  if (!s.ok()) return s;
  frame->file = file;
  frame->page = fs->num_pages;
  frame->type = type;
  frame->payload_len = static_cast<uint32_t>(payload.size());
  frame->dirty = true;
  *page = frame->page;
  fs->dirty.push_back(frame.get());
  frames_.emplace(FrameKey(file, frame->page), std::move(frame));
  fs->num_pages++;
  usage_ += kPageSize;
  dirty_bytes_ += kPageSize;
  EvictIfNeeded();
  if (dirty_bytes_ > options_.capacity_bytes / 2) {
    return FlushLocked(file, fs);
  }
  return Status::OK();
}

Status BufferManager::FlushLocked(FileId file, FileState* fs) {
  (void)file;
  if (fs->dirty.empty()) return Status::OK();
  for (Frame* frame : fs->dirty) {
    Status s = fs->writer->Append(frame->data);
    if (!s.ok()) {
      fs->failed = true;  // unknown how much reached the file
      return s;
    }
    dirty_writes_++;
  }
  Status s = fs->writer->Sync();
  if (!s.ok()) {
    fs->failed = true;
    return s;
  }
  for (Frame* frame : fs->dirty) {
    frame->dirty = false;
    dirty_bytes_ -= kPageSize;
    if (frame->pins == 0) {
      lru_.push_front(frame);
      frame->lru_pos = lru_.begin();
      frame->in_lru = true;
    }
  }
  fs->dirty.clear();
  fs->flushed_pages = fs->num_pages;
  EvictIfNeeded();
  return Status::OK();
}

Status BufferManager::Flush(FileId file) {
  MutexLock lock(&mu_);
  if (file >= files_.size() || files_[file] == nullptr) {
    return Status::InvalidArgument("unknown buffer pool file");
  }
  FileState* fs = files_[file].get();
  if (!fs->writable) return Status::OK();
  if (fs->failed) {
    return Status::IOError("file " + fs->path +
                           " wedged by an earlier write failure");
  }
  return FlushLocked(file, fs);
}

uint64_t BufferManager::file_pages(FileId file) const {
  MutexLock lock(&mu_);
  if (file >= files_.size() || files_[file] == nullptr) return 0;
  return files_[file]->num_pages;
}

BufferManager::Stats BufferManager::stats() const {
  MutexLock lock(&mu_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.dirty_writes = dirty_writes_;
  out.pages = frames_.size();
  out.pinned = pinned_;
  out.dirty = dirty_bytes_ / kPageSize;
  out.usage = usage_;
  out.capacity = options_.capacity_bytes;
  uint64_t files = 0;
  for (const auto& fs : files_) {
    if (fs != nullptr) files++;
  }
  out.files = files;
  return out;
}

}  // namespace sebdb
