#include "storage/block.h"

#include "common/coding.h"
#include "storage/merkle_tree.h"

namespace sebdb {

std::string BlockHeader::HashPayload() const {
  std::string payload;
  payload.append(reinterpret_cast<const char*>(prev_hash.bytes.data()),
                 prev_hash.bytes.size());
  PutVarint64(&payload, height);
  PutVarSigned64(&payload, timestamp);
  payload.append(reinterpret_cast<const char*>(trans_root.bytes.data()),
                 trans_root.bytes.size());
  PutVarint32(&payload, num_transactions);
  PutVarint64(&payload, first_tid);
  return payload;
}

Hash256 BlockHeader::ComputeHash() const { return Sha256::Digest(HashPayload()); }

void BlockHeader::EncodeTo(std::string* dst) const {
  dst->append(reinterpret_cast<const char*>(prev_hash.bytes.data()), 32);
  PutVarint64(dst, height);
  PutVarSigned64(dst, timestamp);
  dst->append(reinterpret_cast<const char*>(trans_root.bytes.data()), 32);
  PutLengthPrefixed(dst, signature);
  dst->append(reinterpret_cast<const char*>(block_hash.bytes.data()), 32);
  PutVarint32(dst, num_transactions);
  PutVarint64(dst, first_tid);
}

namespace {

bool GetHash256(Slice* input, Hash256* out) {
  if (input->size() < 32) return false;
  memcpy(out->bytes.data(), input->data(), 32);
  input->remove_prefix(32);
  return true;
}

}  // namespace

Status BlockHeader::DecodeFrom(Slice* input, BlockHeader* out) {
  Slice sig;
  uint64_t height, first_tid;
  int64_t ts;
  uint32_t num_txns;
  if (!GetHash256(input, &out->prev_hash) || !GetVarint64(input, &height) ||
      !GetVarSigned64(input, &ts) || !GetHash256(input, &out->trans_root) ||
      !GetLengthPrefixed(input, &sig) || !GetHash256(input, &out->block_hash) ||
      !GetVarint32(input, &num_txns) || !GetVarint64(input, &first_tid)) {
    return Status::Corruption("truncated block header");
  }
  out->height = height;
  out->timestamp = ts;
  out->signature = sig.ToString();
  out->num_transactions = num_txns;
  out->first_tid = first_tid;
  return Status::OK();
}

std::vector<Hash256> Block::TransactionHashes() const {
  std::vector<Hash256> hashes;
  hashes.reserve(transactions_.size());
  for (const auto& txn : transactions_) hashes.push_back(txn.Hash());
  return hashes;
}

Hash256 Block::ComputeMerkleRoot() const {
  return MerkleTree::ComputeRoot(TransactionHashes());
}

void Block::EncodeTo(std::string* dst) const {
  std::string header;
  header_.EncodeTo(&header);
  PutFixed32(dst, static_cast<uint32_t>(header.size()));
  dst->append(header);

  const auto n = static_cast<uint32_t>(transactions_.size());
  PutFixed32(dst, n);

  std::string body;
  std::vector<uint32_t> offsets;
  offsets.reserve(n);
  for (const auto& txn : transactions_) {
    offsets.push_back(static_cast<uint32_t>(body.size()));
    txn.EncodeTo(&body);
  }
  for (uint32_t off : offsets) PutFixed32(dst, off);
  dst->append(body);
}

Status Block::DecodeFrom(Slice* input, Block* out) {
  uint32_t header_len;
  if (!GetFixed32(input, &header_len) || input->size() < header_len) {
    return Status::Corruption("truncated block record");
  }
  Slice header_slice(input->data(), header_len);
  input->remove_prefix(header_len);
  Status s = BlockHeader::DecodeFrom(&header_slice, &out->header_);
  if (!s.ok()) return s;

  uint32_t n;
  if (!GetFixed32(input, &n)) return Status::Corruption("truncated block body");
  if (input->size() < static_cast<size_t>(n) * 4) {
    return Status::Corruption("truncated block offset table");
  }
  input->remove_prefix(static_cast<size_t>(n) * 4);  // offsets not needed here

  out->transactions_.clear();
  out->transactions_.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Transaction txn;
    s = Transaction::DecodeFrom(input, &txn);
    if (!s.ok()) return s;
    out->transactions_.push_back(std::move(txn));
  }
  return Status::OK();
}

Status Block::DecodeOneTransaction(const Slice& record, uint32_t index,
                                   Transaction* out) {
  Slice input = record;
  uint32_t header_len;
  if (!GetFixed32(&input, &header_len) || input.size() < header_len) {
    return Status::Corruption("truncated block record");
  }
  input.remove_prefix(header_len);
  uint32_t n;
  if (!GetFixed32(&input, &n)) return Status::Corruption("truncated block body");
  if (index >= n) return Status::InvalidArgument("transaction index out of range");
  if (input.size() < static_cast<size_t>(n) * 4) {
    return Status::Corruption("truncated block offset table");
  }
  uint32_t off = DecodeFixed32(input.data() + static_cast<size_t>(index) * 4);
  Slice body(input.data() + static_cast<size_t>(n) * 4,
             input.size() - static_cast<size_t>(n) * 4);
  if (off > body.size()) return Status::Corruption("bad transaction offset");
  Slice txn_slice(body.data() + off, body.size() - off);
  return Transaction::DecodeFrom(&txn_slice, out);
}

Status Block::DecodeHeader(const Slice& record, BlockHeader* out) {
  Slice input = record;
  uint32_t header_len;
  if (!GetFixed32(&input, &header_len) || input.size() < header_len) {
    return Status::Corruption("truncated block record");
  }
  Slice header_slice(input.data(), header_len);
  return BlockHeader::DecodeFrom(&header_slice, out);
}

Status Block::Validate() const {
  if (header_.num_transactions != transactions_.size()) {
    return Status::Corruption("header transaction count mismatch");
  }
  if (ComputeMerkleRoot() != header_.trans_root) {
    return Status::Corruption("merkle root mismatch");
  }
  if (header_.ComputeHash() != header_.block_hash) {
    return Status::Corruption("block hash mismatch");
  }
  if (!transactions_.empty() &&
      transactions_[0].tid() != header_.first_tid) {
    return Status::Corruption("first tid mismatch");
  }
  return Status::OK();
}

size_t Block::ByteSize() const {
  size_t n = sizeof(Block) + header_.signature.capacity();
  for (const auto& txn : transactions_) n += txn.ByteSize();
  return n;
}

Block BlockBuilder::Build(std::string signature) && {
  TransactionId tid = first_tid_;
  for (auto& txn : transactions_) txn.set_tid(tid++);

  BlockHeader header;
  header.prev_hash = prev_hash_;
  header.height = height_;
  header.timestamp = timestamp_;
  header.num_transactions = static_cast<uint32_t>(transactions_.size());
  header.first_tid = first_tid_;

  Block block(std::move(header), std::move(transactions_));
  block.mutable_header()->trans_root = block.ComputeMerkleRoot();
  block.mutable_header()->signature = std::move(signature);
  block.mutable_header()->block_hash = block.header().ComputeHash();
  return block;
}

}  // namespace sebdb
