// Fixed-size page abstraction for disk-resident index structures. Every
// index checkpoint file is a dense array of 4 KB pages; a page frames its
// payload with a magic, a type tag, the payload length and a CRC32, so a
// single corrupt page is detected at fault time (the same
// validate-on-every-read discipline as the block store's record frames).
// Page ids are file-relative ordinals: page p lives at byte offset
// p * kPageSize, which is what lets the buffer manager fault pages with one
// positional read and lets builders reconstruct next-leaf links from
// sequential ids alone.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace sebdb {

/// File-relative page ordinal.
using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

constexpr size_t kPageSize = 4096;

enum class PageType : uint8_t {
  kBTreeLeaf = 1,
  kBTreeInternal = 2,
  kBlob = 3,  // raw byte-stream chunk (checkpoint meta blobs)
};

// Header layout: magic u32 | crc32 u32 | type u8 | reserved u8 | len u16.
// The CRC covers type..payload (everything the magic and crc do not).
constexpr size_t kPageHeaderSize = 12;
constexpr size_t kMaxPagePayload = kPageSize - kPageHeaderSize;

/// Frames `payload` (at most kMaxPagePayload bytes) into a full page,
/// zero-padded to kPageSize, appended to *dst.
Status EncodePage(PageType type, const Slice& payload, std::string* dst);

/// Validates a page image (must be exactly kPageSize bytes): magic, length
/// bounds, CRC. On success *type and *payload (pointing into `page`) are set.
Status DecodePage(const Slice& page, PageType* type, Slice* payload);

}  // namespace sebdb
