// Disk-resident, immutable, bulk-loaded B+-tree stored as pages in a
// BufferManager file — the persistent counterpart of index/bptree.h. Blocks
// are immutable once chained, so checkpointed trees are built once, bottom
// up, leaves packed full, and never rebalanced: a builder streams sorted
// entries into leaf pages (chained by sequential page ids, since nothing
// interleaves between leaves of one tree), then writes the internal levels.
// Several trees can share one file (per-block trees of a layered index); a
// tree is identified by {file, root page, entry count}.
//
// Read paths mirror BpTree: Begin / SeekGE / SeekFirstTrue (monotone
// predicate descent — the co-monotone block-index trick works unchanged on
// disk) / RangeScan, with a linked-leaf Iterator. Every page fault goes
// through the buffer pool (CRC-validated, LRU-evicted); iterators decode a
// whole leaf and release the pin immediately, so long scans never pin more
// than one page. I/O errors surface through Iterator::status().
//
// Codec supplies the key/value serialization:
//   static void EncodeKey(std::string*, const Key&);
//   static bool DecodeKey(Slice*, Key*);
//   static void EncodeVal(std::string*, const Val&);
//   static bool DecodeVal(Slice*, Val*);
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace sebdb {

template <typename Key, typename Val, typename Codec,
          typename Cmp = std::less<Key>>
class DiskBpTree {
 public:
  struct Ref {
    BufferManager::FileId file = BufferManager::kInvalidFileId;
    PageId root = kInvalidPageId;  // kInvalidPageId = empty tree (no pages)
    uint64_t entries = 0;
  };

  DiskBpTree() = default;
  DiskBpTree(BufferManager* pool, Ref ref, Cmp cmp = Cmp())
      : pool_(pool), ref_(ref), cmp_(std::move(cmp)) {}

  uint64_t size() const { return ref_.entries; }
  bool empty() const { return ref_.entries == 0; }
  const Ref& ref() const { return ref_; }

  class Iterator {
   public:
    Iterator() = default;
    bool Valid() const { return pos_ < entries_.size(); }
    const Key& key() const { return entries_[pos_].first; }
    const Val& value() const { return entries_[pos_].second; }
    /// OK while iterating and at a clean end; an I/O or decode error
    /// invalidates the iterator and is reported here.
    const Status& status() const { return status_; }

    void Next() {
      if (!Valid()) return;
      if (++pos_ < entries_.size()) return;
      AdvanceLeaf();
    }

   private:
    friend class DiskBpTree;
    Iterator(const DiskBpTree* tree) : tree_(tree) {}

    // Loads leaves (skipping empty ones) until entries arrive or the chain
    // ends; clears state on error.
    void AdvanceLeaf() {
      entries_.clear();
      pos_ = 0;
      while (next_ != kInvalidPageId) {
        PageId pid = next_;
        status_ = tree_->LoadLeaf(pid, &entries_, &next_);
        if (!status_.ok()) {
          entries_.clear();
          next_ = kInvalidPageId;
          return;
        }
        if (!entries_.empty()) return;
      }
    }

    const DiskBpTree* tree_ = nullptr;
    std::vector<std::pair<Key, Val>> entries_;
    size_t pos_ = 0;
    PageId next_ = kInvalidPageId;
    Status status_;
  };

  Iterator Begin() const {
    return SeekFirstTrue([](const Key&) { return true; });
  }

  Iterator SeekGE(const Key& target) const {
    return SeekFirstTrue([&](const Key& k) { return !cmp_(k, target); });
  }

  Iterator SeekGT(const Key& target) const {
    return SeekFirstTrue([&](const Key& k) { return cmp_(target, k); });
  }

  /// First entry where pred(key) is true; pred must be monotone (false
  /// prefix, then true) over the key order.
  Iterator SeekFirstTrue(const std::function<bool(const Key&)>& pred) const {
    Iterator it(this);
    if (ref_.root == kInvalidPageId) return it;
    PageId pid = ref_.root;
    std::vector<Key> keys;
    std::vector<PageId> children;
    for (;;) {
      bool is_leaf = false;
      it.status_ = LoadNode(pid, &keys, &children, &it.entries_, &it.next_,
                            &is_leaf);
      if (!it.status_.ok()) {
        it.entries_.clear();
        return it;
      }
      if (is_leaf) break;
      // First separator where pred holds: descend left of it.
      size_t lo = 0, hi = keys.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (pred(keys[mid])) hi = mid;
        else lo = mid + 1;
      }
      pid = children[lo];
    }
    size_t lo = 0, hi = it.entries_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (pred(it.entries_[mid].first)) hi = mid;
      else lo = mid + 1;
    }
    if (lo < it.entries_.size()) {
      it.pos_ = lo;
      return it;
    }
    // The first true key, if any, starts the next leaf.
    it.AdvanceLeaf();
    if (it.Valid() && !pred(it.key())) {
      it.entries_.clear();
      it.pos_ = 0;
      it.next_ = kInvalidPageId;
    }
    return it;
  }

  /// Collects values for keys in [lo, hi] into *out; returns the count.
  /// I/O errors are reported through *status when non-null.
  size_t RangeScan(const Key& lo, const Key& hi, std::vector<Val>* out,
                   Status* status = nullptr) const {
    size_t n = 0;
    Iterator it = SeekGE(lo);
    for (; it.Valid() && !cmp_(hi, it.key()); it.Next()) {
      out->push_back(it.value());
      n++;
    }
    if (status != nullptr) *status = it.status();
    return n;
  }

 private:
  friend class Iterator;

  Status LoadLeaf(PageId pid, std::vector<std::pair<Key, Val>>* entries,
                  PageId* next) const {
    std::vector<Key> keys;
    std::vector<PageId> children;
    bool is_leaf = false;
    Status s = LoadNode(pid, &keys, &children, entries, next, &is_leaf);
    if (s.ok() && !is_leaf) {
      return Status::Corruption("expected a leaf page");
    }
    return s;
  }

  Status LoadNode(PageId pid, std::vector<Key>* keys,
                  std::vector<PageId>* children,
                  std::vector<std::pair<Key, Val>>* entries, PageId* next,
                  bool* is_leaf) const {
    BufferManager::PageRef ref;
    Status s = pool_->Pin(ref_.file, pid, &ref);
    if (!s.ok()) return s;
    Slice in = ref.payload();
    if (ref.type() == PageType::kBTreeLeaf) {
      *is_leaf = true;
      entries->clear();
      uint32_t next_pid, count;
      if (!GetFixed32(&in, &next_pid) || !GetVarint32(&in, &count)) {
        return Status::Corruption("truncated leaf page header");
      }
      *next = next_pid;
      entries->reserve(count);
      for (uint32_t i = 0; i < count; i++) {
        Key k;
        Val v;
        if (!Codec::DecodeKey(&in, &k) || !Codec::DecodeVal(&in, &v)) {
          return Status::Corruption("truncated leaf entry");
        }
        entries->emplace_back(std::move(k), std::move(v));
      }
      return Status::OK();
    }
    if (ref.type() != PageType::kBTreeInternal) {
      return Status::Corruption("unexpected page type in tree");
    }
    *is_leaf = false;
    keys->clear();
    children->clear();
    uint32_t nkeys;
    if (!GetVarint32(&in, &nkeys)) {
      return Status::Corruption("truncated internal page header");
    }
    children->reserve(nkeys + 1);
    for (uint32_t i = 0; i <= nkeys; i++) {
      uint32_t child;
      if (!GetFixed32(&in, &child)) {
        return Status::Corruption("truncated child pointer");
      }
      children->push_back(child);
    }
    keys->reserve(nkeys);
    for (uint32_t i = 0; i < nkeys; i++) {
      Key k;
      if (!Codec::DecodeKey(&in, &k)) {
        return Status::Corruption("truncated separator key");
      }
      keys->push_back(std::move(k));
    }
    return Status::OK();
  }

  BufferManager* pool_ = nullptr;
  Ref ref_;
  Cmp cmp_{};
};

/// Streams sorted entries into a new tree appended to `file`. Usage:
///   DiskBpTreeBuilder<...> b(pool, file);
///   for (...) b.Add(key, val);        // keys non-decreasing
///   b.Finish(&ref);                    // writes pending pages
/// The caller flushes the file (BufferManager::Flush) once all trees sharing
/// it are built.
template <typename Key, typename Val, typename Codec,
          typename Cmp = std::less<Key>>
class DiskBpTreeBuilder {
 public:
  using Tree = DiskBpTree<Key, Val, Codec, Cmp>;

  DiskBpTreeBuilder(BufferManager* pool, BufferManager::FileId file)
      : pool_(pool), file_(file) {}

  Status Add(const Key& key, const Val& val) {
    std::string enc;
    Codec::EncodeKey(&enc, key);
    Codec::EncodeVal(&enc, val);
    // 4 bytes next pointer + up to 5 bytes count prefix.
    if (enc.size() + 9 > kMaxPagePayload) {
      return Status::InvalidArgument("index entry too large for a page");
    }
    if (leaf_buf_.size() + enc.size() + 9 > kMaxPagePayload) {
      Status s = FlushLeaf(/*has_next=*/true);
      if (!s.ok()) return s;
    }
    if (leaf_count_ == 0) leaf_first_key_ = key;
    leaf_buf_.append(enc);
    leaf_count_++;
    entries_++;
    return Status::OK();
  }

  /// Writes the last leaf and the internal levels; fills *out.
  Status Finish(typename Tree::Ref* out) {
    out->file = file_;
    out->entries = entries_;
    out->root = kInvalidPageId;
    if (entries_ == 0) return Status::OK();
    Status s = FlushLeaf(/*has_next=*/false);
    if (!s.ok()) return s;

    // Build internal levels bottom-up from (first key, child pid) pairs.
    std::vector<std::pair<std::string, PageId>> level =
        std::move(level_entries_);
    while (level.size() > 1) {
      std::vector<std::pair<std::string, PageId>> up;
      size_t i = 0;
      while (i < level.size()) {
        // Pack children while the payload fits: varint nkeys + (n+1) pids +
        // n separator keys (first keys of children 1..n).
        std::string pids, keys;
        size_t take = 0;
        while (i + take < level.size()) {
          const auto& child = level[i + take];
          size_t added = 4 + (take > 0 ? child.first.size() : 0);
          if (take >= 2 && 5 + pids.size() + keys.size() + added + 4 >
                               kMaxPagePayload) {
            break;
          }
          PutFixed32(&pids, child.second);
          if (take > 0) keys.append(child.first);
          take++;
        }
        std::string payload;
        PutVarint32(&payload, static_cast<uint32_t>(take - 1));
        payload.append(pids);
        payload.append(keys);
        PageId pid;
        s = pool_->AppendPage(file_, PageType::kBTreeInternal, payload, &pid);
        if (!s.ok()) return s;
        up.emplace_back(level[i].first, pid);
        i += take;
      }
      level = std::move(up);
    }
    out->root = level[0].second;
    return Status::OK();
  }

 private:
  Status FlushLeaf(bool has_next) {
    std::string payload;
    // The next leaf, if any, is the very next page appended: internal pages
    // are only written at Finish, after every leaf.
    PageId pid = static_cast<PageId>(pool_->file_pages(file_));
    PutFixed32(&payload, has_next ? pid + 1 : kInvalidPageId);
    PutVarint32(&payload, leaf_count_);
    payload.append(leaf_buf_);
    PageId got;
    Status s = pool_->AppendPage(file_, PageType::kBTreeLeaf, payload, &got);
    if (!s.ok()) return s;
    if (got != pid) {
      return Status::IOError("concurrent append to index file");
    }
    std::string first_key;
    Codec::EncodeKey(&first_key, leaf_first_key_);
    level_entries_.emplace_back(std::move(first_key), pid);
    leaf_buf_.clear();
    leaf_count_ = 0;
    return Status::OK();
  }

  BufferManager* pool_;
  BufferManager::FileId file_;
  std::string leaf_buf_;
  uint32_t leaf_count_ = 0;
  Key leaf_first_key_{};
  uint64_t entries_ = 0;
  // (encoded first key, pid) per leaf, consumed by Finish.
  std::vector<std::pair<std::string, PageId>> level_entries_;
};

}  // namespace sebdb
