// BufferManager: a page cache between the disk-resident index structures
// and the Env file seam. Readers Pin() pages — faulting them from disk with
// CRC validation on every fault — and hold a PageRef while the bytes are in
// use; unpinned clean pages sit on an LRU list and are evicted when the pool
// exceeds its byte capacity (the same charge-based discipline as
// common/lru_cache, but with pin counts because callers hold raw views into
// frame memory). Checkpoint builders AppendPage() new pages through the same
// pool; dirty pages are retained (never evicted) until Flush() writes them —
// in page-id order, which for append-only files is append order — and syncs.
//
// All I/O goes through Env, so the fault-injection environment covers
// checkpoint files exactly like block segments. Internally synchronized; the
// frame bytes behind a PageRef are immutable while pinned.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace sebdb {

struct BufferPoolOptions {
  /// Total frame budget in bytes (frames are whole pages).
  uint64_t capacity_bytes = 64ull << 20;
  /// nullptr means Env::Default(). Tests plug a FaultInjectionEnv.
  Env* env = nullptr;
};

class BufferManager {
 public:
  using FileId = uint32_t;
  static constexpr FileId kInvalidFileId = 0xFFFFFFFFu;

  /// One coherent snapshot of the pool counters (single lock acquisition),
  /// surfaced through ChainManager and the node startup log like CacheStats.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;        // faults from disk
    uint64_t evictions = 0;
    uint64_t dirty_writes = 0;  // pages written by Flush
    uint64_t pages = 0;         // frames resident
    uint64_t pinned = 0;        // frames with a live PageRef
    uint64_t dirty = 0;         // frames awaiting Flush
    uint64_t usage = 0;         // resident bytes
    uint64_t capacity = 0;
    uint64_t files = 0;
  };

  explicit BufferManager(BufferPoolOptions options);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Opens an existing page file read-only. Fails unless the size is a whole
  /// number of pages (a torn checkpoint file — such files are never
  /// referenced by a published manifest).
  Status OpenFile(const std::string& path, FileId* id) EXCLUDES(mu_);

  /// Creates (truncating semantics: the file must not exist) a writable page
  /// file; pages are added with AppendPage and become readable immediately.
  Status CreateFile(const std::string& path, FileId* id) EXCLUDES(mu_);

  /// Drops every frame of `id` (dirty ones included) and closes its handles.
  /// Abort path for checkpoint builds whose manifest publish failed.
  void DropFile(FileId id) EXCLUDES(mu_);

  struct Frame;

  /// Pin guard: the page stays resident (and its payload view valid) until
  /// release. Movable, not copyable.
  class PageRef {
   public:
    PageRef() = default;
    ~PageRef() { Release(); }
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept {
      if (this != &other) {
        Release();
        bm_ = other.bm_;
        frame_ = other.frame_;
        other.bm_ = nullptr;
        other.frame_ = nullptr;
      }
      return *this;
    }
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    bool valid() const { return frame_ != nullptr; }
    PageType type() const;
    Slice payload() const;
    void Release();

   private:
    friend class BufferManager;
    PageRef(BufferManager* bm, Frame* frame) : bm_(bm), frame_(frame) {}
    BufferManager* bm_ = nullptr;
    Frame* frame_ = nullptr;
  };

  /// Pins page `page` of `file`, faulting it from disk (with CRC validation)
  /// on a miss.
  Status Pin(FileId file, PageId page, PageRef* out) EXCLUDES(mu_);

  /// Appends a new page to a writable file. The frame is dirty — resident
  /// and readable, but not evictable — until Flush. When dirty bytes exceed
  /// half the pool capacity the file is flushed inline (bounds memory while
  /// building checkpoints larger than the pool).
  Status AppendPage(FileId file, PageType type, const Slice& payload,
                    PageId* page) EXCLUDES(mu_);

  /// Writes the file's dirty pages (in page order) and syncs.
  Status Flush(FileId file) EXCLUDES(mu_);

  /// Pages in the file (appended-but-unflushed pages included).
  uint64_t file_pages(FileId file) const EXCLUDES(mu_);
  uint64_t file_size(FileId file) const { return file_pages(file) * kPageSize; }

  Stats stats() const EXCLUDES(mu_);
  uint64_t capacity() const { return options_.capacity_bytes; }
  Env* env() const { return env_; }

 private:
  struct FileState {
    std::string path;
    bool writable = false;
    bool failed = false;  // a write error wedged the file
    std::unique_ptr<WritableFile> writer;
    std::unique_ptr<ReadableFile> reader;  // opened on first fault
    PageId num_pages = 0;      // appended (flushed or not)
    PageId flushed_pages = 0;  // durable prefix
    std::vector<Frame*> dirty;  // append order
  };

  void Unpin(Frame* frame) EXCLUDES(mu_);
  void EvictIfNeeded() REQUIRES(mu_);
  Status FlushLocked(FileId file, FileState* fs) REQUIRES(mu_);
  static uint64_t FrameKey(FileId file, PageId page) {
    return (static_cast<uint64_t>(file) << 32) | page;
  }

  BufferPoolOptions options_;
  Env* env_;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<FileState>> files_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_ GUARDED_BY(mu_);
  std::list<Frame*> lru_ GUARDED_BY(mu_);  // unpinned clean frames, MRU first
  uint64_t usage_ GUARDED_BY(mu_) = 0;
  uint64_t dirty_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t pinned_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t dirty_writes_ GUARDED_BY(mu_) = 0;
};

}  // namespace sebdb
