// Block layout (paper §IV-A, Fig. 3): a header carrying prevHash,
// blockHeight, timestamp, transRoot, signature and blockHash, plus a body of
// transactions. The serialized body carries a per-transaction offset table so
// a single tuple can be read without decoding the whole block (the layered
// index's random-read path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/sha256.h"
#include "common/slice.h"
#include "common/status.h"
#include "types/transaction.h"

namespace sebdb {

using BlockId = uint64_t;

struct BlockHeader {
  Hash256 prev_hash;
  BlockId height = 0;
  Timestamp timestamp = 0;
  Hash256 trans_root;
  std::string signature;  // packager's signature over the fields above
  Hash256 block_hash;     // hash over all fields above
  uint32_t num_transactions = 0;
  TransactionId first_tid = 0;  // tid of the first transaction in the body

  /// Bytes covered by block_hash and by the packager signature.
  std::string HashPayload() const;
  /// Recomputes block_hash from the other fields.
  Hash256 ComputeHash() const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, BlockHeader* out);

  bool operator==(const BlockHeader&) const = default;
};

class Block {
 public:
  Block() = default;
  Block(BlockHeader header, std::vector<Transaction> transactions)
      : header_(std::move(header)), transactions_(std::move(transactions)) {}

  const BlockHeader& header() const { return header_; }
  BlockHeader* mutable_header() { return &header_; }
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  BlockId height() const { return header_.height; }

  /// Leaf hashes of the body, in order.
  std::vector<Hash256> TransactionHashes() const;
  /// Merkle root over TransactionHashes().
  Hash256 ComputeMerkleRoot() const;

  /// Serialized record: header, then an offset table, then the encoded
  /// transactions. Self-contained (decodable from the byte range alone).
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Block* out);

  /// Decodes only transaction `index` from a serialized block record,
  /// without materializing the others.
  static Status DecodeOneTransaction(const Slice& record, uint32_t index,
                                     Transaction* out);
  /// Decodes only the header from a serialized block record.
  static Status DecodeHeader(const Slice& record, BlockHeader* out);

  /// Integrity check: recomputed merkle root and block hash match header.
  Status Validate() const;

  size_t ByteSize() const;

 private:
  BlockHeader header_;
  std::vector<Transaction> transactions_;
};

/// Assembles a block from ordered transactions: assigns consecutive tids
/// starting at first_tid, fills the header (prev hash, height, timestamp,
/// merkle root) and computes the block hash. The packager signature is set
/// by the caller (consensus layer) via SignWith.
class BlockBuilder {
 public:
  BlockBuilder& SetPrevHash(const Hash256& h) {
    prev_hash_ = h;
    return *this;
  }
  BlockBuilder& SetHeight(BlockId h) {
    height_ = h;
    return *this;
  }
  BlockBuilder& SetTimestamp(Timestamp ts) {
    timestamp_ = ts;
    return *this;
  }
  BlockBuilder& SetFirstTid(TransactionId tid) {
    first_tid_ = tid;
    return *this;
  }
  BlockBuilder& AddTransaction(Transaction txn) {
    transactions_.push_back(std::move(txn));
    return *this;
  }

  /// Builds the block; `signature` is the packager's signature (may be
  /// filled in later through mutable_header()).
  Block Build(std::string signature = "") &&;

 private:
  Hash256 prev_hash_;
  BlockId height_ = 0;
  Timestamp timestamp_ = 0;
  TransactionId first_tid_ = 1;
  std::vector<Transaction> transactions_;
};

}  // namespace sebdb
