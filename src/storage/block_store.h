// Append-only persistent block store (paper §IV-A): blocks are appended to
// segment files (default segment size 256 MB, configurable) and are immutable
// once written. Supports whole-block sequential reads (scan path), header
// reads (thin client) and single-transaction random reads (layered-index
// path), with optional block-level and transaction-level LRU caches
// (§VII-H).
//
// Durability contract (see DESIGN.md §"Durability contract"): recovery
// CRC-validates every record; a torn or corrupt suffix of the *tail* segment
// is truncated away (self-healing, the writer resumes at the last valid
// record), while corruption in any non-tail segment refuses to open — unless
// degraded_open is set, in which case the defective segment and everything
// after it are quarantined (set aside as .quar files) and the store serves
// the verified prefix while a repair orchestrator re-fetches the missing
// blocks from peers (DESIGN.md §12).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/block.h"
#include "storage/file.h"

namespace sebdb {

/// A digest of the record layout the store had at some earlier moment (a
/// checkpoint): per segment, in order, the payload length of every frame.
/// Frames are back-to-back from offset 0, so lengths alone reconstruct every
/// Location arithmetically — recovery can adopt the prefix after cheap size
/// checks plus one CRC spot-check instead of re-reading gigabytes of chain.
/// Any inconsistency falls back to the full validating scan.
struct TrustedPrefix {
  /// segments[s] = payload lengths of segment s's records, append order.
  std::vector<std::vector<uint32_t>> segments;

  uint64_t num_records() const {
    uint64_t n = 0;
    for (const auto& seg : segments) n += seg.size();
    return n;
  }

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* in, TrustedPrefix* out);
};

struct BlockStoreOptions {
  /// Maximum bytes per segment file before rolling to a new one.
  uint64_t segment_size = 256ull << 20;
  /// Block cache capacity in bytes; 0 disables it.
  uint64_t block_cache_bytes = 0;
  /// Transaction cache capacity in bytes; 0 disables it.
  uint64_t transaction_cache_bytes = 0;
  /// fdatasync after every append (off by default; benches measure I/O
  /// pattern, not fsync latency).
  bool sync_on_append = false;
  /// File system to use; nullptr means Env::Default(). Tests plug a
  /// FaultInjectionEnv here.
  Env* env = nullptr;
  /// When set, Open first tries to adopt this layout digest (from the latest
  /// index checkpoint) instead of scanning: earlier segments are verified by
  /// size, the last trusted record by CRC, and only bytes past the prefix
  /// are scanned. Must outlive Open. Mismatch → silent full-scan fallback.
  const TrustedPrefix* trusted_prefix = nullptr;
  /// Degraded open: corruption in a non-tail segment no longer refuses to
  /// open. The defective byte range and every later segment are quarantined
  /// (copied to seg_NNNNNN.blk.quar for post-mortem, then dropped from the
  /// live chain) and the store serves the verified prefix; a peer-assisted
  /// repair path re-appends the missing blocks (DESIGN.md §12). Off by
  /// default so standalone stores keep the refuse-to-open contract.
  bool degraded_open = false;
};

/// Cumulative I/O counters; disk "seeks" count distinct pread/append block
/// accesses (the t_S term of the paper's cost model), bytes the t_T term.
struct StorageStats {
  std::atomic<uint64_t> blocks_read{0};
  std::atomic<uint64_t> headers_read{0};
  std::atomic<uint64_t> transactions_read{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> blocks_appended{0};
  std::atomic<uint64_t> bytes_appended{0};

  void Reset() {
    blocks_read = 0;
    headers_read = 0;
    transactions_read = 0;
    bytes_read = 0;
    cache_hits = 0;
    blocks_appended = 0;
    bytes_appended = 0;
  }
};

class BlockStore {
 public:
  /// Snapshot of both LRU caches (hits/misses/evictions plus occupancy).
  /// Surfaced through ChainManager and the node startup log; a disabled
  /// cache reports capacity 0 and all-zero counters.
  struct CacheStats {
    uint64_t block_hits = 0;
    uint64_t block_misses = 0;
    uint64_t block_evictions = 0;
    uint64_t block_usage = 0;
    uint64_t block_capacity = 0;
    uint64_t txn_hits = 0;
    uint64_t txn_misses = 0;
    uint64_t txn_evictions = 0;
    uint64_t txn_usage = 0;
    uint64_t txn_capacity = 0;
  };

  /// What the last Open found on disk. Surfaced through ChainManager and
  /// logged by SebdbNode::Start so operators can see self-healing happen.
  struct RecoveryStats {
    uint64_t blocks_recovered = 0;  // valid records found across segments
    uint64_t bytes_truncated = 0;   // torn/corrupt tail bytes dropped
    uint64_t records_dropped = 0;   // whole records lost to tail truncation
    uint64_t blocks_trusted = 0;    // records adopted from a trusted prefix
    uint32_t segments_scanned = 0;
    uint32_t segments_quarantined = 0;  // non-tail segments set aside
    uint64_t bytes_quarantined = 0;     // bytes from the defect to chain end
    bool tail_truncated = false;
    bool used_trusted_prefix = false;
    /// Degraded open took effect: the store serves a verified prefix and the
    /// quarantined remainder must be repaired from peers.
    bool degraded = false;

    bool clean() const { return !tail_truncated && !degraded; }
  };

  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Opens (creating if needed) the store in `dir`, scanning and
  /// CRC-validating existing segments to rebuild the block location table.
  /// A torn tail is truncated (see RecoveryStats); mid-chain corruption
  /// fails with Status::Corruption.
  Status Open(const BlockStoreOptions& options, const std::string& dir);
  Status Close();

  /// Appends a block; its height must equal num_blocks().
  Status Append(const Block& block);

  /// Appends a pre-encoded block record (peer repair / state-sync splice).
  /// `height` must equal num_blocks(). The caller is responsible for having
  /// verified the payload — decode, Merkle root, and hash-chain linkage —
  /// before splicing; call sites carry a `verify:` marker (lint-enforced).
  Status AppendRaw(BlockId height, const Slice& payload);

  /// Number of blocks stored; block heights are dense in [0, num_blocks()).
  uint64_t num_blocks() const;

  /// Reads a whole block (sequential-scan unit). Serves from the block cache
  /// when enabled.
  Status ReadBlock(BlockId height, std::shared_ptr<const Block>* out);

  /// Batched sequential read of blocks [first, first + count): frames that
  /// are consecutive on disk are fetched with one large pread (readahead)
  /// instead of one pread per block. Serves from / fills the block cache.
  /// `out` is resized to `count`; out[i] is the block at height first + i.
  Status ReadBlocks(BlockId first, uint64_t count,
                    std::vector<std::shared_ptr<const Block>>* out);

  /// Reads only the header of a block.
  Status ReadHeader(BlockId height, BlockHeader* out);

  /// Reads one transaction by (block, position) — the random-read path used
  /// by second-level indices. Serves from the transaction cache, then the
  /// block cache, then performs positional reads against the segment file.
  Status ReadTransaction(BlockId height, uint32_t index,
                         std::shared_ptr<const Transaction>* out);

  /// Raw serialized record of a block (used by gossip block transfer).
  Status ReadRawRecord(BlockId height, std::string* out);

  StorageStats& stats() { return stats_; }
  /// Consistent snapshot of both caches' counters (one lock acquisition per
  /// cache, so hits/misses/usage are mutually coherent).
  CacheStats cache_stats() const EXCLUDES(mu_);
  /// Snapshot of what the last Open found on disk (by value: the stats are
  /// rewritten by a concurrent reopen, so a reference would escape mu_).
  RecoveryStats recovery_stats() const EXCLUDES(mu_);
  /// Digest of the current record layout, for embedding in a checkpoint so
  /// the next Open can skip re-scanning everything below it.
  TrustedPrefix trusted_prefix_snapshot() const EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }

 private:
  struct Location {
    uint32_t segment;
    uint64_t offset;  // of the payload (past the frame header)
    uint32_t length;  // payload length
  };

  Status OpenSegmentForAppend(uint32_t segment_id) REQUIRES(mu_);
  Status RecoverSegments() REQUIRES(mu_);
  bool TryTrustedRecover(const TrustedPrefix& trusted,
                         const std::vector<std::string>& segments)
      REQUIRES(mu_);
  /// `defect_offset`, when non-null, arms degraded handling: a non-tail
  /// defect sets *defect_offset to the end of the valid prefix and returns
  /// OK instead of Corruption (the caller quarantines from there). A null
  /// pointer keeps the strict refuse-to-open behavior.
  Status ScanSegment(uint32_t seg_id, const std::string& name, bool is_tail,
                     uint64_t start_offset, uint64_t* defect_offset)
      REQUIRES(mu_);
  /// Sets aside the chain suffix starting at `defect_offset` in segment
  /// `defect_seg`: copies the defective range and all later segments to
  /// .quar files, truncates the defective segment back to its valid prefix,
  /// and removes the later segments from the live set.
  Status QuarantineSuffix(uint32_t defect_seg, uint64_t defect_offset,
                          const std::vector<std::string>& segments)
      REQUIRES(mu_);
  Status AppendPayload(const Slice& payload) REQUIRES(mu_);
  Status ReadPayload(const Location& loc, std::string* out) const
      EXCLUDES(mu_);
  Status ReadAt(uint32_t segment, uint64_t offset, size_t n,
                std::string* out) const EXCLUDES(mu_);
  std::shared_ptr<RandomAccessFile> Reader(uint32_t segment) const
      REQUIRES(mu_);

  BlockStoreOptions options_;
  Env* env_ = nullptr;
  std::string dir_;
  mutable Mutex mu_;
  std::vector<Location> locations_ GUARDED_BY(mu_);
  AppendOnlyFile writer_ GUARDED_BY(mu_);
  uint32_t active_segment_ GUARDED_BY(mu_) = 0;
  mutable std::vector<std::shared_ptr<RandomAccessFile>> readers_
      GUARDED_BY(mu_);
  // The caches are internally synchronized; the pointers themselves only
  // change in Open/Close.
  std::unique_ptr<LruCache<uint64_t, const Block>> block_cache_;
  std::unique_ptr<LruCache<uint64_t, const Transaction>> txn_cache_;
  StorageStats stats_;  // all-atomic counters
  RecoveryStats recovery_ GUARDED_BY(mu_);
  bool open_ GUARDED_BY(mu_) = false;
  // Set when an append fails partway: the segment tail is in an unknown
  // state, so further appends would land after garbage. Reopen to recover.
  bool wedged_ GUARDED_BY(mu_) = false;
};

}  // namespace sebdb
