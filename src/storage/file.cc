#include "storage/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sebdb {

namespace {

Status PosixError(const std::string& context) {
  return Status::IOError(context + ": " + strerror(errno));
}

}  // namespace

AppendOnlyFile::~AppendOnlyFile() { Close(); }

Status AppendOnlyFile::Open(const std::string& path) {
  if (fd_ >= 0) return Status::Busy("file already open: " + path_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return PosixError("open " + path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status s = PosixError("fstat " + path);
    ::close(fd_);
    fd_ = -1;
    return s;
  }
  size_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status AppendOnlyFile::Append(const Slice& data) {
  if (fd_ < 0) return Status::IOError("append to closed file");
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return PosixError("write " + path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  size_ += data.size();
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  if (fd_ < 0) return Status::IOError("sync of closed file");
  if (::fdatasync(fd_) != 0) return PosixError("fdatasync " + path_);
  return Status::OK();
}

Status AppendOnlyFile::Close() {
  if (fd_ < 0) return Status::OK();
  int r = ::close(fd_);
  fd_ = -1;
  if (r != 0) return PosixError("close " + path_);
  return Status::OK();
}

RandomAccessFile::~RandomAccessFile() { Close(); }

Status RandomAccessFile::Open(const std::string& path) {
  if (fd_ >= 0) return Status::Busy("file already open: " + path_);
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return PosixError("open " + path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status s = PosixError("fstat " + path);
    ::close(fd_);
    fd_ = -1;
    return s;
  }
  size_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* scratch) const {
  if (fd_ < 0) return Status::IOError("read from closed file");
  scratch->resize(n);
  char* p = scratch->data();
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd_, p + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return PosixError("pread " + path_);
    }
    if (r == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in " + path_);
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status RandomAccessFile::Close() {
  if (fd_ < 0) return Status::OK();
  int r = ::close(fd_);
  fd_ = -1;
  if (r != 0) return PosixError("close " + path_);
  return Status::OK();
}

Status CreateDirIfMissing(const std::string& path) {
  std::string partial;
  size_t i = 0;
  while (i < path.size()) {
    size_t next = path.find('/', i + 1);
    if (next == std::string::npos) next = path.size();
    partial = path.substr(0, next);
    if (!partial.empty() && partial != "/") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return PosixError("mkdir " + partial);
      }
    }
    i = next;
  }
  return Status::OK();
}

Status ListDir(const std::string& path, std::vector<std::string>* out) {
  out->clear();
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return PosixError("opendir " + path);
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    out->push_back(std::move(name));
  }
  ::closedir(dir);
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return PosixError("opendir " + path);
  }
  struct dirent* entry;
  Status result;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string child = path + "/" + name;
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) {
      result = PosixError("lstat " + child);
      break;
    }
    if (S_ISDIR(st.st_mode)) {
      result = RemoveDirRecursive(child);
      if (!result.ok()) break;
    } else if (::unlink(child.c_str()) != 0) {
      result = PosixError("unlink " + child);
      break;
    }
  }
  ::closedir(dir);
  if (!result.ok()) return result;
  if (::rmdir(path.c_str()) != 0) return PosixError("rmdir " + path);
  return Status::OK();
}

}  // namespace sebdb
