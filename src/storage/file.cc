#include "storage/file.h"

namespace sebdb {

Status AppendOnlyFile::Open(const std::string& path, Env* env) {
  if (file_ != nullptr) return Status::Busy("file already open: " + path_);
  if (env == nullptr) env = Env::Default();
  Status s = env->NewWritableFile(path, &file_);
  if (!s.ok()) return s;
  path_ = path;
  return Status::OK();
}

Status AppendOnlyFile::Append(const Slice& data) {
  if (file_ == nullptr) return Status::IOError("append to closed file");
  return file_->Append(data);
}

Status AppendOnlyFile::Sync() {
  if (file_ == nullptr) return Status::IOError("sync of closed file");
  return file_->Sync();
}

Status AppendOnlyFile::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  return s;
}

Status RandomAccessFile::Open(const std::string& path, Env* env) {
  if (file_ != nullptr) return Status::Busy("file already open: " + path_);
  if (env == nullptr) env = Env::Default();
  Status s = env->NewReadableFile(path, &file_);
  if (!s.ok()) return s;
  path_ = path;
  return Status::OK();
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* scratch) const {
  if (file_ == nullptr) return Status::IOError("read from closed file");
  Status s = file_->Read(offset, n, scratch);
  if (!s.ok()) return s;
  if (scratch->size() < n) {
    return Status::IOError("short read at offset " + std::to_string(offset) +
                           " in " + path_);
  }
  return Status::OK();
}

Status RandomAccessFile::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  return s;
}

Status CreateDirIfMissing(const std::string& path) {
  return Env::Default()->CreateDirIfMissing(path);
}

Status ListDir(const std::string& path, std::vector<std::string>* out) {
  return Env::Default()->ListDir(path, out);
}

Status RemoveDirRecursive(const std::string& path) {
  return Env::Default()->RemoveDirRecursive(path);
}

}  // namespace sebdb
