#include "storage/block_store.h"

#include <algorithm>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32.h"

namespace sebdb {

namespace {

constexpr uint32_t kRecordMagic = 0x5ebdb10c;
constexpr size_t kFrameHeaderSize = 8;  // magic + payload length
constexpr size_t kFrameTrailerSize = 4;  // crc32 of payload

std::string SegmentName(uint32_t id) {
  char buf[32];
  snprintf(buf, sizeof(buf), "seg_%06u.blk", id);
  return buf;
}

// Sentinel for "no defect found" in ScanSegment's degraded out-param.
constexpr uint64_t kNoDefect = ~0ull;

uint64_t TxnCacheKey(BlockId height, uint32_t index) {
  return (height << 20) | index;  // blocks hold far fewer than 2^20 txns
}

}  // namespace

void TrustedPrefix::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(segments.size()));
  for (const auto& seg : segments) {
    PutVarint32(dst, static_cast<uint32_t>(seg.size()));
    for (uint32_t len : seg) PutVarint32(dst, len);
  }
}

bool TrustedPrefix::DecodeFrom(Slice* in, TrustedPrefix* out) {
  uint32_t nsegs;
  if (!GetVarint32(in, &nsegs) || nsegs > in->size()) return false;
  out->segments.clear();
  out->segments.resize(nsegs);
  for (uint32_t s = 0; s < nsegs; s++) {
    uint32_t nrecs;
    if (!GetVarint32(in, &nrecs) || nrecs > in->size()) return false;
    out->segments[s].reserve(nrecs);
    for (uint32_t i = 0; i < nrecs; i++) {
      uint32_t len;
      if (!GetVarint32(in, &len)) return false;
      out->segments[s].push_back(len);
    }
  }
  return true;
}

Status BlockStore::Open(const BlockStoreOptions& options,
                        const std::string& dir) {
  MutexLock lock(&mu_);
  if (open_) return Status::Busy("block store already open");
  options_ = options;
  env_ = options.env != nullptr ? options.env : Env::Default();
  dir_ = dir;
  Status s = env_->CreateDirIfMissing(dir);
  if (!s.ok()) return s;
  if (options_.block_cache_bytes > 0) {
    block_cache_ = std::make_unique<LruCache<uint64_t, const Block>>(
        options_.block_cache_bytes);
  }
  if (options_.transaction_cache_bytes > 0) {
    txn_cache_ = std::make_unique<LruCache<uint64_t, const Transaction>>(
        options_.transaction_cache_bytes);
  }
  s = RecoverSegments();
  if (!s.ok()) return s;
  open_ = true;
  wedged_ = false;
  return Status::OK();
}

// Scans one segment, CRC-validating every record, and appends valid
// locations. Any invalid frame — bad magic, implausible length, torn bytes,
// CRC mismatch — ends the valid prefix: in the tail segment the file is
// truncated back to it (crash self-healing), anywhere else the store
// refuses to open (real mid-chain corruption, not a crash artifact) unless
// degraded handling is armed via `defect_offset`.
Status BlockStore::ScanSegment(uint32_t seg_id, const std::string& name,
                               bool is_tail, uint64_t start_offset,
                               uint64_t* defect_offset) {
  const std::string path = dir_ + "/" + name;
  RandomAccessFile file;
  Status s = file.Open(path, env_);
  if (!s.ok()) return s;

  const uint64_t file_size = file.size();
  uint64_t offset = start_offset;  // end of the valid prefix
  std::string defect;
  size_t valid_records = 0;
  while (defect.empty() && offset + kFrameHeaderSize <= file_size) {
    std::string frame;
    s = file.Read(offset, kFrameHeaderSize, &frame);
    if (!s.ok()) return s;  // I/O error, not corruption: do not truncate
    uint32_t magic = DecodeFixed32(frame.data());
    uint32_t len = DecodeFixed32(frame.data() + 4);
    if (magic != kRecordMagic) {
      defect = "bad record magic";
      break;
    }
    if (offset + kFrameHeaderSize + len + kFrameTrailerSize > file_size) {
      defect = "torn record body";
      break;
    }
    std::string payload;
    s = file.Read(offset + kFrameHeaderSize, len + kFrameTrailerSize,
                  &payload);
    if (!s.ok()) return s;
    uint32_t stored_crc = DecodeFixed32(payload.data() + len);
    if (Crc32(0, payload.data(), len) != stored_crc) {
      defect = "record crc mismatch";
      break;
    }
    locations_.push_back({seg_id, offset + kFrameHeaderSize, len});
    valid_records++;
    offset += kFrameHeaderSize + len + kFrameTrailerSize;
  }
  if (defect.empty() && offset < file_size) {
    defect = "torn frame header";  // trailing fragment shorter than a header
  }
  s = file.Close();
  if (!s.ok()) return s;  // I/O error, not corruption: do not truncate

  if (defect.empty()) return Status::OK();
  if (!is_tail) {
    if (options_.degraded_open && defect_offset != nullptr) {
      *defect_offset = offset;
      fprintf(stderr,
              "[sebdb] block store %s: %s in non-tail segment %s at offset "
              "%llu; degraded open, quarantining chain suffix\n",
              dir_.c_str(), defect.c_str(), name.c_str(),
              static_cast<unsigned long long>(offset));
      return Status::OK();
    }
    return Status::Corruption(defect + " in non-tail segment " + name +
                              " at offset " + std::to_string(offset));
  }
  // Torn tail from a crash mid-append: truncate back to the last valid
  // record so the writer resumes there instead of appending after garbage.
  // Well-framed records past the defect are dropped too — without a valid
  // prefix they cannot be trusted to be the records consensus committed.
  uint64_t garbage = file_size - offset;
  s = env_->TruncateFile(path, offset);
  if (!s.ok()) return s;
  recovery_.bytes_truncated += garbage;
  recovery_.tail_truncated = true;
  // Count whole frames lost after the defect point (best effort: at least
  // the defective record itself).
  recovery_.records_dropped += 1;
  fprintf(stderr,
          "[sebdb] block store %s: %s in tail segment %s; truncated %llu "
          "byte(s), %zu valid record(s) kept\n",
          dir_.c_str(), defect.c_str(), name.c_str(),
          static_cast<unsigned long long>(garbage), valid_records);
  return Status::OK();
}

Status BlockStore::RecoverSegments() {
  std::vector<std::string> files;
  Status s = env_->ListDir(dir_, &files);
  if (!s.ok()) return s;
  std::vector<std::string> segments;
  for (const auto& f : files) {
    if (f.size() == 14 && f.rfind(".blk") == 10 && f.rfind("seg_", 0) == 0) {
      segments.push_back(f);
    }
  }
  std::sort(segments.begin(), segments.end());

  locations_.clear();
  recovery_ = RecoveryStats{};
  uint32_t tail_seg =
      segments.empty() ? 0 : static_cast<uint32_t>(segments.size() - 1);
  if (options_.trusted_prefix == nullptr ||
      !TryTrustedRecover(*options_.trusted_prefix, segments)) {
    // Full validating scan (no checkpoint, or the prefix did not match).
    locations_.clear();
    recovery_ = RecoveryStats{};
    for (uint32_t seg_id = 0; seg_id < segments.size(); seg_id++) {
      uint64_t defect_offset = kNoDefect;
      s = ScanSegment(seg_id, segments[seg_id],
                      /*is_tail=*/seg_id + 1 == segments.size(),
                      /*start_offset=*/0, &defect_offset);
      if (!s.ok()) return s;
      if (defect_offset != kNoDefect) {
        // Degraded open: set the defective suffix aside and resume appends
        // at the end of the verified prefix. Later segments are never
        // scanned — without a valid predecessor their records cannot be
        // trusted to be the chain consensus committed.
        s = QuarantineSuffix(seg_id, defect_offset, segments);
        if (!s.ok()) return s;
        tail_seg = seg_id;
        break;
      }
    }
  }
  recovery_.blocks_recovered = locations_.size();
  recovery_.segments_scanned = static_cast<uint32_t>(segments.size());

  active_segment_ = tail_seg;
  return OpenSegmentForAppend(active_segment_);
}

// Copies the defective byte range and every later segment to .quar files
// (post-mortem evidence), then drops them from the live chain: later
// segments are removed highest-first so the live set stays dense, and the
// defective segment is truncated back to its verified prefix last. A crash
// anywhere in between leaves a state the next open self-heals: either the
// defect is re-detected (re-quarantine) or the defective segment has become
// the tail and ordinary tail truncation finishes the job.
Status BlockStore::QuarantineSuffix(uint32_t defect_seg, uint64_t defect_offset,
                                    const std::vector<std::string>& segments) {
  uint64_t bytes = 0;
  for (size_t seg = defect_seg; seg < segments.size(); seg++) {
    const std::string src_path = dir_ + "/" + segments[seg];
    const std::string quar_path = src_path + ".quar";
    const uint64_t from = seg == defect_seg ? defect_offset : 0;
    RandomAccessFile src;
    Status s = src.Open(src_path, env_);
    if (!s.ok()) return s;
    std::string contents;
    if (src.size() > from) {
      s = src.Read(from, src.size() - from, &contents);
      if (!s.ok()) {
        (void)src.Close();
        return s;
      }
    }
    s = src.Close();
    if (!s.ok()) return s;
    (void)env_->RemoveFile(quar_path);  // stale copy from an earlier repair
    AppendOnlyFile quar;
    s = quar.Open(quar_path, env_);
    if (!s.ok()) return s;
    s = quar.Append(contents);
    if (s.ok()) s = quar.Sync();
    Status close = quar.Close();
    if (s.ok()) s = close;
    if (!s.ok()) return s;
    bytes += contents.size();
  }
  Status s;
  for (size_t seg = segments.size(); seg-- > defect_seg + 1;) {
    s = env_->RemoveFile(dir_ + "/" + segments[seg]);
    if (!s.ok()) return s;
  }
  s = env_->TruncateFile(dir_ + "/" + segments[defect_seg], defect_offset);
  if (!s.ok()) return s;
  s = env_->SyncDir(dir_);
  if (!s.ok()) return s;
  recovery_.degraded = true;
  recovery_.segments_quarantined =
      static_cast<uint32_t>(segments.size() - defect_seg);
  recovery_.bytes_quarantined = bytes;
  fprintf(stderr,
          "[sebdb] block store %s: quarantined %u segment(s), %llu byte(s); "
          "serving verified prefix of %zu record(s)\n",
          dir_.c_str(), recovery_.segments_quarantined,
          static_cast<unsigned long long>(bytes), locations_.size());
  return Status::OK();
}

// Adopts the checkpoint's layout digest: rebuild Locations arithmetically,
// verify segment sizes are consistent with the claimed record lists, CRC
// spot-check the newest trusted record, then scan only the bytes past the
// prefix. Returns false (caller falls back to the full scan) on any
// mismatch — a digest is an optimization, never a source of truth.
bool BlockStore::TryTrustedRecover(const TrustedPrefix& trusted,
                                   const std::vector<std::string>& segments) {
  const size_t nt = trusted.segments.size();
  if (nt == 0 || nt > segments.size() || trusted.num_records() == 0) {
    return false;
  }

  Location last_loc{0, 0, 0};
  std::vector<uint64_t> seg_end(nt, 0);
  for (size_t t = 0; t < nt; t++) {
    uint64_t offset = 0;
    for (uint32_t len : trusted.segments[t]) {
      if (len > options_.segment_size) return false;
      locations_.push_back({static_cast<uint32_t>(t),
                            offset + kFrameHeaderSize, len});
      last_loc = locations_.back();
      offset += kFrameHeaderSize + len + kFrameTrailerSize;
    }
    seg_end[t] = offset;
    uint64_t actual = 0;
    if (!env_->FileSize(dir_ + "/" + segments[t], &actual).ok()) return false;
    // Rolled-past segments never grow, so anything but an exact size match
    // means the digest describes some other history. The last trusted
    // segment may legitimately have grown (appends since the checkpoint).
    if (t + 1 < nt ? actual != offset : actual < offset) return false;
  }

  // One CRC spot-check of the newest trusted record guards against the
  // pathological "same sizes, different bytes" case (e.g. a restored
  // backup); per-record validation stays where it always was: on read.
  std::string payload;
  {
    RandomAccessFile file;
    if (!file.Open(dir_ + "/" + segments[last_loc.segment], env_).ok()) {
      return false;
    }
    Status s = file.Read(last_loc.offset,
                         last_loc.length + kFrameTrailerSize, &payload);
    (void)file.Close();
    if (!s.ok() || payload.size() != last_loc.length + kFrameTrailerSize) {
      return false;
    }
  }
  uint32_t stored_crc = DecodeFixed32(payload.data() + last_loc.length);
  if (Crc32(0, payload.data(), last_loc.length) != stored_crc) return false;

  recovery_.blocks_trusted = locations_.size();
  recovery_.used_trusted_prefix = true;

  // Scan the unverified remainder: the tail of the last trusted segment,
  // then every later segment in full. Degraded handling stays disarmed here
  // (null defect pointer): a non-tail defect fails the trusted path and the
  // full-scan fallback quarantines with complete knowledge of the layout.
  for (size_t seg = nt - 1; seg < segments.size(); seg++) {
    Status s = ScanSegment(static_cast<uint32_t>(seg), segments[seg],
                           /*is_tail=*/seg + 1 == segments.size(),
                           /*start_offset=*/seg == nt - 1 ? seg_end[seg] : 0,
                           /*defect_offset=*/nullptr);
    if (!s.ok()) return false;
  }
  return true;
}

TrustedPrefix BlockStore::trusted_prefix_snapshot() const {
  MutexLock lock(&mu_);
  TrustedPrefix out;
  out.segments.resize(active_segment_ + 1);
  for (const Location& loc : locations_) {
    out.segments[loc.segment].push_back(loc.length);
  }
  return out;
}

Status BlockStore::OpenSegmentForAppend(uint32_t segment_id) {
  if (writer_.is_open() && options_.sync_on_append) {
    // Rolling: make the finished segment durable before moving on.
    Status s = writer_.Sync();
    if (!s.ok()) return s;
  }
  Status s = writer_.Close();
  if (!s.ok()) return s;
  const std::string path = dir_ + "/" + SegmentName(segment_id);
  uint64_t existing = 0;
  bool created = !env_->FileSize(path, &existing).ok();
  active_segment_ = segment_id;
  s = writer_.Open(path, env_);
  if (!s.ok()) return s;
  if (created) {
    // fsync the directory so the new segment's directory entry survives a
    // crash (otherwise recovery could find block N+1's segment but not N's).
    s = env_->SyncDir(dir_);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BlockStore::Append(const Block& block) {
  MutexLock lock(&mu_);
  if (!open_) return Status::IOError("block store not open");
  if (wedged_) {
    return Status::IOError(
        "block store wedged by an earlier write failure; reopen to recover");
  }
  if (block.height() != locations_.size()) {
    return Status::InvalidArgument(
        "non-consecutive block height " + std::to_string(block.height()) +
        " (expected " + std::to_string(locations_.size()) + ")");
  }

  std::string payload;
  block.EncodeTo(&payload);
  return AppendPayload(payload);
}

Status BlockStore::AppendRaw(BlockId height, const Slice& payload) {
  MutexLock lock(&mu_);
  if (!open_) return Status::IOError("block store not open");
  if (wedged_) {
    return Status::IOError(
        "block store wedged by an earlier write failure; reopen to recover");
  }
  if (height != locations_.size()) {
    return Status::InvalidArgument(
        "non-consecutive block height " + std::to_string(height) +
        " (expected " + std::to_string(locations_.size()) + ")");
  }
  return AppendPayload(payload);
}

// Shared framing path for Append/AppendRaw: rolls the segment when the
// frame would overflow it, then writes magic | len | payload | crc32.
Status BlockStore::AppendPayload(const Slice& payload) {
  if (writer_.size() + kFrameHeaderSize + payload.size() + kFrameTrailerSize >
          options_.segment_size &&
      writer_.size() > 0) {
    Status s = OpenSegmentForAppend(active_segment_ + 1);
    if (!s.ok()) {
      wedged_ = true;
      return s;
    }
  }

  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  PutFixed32(&frame, kRecordMagic);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  uint64_t payload_offset = writer_.size() + frame.size();
  frame.append(payload.data(), payload.size());
  PutFixed32(&frame, Crc32(0, payload.data(), payload.size()));

  Status s = writer_.Append(frame);
  if (!s.ok()) {
    wedged_ = true;  // unknown how much of the frame reached the file
    return s;
  }
  if (options_.sync_on_append) {
    s = writer_.Sync();
    if (!s.ok()) {
      wedged_ = true;  // record written but not durable; replay on reopen
      return s;
    }
  }

  locations_.push_back({active_segment_, payload_offset,
                        static_cast<uint32_t>(payload.size())});
  stats_.blocks_appended.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_appended.fetch_add(frame.size(), std::memory_order_relaxed);

  // A freshly appended segment invalidates any stale reader for it (size
  // changed); drop it so the next read reopens.
  if (active_segment_ < readers_.size()) {
    readers_[active_segment_].reset();
  }
  return Status::OK();
}

uint64_t BlockStore::num_blocks() const {
  MutexLock lock(&mu_);
  return locations_.size();
}

std::shared_ptr<RandomAccessFile> BlockStore::Reader(uint32_t segment) const {
  if (segment >= readers_.size()) readers_.resize(segment + 1);
  if (readers_[segment] == nullptr) {
    auto file = std::make_shared<RandomAccessFile>();
    Status s = file->Open(dir_ + "/" + SegmentName(segment), env_);
    if (!s.ok()) return nullptr;
    readers_[segment] = std::move(file);
  }
  return readers_[segment];
}

Status BlockStore::ReadAt(uint32_t segment, uint64_t offset, size_t n,
                          std::string* out) const {
  std::shared_ptr<RandomAccessFile> reader;
  {
    MutexLock lock(&mu_);
    reader = Reader(segment);
  }
  if (reader == nullptr) {
    return Status::IOError("cannot open segment " + std::to_string(segment));
  }
  return reader->Read(offset, n, out);
}

Status BlockStore::ReadPayload(const Location& loc, std::string* out) const {
  std::string with_crc;
  Status s =
      ReadAt(loc.segment, loc.offset, loc.length + kFrameTrailerSize, &with_crc);
  if (!s.ok()) return s;
  uint32_t stored_crc = DecodeFixed32(with_crc.data() + loc.length);
  if (Crc32(0, with_crc.data(), loc.length) != stored_crc) {
    return Status::Corruption("block record crc mismatch");
  }
  with_crc.resize(loc.length);
  *out = std::move(with_crc);
  return Status::OK();
}

Status BlockStore::ReadBlock(BlockId height,
                             std::shared_ptr<const Block>* out) {
  if (block_cache_ != nullptr) {
    if (auto cached = block_cache_->Lookup(height)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      *out = std::move(cached);
      return Status::OK();
    }
  }
  Location loc;
  {
    MutexLock lock(&mu_);
    if (height >= locations_.size()) {
      return Status::NotFound("no block at height " + std::to_string(height));
    }
    loc = locations_[height];
  }
  std::string payload;
  Status s = ReadPayload(loc, &payload);
  if (!s.ok()) return s;
  stats_.blocks_read.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(payload.size(), std::memory_order_relaxed);

  auto block = std::make_shared<Block>();
  Slice input(payload);
  s = Block::DecodeFrom(&input, block.get());
  if (!s.ok()) return s;
  if (block_cache_ != nullptr) {
    block_cache_->Insert(height, block, block->ByteSize());
  }
  *out = std::move(block);
  return Status::OK();
}

Status BlockStore::ReadBlocks(BlockId first, uint64_t count,
                              std::vector<std::shared_ptr<const Block>>* out) {
  // Cap on the bytes coalesced into one pread; keeps peak memory bounded on
  // chains with large blocks while still amortizing syscall + seek cost.
  constexpr uint64_t kReadaheadBytes = 4ull << 20;

  out->assign(count, nullptr);
  std::vector<Location> locations(count);
  {
    MutexLock lock(&mu_);
    if (first + count > locations_.size()) {
      return Status::NotFound("no block at height " +
                              std::to_string(first + count - 1));
    }
    for (uint64_t i = 0; i < count; i++) locations[i] = locations_[first + i];
  }

  uint64_t i = 0;
  while (i < count) {
    if (block_cache_ != nullptr) {
      if (auto cached = block_cache_->Lookup(first + i)) {
        stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        (*out)[i] = std::move(cached);
        i++;
        continue;
      }
    }
    // Extend the run while frames stay physically consecutive in the same
    // segment (payload + crc + next frame header) and under the size cap.
    uint64_t j = i + 1;
    auto frame_end = [](const Location& loc) {
      return loc.offset + loc.length + kFrameTrailerSize;
    };
    while (j < count && locations[j].segment == locations[i].segment &&
           locations[j].offset ==
               frame_end(locations[j - 1]) + kFrameHeaderSize &&
           frame_end(locations[j]) - locations[i].offset < kReadaheadBytes) {
      j++;
    }
    std::string buffer;
    Status s = ReadAt(locations[i].segment, locations[i].offset,
                      frame_end(locations[j - 1]) - locations[i].offset,
                      &buffer);
    if (!s.ok()) return s;
    stats_.bytes_read.fetch_add(buffer.size(), std::memory_order_relaxed);
    for (uint64_t k = i; k < j; k++) {
      const Location& loc = locations[k];
      const char* payload = buffer.data() + (loc.offset - locations[i].offset);
      uint32_t stored_crc = DecodeFixed32(payload + loc.length);
      if (Crc32(0, payload, loc.length) != stored_crc) {
        return Status::Corruption("block record crc mismatch");
      }
      stats_.blocks_read.fetch_add(1, std::memory_order_relaxed);
      auto block = std::make_shared<Block>();
      Slice input(payload, loc.length);
      s = Block::DecodeFrom(&input, block.get());
      if (!s.ok()) return s;
      if (block_cache_ != nullptr) {
        block_cache_->Insert(first + k, block, block->ByteSize());
      }
      (*out)[k] = std::move(block);
    }
    i = j;
  }
  return Status::OK();
}

Status BlockStore::ReadHeader(BlockId height, BlockHeader* out) {
  if (block_cache_ != nullptr) {
    if (auto cached = block_cache_->Lookup(height)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      *out = cached->header();
      return Status::OK();
    }
  }
  Location loc;
  {
    MutexLock lock(&mu_);
    if (height >= locations_.size()) {
      return Status::NotFound("no block at height " + std::to_string(height));
    }
    loc = locations_[height];
  }
  // First positional read: the header length prefix; second: the header.
  std::string prefix;
  Status s = ReadAt(loc.segment, loc.offset, 4, &prefix);
  if (!s.ok()) return s;
  uint32_t header_len = DecodeFixed32(prefix.data());
  if (header_len + 4 > loc.length) {
    return Status::Corruption("block header length out of range");
  }
  std::string header_bytes;
  s = ReadAt(loc.segment, loc.offset + 4, header_len, &header_bytes);
  if (!s.ok()) return s;
  stats_.headers_read.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(4 + header_bytes.size(),
                              std::memory_order_relaxed);
  Slice input(header_bytes);
  return BlockHeader::DecodeFrom(&input, out);
}

Status BlockStore::ReadTransaction(BlockId height, uint32_t index,
                                   std::shared_ptr<const Transaction>* out) {
  const uint64_t cache_key = TxnCacheKey(height, index);
  if (txn_cache_ != nullptr) {
    if (auto cached = txn_cache_->Lookup(cache_key)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      *out = std::move(cached);
      return Status::OK();
    }
  }
  if (block_cache_ != nullptr) {
    if (auto cached = block_cache_->Lookup(height)) {
      if (index >= cached->transactions().size()) {
        return Status::InvalidArgument("transaction index out of range");
      }
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      auto txn = std::make_shared<Transaction>(cached->transactions()[index]);
      if (txn_cache_ != nullptr) {
        txn_cache_->Insert(cache_key, txn, txn->ByteSize());
      }
      *out = std::move(txn);
      return Status::OK();
    }
  }

  Location loc;
  {
    MutexLock lock(&mu_);
    if (height >= locations_.size()) {
      return Status::NotFound("no block at height " + std::to_string(height));
    }
    loc = locations_[height];
  }

  // Random-read path: (1) header length, (2) txn count + offset entries,
  // (3) the transaction bytes themselves.
  std::string prefix;
  Status s = ReadAt(loc.segment, loc.offset, 4, &prefix);
  if (!s.ok()) return s;
  uint32_t header_len = DecodeFixed32(prefix.data());
  uint64_t count_off = loc.offset + 4 + header_len;

  std::string count_bytes;
  s = ReadAt(loc.segment, count_off, 4, &count_bytes);
  if (!s.ok()) return s;
  uint32_t n = DecodeFixed32(count_bytes.data());
  if (index >= n) return Status::InvalidArgument("transaction index out of range");

  // Read offsets[index] and, when available, offsets[index + 1].
  bool has_next = index + 1 < n;
  std::string offset_bytes;
  s = ReadAt(loc.segment, count_off + 4 + static_cast<uint64_t>(index) * 4,
             has_next ? 8 : 4, &offset_bytes);
  if (!s.ok()) return s;
  uint32_t start = DecodeFixed32(offset_bytes.data());
  uint64_t body_off = count_off + 4 + static_cast<uint64_t>(n) * 4;
  uint64_t body_len = loc.offset + loc.length - body_off;
  uint64_t end = has_next ? DecodeFixed32(offset_bytes.data() + 4) : body_len;
  if (start > end || end > body_len) {
    return Status::Corruption("bad transaction offsets");
  }

  std::string txn_bytes;
  s = ReadAt(loc.segment, body_off + start, static_cast<size_t>(end - start),
             &txn_bytes);
  if (!s.ok()) return s;
  stats_.transactions_read.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(16 + txn_bytes.size(),
                              std::memory_order_relaxed);

  auto txn = std::make_shared<Transaction>();
  Slice input(txn_bytes);
  s = Transaction::DecodeFrom(&input, txn.get());
  if (!s.ok()) return s;
  if (txn_cache_ != nullptr) {
    txn_cache_->Insert(cache_key, txn, txn->ByteSize());
  }
  *out = std::move(txn);
  return Status::OK();
}

Status BlockStore::ReadRawRecord(BlockId height, std::string* out) {
  Location loc;
  {
    MutexLock lock(&mu_);
    if (height >= locations_.size()) {
      return Status::NotFound("no block at height " + std::to_string(height));
    }
    loc = locations_[height];
  }
  return ReadPayload(loc, out);
}

BlockStore::CacheStats BlockStore::cache_stats() const {
  // mu_ pins the cache pointers against a concurrent Open/Close; each
  // cache's stats() call is one atomic snapshot of its counters.
  MutexLock lock(&mu_);
  CacheStats out;
  if (block_cache_ != nullptr) {
    const auto stats = block_cache_->stats();
    out.block_hits = stats.hits;
    out.block_misses = stats.misses;
    out.block_evictions = stats.evictions;
    out.block_usage = stats.usage;
    out.block_capacity = block_cache_->capacity();
  }
  if (txn_cache_ != nullptr) {
    const auto stats = txn_cache_->stats();
    out.txn_hits = stats.hits;
    out.txn_misses = stats.misses;
    out.txn_evictions = stats.evictions;
    out.txn_usage = stats.usage;
    out.txn_capacity = txn_cache_->capacity();
  }
  return out;
}

BlockStore::RecoveryStats BlockStore::recovery_stats() const {
  MutexLock lock(&mu_);
  return recovery_;
}

Status BlockStore::Close() {
  MutexLock lock(&mu_);
  if (!open_) return Status::OK();
  open_ = false;
  readers_.clear();
  return writer_.Close();
}

}  // namespace sebdb
