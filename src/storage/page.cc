#include "storage/page.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace sebdb {

namespace {
constexpr uint32_t kPageMagic = 0x5ebdba6e;
}  // namespace

Status EncodePage(PageType type, const Slice& payload, std::string* dst) {
  if (payload.size() > kMaxPagePayload) {
    return Status::InvalidArgument("page payload exceeds " +
                                   std::to_string(kMaxPagePayload) + " bytes");
  }
  const size_t base = dst->size();
  dst->reserve(base + kPageSize);
  PutFixed32(dst, kPageMagic);
  PutFixed32(dst, 0);  // crc patched below
  dst->push_back(static_cast<char>(type));
  dst->push_back(0);  // reserved
  PutFixed16(dst, static_cast<uint16_t>(payload.size()));
  dst->append(payload.data(), payload.size());
  dst->resize(base + kPageSize, '\0');
  // CRC over type..payload: bytes [base + 8, base + 12 + len).
  uint32_t crc = Crc32(0, dst->data() + base + 8, 4 + payload.size());
  EncodeFixed32(dst->data() + base + 4, crc);
  return Status::OK();
}

Status DecodePage(const Slice& page, PageType* type, Slice* payload) {
  if (page.size() != kPageSize) {
    return Status::Corruption("page size mismatch");
  }
  const char* p = page.data();
  if (DecodeFixed32(p) != kPageMagic) {
    return Status::Corruption("bad page magic");
  }
  uint32_t stored_crc = DecodeFixed32(p + 4);
  uint8_t type_byte = static_cast<uint8_t>(p[8]);
  uint16_t len = static_cast<uint16_t>(static_cast<uint8_t>(p[10]) |
                                       (static_cast<uint8_t>(p[11]) << 8));
  if (len > kMaxPagePayload) {
    return Status::Corruption("page payload length out of range");
  }
  if (type_byte != static_cast<uint8_t>(PageType::kBTreeLeaf) &&
      type_byte != static_cast<uint8_t>(PageType::kBTreeInternal) &&
      type_byte != static_cast<uint8_t>(PageType::kBlob)) {
    return Status::Corruption("unknown page type");
  }
  if (Crc32(0, p + 8, 4 + len) != stored_crc) {
    return Status::Corruption("page crc mismatch");
  }
  *type = static_cast<PageType>(type_byte);
  *payload = Slice(p + kPageHeaderSize, len);
  return Status::OK();
}

}  // namespace sebdb
