#include "storage/merkle_tree.h"

namespace sebdb {

namespace {

std::vector<Hash256> NextLevel(const std::vector<Hash256>& level) {
  std::vector<Hash256> up;
  up.reserve((level.size() + 1) / 2);
  for (size_t i = 0; i < level.size(); i += 2) {
    const Hash256& left = level[i];
    const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
    up.push_back(Sha256::DigestPair(left, right));
  }
  return up;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : num_leaves_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Hash256{};
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    levels_.push_back(NextLevel(levels_.back()));
  }
  root_ = levels_.back()[0];
}

Status MerkleTree::ProveLeaf(uint32_t index, MerkleProof* proof) const {
  if (index >= num_leaves_) {
    return Status::InvalidArgument("leaf index out of range");
  }
  proof->leaf_index = index;
  proof->steps.clear();
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); lvl++) {
    const auto& level = levels_[lvl];
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    // Odd level: last node is its own sibling.
    if (sibling >= level.size()) sibling = pos;
    proof->steps.push_back({level[sibling], pos % 2 == 1});
    pos /= 2;
  }
  return Status::OK();
}

Hash256 MerkleTree::RootFromProof(const Hash256& leaf,
                                  const MerkleProof& proof) {
  Hash256 h = leaf;
  for (const auto& step : proof.steps) {
    h = step.sibling_is_left ? Sha256::DigestPair(step.sibling, h)
                             : Sha256::DigestPair(h, step.sibling);
  }
  return h;
}

Hash256 MerkleTree::ComputeRoot(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) level = NextLevel(level);
  return level[0];
}

}  // namespace sebdb
