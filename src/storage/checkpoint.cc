#include "storage/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "common/coding.h"
#include "common/crc32.h"
#include "storage/page.h"

namespace sebdb {

namespace {

constexpr uint32_t kManifestMagic = 0x5ebdbc45;
constexpr size_t kFrameHeaderSize = 8;   // magic + payload length
constexpr size_t kFrameTrailerSize = 4;  // crc32 of the payload
constexpr char kManifestName[] = "MANIFEST";
// Generous bound: a manifest record lists file names and sizes, not data.
constexpr uint32_t kMaxRecordSize = 64u << 20;

}  // namespace

void CheckpointManager::EncodeManifestRecord(const CheckpointRecord& rec,
                                             std::string* dst) {
  PutVarint64(dst, rec.id);
  PutVarint64(dst, rec.height);
  PutVarint32(dst, static_cast<uint32_t>(rec.files.size()));
  for (const CheckpointFile& f : rec.files) {
    PutLengthPrefixed(dst, f.name);
    PutVarint64(dst, f.size);
  }
}

bool CheckpointManager::DecodeManifestRecord(Slice* in, CheckpointRecord* rec) {
  uint32_t nfiles;
  if (!GetVarint64(in, &rec->id) || !GetVarint64(in, &rec->height) ||
      !GetVarint32(in, &nfiles)) {
    return false;
  }
  // A name needs at least its one-byte length prefix.
  if (nfiles > in->size()) return false;
  rec->files.clear();
  rec->files.reserve(nfiles);
  for (uint32_t i = 0; i < nfiles; i++) {
    CheckpointFile f;
    Slice name;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &f.size)) {
      return false;
    }
    if (name.empty() ||
        name.ToString().find('/') != std::string::npos) {
      return false;  // names are flat, within the checkpoint dir
    }
    f.name = name.ToString();
    rec->files.push_back(std::move(f));
  }
  return true;
}

Status CheckpointManager::Open(Env* env, const std::string& dir,
                               std::unique_ptr<CheckpointManager>* out) {
  Status s = env->CreateDirIfMissing(dir);
  if (!s.ok()) return s;
  std::unique_ptr<CheckpointManager> mgr(new CheckpointManager(env, dir));
  s = mgr->Load();
  if (!s.ok()) return s;
  mgr->DropUnreferencedFiles();
  s = env->NewWritableFile(mgr->FilePath(kManifestName), &mgr->writer_);
  if (!s.ok()) return s;
  *out = std::move(mgr);
  return Status::OK();
}

Status CheckpointManager::Load() {
  const std::string path = FilePath(kManifestName);
  uint64_t file_size = 0;
  if (!env_->FileSize(path, &file_size).ok() || file_size == 0) {
    return Status::OK();  // fresh directory
  }
  std::unique_ptr<ReadableFile> reader;
  Status s = env_->NewReadableFile(path, &reader);
  if (!s.ok()) return s;
  std::string buf;
  s = reader->Read(0, file_size, &buf);
  if (!s.ok()) return s;

  // Valid prefix of CRC frames wins; anything after the first defect is a
  // torn append and is truncated away (same self-heal as block segments).
  size_t offset = 0;
  while (offset + kFrameHeaderSize <= buf.size()) {
    const char* p = buf.data() + offset;
    if (DecodeFixed32(p) != kManifestMagic) break;
    uint32_t len = DecodeFixed32(p + 4);
    if (len > kMaxRecordSize ||
        offset + kFrameHeaderSize + len + kFrameTrailerSize > buf.size()) {
      break;
    }
    const char* payload = p + kFrameHeaderSize;
    uint32_t crc = DecodeFixed32(payload + len);
    if (Crc32(0, payload, len) != crc) break;
    Slice in(payload, len);
    CheckpointRecord rec;
    if (!DecodeManifestRecord(&in, &rec) || !in.empty()) break;
    records_.push_back(std::move(rec));
    offset += kFrameHeaderSize + len + kFrameTrailerSize;
  }
  if (offset < buf.size()) {
    s = env_->TruncateFile(path, offset);
    if (!s.ok()) return s;
    manifest_truncated_ = true;
    std::fprintf(stderr,
                 "[sebdb] checkpoint manifest %s: dropped torn tail "
                 "(%llu -> %llu bytes)\n",
                 path.c_str(), static_cast<unsigned long long>(buf.size()),
                 static_cast<unsigned long long>(offset));
  }

  // Newest record whose files all survived intact is the one recovery uses;
  // a crash between page-file writes and the manifest append leaves the
  // newest record pointing at missing/short files, so walk backwards.
  for (size_t i = records_.size(); i-- > 0;) {
    if (RecordUsable(records_[i])) {
      usable_ = i;
      break;
    }
  }
  return Status::OK();
}

bool CheckpointManager::RecordUsable(const CheckpointRecord& rec) const {
  for (const CheckpointFile& f : rec.files) {
    uint64_t size = 0;
    if (!env_->FileSize(FilePath(f.name), &size).ok() || size != f.size) {
      return false;
    }
  }
  return true;
}

void CheckpointManager::DropUnreferencedFiles() {
  std::vector<std::string> entries;
  if (!env_->ListDir(dir_, &entries).ok()) return;
  // Cumulative records re-list every surviving ancestor file, so a
  // name-by-name scan over all records is quadratic in checkpoint count;
  // one set keeps startup GC linear in directory size.
  std::unordered_set<std::string> referenced;
  for (const CheckpointRecord& rec : records_) {
    for (const CheckpointFile& f : rec.files) referenced.insert(f.name);
  }
  for (const std::string& name : entries) {
    if (name == kManifestName) continue;
    if (referenced.find(name) == referenced.end()) {
      // Leftover from a build whose manifest record never landed.
      (void)env_->RemoveFile(FilePath(name));
    }
  }
}

uint64_t CheckpointManager::next_id() const {
  uint64_t max_id = 0;
  for (const CheckpointRecord& rec : records_) {
    max_id = std::max(max_id, rec.id);
  }
  return max_id + 1;
}

Status CheckpointManager::Publish(const CheckpointRecord& rec) {
  std::string frame;
  std::string payload;
  EncodeManifestRecord(rec, &payload);
  PutFixed32(&frame, kManifestMagic);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  PutFixed32(&frame, Crc32(0, payload.data(), payload.size()));
  Status s = writer_->Append(frame);
  if (s.ok()) s = writer_->Sync();
  if (s.ok()) s = env_->SyncDir(dir_);
  if (!s.ok()) return s;

  // The new record is durable; drop files only the superseded one used.
  // Cumulative file lists grow with the chain, so membership goes through
  // a set rather than a nested scan.
  const CheckpointRecord* prev = latest();
  if (prev != nullptr) {
    std::unordered_set<std::string> kept;
    for (const CheckpointFile& nf : rec.files) kept.insert(nf.name);
    for (const CheckpointFile& f : prev->files) {
      if (kept.find(f.name) == kept.end()) {
        (void)env_->RemoveFile(FilePath(f.name));
      }
    }
  }
  records_.push_back(rec);
  usable_ = records_.size() - 1;
  return Status::OK();
}

Status CheckpointManager::WriteBlobFile(BufferManager* pool,
                                        BufferManager::FileId file,
                                        const Slice& bytes) {
  size_t offset = 0;
  do {
    size_t n = std::min(bytes.size() - offset, kMaxPagePayload);
    PageId pid;
    Status s = pool->AppendPage(file, PageType::kBlob,
                                Slice(bytes.data() + offset, n), &pid);
    if (!s.ok()) return s;
    offset += n;
  } while (offset < bytes.size());
  return Status::OK();
}

Status CheckpointManager::ReadBlobFile(Env* env, const std::string& path,
                                       std::string* out) {
  out->clear();
  std::unique_ptr<ReadableFile> reader;
  Status s = env->NewReadableFile(path, &reader);
  if (!s.ok()) return s;
  uint64_t size = reader->size();
  std::string bytes;
  s = reader->Read(0, size, &bytes);
  if (!s.ok()) return s;
  if (bytes.size() != size) {
    return Status::IOError("short blob file read from " + path);
  }
  s = DecodeBlobPages(Slice(bytes), out);
  if (!s.ok()) {
    return Status::Corruption(s.message() + " (blob file " + path + ")");
  }
  return Status::OK();
}

Status CheckpointManager::DecodeBlobPages(const Slice& bytes,
                                          std::string* out) {
  out->clear();
  if (bytes.size() % kPageSize != 0) {
    return Status::Corruption("blob is not a whole number of pages");
  }
  for (uint64_t off = 0; off < bytes.size(); off += kPageSize) {
    PageType type;
    Slice payload;
    Status s = DecodePage(Slice(bytes.data() + off, kPageSize), &type,
                          &payload);
    if (!s.ok()) return s;
    if (type != PageType::kBlob) {
      return Status::Corruption("unexpected page type in blob");
    }
    out->append(payload.data(), payload.size());
  }
  return Status::OK();
}

void CheckpointManager::CompressZeroRuns(const Slice& raw, std::string* out) {
  out->clear();
  const char* data = raw.data();
  const size_t size = raw.size();
  size_t i = 0;
  while (i < size) {
    // Literal runs until a zero run long enough to pay for its varint
    // (>= 4 bytes); shorter zero stretches stay literal. memchr skips the
    // literal bytes, a word-wise loop skips the zeros — page files are
    // mostly padding, so both legs run at memory speed.
    const size_t lit_start = i;
    size_t lit_end;
    size_t run_end;
    for (;;) {
      const void* z = memchr(data + i, 0, size - i);
      if (z == nullptr) {
        lit_end = run_end = size;
        break;
      }
      size_t j = static_cast<size_t>(static_cast<const char*>(z) - data);
      size_t k = j;
      while (k + 8 <= size) {
        uint64_t word;
        memcpy(&word, data + k, 8);
        if (word != 0) break;
        k += 8;
      }
      while (k < size && data[k] == 0) k++;
      if (k - j >= 4 || k == size) {
        lit_end = j;
        run_end = k;
        break;
      }
      i = k;  // short zero stretch: keep it literal, scan on
    }
    // Varint32 is enough: page files are capped well below 4 GiB, and the
    // record size check at decompress time re-enforces the bound anyway.
    PutVarint32(out, static_cast<uint32_t>(lit_end - lit_start));
    out->append(data + lit_start, lit_end - lit_start);
    PutVarint32(out, static_cast<uint32_t>(run_end - lit_end));
    i = run_end;
  }
}

Status CheckpointManager::DecompressZeroRuns(const Slice& transfer,
                                             uint64_t raw_size,
                                             std::string* out) {
  out->clear();
  out->reserve(raw_size);
  Slice in = transfer;
  while (!in.empty()) {
    uint32_t lit_len = 0;
    uint32_t run_len = 0;
    if (!GetVarint32(&in, &lit_len) || in.size() < lit_len) {
      return Status::Corruption("truncated transfer literal");
    }
    if (out->size() + lit_len > raw_size) {
      return Status::Corruption("transfer decodes past declared file size");
    }
    out->append(in.data(), lit_len);
    in.remove_prefix(lit_len);
    if (!GetVarint32(&in, &run_len)) {
      return Status::Corruption("truncated transfer zero run");
    }
    if (out->size() + run_len > raw_size) {
      return Status::Corruption("transfer decodes past declared file size");
    }
    out->append(run_len, '\0');
  }
  if (out->size() != raw_size) {
    return Status::Corruption("transfer decodes short of declared file size");
  }
  return Status::OK();
}

}  // namespace sebdb
