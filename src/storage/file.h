// Thin POSIX file wrappers: append-only writer and positional reader.
// Blocks are appended to segment files and read back with pread so scans and
// random transaction reads hit the real I/O path (paper §IV-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace sebdb {

class AppendOnlyFile {
 public:
  AppendOnlyFile() = default;
  ~AppendOnlyFile();
  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  /// Opens (creating if needed) for append; size() reflects existing bytes.
  Status Open(const std::string& path);
  Status Append(const Slice& data);
  Status Sync();
  Status Close();

  uint64_t size() const { return size_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  Status Open(const std::string& path);
  /// Reads exactly n bytes at offset into *scratch and points result at it.
  /// Fails with IOError on short reads.
  Status Read(uint64_t offset, size_t n, std::string* scratch) const;
  Status Close();

  uint64_t size() const { return size_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

/// Recursively creates a directory (a la mkdir -p).
Status CreateDirIfMissing(const std::string& path);
/// Lists regular files in a directory (names only, unsorted).
Status ListDir(const std::string& path, std::vector<std::string>* out);
/// Removes a directory tree (used by tests and benches for scratch dirs).
Status RemoveDirRecursive(const std::string& path);

}  // namespace sebdb
