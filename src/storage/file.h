// Thin file wrappers over the common/env.h seam: append-only writer and
// positional reader. Blocks are appended to segment files and read back with
// pread so scans and random transaction reads hit the real I/O path (paper
// §IV-A). Passing a non-default Env (e.g. FaultInjectionEnv) lets tests
// inject torn writes and I/O errors on exactly these paths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"

namespace sebdb {

class AppendOnlyFile {
 public:
  AppendOnlyFile() = default;
  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  /// Opens (creating if needed) for append; size() reflects existing bytes.
  /// `env` defaults to Env::Default().
  Status Open(const std::string& path, Env* env = nullptr);
  Status Append(const Slice& data);
  Status Sync();
  Status Close();

  uint64_t size() const { return file_ == nullptr ? 0 : file_->size(); }
  bool is_open() const { return file_ != nullptr; }

 private:
  std::unique_ptr<WritableFile> file_;
  std::string path_;
};

class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  Status Open(const std::string& path, Env* env = nullptr);
  /// Reads exactly n bytes at offset into *scratch and points result at it.
  /// Fails with IOError on short reads.
  Status Read(uint64_t offset, size_t n, std::string* scratch) const;
  Status Close();

  uint64_t size() const { return file_ == nullptr ? 0 : file_->size(); }
  bool is_open() const { return file_ != nullptr; }

 private:
  std::unique_ptr<ReadableFile> file_;
  std::string path_;
};

/// Recursively creates a directory (a la mkdir -p). Env::Default().
Status CreateDirIfMissing(const std::string& path);
/// Lists regular files in a directory (names only, unsorted). Env::Default().
Status ListDir(const std::string& path, std::vector<std::string>* out);
/// Removes a directory tree (used by tests and benches for scratch dirs).
Status RemoveDirRecursive(const std::string& path);

}  // namespace sebdb
