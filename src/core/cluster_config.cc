#include "core/cluster_config.h"

#include <sstream>

namespace sebdb {

std::vector<std::string> ClusterConfig::NodeIds() const {
  std::vector<std::string> ids;
  ids.reserve(nodes.size());
  for (const auto& node : nodes) ids.push_back(node.id);
  return ids;
}

const ClusterNodeSpec* ClusterConfig::Find(const std::string& id) const {
  for (const auto& node : nodes) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

Status ParseClusterConfig(const std::string& text, ClusterConfig* out) {
  out->nodes.clear();
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    lineno++;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line
    if (directive != "node") {
      return Status::InvalidArgument("cluster config line " +
                                     std::to_string(lineno) +
                                     ": unknown directive '" + directive + "'");
    }
    ClusterNodeSpec spec;
    int port = 0;
    if (!(fields >> spec.id >> spec.host >> port) || port <= 0 ||
        port > 65535) {
      return Status::InvalidArgument("cluster config line " +
                                     std::to_string(lineno) +
                                     ": expected 'node <id> <host> <port>'");
    }
    spec.port = static_cast<uint16_t>(port);
    if (out->Find(spec.id) != nullptr) {
      return Status::InvalidArgument("cluster config: duplicate node id '" +
                                     spec.id + "'");
    }
    out->nodes.push_back(std::move(spec));
  }
  if (out->nodes.empty()) {
    return Status::InvalidArgument("cluster config: no nodes");
  }
  return Status::OK();
}

Status LoadClusterConfig(Env* env, const std::string& path,
                         ClusterConfig* out) {
  std::unique_ptr<ReadableFile> file;
  Status s = env->NewReadableFile(path, &file);
  if (!s.ok()) return s;
  std::string text;
  s = file->Read(0, file->size(), &text);
  if (!s.ok()) return s;
  return ParseClusterConfig(text, out);
}

std::string DevSecret(const std::string& id) { return "sk:" + id; }

Status SeedDevKeyStore(const ClusterConfig& config,
                       const std::vector<std::string>& extras,
                       KeyStore* keystore) {
  for (const auto& node : config.nodes) {
    Status s = keystore->AddIdentity(node.id, DevSecret(node.id));
    if (!s.ok()) return s;
  }
  for (const auto& id : extras) {
    Status s = keystore->AddIdentity(id, DevSecret(id));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

TcpNetworkOptions MakeClusterTcpOptions(const ClusterConfig& config,
                                        const std::string& local_id) {
  TcpNetworkOptions options;
  options.local_id = local_id;
  const ClusterNodeSpec* self = config.Find(local_id);
  if (self != nullptr) {
    options.listen_host = self->host;
    options.listen_port = self->port;
  } else {
    options.listen_host = "127.0.0.1";
    options.listen_port = 0;  // clients accept nothing; ephemeral is fine
  }
  for (const auto& node : config.nodes) {
    if (node.id == local_id) continue;
    options.peers.push_back(TcpPeer{node.id, node.host, node.port});
  }
  // Distinct per-process jitter streams: two nodes restarting together must
  // not re-dial in lockstep.
  uint64_t seed = 0x7cb5ebdbULL;
  for (char c : local_id) seed = seed * 131 + static_cast<unsigned char>(c);
  options.seed = seed;
  return options;
}

}  // namespace sebdb
