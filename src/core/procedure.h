// Smart-contract-lite: named stored procedures of SQL-like statements
// (paper §III-B: "the system supports smart contract embedded SQL-like
// language to define a DApp, where SQL-like is responsible for accessing
// data"). A procedure is a parameterized statement list executed in order
// against one node; '?' placeholders are bound from the invocation
// arguments, numbered across the whole procedure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/node.h"

#include "common/thread_annotations.h"

namespace sebdb {

class ProcedureRegistry {
 public:
  /// Registers a procedure. Each statement is validated by parsing it now.
  Status Register(const std::string& name,
                  std::vector<std::string> statements);

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Runs every statement in order on `node`, binding `params` positionally
  /// across all statements ('?' number 1 is the first ? of statement 1,
  /// and numbering continues through later statements). Stops at the first
  /// failure. Results of read statements are appended to `results`.
  Status Invoke(SebdbNode* node, const std::string& name,
                const std::vector<Value>& params,
                std::vector<ResultSet>* results) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::vector<std::string>> procedures_
      GUARDED_BY(mu_);
};

}  // namespace sebdb
