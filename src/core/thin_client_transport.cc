#include "core/thin_client_transport.h"

#include <cstring>

#include "common/coding.h"
#include "core/node.h"

namespace sebdb {

namespace thin_rpc {

namespace {

void PutOptionalValue(std::string* dst, bool present, const Value& v) {
  dst->push_back(present ? 1 : 0);
  if (present) v.EncodeTo(dst);
}

Status GetOptionalValue(Slice* input, bool* present, Value* v) {
  if (input->empty()) return Status::Corruption("truncated optional value");
  *present = (*input)[0] != 0;
  input->remove_prefix(1);
  if (*present && !Value::DecodeFrom(input, v)) {
    return Status::Corruption("truncated value");
  }
  return Status::OK();
}

}  // namespace

void RangeRequest::EncodeTo(std::string* dst) const {
  PutLengthPrefixed(dst, table);
  PutLengthPrefixed(dst, column);
  PutOptionalValue(dst, has_lo, lo);
  PutOptionalValue(dst, has_hi, hi);
  PutVarint64(dst, height);
}

Status RangeRequest::DecodeFrom(Slice* input, RangeRequest* out) {
  Slice table, column;
  if (!GetLengthPrefixed(input, &table) ||
      !GetLengthPrefixed(input, &column)) {
    return Status::Corruption("truncated range request");
  }
  out->table = table.ToString();
  out->column = column.ToString();
  Status s = GetOptionalValue(input, &out->has_lo, &out->lo);
  if (!s.ok()) return s;
  s = GetOptionalValue(input, &out->has_hi, &out->hi);
  if (!s.ok()) return s;
  if (!GetVarint64(input, &out->height)) {
    return Status::Corruption("truncated range request height");
  }
  return Status::OK();
}

void TraceRequest::EncodeTo(std::string* dst) const {
  dst->push_back(by_sender ? 1 : 0);
  PutLengthPrefixed(dst, key);
  dst->push_back(has_window ? 1 : 0);
  if (has_window) {
    PutVarSigned64(dst, window_start);
    PutVarSigned64(dst, window_end);
  }
  PutVarint64(dst, height);
}

Status TraceRequest::DecodeFrom(Slice* input, TraceRequest* out) {
  if (input->empty()) return Status::Corruption("truncated trace request");
  out->by_sender = (*input)[0] != 0;
  input->remove_prefix(1);
  Slice key;
  if (!GetLengthPrefixed(input, &key) || input->empty()) {
    return Status::Corruption("truncated trace request");
  }
  out->key = key.ToString();
  out->has_window = (*input)[0] != 0;
  input->remove_prefix(1);
  if (out->has_window) {
    if (!GetVarSigned64(input, &out->window_start) ||
        !GetVarSigned64(input, &out->window_end)) {
      return Status::Corruption("truncated trace window");
    }
  }
  if (!GetVarint64(input, &out->height)) {
    return Status::Corruption("truncated trace request height");
  }
  return Status::OK();
}

void EncodeHeaders(const std::vector<BlockHeader>& headers,
                   std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(headers.size()));
  for (const auto& header : headers) header.EncodeTo(dst);
}

Status DecodeHeaders(Slice* input, std::vector<BlockHeader>* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return Status::Corruption("truncated headers");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    BlockHeader header;
    Status s = BlockHeader::DecodeFrom(input, &header);
    if (!s.ok()) return s;
    out->push_back(std::move(header));
  }
  return Status::OK();
}

}  // namespace thin_rpc

// ---- DirectTransport ----

DirectTransport::DirectTransport(const std::vector<SebdbNode*>& nodes) {
  for (SebdbNode* node : nodes) nodes_[node->node_id()] = node;
}

std::vector<std::string> DirectTransport::Nodes() {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

Status DirectTransport::Find(const std::string& node, SebdbNode** out) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return Status::NotFound("unknown node " + node);
  *out = it->second;
  return Status::OK();
}

Status DirectTransport::GetHeaders(const std::string& node, BlockId from,
                                   std::vector<BlockHeader>* out) {
  SebdbNode* target;
  Status s = Find(node, &target);
  if (!s.ok()) return s;
  return target->GetHeaders(from, out);
}

Status DirectTransport::GetRawBlock(const std::string& node, BlockId height,
                                    std::string* record) {
  SebdbNode* target;
  Status s = Find(node, &target);
  if (!s.ok()) return s;
  return target->GetRawBlock(height, record);
}

Status DirectTransport::ProveRange(const std::string& node,
                                   const std::string& table,
                                   const std::string& column, const Value* lo,
                                   const Value* hi, AuthQueryResponse* out) {
  SebdbNode* target;
  Status s = Find(node, &target);
  if (!s.ok()) return s;
  return target->AuthProveRange(table, column, lo, hi, out);
}

Status DirectTransport::DigestRange(const std::string& node,
                                    const std::string& table,
                                    const std::string& column,
                                    const Value* lo, const Value* hi,
                                    uint64_t height, Hash256* digest) {
  SebdbNode* target;
  Status s = Find(node, &target);
  if (!s.ok()) return s;
  return target->AuthDigestRange(table, column, lo, hi, height, digest);
}

Status DirectTransport::ProveTrace(const std::string& node, bool by_sender,
                                   const std::string& key,
                                   const Timestamp* window_start,
                                   const Timestamp* window_end,
                                   AuthQueryResponse* out) {
  SebdbNode* target;
  Status s = Find(node, &target);
  if (!s.ok()) return s;
  return target->AuthProveTrace(by_sender, key, out, window_start,
                                window_end);
}

Status DirectTransport::DigestTrace(const std::string& node, bool by_sender,
                                    const std::string& key, uint64_t height,
                                    const Timestamp* window_start,
                                    const Timestamp* window_end,
                                    Hash256* digest) {
  SebdbNode* target;
  Status s = Find(node, &target);
  if (!s.ok()) return s;
  return target->AuthDigestTrace(by_sender, key, height, digest,
                                 window_start, window_end);
}

// ---- RpcThinTransport ----

RpcThinTransport::RpcThinTransport(std::string client_id, Network* network,
                                   std::vector<std::string> nodes,
                                   int64_t call_timeout_millis)
    : client_(std::move(client_id), network), nodes_(std::move(nodes)) {
  policy_.max_attempts = 1;
  policy_.attempt_timeout_millis = call_timeout_millis;
}

RpcThinTransport::RpcThinTransport(std::string client_id, Network* network,
                                   std::vector<std::string> nodes,
                                   const RetryPolicy& policy)
    : client_(std::move(client_id), network),
      nodes_(std::move(nodes)),
      policy_(policy) {}

Status RpcThinTransport::DoCall(const std::string& node, const char* method,
                                const std::string& request,
                                std::string* response) {
  return client_.Call(node, method, request, response, policy_);
}

Status RpcThinTransport::Submit(const std::string& node,
                                const Transaction& txn, uint64_t* height) {
  std::string request;
  txn.EncodeTo(&request);
  std::string response;
  Status s = DoCall(node, thin_rpc::kSubmit, request, &response);
  if (!s.ok()) return s;
  if (height != nullptr) {
    Slice input(response);
    if (!GetVarint64(&input, height)) {
      return Status::Corruption("bad submit response");
    }
  }
  return Status::OK();
}

Status RpcThinTransport::GetNodeStats(const std::string& node,
                                      NodeStats* out) {
  std::string response;
  Status s = DoCall(node, thin_rpc::kStats, "", &response);
  if (!s.ok()) return s;
  Slice input(response);
  if (!GetVarint64(&input, &out->height) || input.size() < 32) {
    return Status::Corruption("bad stats response");
  }
  std::memcpy(out->tip_hash.bytes.data(), input.data(), 32);
  input.remove_prefix(32);
  if (!GetVarint64(&input, &out->frames_rejected) ||
      !GetVarint64(&input, &out->overflow_drops)) {
    return Status::Corruption("bad stats response");
  }
  return Status::OK();
}

Status RpcThinTransport::GetHeaders(const std::string& node, BlockId from,
                                    std::vector<BlockHeader>* out) {
  std::string request;
  PutVarint64(&request, from);
  std::string response;
  Status s = DoCall(node, thin_rpc::kGetHeaders, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return thin_rpc::DecodeHeaders(&input, out);
}

Status RpcThinTransport::GetRawBlock(const std::string& node, BlockId height,
                                     std::string* record) {
  std::string request;
  PutVarint64(&request, height);
  return DoCall(node, thin_rpc::kGetRawBlock, request, record);
}

Status RpcThinTransport::ProveRange(const std::string& node,
                                    const std::string& table,
                                    const std::string& column,
                                    const Value* lo, const Value* hi,
                                    AuthQueryResponse* out) {
  thin_rpc::RangeRequest request;
  request.table = table;
  request.column = column;
  if (lo != nullptr) {
    request.has_lo = true;
    request.lo = *lo;
  }
  if (hi != nullptr) {
    request.has_hi = true;
    request.hi = *hi;
  }
  std::string body, response;
  request.EncodeTo(&body);
  Status s = DoCall(node, thin_rpc::kProveRange, body, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return AuthQueryResponse::DecodeFrom(&input, out);
}

Status RpcThinTransport::DigestRange(const std::string& node,
                                     const std::string& table,
                                     const std::string& column,
                                     const Value* lo, const Value* hi,
                                     uint64_t height, Hash256* digest) {
  thin_rpc::RangeRequest request;
  request.table = table;
  request.column = column;
  if (lo != nullptr) {
    request.has_lo = true;
    request.lo = *lo;
  }
  if (hi != nullptr) {
    request.has_hi = true;
    request.hi = *hi;
  }
  request.height = height;
  std::string body, response;
  request.EncodeTo(&body);
  Status s = DoCall(node, thin_rpc::kDigestRange, body, &response);
  if (!s.ok()) return s;
  if (response.size() != 32) return Status::Corruption("bad digest size");
  memcpy(digest->bytes.data(), response.data(), 32);
  return Status::OK();
}

Status RpcThinTransport::ProveTrace(const std::string& node, bool by_sender,
                                    const std::string& key,
                                    const Timestamp* window_start,
                                    const Timestamp* window_end,
                                    AuthQueryResponse* out) {
  thin_rpc::TraceRequest request;
  request.by_sender = by_sender;
  request.key = key;
  if (window_start != nullptr && window_end != nullptr) {
    request.has_window = true;
    request.window_start = *window_start;
    request.window_end = *window_end;
  }
  std::string body, response;
  request.EncodeTo(&body);
  Status s = DoCall(node, thin_rpc::kProveTrace, body, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return AuthQueryResponse::DecodeFrom(&input, out);
}

Status RpcThinTransport::DigestTrace(const std::string& node, bool by_sender,
                                     const std::string& key, uint64_t height,
                                     const Timestamp* window_start,
                                     const Timestamp* window_end,
                                     Hash256* digest) {
  thin_rpc::TraceRequest request;
  request.by_sender = by_sender;
  request.key = key;
  if (window_start != nullptr && window_end != nullptr) {
    request.has_window = true;
    request.window_start = *window_start;
    request.window_end = *window_end;
  }
  request.height = height;
  std::string body, response;
  request.EncodeTo(&body);
  Status s = DoCall(node, thin_rpc::kDigestTrace, body, &response);
  if (!s.ok()) return s;
  if (response.size() != 32) return Status::Corruption("bad digest size");
  memcpy(digest->bytes.data(), response.data(), 32);
  return Status::OK();
}

}  // namespace sebdb
