// SebdbNode: a full node — chain state, pluggable consensus, gossip,
// query processing, access control, and the server side of the thin-client
// authenticated-query protocol (paper Fig. 2's five layers wired together).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auth/ali.h"
#include "common/clock.h"
#include "consensus/engine.h"
#include "core/access_control.h"
#include "core/chain_manager.h"
#include "core/repair.h"
#include "core/signer.h"
#include "network/gossip.h"
#include "network/rpc.h"
#include "network/network.h"
#include "offchain/offchain_db.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace sebdb {

enum class ConsensusKind { kKafka, kPbft, kTendermint };

/// Chain options a full node defaults to (tests construct ChainOptions
/// directly and opt in per-feature): LRU caches on, and the process-wide
/// thread pool driving parallel scans, startup replay, and concurrent
/// signature verification.
ChainOptions DefaultNodeChainOptions();

struct NodeOptions {
  std::string node_id;
  std::string data_dir;
  ConsensusKind consensus = ConsensusKind::kKafka;
  /// Replica set; for Kafka the broker defaults to participants[0].
  std::vector<std::string> participants;
  std::string kafka_broker;
  ConsensusOptions consensus_options;
  ChainOptions chain = DefaultNodeChainOptions();
  bool enable_gossip = true;
  GossipOptions gossip;
  /// Peer-assisted repair + checkpoint state sync (DESIGN.md §12). Repair
  /// rides on gossip height observations, so it is inert without gossip.
  bool enable_repair = true;
  RepairOptions repair;
  /// How long a blocking write waits for its commit.
  int64_t write_timeout_millis = 30000;
  /// Thin-client RPC server bounds. The default (workers = 0) keeps the
  /// historical inline dispatch; nodes that expect thin-client load enable
  /// the bounded queue so overload sheds instead of piling up.
  RpcServerOptions rpc_server;
};

class SebdbNode : public GossipDelegate {
 public:
  /// `keystore` holds every identity's signing secret (shared directory);
  /// `offchain` is this site's private RDBMS (may be nullptr).
  SebdbNode(NodeOptions options, KeyStore* keystore, OffchainDb* offchain);
  ~SebdbNode() override;

  /// Opens the chain, registers on the network, starts consensus and gossip.
  Status Start(Network* network);
  void Stop();

  const std::string& node_id() const { return options_.node_id; }

  /// Executes one SQL statement. Reads run locally; INSERT / CREATE TABLE
  /// become signed transactions, go through consensus, and return once
  /// committed and applied on this node.
  Status ExecuteSql(std::string_view sql, const ExecOptions& options,
                    ResultSet* result);

  /// Builds and signs an INSERT transaction on behalf of `identity` (which
  /// must exist in the keystore). Values are type-checked against the
  /// schema; ints are widened to decimal/double columns.
  Status MakeInsertTransaction(const std::string& identity,
                               const std::string& table,
                               std::vector<Value> values, Transaction* out);

  /// Submits a signed transaction; blocks until it commits locally.
  Status SubmitAndWait(Transaction txn);
  /// Fire-and-forget variant with completion callback (write benchmark).
  Status SubmitAsync(Transaction txn, std::function<void(Status)> done);

  /// Mempool depth/bytes and admission counters from the consensus engine
  /// (empty when this node is not a participant). Surfaced next to
  /// CacheStats/RecoveryStats so operators see all three pressure gauges in
  /// one place.
  MempoolStats mempool_stats() const;
  /// Current overload state of this node's admission controller.
  OverloadState overload_state() const;
  /// RPC server queue counters (all zero in inline dispatch mode).
  RpcServerStats rpc_stats() const;
  /// Checkpoint buffer-pool counters (hits/misses/evictions/occupancy) and
  /// how the last Open reached serving (checkpoint height + tail replay vs
  /// full rebuild) — the persistence-side pressure gauges.
  BufferManager::Stats buffer_stats() const { return chain_.buffer_stats(); }
  ChainManager::StartupStats startup_stats() const {
    return chain_.startup_stats();
  }
  /// Block-apply scheduler counters: waves/block, conflict rate, schema
  /// barriers, cumulative apply wall time (DESIGN.md §13). One scheduler
  /// covers replay, gossip apply and consensus apply.
  TxnSchedulerStats apply_stats() const { return chain_.apply_stats(); }

  ChainManager& chain() { return chain_; }
  /// The current executor; invalidated by a checkpoint state sync (use
  /// ExecuteSql, which snapshots, unless the node is known quiescent).
  Executor* executor() { return executor_snapshot().get(); }
  AccessControl* access_control() { return &access_control_; }
  ConsensusEngine* consensus() { return engine_.get(); }
  GossipAgent* gossip() { return gossip_.get(); }
  RepairCoordinator* repair() { return repair_.get(); }

  /// Repair/state-sync counters (empty when repair is disabled).
  RepairStats repair_stats() const;
  ChainManager::StateSyncStats state_sync_stats() const {
    return chain_.state_sync_stats();
  }

  // --- thin-client server API (in-process "RPC") ---

  Status GetHeaders(BlockId from, std::vector<BlockHeader>* out);
  Status GetRawBlock(BlockId height, std::string* record);

  /// Phase 1 of the authenticated range query over table.column (the ALI
  /// must exist). The response pins the current chain height.
  Status AuthProveRange(const std::string& table, const std::string& column,
                        const Value* lo, const Value* hi,
                        AuthQueryResponse* out);
  /// Phase 2: the auxiliary node's digest at the pinned height.
  Status AuthDigestRange(const std::string& table, const std::string& column,
                         const Value* lo, const Value* hi, uint64_t height,
                         Hash256* digest);
  /// Phase 1/2 of the authenticated one-dimension tracking query (OPERATOR
  /// via the SenID ALI when `by_sender`, OPERATION via the Tname ALI). An
  /// optional time window restricts the visited blocks; because block
  /// timestamps are deterministic, every node derives the same window
  /// bitmap, so the digests still agree.
  Status AuthProveTrace(bool by_sender, const std::string& key,
                        AuthQueryResponse* out,
                        const Timestamp* window_start = nullptr,
                        const Timestamp* window_end = nullptr);
  Status AuthDigestTrace(bool by_sender, const std::string& key,
                         uint64_t height, Hash256* digest,
                         const Timestamp* window_start = nullptr,
                         const Timestamp* window_end = nullptr);

  // --- GossipDelegate ---
  uint64_t ChainHeight() override;
  Status GetBlockRecord(BlockId height, std::string* record) override;
  Status ApplyBlockRecord(BlockId height, const std::string& record) override;
  void OnPeerAdvertisedHeight(const std::string& peer,
                              uint64_t height) override;

 private:
  void OnMessage(const Message& message);
  /// A state sync retired the chain's index set: rebind the executor to the
  /// restored one. In-flight queries keep the old executor alive via the
  /// shared_ptr snapshot (and the chain retires the old indexes, not frees).
  void RefreshExecutorAfterStateSync();
  std::shared_ptr<Executor> executor_snapshot() const;
  void OnBatchCommitted(uint64_t seq, std::vector<Transaction> txns);
  void SetupRpcMethods();
  Status ExecInsert(const InsertStmt& stmt, const ExecOptions& options,
                    ResultSet* result);
  Status ExecCreateTable(const CreateTableStmt& stmt, ResultSet* result);
  AuthenticatedLayeredIndex* FindAli(const std::string& table,
                                     const std::string& column);

  NodeOptions options_;
  KeyStore* keystore_;
  OffchainDb* offchain_db_;
  std::unique_ptr<LocalOffchainConnector> offchain_connector_;
  ChainManager chain_;
  mutable Mutex executor_mu_;
  std::shared_ptr<Executor> executor_ GUARDED_BY(executor_mu_);
  AccessControl access_control_;
  Network* network_ = nullptr;
  std::unique_ptr<ConsensusEngine> engine_;
  std::unique_ptr<GossipAgent> gossip_;
  std::unique_ptr<RepairCoordinator> repair_;
  // Serves the thin-client API over the network (see thin_client_transport).
  RpcDispatcher rpc_dispatcher_;
  /// Peer-up catch-up trigger (0 = not subscribed): a reconnected peer gets
  /// an immediate anti-entropy round instead of waiting out the interval.
  uint64_t peer_watcher_token_ = 0;
  bool started_ = false;
};

}  // namespace sebdb
