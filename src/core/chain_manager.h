// ChainManager: the node's authoritative chain state. Owns the block store,
// the index set and the catalog; turns committed consensus batches into
// blocks (assigning tids, linking prev hashes), validates and applies blocks
// received via gossip, and replays the persisted chain on recovery so
// indexes and catalog are rebuilt.
//
// Recovery is tail-only when a checkpoint exists: Open loads the newest
// usable checkpoint (catalog + every index restored from page files, the
// block store's own scan skipped via the checkpointed trusted prefix) and
// replays only the blocks above the checkpoint height. Any restore failure
// — torn files, version drift, corrupted meta — silently falls back to the
// seed behavior: full scan + full replay. Checkpoints are written through a
// BufferManager into <dir>/checkpoints and published via the shadow-paging
// CheckpointManager manifest (see DESIGN.md §11).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/signer.h"
#include "core/txn_scheduler.h"
#include "sql/catalog.h"
#include "sql/index_set.h"
#include "storage/block_store.h"
#include "storage/buffer_manager.h"
#include "storage/checkpoint.h"

namespace sebdb {

struct CheckpointPolicy {
  /// Write a checkpoint every this many newly chained blocks. 0 disables
  /// periodic checkpoints (manual WriteCheckpoint still works).
  uint64_t interval_blocks = 0;
  /// Buffer pool budget for checkpoint page files (both building and
  /// query-time faults of frozen index pages).
  uint64_t pool_bytes = 64ull << 20;
  /// Also write a final checkpoint in Close() when blocks were chained
  /// since the last one, so a clean shutdown restarts tail-free.
  bool checkpoint_on_close = false;
};

struct ChainOptions {
  BlockStoreOptions store;
  IndexSetOptions indexes;
  CheckpointPolicy checkpoint;
  /// Verify every transaction signature when applying foreign blocks.
  bool verify_signatures = true;
  /// Worker pool for parallel startup replay, concurrent signature
  /// verification and the scheduled block apply; nullptr runs all three
  /// serially. SebdbNode defaults this to ThreadPool::Default() (see
  /// DefaultNodeChainOptions).
  ThreadPool* pool = nullptr;
  /// Force the legacy one-transaction-at-a-time apply instead of the
  /// order-then-execute wave scheduler (DESIGN.md §13). Equivalence baseline
  /// for tests and benches; production keeps the scheduler, which degrades
  /// to the same cost on all-conflicting blocks and nullptr pools.
  bool serial_apply = false;
  /// Simulated per-transaction execution cost (micros) charged during block
  /// apply — models stored-procedure / off-chain work per transaction so
  /// benches can expose wave overlap. 0 (default) disables.
  uint32_t execute_cost_micros = 0;
};

class ChainManager {
 public:
  /// `keystore` may be nullptr to skip signature verification.
  ChainManager(std::string node_id, const KeyStore* keystore)
      : node_id_(std::move(node_id)), keystore_(keystore) {}

  /// Opens the store in `dir`; writes the genesis block when empty, replays
  /// all persisted blocks into the indexes and catalog otherwise.
  Status Open(const ChainOptions& options, const std::string& dir);
  Status Close();

  /// Packages a committed batch as the next block and applies it. `seq` is
  /// the consensus sequence (block height seq + 1; genesis is height 0).
  /// The packager is identified by `packager_signature` (its signature over
  /// the batch digest, carried in the block body); a separate packager-id
  /// parameter existed once but was never recorded, so it is gone.
  Status AppendBatch(uint64_t seq, std::vector<Transaction> txns,
                     Timestamp timestamp,
                     const std::string& packager_signature);

  /// Gossip path: decodes, validates (height, prev hash, merkle root, block
  /// hash, optionally every signature) and applies a serialized block.
  /// Blocks from the future are rejected with InvalidArgument (the caller
  /// pulls the gap first); stale heights are OK no-ops.
  Status ApplyBlockRecord(BlockId height, const std::string& record);

  /// Raw record for gossip transfer.
  Status GetBlockRecord(BlockId height, std::string* record);

  uint64_t height() const;  // number of blocks, genesis included
  Hash256 tip_hash() const;
  TransactionId next_tid() const;

  Status GetHeader(BlockId height, BlockHeader* out);

  BlockStore* store() { return &store_; }
  IndexSet* indexes() { return indexes_.get(); }
  Catalog* catalog() { return &catalog_; }

  /// What the last Open found on disk (torn-tail truncation, records
  /// recovered, quarantined segments); see BlockStore::RecoveryStats. A
  /// value snapshot. Degraded-open facts survive the checkpoint→full-replay
  /// fallback, which reopens the store and would otherwise report a clean
  /// second open.
  BlockStore::RecoveryStats recovery_stats() const EXCLUDES(mu_);

  /// Block/transaction cache counters (hits, misses, evictions, occupancy).
  BlockStore::CacheStats cache_stats() const { return store_.cache_stats(); }

  /// How the last Open brought the node back to serving: from a checkpoint
  /// (tail-only replay) or a full rebuild. A value snapshot.
  struct StartupStats {
    bool from_checkpoint = false;
    uint64_t checkpoint_height = 0;  // blocks restored without replay
    uint64_t replayed_blocks = 0;    // blocks fed through ApplyBlock
  };
  StartupStats startup_stats() const;

  /// Checkpoint page-pool counters (empty when the chain is not open).
  BufferManager::Stats buffer_stats() const;

  /// Conflict-tracking counters of the block apply scheduler (waves/block,
  /// conflict rate, cumulative apply wall time). Covers startup replay,
  /// gossip apply and consensus apply — they share one scheduler.
  TxnSchedulerStats apply_stats() const;

  /// Number of checkpoints written by this ChainManager since Open.
  uint64_t checkpoints_written() const;

  /// Writes and publishes a checkpoint at the current height (also invoked
  /// by the periodic interval_blocks policy and, optionally, by Close).
  Status WriteCheckpoint() EXCLUDES(mu_);

  // ---- Peer state sync (DESIGN.md §12) ----

  /// Newest published checkpoint plus, per file, the size and SHA-256 of its
  /// zero-run-compressed *transfer image* — the bytes a lagging peer
  /// actually fetches (page files are mostly padding; the wire image is
  /// 10-100x smaller). The hashes bind every chunk the peer later fetches
  /// to exactly this checkpoint before anything is installed: what you hash
  /// is what you ship.
  struct CheckpointDescriptor {
    CheckpointRecord record;
    std::vector<Hash256> file_hashes;       // parallel to record.files,
    std::vector<uint64_t> transfer_sizes;   //   over the transfer image
  };
  Status DescribeCheckpoint(CheckpointDescriptor* out) EXCLUDES(mu_);

  /// Chunk-serving side: reads up to `n` bytes at `offset` of the transfer
  /// image of a file of the newest published checkpoint (the same
  /// compressed image DescribeCheckpoint hashed — recompressed per call;
  /// checkpoint files are immutable once published, so the image is
  /// deterministic). Anything not listed in the latest record is NotFound
  /// (a peer can never read outside the published set).
  Status ReadCheckpointTransfer(const std::string& name, uint64_t offset,
                                uint64_t n, std::string* out) EXCLUDES(mu_);

  /// A complete peer checkpoint plus the bridge of raw block records from
  /// the local tip to the checkpoint height: files[i] holds the full
  /// contents of record.files[i]; blocks[j] is the record of height
  /// first_height + j, and the range must cover [local tip, record.height).
  struct StateSyncPackage {
    CheckpointRecord record;
    std::vector<std::string> files;
    BlockId first_height = 0;
    std::vector<std::string> blocks;
  };

  struct StateSyncStats {
    uint64_t installs = 0;          // peer checkpoints installed
    uint64_t fallbacks = 0;         // failed installs recovered by replay
    uint64_t blocks_spliced = 0;    // verified bridge records appended raw
    uint64_t installed_height = 0;  // height of the newest install
  };

  /// Installs a peer checkpoint (state sync): verifies and splices the
  /// bridge blocks (decode + Merkle + hash-chain link from the local tip,
  /// optionally signatures), replaces the local checkpoint directory with
  /// the package contents, and restores catalog + indexes through the same
  /// RestoreCheckpoint path a restart uses — catch-up work is
  /// O(checkpoint + bridge), not O(gap replay). On any failure past the
  /// up-front validation the chain recovers to a consistent state (spliced
  /// blocks are replayed into the live indexes, or everything is rebuilt)
  /// and the original error returns. Callers must have hash-bound the
  /// package bytes to the offering peer's descriptor (lint: `verify:`).
  Status InstallStateSync(const StateSyncPackage& pkg) EXCLUDES(mu_);
  StateSyncStats state_sync_stats() const EXCLUDES(mu_);

 private:
  Status ApplyBlock(const Block& block) REQUIRES(mu_);  // index + catalog
  /// Recovery replay of heights [from, n): block reads (readahead-batched)
  /// and Merkle validation fan out across the pool one chunk ahead of the
  /// strictly height-ordered index/catalog apply.
  Status ReplayChain(uint64_t from, uint64_t n) REQUIRES(mu_);
  // chain_checkpoint.cc
  Status OpenFromCheckpoint(const CheckpointRecord& rec,
                            const IndexSetOptions& index_options,
                            const std::string& dir) REQUIRES(mu_);
  Status WriteCheckpointLocked() REQUIRES(mu_);
  void MaybeCheckpointLocked() REQUIRES(mu_);
  /// Re-syncs indexes/cursors with bridge records spliced before a state
  /// sync failed (they are verified chain extensions — kept, not dropped),
  /// then returns `cause`.
  Status RecoverSpliceLocked(uint64_t from, const Status& cause)
      REQUIRES(mu_);
  /// Full local rebuild (fresh pool + indexes, replay from genesis) after a
  /// state-sync install failed mid-way; returns `cause` when the rebuild
  /// itself succeeds.
  Status RebuildAfterFailedInstallLocked(const Status& cause) REQUIRES(mu_);

  const std::string node_id_;
  const KeyStore* keystore_;
  ChainOptions options_;
  IndexSetOptions index_options_;  // resolved at Open; reused by state sync

  mutable Mutex mu_;
  // store_/indexes_/catalog_/pool_ are internally synchronized; mu_
  // serializes chain mutations (append/apply/replay/checkpoint) and guards
  // the chain-tip state.
  BlockStore store_;
  std::unique_ptr<IndexSet> indexes_;
  Catalog catalog_;
  // Recreated at Open (options may change); stateless w.r.t. indexes_, so
  // checkpoint-restore and state-sync swaps need no re-wiring.
  std::unique_ptr<TxnScheduler> scheduler_;
  std::unique_ptr<BufferManager> pool_;
  std::unique_ptr<CheckpointManager> ckpt_ GUARDED_BY(mu_);
  StartupStats startup_ GUARDED_BY(mu_);
  uint64_t last_checkpoint_height_ GUARDED_BY(mu_) = 0;
  uint64_t checkpoints_written_ GUARDED_BY(mu_) = 0;
  Hash256 tip_hash_ GUARDED_BY(mu_);
  Timestamp last_ts_ GUARDED_BY(mu_) = 0;
  TransactionId next_tid_ GUARDED_BY(mu_) = 1;
  bool open_ GUARDED_BY(mu_) = false;
  // Superseded index sets + pools stay alive until the next Open: executors
  // hold raw IndexSet*/page references, and queries in flight when a state
  // sync swaps in the restored state may still be walking the old one.
  struct RetiredState {
    std::unique_ptr<IndexSet> indexes;
    std::unique_ptr<BufferManager> pool;
  };
  std::vector<RetiredState> retired_ GUARDED_BY(mu_);
  StateSyncStats state_sync_ GUARDED_BY(mu_);
  // First-open recovery stats when that open went degraded but a later
  // fallback reopened the store cleanly (see recovery_stats()).
  BlockStore::RecoveryStats degraded_carry_ GUARDED_BY(mu_);
};

}  // namespace sebdb
