// ChainManager: the node's authoritative chain state. Owns the block store,
// the index set and the catalog; turns committed consensus batches into
// blocks (assigning tids, linking prev hashes), validates and applies blocks
// received via gossip, and replays the persisted chain on recovery so
// indexes and catalog are rebuilt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/signer.h"
#include "sql/catalog.h"
#include "sql/index_set.h"
#include "storage/block_store.h"

namespace sebdb {

struct ChainOptions {
  BlockStoreOptions store;
  IndexSetOptions indexes;
  /// Verify every transaction signature when applying foreign blocks.
  bool verify_signatures = true;
  /// Worker pool for parallel startup replay and concurrent signature
  /// verification; nullptr runs both serially. SebdbNode defaults this to
  /// ThreadPool::Default() (see DefaultNodeChainOptions).
  ThreadPool* pool = nullptr;
};

class ChainManager {
 public:
  /// `keystore` may be nullptr to skip signature verification.
  ChainManager(std::string node_id, const KeyStore* keystore)
      : node_id_(std::move(node_id)), keystore_(keystore) {}

  /// Opens the store in `dir`; writes the genesis block when empty, replays
  /// all persisted blocks into the indexes and catalog otherwise.
  Status Open(const ChainOptions& options, const std::string& dir);
  Status Close();

  /// Packages a committed batch as the next block and applies it. `seq` is
  /// the consensus sequence (block height seq + 1; genesis is height 0).
  Status AppendBatch(uint64_t seq, std::vector<Transaction> txns,
                     Timestamp timestamp, const std::string& packager,
                     const std::string& packager_signature);

  /// Gossip path: decodes, validates (height, prev hash, merkle root, block
  /// hash, optionally every signature) and applies a serialized block.
  /// Blocks from the future are rejected with InvalidArgument (the caller
  /// pulls the gap first); stale heights are OK no-ops.
  Status ApplyBlockRecord(BlockId height, const std::string& record);

  /// Raw record for gossip transfer.
  Status GetBlockRecord(BlockId height, std::string* record);

  uint64_t height() const;  // number of blocks, genesis included
  Hash256 tip_hash() const;
  TransactionId next_tid() const;

  Status GetHeader(BlockId height, BlockHeader* out);

  BlockStore* store() { return &store_; }
  IndexSet* indexes() { return indexes_.get(); }
  Catalog* catalog() { return &catalog_; }

  /// What the last Open found on disk (torn-tail truncation, records
  /// recovered); see BlockStore::RecoveryStats. A value snapshot: the
  /// stats are rewritten by a concurrent reopen.
  BlockStore::RecoveryStats recovery_stats() const {
    return store_.recovery_stats();
  }

  /// Block/transaction cache counters (hits, misses, evictions, occupancy).
  BlockStore::CacheStats cache_stats() const { return store_.cache_stats(); }

 private:
  Status ApplyBlock(const Block& block) REQUIRES(mu_);  // index + catalog
  /// Recovery replay of heights [0, n): block reads (readahead-batched) and
  /// Merkle validation fan out across the pool one chunk ahead of the
  /// strictly height-ordered index/catalog apply.
  Status ReplayChain(uint64_t n) REQUIRES(mu_);

  const std::string node_id_;
  const KeyStore* keystore_;
  ChainOptions options_;

  mutable Mutex mu_;
  // store_/indexes_/catalog_ are internally synchronized; mu_ serializes
  // chain mutations (append/apply/replay) and guards the chain-tip state.
  BlockStore store_;
  std::unique_ptr<IndexSet> indexes_;
  Catalog catalog_;
  Hash256 tip_hash_ GUARDED_BY(mu_);
  Timestamp last_ts_ GUARDED_BY(mu_) = 0;
  TransactionId next_tid_ GUARDED_BY(mu_) = 1;
  bool open_ GUARDED_BY(mu_) = false;
};

}  // namespace sebdb
