// Minimal cluster deployment config shared by sebdb_server, the cluster
// harness (scripts/cluster.sh), the process-level chaos test and bench_net.
//
// File format — one directive per line, '#' comments:
//
//   # id        host       port
//   node node1  127.0.0.1  7101
//   node node2  127.0.0.1  7102
//   node node3  127.0.0.1  7103
//
// Node order matters: participants are listed in file order, and Kafka
// consensus makes participants[0] the broker.
#pragma once

#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "core/signer.h"
#include "network/tcp_network.h"

namespace sebdb {

struct ClusterNodeSpec {
  std::string id;
  std::string host;
  uint16_t port = 0;
};

struct ClusterConfig {
  std::vector<ClusterNodeSpec> nodes;

  std::vector<std::string> NodeIds() const;
  const ClusterNodeSpec* Find(const std::string& id) const;
};

Status ParseClusterConfig(const std::string& text, ClusterConfig* out);
Status LoadClusterConfig(Env* env, const std::string& path,
                         ClusterConfig* out);

/// Deterministic development/test signing secret for an identity. Every
/// process of a dev cluster derives the same directory, standing in for a
/// provisioned PKI; real deployments would load per-identity secrets.
std::string DevSecret(const std::string& id);

/// Seeds `keystore` with DevSecret() for every cluster node plus `extras`
/// (client identities).
Status SeedDevKeyStore(const ClusterConfig& config,
                       const std::vector<std::string>& extras,
                       KeyStore* keystore);

/// Transport options for one process of the cluster. If `local_id` is a
/// configured node, it listens on its configured address and supervises
/// links to every other node; otherwise (a client id) it listens on an
/// ephemeral port and supervises links to all nodes.
TcpNetworkOptions MakeClusterTcpOptions(const ClusterConfig& config,
                                        const std::string& local_id);

}  // namespace sebdb
