// Thin client (paper §VI): stores only block headers and verifies query
// results from untrusted full nodes. Two modes, matching the evaluation's
// comparison (Figs. 17–19):
//  - ALI: the two-phase protocol — VO from one full node, digests from
//    auxiliary full nodes, client-side reconstruction and soundness/
//    completeness checks;
//  - basic: every (candidate) block is transferred whole; the client
//    recomputes each block's transaction Merkle root against its stored
//    headers and filters locally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/node.h"
#include "core/thin_client_transport.h"

namespace sebdb {

/// Metrics of one authenticated query, the three axes of Figs. 17–19.
struct AuthQueryStats {
  size_t vo_bytes = 0;        // verification object size
  int64_t server_micros = 0;  // query processing at the full node
  int64_t aux_micros = 0;     // digest computation at auxiliary nodes
  int64_t client_micros = 0;  // verification at the client
  size_t result_count = 0;
};

class ThinClient {
 public:
  /// Talks to full nodes in-process (DirectTransport).
  explicit ThinClient(std::vector<SebdbNode*> full_nodes, uint64_t seed = 1);
  /// Talks to full nodes through any transport — e.g. RpcThinTransport to
  /// go over the (simulated) network like the paper's remote thin clients.
  explicit ThinClient(std::unique_ptr<ThinClientTransport> transport,
                      uint64_t seed = 1);

  /// Pulls any new block headers from a randomly selected full node.
  Status SyncHeaders();
  size_t num_headers() const { return headers_.size(); }

  /// Authenticated range query over table.column, where `column_index` is
  /// the column's position in the table schema. Queries one random full
  /// node for the VO and `num_auxiliary` others for digests; accepts with
  /// `required_matching` identical digests.
  Status AuthRangeQuery(const std::string& table, const std::string& column,
                        int column_index, const Value* lo, const Value* hi,
                        size_t num_auxiliary, size_t required_matching,
                        std::vector<Transaction>* out, AuthQueryStats* stats);

  /// Authenticated one-dimension tracking query (OPERATOR when `by_sender`);
  /// optionally restricted to a block time window [window_start,
  /// window_end].
  Status AuthTraceQuery(bool by_sender, const std::string& key,
                        size_t num_auxiliary, size_t required_matching,
                        std::vector<Transaction>* out, AuthQueryStats* stats,
                        const Timestamp* window_start = nullptr,
                        const Timestamp* window_end = nullptr);

  /// Authenticated two-dimension tracking (paper Q3): OPERATOR through the
  /// SenID ALI and OPERATION through the Tname ALI, both pinned at the same
  /// height. Each dimension's VO set is verified independently (soundness +
  /// completeness per dimension); the verified result sets are intersected
  /// by transaction id — a transaction survives iff both its sender and its
  /// type were proven, so the intersection is itself sound and complete.
  Status AuthTraceTwoDimQuery(const std::string& operator_id,
                              const std::string& operation,
                              size_t num_auxiliary, size_t required_matching,
                              std::vector<Transaction>* out,
                              AuthQueryStats* stats);

  /// Basic approach: transfer all blocks, verify Merkle roots against the
  /// stored headers, filter matching transactions locally.
  Status BasicRangeQuery(const std::string& table, int column_index,
                         const Value* lo, const Value* hi,
                         std::vector<Transaction>* out, AuthQueryStats* stats);
  Status BasicTraceQuery(bool by_sender, const std::string& key,
                         std::vector<Transaction>* out, AuthQueryStats* stats);

 private:
  const std::string& PickNode();
  Status BasicScan(const std::function<bool(const Transaction&)>& keep,
                   std::vector<Transaction>* out, AuthQueryStats* stats);

  std::unique_ptr<ThinClientTransport> transport_;
  std::vector<std::string> node_ids_;
  Random rng_;
  std::vector<BlockHeader> headers_;
};

}  // namespace sebdb
