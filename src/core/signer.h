// Transaction and block signatures. The paper uses public-key signatures
// (the Sig system attribute guarantees unforgeability); we substitute a
// keyed-hash MAC — sig = SHA256(secret || payload) — with a shared identity
// directory standing in for the PKI. The experiments never measure crypto
// cost, and unforgeability holds within the simulation as long as secrets
// stay with their owners (see DESIGN.md, substitutions).
#pragma once

#include <map>
#include <string>

#include "common/sha256.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/transaction.h"

namespace sebdb {

class KeyStore {
 public:
  /// Registers an identity with its signing secret. Re-registration with a
  /// different secret fails.
  Status AddIdentity(const std::string& id, const std::string& secret);
  bool HasIdentity(const std::string& id) const;

  /// MAC over `payload` with the identity's secret, hex-encoded.
  Status Sign(const std::string& id, const Slice& payload,
              std::string* signature) const;

  /// Recomputes and compares; VerificationFailed on mismatch.
  Status Verify(const std::string& id, const Slice& payload,
                const std::string& signature) const;

  /// Signs a transaction in place: sets sender and the Sig attribute over
  /// the transaction's signing payload.
  Status SignTransaction(const std::string& id, Transaction* txn) const;
  Status VerifyTransaction(const Transaction& txn) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::string> secrets_ GUARDED_BY(mu_);
};

}  // namespace sebdb
