// RepairCoordinator: peer-assisted self-healing (DESIGN.md §12). Two
// recovery paths share one session state machine:
//
//  * Block repair — a node that opened degraded (a corrupt non-tail segment
//    was quarantined and the chain truncated to the verified prefix) fetches
//    the missing block records from peers in batches and re-applies them
//    through the chain's full validation path (decode, Merkle root, prev-hash
//    link, optionally signatures). Gossip would eventually heal the same gap;
//    the coordinator does it eagerly, in large batches, with retry/timeout
//    tracking and counters.
//
//  * Checkpoint state sync — a replica whose gap to an advertised peer
//    height exceeds `state_sync_gap` fetches the peer's newest published
//    checkpoint as CRC-framed chunks, verifies every file against the
//    SHA-256 descriptor the peer offered up front, collects the bridge of
//    raw block records from the local tip to the checkpoint height, and
//    installs the package through ChainManager::InstallStateSync — catch-up
//    cost is O(checkpoint + delta) instead of O(gap replay).
//
// Fallback ladder: state sync that fails at any rung (no peer checkpoint,
// hash mismatch, install error, too many timeouts) falls back to block
// repair; block repair that exhausts its retries disarms and leaves the gap
// to gossip anti-entropy, which remains running throughout.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/chain_manager.h"
#include "network/gossip.h"
#include "network/network.h"

namespace sebdb {

struct RepairOptions {
  /// Block records requested per repair.fetch.
  uint32_t fetch_batch = 64;
  /// Byte cap on one repair.blocks response (serving side).
  uint64_t fetch_response_bytes = 4ull << 20;
  /// Arm checkpoint state sync when a peer advertises a height at least
  /// this far ahead; 0 disables state sync (block repair still runs).
  uint64_t state_sync_gap = 1024;
  /// Bytes per checkpoint-file chunk fetch.
  uint32_t chunk_bytes = 64 * 1024;
  /// A request with no useful reply within this window is re-issued
  /// (jittered); for block repair, to a fresh random peer.
  int64_t request_timeout_millis = 200;
  /// Re-issues before the session gives up (state sync falls back to block
  /// repair; block repair disarms and leaves the rest to gossip).
  uint32_t max_retries = 32;
  /// Step in for any gap, not only degraded opens and state-sync-sized
  /// ones. Nodes that run without gossip set this: there is no
  /// anti-entropy to absorb small gaps, so the coordinator is the only
  /// healer left.
  bool heal_all_gaps = false;
  /// Background timeout-check cadence. Tests call Tick() directly.
  int64_t tick_interval_millis = 25;
  uint64_t seed = 17;
};

struct RepairStats {
  uint64_t blocks_repaired = 0;       // chain growth while in block repair
  uint64_t records_fetched = 0;       // block records received over repair.*
  uint64_t chunks_fetched = 0;        // checkpoint chunks received
  uint64_t bytes_verified = 0;        // checkpoint bytes that passed SHA-256
  uint64_t state_syncs_started = 0;
  uint64_t state_syncs_completed = 0;
  uint64_t fallbacks = 0;             // state-sync rungs abandoned
  uint64_t retries = 0;               // timed-out requests re-issued
  uint64_t repairs_completed = 0;     // block-repair sessions that caught up
};

class RepairCoordinator {
 public:
  /// `delegate` supplies chain height / block records / the validated apply
  /// path (the node itself); `chain` serves and installs checkpoints (may
  /// be nullptr to disable state sync); `on_state_sync` runs after a
  /// successful install so the node can rebind derived state (executor).
  RepairCoordinator(std::string node_id, Network* network,
                    GossipDelegate* delegate, ChainManager* chain,
                    std::vector<std::string> peers,
                    const RepairOptions& options,
                    std::function<void()> on_state_sync);
  ~RepairCoordinator();

  /// Starts the background timeout ticker.
  void Start();
  void Stop();

  /// Marks the local chain as degraded-opened: the next peer that advertises
  /// a greater height starts a block-repair session even below the
  /// state-sync gap.
  void ArmDegradedRepair() EXCLUDES(mu_);

  /// Height observation feed (wired to GossipDelegate::OnPeerAdvertisedHeight).
  void NotePeerHeight(const std::string& peer, uint64_t height) EXCLUDES(mu_);

  /// Routes "repair.*" messages; call from the node's network handler.
  void HandleMessage(const Message& message) EXCLUDES(mu_);

  /// One timeout check (also driven by the ticker thread).
  void Tick() EXCLUDES(mu_);

  RepairStats stats() const EXCLUDES(mu_);
  /// True while a repair or state-sync session is running.
  bool active() const EXCLUDES(mu_);

 private:
  enum class Mode {
    kIdle,
    kBlockRepair,  // fetching + applying block records
    kCkptMeta,     // asked a peer for its checkpoint descriptor
    kCkptChunks,   // fetching checkpoint file chunks
    kCkptBlocks,   // collecting (not applying) the bridge block records
  };

  // Client side (session driving).
  void OnBlocks(const Message& message) EXCLUDES(mu_);
  void OnCkptMeta(const Message& message) EXCLUDES(mu_);
  void OnCkptChunk(const Message& message) EXCLUDES(mu_);
  // Serving side (stateless; any node answers from its chain).
  void ServeFetch(const Message& message);
  void ServeCkptOffer(const Message& message);
  void ServeCkptFetch(const Message& message);

  /// Verifies completed files against the descriptor hashes, requests the
  /// next chunk, or transitions to bridge-block collection.
  void ProgressChunksLocked() REQUIRES(mu_);
  void SendFetchLocked(uint64_t from) REQUIRES(mu_);
  void SendCkptOfferLocked() REQUIRES(mu_);
  void SendChunkFetchLocked() REQUIRES(mu_);
  /// Re-issues the request the current mode is waiting on.
  void ResendLocked() REQUIRES(mu_);
  void ArmDeadlineLocked() REQUIRES(mu_);
  /// Assembles the package and installs it; advances to delta block repair
  /// or idle. Any failure falls back to block repair.
  void FinishStateSyncLocked() REQUIRES(mu_);
  /// Abandons the state-sync rung and continues with block repair.
  void FallBackToBlockRepairLocked(const char* why) REQUIRES(mu_);
  void EndSessionLocked() REQUIRES(mu_);

  const std::string node_id_;
  Network* network_;
  GossipDelegate* delegate_;
  ChainManager* chain_;  // may be nullptr (no state sync, no serving)
  const std::vector<std::string> peers_;
  const RepairOptions options_;
  const std::function<void()> on_state_sync_;

  std::thread ticker_;
  std::atomic<bool> running_{false};

  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  RepairStats stats_ GUARDED_BY(mu_);
  Mode mode_ GUARDED_BY(mu_) = Mode::kIdle;
  bool armed_degraded_ GUARDED_BY(mu_) = false;
  std::string peer_ GUARDED_BY(mu_);           // session peer
  uint64_t target_height_ GUARDED_BY(mu_) = 0;
  int64_t deadline_millis_ GUARDED_BY(mu_) = 0;
  uint32_t session_retries_ GUARDED_BY(mu_) = 0;
  // Checkpoint state-sync session state.
  ChainManager::CheckpointDescriptor remote_ GUARDED_BY(mu_);
  std::vector<std::string> fetched_files_ GUARDED_BY(mu_);
  size_t file_idx_ GUARDED_BY(mu_) = 0;
  uint64_t first_height_ GUARDED_BY(mu_) = 0;
  std::vector<std::string> fetched_blocks_ GUARDED_BY(mu_);
};

}  // namespace sebdb
