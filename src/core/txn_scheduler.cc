#include "core/txn_scheduler.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "common/clock.h"

namespace sebdb {

namespace {

// FNV-1a. Conflict keys only gate wave placement — a collision merely
// serializes two independent transactions, never reorders conflicting ones.
uint64_t Fnv1a(const std::string& data, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

TxnFootprint ExtractFootprint(const Transaction& txn) {
  TxnFootprint fp;
  if (txn.tname() == Catalog::kSchemaTable) {
    Schema schema;
    if (Catalog::DecodeSchemaTransaction(txn, &schema)) {
      fp.kind = TxnFootprint::Kind::kSchemaOp;
      fp.table = schema.table_name();
    } else {
      // The apply path ignores malformed schema txns, but footprinting must
      // not guess: treat them as touching everything.
      fp.kind = TxnFootprint::Kind::kOpaque;
    }
    return fp;
  }
  fp.kind = TxnFootprint::Kind::kInsert;
  fp.table = txn.tname();
  if (!txn.values().empty()) {
    // The paper's primary attribute is the first application column; two
    // inserts with the same (table, first value) are ordered, everything
    // else in the table commutes at the index layer.
    std::string key;
    txn.values()[0].EncodeTo(&key);
    fp.key_hash = Fnv1a(key, Fnv1a(txn.tname()));
    fp.has_key = true;
  }
  return fp;
}

WavePlan PlanWaves(const std::vector<Transaction>& txns) {
  WavePlan plan;
  if (txns.empty()) return plan;
  // Greedy earliest-wave placement over the dependency graph: each
  // transaction lands in the first wave after every predecessor it
  // conflicts with. O(n) with hash maps keyed by table / (table, key).
  std::unordered_map<std::string, uint32_t> schema_end;  // table -> one past
                                                         // last schema op
  std::unordered_map<std::string, uint32_t> table_end;   // table -> one past
                                                         // last touch
  std::unordered_map<uint64_t, uint32_t> key_end;  // key -> one past last
                                                   // same-key write
  uint32_t global_end = 0;  // one past the last opaque barrier's wave
  uint32_t block_end = 0;   // one past the highest wave in use
  std::vector<uint32_t> wave_of(txns.size(), 0);
  for (uint32_t i = 0; i < txns.size(); i++) {
    const TxnFootprint fp = ExtractFootprint(txns[i]);
    uint32_t w = global_end;
    switch (fp.kind) {
      case TxnFootprint::Kind::kOpaque:
        // After every transaction so far; everything later follows it.
        plan.schema_barriers++;
        w = block_end;
        global_end = w + 1;
        break;
      case TxnFootprint::Kind::kSchemaOp: {
        // After everything that touched the table (inserts read the schema
        // their wave's snapshot holds; preserve per-table op order too).
        plan.schema_barriers++;
        auto t = table_end.find(fp.table);
        if (t != table_end.end()) w = std::max(w, t->second);
        schema_end[fp.table] = w + 1;
        break;
      }
      case TxnFootprint::Kind::kInsert: {
        // After the table's last schema op and the last same-key write.
        auto s = schema_end.find(fp.table);
        if (s != schema_end.end()) w = std::max(w, s->second);
        if (fp.has_key) {
          auto k = key_end.find(fp.key_hash);
          if (k != key_end.end()) w = std::max(w, k->second);
          key_end[fp.key_hash] = w + 1;
        }
        break;
      }
    }
    auto t = table_end.find(fp.table);
    table_end[fp.table] = t == table_end.end() ? w + 1
                                               : std::max(t->second, w + 1);
    wave_of[i] = w;
    if (w > 0) plan.conflict_txns++;
    block_end = std::max(block_end, w + 1);
  }
  plan.waves.resize(block_end);
  for (uint32_t i = 0; i < txns.size(); i++) {
    plan.waves[wave_of[i]].push_back(i);  // ascending: i is increasing
  }
  return plan;
}

void TxnScheduler::SimulateExecuteCost() const {
  if (options_.execute_cost_micros == 0) return;
  // Sleep, not spin: the modeled work (stored procedures touching off-chain
  // storage, contract I/O) yields the core, which is what lets waves overlap
  // it — the same modeling choice as the benches' simulated-I/O modes.
  std::this_thread::sleep_for(
      std::chrono::microseconds(options_.execute_cost_micros));
}

Status TxnScheduler::Apply(const Block& block, IndexSet* indexes,
                           Catalog* catalog) {
  const int64_t start = SteadyNowMicros();
  const auto& txns = block.transactions();
  Status s;
  WavePlan plan;
  if (options_.serial) {
    // serial-apply: equivalence/bench baseline — bypasses wave scheduling
    // on purpose; the scheduled branch below is the production path.
    s = indexes->AddBlock(block);  // serial-apply: baseline bypass (above)
    if (s.ok()) {
      for (const auto& txn : txns) {
        SimulateExecuteCost();
        catalog->MaybeApplySchemaTransaction(txn);
      }
    }
  } else {
    plan = PlanWaves(txns);
    IndexSet::ScheduledApplyHooks hooks;
    if (options_.execute_cost_micros > 0) {
      hooks.execute = [this](uint32_t) { SimulateExecuteCost(); };
    }
    // MVCC snapshot advance: once wave w's deltas are complete, its schema
    // ops land in the catalog — in transaction order — before wave w+1
    // executes, so each wave sees base state + all earlier waves. The end
    // state equals serial apply: per-table schema op order is preserved
    // across waves, and ops on different tables commute.
    hooks.wave_done = [&](uint32_t w) {
      for (uint32_t i : plan.waves[w]) {
        catalog->MaybeApplySchemaTransaction(txns[i]);
      }
    };
    s = indexes->ApplyBlockScheduled(block, plan.waves, options_.pool, hooks);
  }
  if (!s.ok()) return s;

  const int64_t elapsed = SteadyNowMicros() - start;
  MutexLock lock(&mu_);
  stats_.blocks++;
  stats_.txns += txns.size();
  stats_.apply_micros += elapsed;
  if (!options_.serial) {
    stats_.waves += plan.waves.size();
    stats_.conflict_txns += plan.conflict_txns;
    stats_.schema_barriers += plan.schema_barriers;
    if (plan.waves.size() <= 1) stats_.single_wave_blocks++;
    stats_.max_waves_in_block =
        std::max<uint64_t>(stats_.max_waves_in_block, plan.waves.size());
  }
  return Status::OK();
}

TxnSchedulerStats TxnScheduler::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace sebdb
