#include "core/chainsql_baseline.h"

namespace sebdb {

ChainsqlBaseline::ChainsqlBaseline() {
  std::vector<ColumnDef> columns = {
      {"senid", ValueType::kString},
      {"tname", ValueType::kString},
      {"ts", ValueType::kTimestamp},
      {"payload", ValueType::kString},  // encoded transaction
  };
  db_.CreateTable("transactions", std::move(columns));
  table_ = db_.GetTable("transactions");
  table_->CreateIndex("senid");
}

Status ChainsqlBaseline::IngestBlock(const Block& block) {
  for (const auto& txn : block.transactions()) {
    std::string payload;
    txn.EncodeTo(&payload);
    Status s = table_->Insert({Value::Str(txn.sender()),
                               Value::Str(txn.tname()), Value::Ts(txn.ts()),
                               Value::Str(std::move(payload))});
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ChainsqlBaseline::IngestChain(ChainManager* chain) {
  for (uint64_t h = 0; h < chain->height(); h++) {
    std::shared_ptr<const Block> block;
    Status s = chain->store()->ReadBlock(h, &block);
    if (!s.ok()) return s;
    s = IngestBlock(*block);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

size_t ChainsqlBaseline::num_replicated() const { return table_->num_rows(); }

Status ChainsqlBaseline::GetTransactionsByOperator(
    const std::string& operator_id, std::vector<Transaction>* out) const {
  std::vector<size_t> rows;
  Status s = table_->Lookup("senid", Value::Str(operator_id), &rows);
  if (!s.ok()) return s;
  for (size_t row_id : rows) {
    const OffchainRow& row = table_->row(row_id);
    Transaction txn;
    Slice input(row[3].AsString());
    s = Transaction::DecodeFrom(&input, &txn);
    if (!s.ok()) return s;
    out->push_back(std::move(txn));
  }
  return Status::OK();
}

Status ChainsqlBaseline::TrackClientSide(const std::string& operator_id,
                                         const std::string& operation,
                                         Timestamp window_start,
                                         Timestamp window_end,
                                         std::vector<Transaction>* out) const {
  // Server returns everything the operator sent...
  std::vector<Transaction> all;
  Status s = GetTransactionsByOperator(operator_id, &all);
  if (!s.ok()) return s;
  // ...and the client filters.
  for (auto& txn : all) {
    if (!operation.empty() && txn.tname() != operation) continue;
    if (txn.ts() < window_start || txn.ts() > window_end) continue;
    out->push_back(std::move(txn));
  }
  return Status::OK();
}

}  // namespace sebdb
