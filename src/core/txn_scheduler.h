// Transaction scheduler: order-then-execute parallel block apply
// (DESIGN.md §13, after Nathan et al., "Blockchain Meets Database").
// Consensus fixes the transaction order first; the scheduler then extracts
// each transaction's write footprint, partitions the block into conflict-
// free waves, executes each wave's transactions concurrently on the shared
// ThreadPool against the wave's MVCC snapshot (base state + all earlier
// waves), and commits every index delta in the original transaction order —
// so block hashes, ALI digests, histograms and catalog state stay
// byte-identical to serial apply on every replica, for any pool size.
//
// Footprint rules (conservative, catalog-free, deterministic):
//   - an insert into table T writes (T, key) where key hashes the first
//     application column's encoded bytes — the paper's primary-attribute
//     position. Hash collisions only create false conflicts (safe).
//   - a "__schema" transaction that decodes is a table-level barrier on its
//     target table: it waits for every earlier transaction touching the
//     table, and every later one waits for it.
//   - a "__schema" transaction that does NOT decode is a global barrier
//     (it cannot be attributed to a table, so nothing may reorder past it).
// An all-conflicting block degrades to one transaction per wave — the cost
// of serial apply plus bookkeeping, which is the graceful-degradation bound
// the adversarial bench measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "sql/catalog.h"
#include "sql/index_set.h"
#include "storage/block.h"
#include "types/transaction.h"

namespace sebdb {

/// Write footprint of one transaction within its block.
struct TxnFootprint {
  enum class Kind : uint8_t {
    kInsert = 0,    // appends one tuple: writes (table, key)
    kSchemaOp = 1,  // schema sync for `table`: table-level barrier
    kOpaque = 2,    // undecodable schema txn: global barrier
  };
  Kind kind = Kind::kInsert;
  std::string table;
  uint64_t key_hash = 0;  // kInsert with at least one app column
  bool has_key = false;
};

TxnFootprint ExtractFootprint(const Transaction& txn);

/// Conflict-free wave partition of one ordered block. waves[w] holds the
/// block positions of wave w's transactions in ascending order; every
/// transaction appears in exactly one wave, and no transaction conflicts
/// with another in its own wave.
struct WavePlan {
  std::vector<std::vector<uint32_t>> waves;
  uint64_t conflict_txns = 0;    // transactions forced past wave 0
  uint64_t schema_barriers = 0;  // schema ops encountered (incl. opaque)
};

WavePlan PlanWaves(const std::vector<Transaction>& txns);

/// Cumulative conflict-tracking counters, surfaced through SebdbNode stats
/// and the startup log.
struct TxnSchedulerStats {
  uint64_t blocks = 0;
  uint64_t txns = 0;
  uint64_t waves = 0;               // sum over blocks
  uint64_t conflict_txns = 0;       // transactions placed past wave 0
  uint64_t schema_barriers = 0;
  uint64_t single_wave_blocks = 0;  // fully conflict-free blocks
  uint64_t max_waves_in_block = 0;
  int64_t apply_micros = 0;  // wall time inside Apply (parallel speedup =
                             // serial-baseline micros / this, same workload)
};

struct TxnSchedulerOptions {
  /// Worker pool for the execute and merge phases; nullptr runs the same
  /// pipeline serially (one shared code path).
  ThreadPool* pool = nullptr;
  /// Simulated per-transaction execution cost (micros) charged in the
  /// execute phase — models the application work (stored procedures,
  /// off-chain storage reads) a production execute stage performs per
  /// transaction. Workers overlap it within a wave. 0 disables.
  uint32_t execute_cost_micros = 0;
  /// Bypass wave scheduling: apply through IndexSet::AddBlock plus the
  /// serial catalog walk. Equivalence baseline for tests and benches only.
  bool serial = false;
};

/// Applies ordered blocks into an IndexSet + Catalog, either scheduled
/// (default) or serial (baseline). Stateless with respect to the chain —
/// ChainManager passes its current IndexSet/Catalog per call, so checkpoint
/// restores and state-sync swaps need no re-wiring.
class TxnScheduler {
 public:
  explicit TxnScheduler(TxnSchedulerOptions options)
      : options_(options) {}

  Status Apply(const Block& block, IndexSet* indexes, Catalog* catalog)
      EXCLUDES(mu_);

  TxnSchedulerStats stats() const EXCLUDES(mu_);

 private:
  void SimulateExecuteCost() const;

  const TxnSchedulerOptions options_;
  mutable Mutex mu_;
  TxnSchedulerStats stats_ GUARDED_BY(mu_);
};

}  // namespace sebdb
