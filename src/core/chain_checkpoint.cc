// ChainManager's checkpoint write / restore paths (DESIGN.md §11). Split
// from chain_manager.cc: everything here runs under mu_ and talks to the
// CheckpointManager + BufferManager; the hot append/apply/query paths never
// enter this file except through MaybeCheckpointLocked's cheap height check.
#include <algorithm>

#include "common/coding.h"
#include "core/chain_manager.h"

namespace sebdb {

namespace {

constexpr uint32_t kChainMetaVersion = 1;

std::string CheckpointPrefix(uint64_t id) {
  return "ckpt_" + std::to_string(id);
}

}  // namespace

// Stages every index's delta plus one chain-meta blob (tip cursors, trusted
// block-store prefix, catalog, index-set state) as shadow files, then
// publishes them with a single manifest append. Until Publish succeeds the
// previous checkpoint remains the recovery point; afterwards the staged
// files are the checkpoint and the superseded files are garbage-collected
// by the CheckpointManager.
Status ChainManager::WriteCheckpointLocked() {
  if (ckpt_ == nullptr || pool_ == nullptr || indexes_ == nullptr) {
    return Status::InvalidArgument("checkpointing not initialized");
  }
  CheckpointRecord rec;
  rec.id = ckpt_->next_id();
  rec.height = store_.num_blocks();
  const std::string prefix = CheckpointPrefix(rec.id);

  PendingIndexCheckpoint pending;
  std::string index_meta;
  Status s = indexes_->WriteCheckpoint(pool_.get(), ckpt_->dir(), prefix,
                                       &rec.files, &index_meta, &pending);
  if (!s.ok()) {
    indexes_->AbortCheckpoint(pool_.get(), pending);
    return s;
  }

  std::string meta;
  PutVarint32(&meta, kChainMetaVersion);
  PutVarint64(&meta, rec.height);
  meta.append(reinterpret_cast<const char*>(tip_hash_.bytes.data()), 32);
  PutVarSigned64(&meta, last_ts_);
  PutVarint64(&meta, next_tid_);
  std::string blob;
  store_.trusted_prefix_snapshot().EncodeTo(&blob);
  PutLengthPrefixed(&meta, blob);
  blob.clear();
  catalog_.EncodeTo(&blob);
  PutLengthPrefixed(&meta, blob);
  PutLengthPrefixed(&meta, index_meta);

  const std::string meta_name = prefix + "_meta";
  BufferManager::FileId meta_file = BufferManager::kInvalidFileId;
  s = pool_->CreateFile(ckpt_->FilePath(meta_name), &meta_file);
  if (s.ok()) {
    s = CheckpointManager::WriteBlobFile(pool_.get(), meta_file, meta);
    if (s.ok()) s = pool_->Flush(meta_file);
  }
  if (s.ok()) {
    rec.files.push_back({meta_name, pool_->file_size(meta_file)});
    s = ckpt_->Publish(rec);
  }
  if (!s.ok()) {
    if (meta_file != BufferManager::kInvalidFileId) {
      pool_->DropFile(meta_file);
    }
    indexes_->AbortCheckpoint(pool_.get(), pending);
    return s;
  }

  indexes_->AdoptCheckpoint(pool_.get(), pending);
  // The meta blob is only ever read by the next Open (outside the pool).
  pool_->DropFile(meta_file);
  last_checkpoint_height_ = rec.height;
  checkpoints_written_++;
  return Status::OK();
}

void ChainManager::MaybeCheckpointLocked() {
  const uint64_t interval = options_.checkpoint.interval_blocks;
  if (interval == 0 || ckpt_ == nullptr) return;
  if (store_.num_blocks() < last_checkpoint_height_ + interval) return;
  // Best-effort: a failed periodic checkpoint never fails the append that
  // triggered it — the previous checkpoint (or full replay) still recovers
  // everything, and the next interval retries.
  WriteCheckpointLocked().ok();
}

Status ChainManager::OpenFromCheckpoint(const CheckpointRecord& rec,
                                        const IndexSetOptions& index_options,
                                        const std::string& dir) {
  // 1. Chain meta blob (standalone read — the pool never sees this file).
  std::string meta;
  Status s = CheckpointManager::ReadBlobFile(
      ckpt_->env(), ckpt_->FilePath(CheckpointPrefix(rec.id) + "_meta"),
      &meta);
  if (!s.ok()) return s;
  Slice in(meta);
  uint32_t version;
  uint64_t height, next_tid;
  int64_t last_ts;
  Slice prefix_blob, catalog_blob, index_blob;
  Hash256 tip;
  if (!GetVarint32(&in, &version) || version != kChainMetaVersion ||
      !GetVarint64(&in, &height) || in.size() < 32) {
    return Status::Corruption("bad checkpoint meta header");
  }
  std::memcpy(tip.bytes.data(), in.data(), 32);
  in.remove_prefix(32);
  if (!GetVarSigned64(&in, &last_ts) || !GetVarint64(&in, &next_tid) ||
      !GetLengthPrefixed(&in, &prefix_blob) ||
      !GetLengthPrefixed(&in, &catalog_blob) ||
      !GetLengthPrefixed(&in, &index_blob)) {
    return Status::Corruption("truncated checkpoint meta");
  }
  if (height != rec.height) {
    return Status::Corruption("checkpoint meta height mismatch");
  }
  TrustedPrefix trusted;
  Slice p = prefix_blob;
  if (!TrustedPrefix::DecodeFrom(&p, &trusted)) {
    return Status::Corruption("bad trusted prefix in checkpoint meta");
  }

  // 2. Block store: the checkpointed layout digest lets recovery skip
  //    re-scanning blocks [0, height) — only bytes past the prefix are
  //    CRC-validated. The store verifies the digest before trusting it.
  BlockStoreOptions store_options = options_.store;
  store_options.trusted_prefix = &trusted;
  s = store_.Open(store_options, dir);
  if (!s.ok()) return s;
  if (store_.num_blocks() < height) {
    // The chain lost blocks the checkpoint covers (e.g. a hand-truncated
    // segment); the checkpoint is unusable.
    return Status::Corruption("chain is shorter than the checkpoint");
  }

  // 3. Catalog + indexes at the checkpoint height.
  Slice c = catalog_blob;
  s = catalog_.RestoreFrom(&c);
  if (!s.ok()) return s;
  indexes_ = std::make_unique<IndexSet>(&store_, index_options);
  s = indexes_->RestoreCheckpoint(pool_.get(), ckpt_->dir(), height,
                                  index_blob);
  if (!s.ok()) return s;

  // 4. Chain cursors as of the checkpoint, then tail-only replay.
  tip_hash_ = tip;
  last_ts_ = last_ts;
  next_tid_ = next_tid;
  const uint64_t n = store_.num_blocks();
  s = ReplayChain(height, n);
  if (!s.ok()) return s;
  startup_.from_checkpoint = true;
  startup_.checkpoint_height = height;
  startup_.replayed_blocks = n - height;
  return Status::OK();
}

}  // namespace sebdb
