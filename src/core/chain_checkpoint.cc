// ChainManager's checkpoint write / restore paths (DESIGN.md §11). Split
// from chain_manager.cc: everything here runs under mu_ and talks to the
// CheckpointManager + BufferManager; the hot append/apply/query paths never
// enter this file except through MaybeCheckpointLocked's cheap height check.
#include <algorithm>

#include "common/coding.h"
#include "core/chain_manager.h"

namespace sebdb {

namespace {

constexpr uint32_t kChainMetaVersion = 1;

std::string CheckpointPrefix(uint64_t id) {
  return "ckpt_" + std::to_string(id);
}

// Decoded view of a checkpoint's chain-meta blob. The Slice fields alias
// the blob's backing string, which must outlive this struct.
struct ChainMetaBlob {
  uint64_t height = 0;
  Hash256 tip;
  int64_t last_ts = 0;
  uint64_t next_tid = 1;
  Slice prefix_blob;
  Slice catalog_blob;
  Slice index_blob;
};

Status ParseChainMeta(Slice in, ChainMetaBlob* out) {
  uint32_t version;
  if (!GetVarint32(&in, &version) || version != kChainMetaVersion ||
      !GetVarint64(&in, &out->height) || in.size() < 32) {
    return Status::Corruption("bad checkpoint meta header");
  }
  std::memcpy(out->tip.bytes.data(), in.data(), 32);
  in.remove_prefix(32);
  if (!GetVarSigned64(&in, &out->last_ts) ||
      !GetVarint64(&in, &out->next_tid) ||
      !GetLengthPrefixed(&in, &out->prefix_blob) ||
      !GetLengthPrefixed(&in, &out->catalog_blob) ||
      !GetLengthPrefixed(&in, &out->index_blob)) {
    return Status::Corruption("truncated checkpoint meta");
  }
  return Status::OK();
}

}  // namespace

// Stages every index's delta plus one chain-meta blob (tip cursors, trusted
// block-store prefix, catalog, index-set state) as shadow files, then
// publishes them with a single manifest append. Until Publish succeeds the
// previous checkpoint remains the recovery point; afterwards the staged
// files are the checkpoint and the superseded files are garbage-collected
// by the CheckpointManager.
Status ChainManager::WriteCheckpointLocked() {
  if (ckpt_ == nullptr || pool_ == nullptr || indexes_ == nullptr) {
    return Status::InvalidArgument("checkpointing not initialized");
  }
  CheckpointRecord rec;
  rec.id = ckpt_->next_id();
  rec.height = store_.num_blocks();
  const std::string prefix = CheckpointPrefix(rec.id);

  PendingIndexCheckpoint pending;
  std::string index_meta;
  Status s = indexes_->WriteCheckpoint(pool_.get(), ckpt_->dir(), prefix,
                                       &rec.files, &index_meta, &pending);
  if (!s.ok()) {
    indexes_->AbortCheckpoint(pool_.get(), pending);
    return s;
  }

  std::string meta;
  PutVarint32(&meta, kChainMetaVersion);
  PutVarint64(&meta, rec.height);
  meta.append(reinterpret_cast<const char*>(tip_hash_.bytes.data()), 32);
  PutVarSigned64(&meta, last_ts_);
  PutVarint64(&meta, next_tid_);
  std::string blob;
  store_.trusted_prefix_snapshot().EncodeTo(&blob);
  PutLengthPrefixed(&meta, blob);
  blob.clear();
  catalog_.EncodeTo(&blob);
  PutLengthPrefixed(&meta, blob);
  PutLengthPrefixed(&meta, index_meta);

  const std::string meta_name = prefix + "_meta";
  BufferManager::FileId meta_file = BufferManager::kInvalidFileId;
  s = pool_->CreateFile(ckpt_->FilePath(meta_name), &meta_file);
  if (s.ok()) {
    s = CheckpointManager::WriteBlobFile(pool_.get(), meta_file, meta);
    if (s.ok()) s = pool_->Flush(meta_file);
  }
  if (s.ok()) {
    rec.files.push_back({meta_name, pool_->file_size(meta_file)});
    s = ckpt_->Publish(rec);
  }
  if (!s.ok()) {
    if (meta_file != BufferManager::kInvalidFileId) {
      pool_->DropFile(meta_file);
    }
    indexes_->AbortCheckpoint(pool_.get(), pending);
    return s;
  }

  indexes_->AdoptCheckpoint(pool_.get(), pending);
  // The meta blob is only ever read by the next Open (outside the pool).
  pool_->DropFile(meta_file);
  last_checkpoint_height_ = rec.height;
  checkpoints_written_++;
  return Status::OK();
}

void ChainManager::MaybeCheckpointLocked() {
  const uint64_t interval = options_.checkpoint.interval_blocks;
  if (interval == 0 || ckpt_ == nullptr) return;
  if (store_.num_blocks() < last_checkpoint_height_ + interval) return;
  // Best-effort: a failed periodic checkpoint never fails the append that
  // triggered it — the previous checkpoint (or full replay) still recovers
  // everything, and the next interval retries.
  WriteCheckpointLocked().ok();
}

Status ChainManager::OpenFromCheckpoint(const CheckpointRecord& rec,
                                        const IndexSetOptions& index_options,
                                        const std::string& dir) {
  // 1. Chain meta blob (standalone read — the pool never sees this file).
  std::string meta_bytes;
  Status s = CheckpointManager::ReadBlobFile(
      ckpt_->env(), ckpt_->FilePath(CheckpointPrefix(rec.id) + "_meta"),
      &meta_bytes);
  if (!s.ok()) return s;
  ChainMetaBlob meta;
  s = ParseChainMeta(Slice(meta_bytes), &meta);
  if (!s.ok()) return s;
  const uint64_t height = meta.height;
  if (height != rec.height) {
    return Status::Corruption("checkpoint meta height mismatch");
  }
  TrustedPrefix trusted;
  Slice p = meta.prefix_blob;
  if (!TrustedPrefix::DecodeFrom(&p, &trusted)) {
    return Status::Corruption("bad trusted prefix in checkpoint meta");
  }

  // 2. Block store: the checkpointed layout digest lets recovery skip
  //    re-scanning blocks [0, height) — only bytes past the prefix are
  //    CRC-validated. The store verifies the digest before trusting it.
  BlockStoreOptions store_options = options_.store;
  store_options.trusted_prefix = &trusted;
  s = store_.Open(store_options, dir);
  if (!s.ok()) return s;
  if (store_.num_blocks() < height) {
    // The chain lost blocks the checkpoint covers (e.g. a hand-truncated
    // segment); the checkpoint is unusable.
    return Status::Corruption("chain is shorter than the checkpoint");
  }

  // 3. Catalog + indexes at the checkpoint height.
  Slice c = meta.catalog_blob;
  s = catalog_.RestoreFrom(&c);
  if (!s.ok()) return s;
  indexes_ = std::make_unique<IndexSet>(&store_, index_options);
  s = indexes_->RestoreCheckpoint(pool_.get(), ckpt_->dir(), height,
                                  meta.index_blob);
  if (!s.ok()) return s;

  // 4. Chain cursors as of the checkpoint, then tail-only replay.
  tip_hash_ = meta.tip;
  last_ts_ = meta.last_ts;
  next_tid_ = meta.next_tid;
  const uint64_t n = store_.num_blocks();
  s = ReplayChain(height, n);
  if (!s.ok()) return s;
  startup_.from_checkpoint = true;
  startup_.checkpoint_height = height;
  startup_.replayed_blocks = n - height;
  return Status::OK();
}

Status ChainManager::DescribeCheckpoint(CheckpointDescriptor* out) {
  // Held across the file reads: published checkpoint files are immutable,
  // but a concurrent Publish may garbage-collect superseded ones. Offers
  // are rare (one per state-sync session), so serializing with appends is
  // acceptable.
  MutexLock lock(&mu_);
  if (!open_ || ckpt_ == nullptr) return Status::Aborted("chain not open");
  const CheckpointRecord* latest = ckpt_->latest();
  if (latest == nullptr) return Status::NotFound("no checkpoint published");
  out->record = *latest;
  out->file_hashes.clear();
  out->file_hashes.reserve(latest->files.size());
  out->transfer_sizes.clear();
  out->transfer_sizes.reserve(latest->files.size());
  Env* env = ckpt_->env();
  for (const CheckpointFile& f : latest->files) {
    std::unique_ptr<ReadableFile> reader;
    Status s = env->NewReadableFile(ckpt_->FilePath(f.name), &reader);
    if (!s.ok()) return s;
    std::string bytes;
    s = reader->Read(0, f.size, &bytes);
    Status close = reader->Close();
    if (s.ok()) s = close;
    if (s.ok() && bytes.size() != f.size) {
      s = Status::IOError("short checkpoint file read: " + f.name);
    }
    if (!s.ok()) return s;
    // Hash the transfer image, not the raw pages: the fetching peer can then
    // verify every byte it pulls off the wire against this hash before it
    // spends any work decompressing or installing.
    std::string transfer;
    CheckpointManager::CompressZeroRuns(Slice(bytes), &transfer);
    out->transfer_sizes.push_back(transfer.size());
    out->file_hashes.push_back(Sha256::Digest(Slice(transfer)));
  }
  return Status::OK();
}

Status ChainManager::ReadCheckpointTransfer(const std::string& name,
                                            uint64_t offset, uint64_t n,
                                            std::string* out) {
  MutexLock lock(&mu_);
  if (!open_ || ckpt_ == nullptr) return Status::Aborted("chain not open");
  const CheckpointRecord* latest = ckpt_->latest();
  const CheckpointFile* file = nullptr;
  if (latest != nullptr) {
    for (const CheckpointFile& f : latest->files) {
      if (f.name == name) {
        file = &f;
        break;
      }
    }
  }
  if (file == nullptr) {
    return Status::NotFound("not a file of the newest checkpoint: " + name);
  }
  // Recompress the (immutable, already-published) file and slice the
  // requested window out of the deterministic transfer image. O(file) per
  // chunk, but checkpoint files are small once compressed and state-sync
  // sessions are rare; trading CPU here keeps the serving side stateless.
  std::unique_ptr<ReadableFile> reader;
  Status s = ckpt_->env()->NewReadableFile(ckpt_->FilePath(name), &reader);
  if (!s.ok()) return s;
  std::string bytes;
  s = reader->Read(0, file->size, &bytes);
  Status close = reader->Close();
  if (s.ok()) s = close;
  if (s.ok() && bytes.size() != file->size) {
    s = Status::IOError("short checkpoint file read: " + name);
  }
  if (!s.ok()) return s;
  std::string transfer;
  CheckpointManager::CompressZeroRuns(Slice(bytes), &transfer);
  if (offset > transfer.size()) {
    return Status::InvalidArgument("offset past end of " + name);
  }
  n = std::min(n, transfer.size() - offset);
  out->assign(transfer, offset, n);
  return Status::OK();
}

Status ChainManager::RecoverSpliceLocked(uint64_t from, const Status& cause) {
  state_sync_.fallbacks++;
  Status s = ReplayChain(from, store_.num_blocks());
  if (!s.ok()) return s;
  return cause;
}

Status ChainManager::RebuildAfterFailedInstallLocked(const Status& cause) {
  state_sync_.fallbacks++;
  fprintf(stderr,
          "[sebdb] chain %s: state-sync install failed (%s); rebuilding from "
          "a full replay\n",
          store_.dir().c_str(), cause.ToString().c_str());
  BufferPoolOptions pool_options;
  pool_options.capacity_bytes = options_.checkpoint.pool_bytes;
  pool_options.env = ckpt_ != nullptr ? ckpt_->env() : index_options_.env;
  catalog_.Clear();
  if (indexes_ != nullptr) {
    retired_.push_back({std::move(indexes_), std::move(pool_)});
  }
  pool_ = std::make_unique<BufferManager>(pool_options);
  indexes_ = std::make_unique<IndexSet>(&store_, index_options_);
  tip_hash_ = Hash256{};
  last_ts_ = 0;
  next_tid_ = 1;
  Status s = ReplayChain(0, store_.num_blocks());
  if (!s.ok()) return s;  // chain state itself is unrecoverable locally
  return cause;
}

// State-sync install (DESIGN.md §12). Order of operations is chosen so a
// crash at any point self-heals on the next open: bridge blocks are plain
// verified chain extensions (a reopen replays them), and the checkpoint
// directory swap publishes its manifest record last (until then the next
// open simply finds no usable checkpoint and falls back to full replay).
Status ChainManager::InstallStateSync(const StateSyncPackage& pkg) {
  MutexLock lock(&mu_);
  if (!open_) return Status::Aborted("chain not open");
  if (ckpt_ == nullptr || pool_ == nullptr) {
    return Status::InvalidArgument("checkpointing not initialized");
  }
  const uint64_t local = store_.num_blocks();
  if (pkg.record.height <= local) {
    return Status::InvalidArgument("state-sync checkpoint behind local tip");
  }
  if (pkg.first_height > local ||
      pkg.first_height + pkg.blocks.size() != pkg.record.height) {
    return Status::InvalidArgument(
        "state-sync bridge does not cover the gap");
  }
  if (pkg.files.size() != pkg.record.files.size()) {
    return Status::InvalidArgument("state-sync file count mismatch");
  }
  for (size_t i = 0; i < pkg.files.size(); i++) {
    if (pkg.files[i].size() != pkg.record.files[i].size) {
      return Status::InvalidArgument("state-sync file size mismatch: " +
                                     pkg.record.files[i].name);
    }
  }

  // Parse the chain meta up front: reject a package that cannot possibly
  // install before mutating anything.
  const std::string meta_name = CheckpointPrefix(pkg.record.id) + "_meta";
  std::string meta_bytes;
  Status s = Status::NotFound("checkpoint meta missing from package");
  for (size_t i = 0; i < pkg.record.files.size(); i++) {
    if (pkg.record.files[i].name == meta_name) {
      s = CheckpointManager::DecodeBlobPages(Slice(pkg.files[i]),
                                             &meta_bytes);
      break;
    }
  }
  if (!s.ok()) return s;
  ChainMetaBlob meta;
  s = ParseChainMeta(Slice(meta_bytes), &meta);
  if (!s.ok()) return s;
  if (meta.height != pkg.record.height) {
    return Status::Corruption("state-sync meta height mismatch");
  }

  // 1. Splice the bridge: every record is decoded, Merkle-validated,
  //    hash-chain-linked from the local tip and (when enabled) signature-
  //    checked before it is appended raw.
  uint64_t spliced = 0;
  Hash256 tip = tip_hash_;
  for (uint64_t h = local; h < pkg.record.height; h++) {
    const std::string& record = pkg.blocks[h - pkg.first_height];
    Block block;
    Slice in(record);
    s = Block::DecodeFrom(&in, &block);
    if (s.ok() && block.height() != h) {
      s = Status::Corruption("bridge record height mismatch at " +
                             std::to_string(h));
    }
    if (s.ok()) s = block.Validate();
    if (s.ok() && h > 0 && block.header().prev_hash != tip) {
      s = Status::Corruption("bridge record breaks the hash chain at " +
                             std::to_string(h));
    }
    if (s.ok() && options_.verify_signatures && keystore_ != nullptr) {
      const auto& txns = block.transactions();
      s = ParallelForStatus(options_.pool, txns.size(), [&](uint64_t i) {
        return keystore_->VerifyTransaction(txns[i]);
      });
    }
    if (s.ok()) {
      // verify: decode + Merkle + prev-hash link (+ signatures) just above.
      s = store_.AppendRaw(h, record);
    }
    if (!s.ok()) return RecoverSpliceLocked(local, s);
    tip = block.header().block_hash;
    spliced++;
  }
  // The spliced chain must land exactly on the checkpoint's tip: otherwise
  // the bridge, though internally consistent, extends a different history
  // than the checkpoint state we are about to install on top of it.
  if (tip != meta.tip) {
    return RecoverSpliceLocked(
        local, Status::Corruption("state-sync bridge tip does not match "
                                  "checkpoint meta tip"));
  }

  // 2. Replace the local checkpoint directory with the package contents.
  //    The old directory (and any checkpoint of the shorter local history)
  //    is discarded wholesale; the manifest record is published last.
  Env* env = ckpt_->env();
  const std::string ckpt_dir = ckpt_->dir();
  ckpt_.reset();  // closes the MANIFEST writer
  s = env->RemoveDirRecursive(ckpt_dir);
  if (s.ok()) s = CheckpointManager::Open(env, ckpt_dir, &ckpt_);
  for (size_t i = 0; s.ok() && i < pkg.files.size(); i++) {
    std::unique_ptr<WritableFile> f;
    s = env->NewWritableFile(ckpt_->FilePath(pkg.record.files[i].name), &f);
    if (!s.ok()) break;
    s = f->Append(Slice(pkg.files[i]));
    if (s.ok()) s = f->Sync();
    Status close = f->Close();
    if (s.ok()) s = close;
  }
  if (s.ok()) s = env->SyncDir(ckpt_dir);
  if (s.ok()) s = ckpt_->Publish(pkg.record);
  if (!s.ok()) {
    // Leave a working (possibly empty) checkpoint manager behind, then
    // resync indexes with the spliced blocks.
    if (ckpt_ == nullptr) {
      (void)CheckpointManager::Open(env, ckpt_dir, &ckpt_);
    }
    return RecoverSpliceLocked(local, s);
  }

  // 3. Restore catalog + indexes from the installed checkpoint through the
  //    same path a restart uses. The superseded index set (and its pool)
  //    retires instead of dying: in-flight queries may still be reading it.
  BufferPoolOptions pool_options;
  pool_options.capacity_bytes = options_.checkpoint.pool_bytes;
  pool_options.env = env;
  retired_.push_back({std::move(indexes_), std::move(pool_)});
  pool_ = std::make_unique<BufferManager>(pool_options);
  catalog_.Clear();
  Slice c = meta.catalog_blob;
  s = catalog_.RestoreFrom(&c);
  if (s.ok()) {
    indexes_ = std::make_unique<IndexSet>(&store_, index_options_);
    s = indexes_->RestoreCheckpoint(pool_.get(), ckpt_->dir(),
                                    pkg.record.height, meta.index_blob);
  }
  if (s.ok()) {
    tip_hash_ = meta.tip;
    last_ts_ = meta.last_ts;
    next_tid_ = meta.next_tid;
    s = ReplayChain(pkg.record.height, store_.num_blocks());
  }
  if (!s.ok()) return RebuildAfterFailedInstallLocked(s);

  last_checkpoint_height_ = pkg.record.height;
  state_sync_.installs++;
  state_sync_.blocks_spliced += spliced;
  state_sync_.installed_height = pkg.record.height;
  fprintf(stderr,
          "[sebdb] chain %s: installed peer checkpoint id=%llu height=%llu "
          "(%zu files, %llu bridge blocks)\n",
          store_.dir().c_str(), static_cast<unsigned long long>(pkg.record.id),
          static_cast<unsigned long long>(pkg.record.height),
          pkg.files.size(), static_cast<unsigned long long>(spliced));
  return Status::OK();
}

}  // namespace sebdb
