#include "core/chain_manager.h"

namespace sebdb {

Status ChainManager::Open(const ChainOptions& options,
                          const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return Status::Busy("chain already open");
  options_ = options;
  Status s = store_.Open(options.store, dir);
  if (!s.ok()) return s;
  IndexSetOptions index_options = options.indexes;
  if (index_options.manifest_path.empty()) {
    index_options.manifest_path = dir + "/indexes.manifest";
  }
  indexes_ = std::make_unique<IndexSet>(&store_, index_options);

  if (store_.num_blocks() == 0) {
    // Fresh chain: write the genesis block (height 0, no transactions).
    BlockBuilder builder;
    builder.SetHeight(0).SetTimestamp(0).SetFirstTid(1);
    Block genesis = std::move(builder).Build("genesis");
    s = store_.Append(genesis);
    if (!s.ok()) return s;
    s = ApplyBlock(genesis);
    if (!s.ok()) return s;
  } else {
    // Recovery: replay every persisted block into indexes and catalog.
    for (uint64_t h = 0; h < store_.num_blocks(); h++) {
      std::shared_ptr<const Block> block;
      s = store_.ReadBlock(h, &block);
      if (!s.ok()) return s;
      s = block->Validate();
      if (!s.ok()) return s;
      s = ApplyBlock(*block);
      if (!s.ok()) return s;
    }
  }
  open_ = true;
  return Status::OK();
}

Status ChainManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  return store_.Close();
}

Status ChainManager::ApplyBlock(const Block& block) {
  Status s = indexes_->AddBlock(block);
  if (!s.ok()) return s;
  for (const auto& txn : block.transactions()) {
    catalog_.MaybeApplySchemaTransaction(txn);
  }
  tip_hash_ = block.header().block_hash;
  last_ts_ = block.header().timestamp;
  if (block.header().num_transactions > 0) {
    next_tid_ = block.header().first_tid + block.header().num_transactions;
  }
  return Status::OK();
}

Status ChainManager::AppendBatch(uint64_t seq, std::vector<Transaction> txns,
                                 Timestamp timestamp,
                                 const std::string& packager,
                                 const std::string& packager_signature) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::Aborted("chain not open");
  uint64_t expected_height = seq + 1;  // genesis occupies height 0
  if (store_.num_blocks() != expected_height) {
    if (store_.num_blocks() > expected_height) {
      return Status::OK();  // already applied (e.g. arrived via gossip first)
    }
    return Status::InvalidArgument(
        "batch " + std::to_string(seq) + " arrived at chain height " +
        std::to_string(store_.num_blocks()));
  }

  // Block timestamps must be deterministic across replicas and monotone;
  // callers pass a content-derived timestamp (max transaction ts) and we
  // clamp against the previous block.
  if (timestamp < last_ts_) timestamp = last_ts_;
  BlockBuilder builder;
  builder.SetPrevHash(tip_hash_)
      .SetHeight(expected_height)
      .SetTimestamp(timestamp)
      .SetFirstTid(next_tid_);
  for (auto& txn : txns) builder.AddTransaction(std::move(txn));
  Block block = std::move(builder).Build(packager_signature);
  (void)packager;

  Status s = store_.Append(block);
  if (!s.ok()) return s;
  return ApplyBlock(block);
}

Status ChainManager::ApplyBlockRecord(BlockId height,
                                      const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::Aborted("chain not open");
  if (height < store_.num_blocks()) return Status::OK();  // stale
  if (height > store_.num_blocks()) {
    return Status::InvalidArgument("gap before block " +
                                   std::to_string(height));
  }
  Block block;
  Slice input(record);
  Status s = Block::DecodeFrom(&input, &block);
  if (!s.ok()) return s;
  if (block.height() != height) {
    return Status::Corruption("block record height mismatch");
  }
  s = block.Validate();
  if (!s.ok()) return s;
  if (height > 0 && block.header().prev_hash != tip_hash_) {
    return Status::Corruption("prev hash mismatch at height " +
                              std::to_string(height));
  }
  if (options_.verify_signatures && keystore_ != nullptr) {
    for (const auto& txn : block.transactions()) {
      s = keystore_->VerifyTransaction(txn);
      if (!s.ok()) return s;
    }
  }
  s = store_.Append(block);
  if (!s.ok()) return s;
  return ApplyBlock(block);
}

Status ChainManager::GetBlockRecord(BlockId height, std::string* record) {
  return store_.ReadRawRecord(height, record);
}

// Taking mu_ orders the read after ApplyBlock: a height becomes visible
// only once the block's catalog and index updates have been applied.
uint64_t ChainManager::height() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.num_blocks();
}

Hash256 ChainManager::tip_hash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tip_hash_;
}

TransactionId ChainManager::next_tid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_tid_;
}

Status ChainManager::GetHeader(BlockId height, BlockHeader* out) {
  return store_.ReadHeader(height, out);
}

}  // namespace sebdb
