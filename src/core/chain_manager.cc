#include "core/chain_manager.h"

#include <algorithm>
#include <cstdio>

namespace sebdb {

Status ChainManager::Open(const ChainOptions& options,
                          const std::string& dir) {
  MutexLock lock(&mu_);
  if (open_) return Status::Busy("chain already open");
  options_ = options;
  TxnSchedulerOptions scheduler_options;
  scheduler_options.pool = options.pool;
  scheduler_options.execute_cost_micros = options.execute_cost_micros;
  scheduler_options.serial = options.serial_apply;
  scheduler_ = std::make_unique<TxnScheduler>(scheduler_options);
  startup_ = StartupStats{};
  last_checkpoint_height_ = 0;
  state_sync_ = StateSyncStats{};
  degraded_carry_ = BlockStore::RecoveryStats{};
  retired_.clear();

  Env* env =
      options.store.env != nullptr ? options.store.env : Env::Default();
  BufferPoolOptions pool_options;
  pool_options.capacity_bytes = options.checkpoint.pool_bytes;
  pool_options.env = env;
  pool_ = std::make_unique<BufferManager>(pool_options);
  Status s = CheckpointManager::Open(env, dir + "/checkpoints", &ckpt_);
  if (!s.ok()) return s;

  IndexSetOptions index_options = options.indexes;
  if (index_options.manifest_path.empty()) {
    index_options.manifest_path = dir + "/indexes.manifest";
  }
  if (index_options.env == nullptr) index_options.env = env;
  index_options_ = index_options;

  // Tail-only recovery: restore the newest usable checkpoint, replay only
  // the blocks above it. Any failure falls back to the full rebuild below.
  if (const CheckpointRecord* latest = ckpt_->latest()) {
    s = OpenFromCheckpoint(*latest, index_options, dir);
    if (s.ok()) {
      last_checkpoint_height_ = latest->height;
      open_ = true;
      return Status::OK();
    }
    // Wholesale fallback: discard every partially restored structure (a
    // fresh pool also drops the delta files the failed restore opened).
    fprintf(stderr,
            "[sebdb] chain %s: checkpoint restore failed (%s); falling back "
            "to full replay\n",
            dir.c_str(), s.ToString().c_str());
    startup_ = StartupStats{};
    // The failed open may have quarantined segments (degraded open); the
    // clean reopen below must not erase that fact for the repair path.
    const BlockStore::RecoveryStats first = store_.recovery_stats();
    if (first.degraded) degraded_carry_ = first;
    (void)store_.Close();
    catalog_.Clear();
    indexes_.reset();
    pool_ = std::make_unique<BufferManager>(pool_options);
  }

  s = store_.Open(options.store, dir);
  if (!s.ok()) return s;
  indexes_ = std::make_unique<IndexSet>(&store_, index_options);

  if (store_.num_blocks() == 0) {
    // Fresh chain: write the genesis block (height 0, no transactions).
    BlockBuilder builder;
    builder.SetHeight(0).SetTimestamp(0).SetFirstTid(1);
    Block genesis = std::move(builder).Build("genesis");
    s = store_.Append(genesis);
    if (!s.ok()) return s;
    s = ApplyBlock(genesis);
    if (!s.ok()) return s;
  } else {
    // Recovery: replay every persisted block into indexes and catalog.
    s = ReplayChain(0, store_.num_blocks());
    if (!s.ok()) return s;
    startup_.replayed_blocks = store_.num_blocks();
  }
  open_ = true;
  return Status::OK();
}

Status ChainManager::ReplayChain(uint64_t from, uint64_t n) {
  ThreadPool* pool = options_.pool;
  if (pool == nullptr || n - from < 4) {
    for (uint64_t h = from; h < n; h++) {
      std::shared_ptr<const Block> block;
      Status s = store_.ReadBlock(h, &block);
      if (!s.ok()) return s;
      s = block->Validate();
      if (!s.ok()) return s;
      s = ApplyBlock(*block);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  // Each chunk is read (coalesced preads via ReadBlocks) and Merkle-validated
  // across the pool; sub-ranges give every worker a sequential slice. The
  // next chunk loads in the background while this thread applies the current
  // one in height order — apply is order-dependent (indexes, catalog, tids)
  // and stays here.
  const uint64_t threads = static_cast<uint64_t>(pool->num_threads());
  const uint64_t chunk = std::max<uint64_t>(threads * 16, 64);

  struct Prefetch {
    std::vector<std::shared_ptr<const Block>> blocks;
    Status status;
    Latch done{1};
  };
  auto load = [this, pool, threads](uint64_t begin, uint64_t end,
                                    Prefetch* out) {
    const uint64_t total = end - begin;
    out->blocks.assign(total, nullptr);
    const uint64_t stride = (total + threads - 1) / threads;
    const uint64_t tasks = (total + stride - 1) / stride;
    out->status = ParallelForStatus(pool, tasks, [&](uint64_t t) -> Status {
      const uint64_t lo = begin + t * stride;
      const uint64_t hi = std::min(end, lo + stride);
      std::vector<std::shared_ptr<const Block>> blocks;
      Status s = store_.ReadBlocks(lo, hi - lo, &blocks);
      if (!s.ok()) return s;
      for (uint64_t i = 0; i < blocks.size(); i++) {
        s = blocks[i]->Validate();
        if (!s.ok()) return s;
        out->blocks[lo - begin + i] = std::move(blocks[i]);
      }
      return Status::OK();
    });
    out->done.CountDown();
  };

  auto start_load = [&](uint64_t begin, uint64_t end) {
    auto p = std::make_shared<Prefetch>();
    pool->Submit([load, begin, end, p] { load(begin, end, p.get()); });
    return p;
  };

  std::shared_ptr<Prefetch> pending = start_load(from, std::min(n, from + chunk));
  for (uint64_t begin = from; begin < n; begin += chunk) {
    std::shared_ptr<Prefetch> current = std::move(pending);
    const uint64_t end = std::min(n, begin + chunk);
    if (end < n) pending = start_load(end, std::min(n, end + chunk));
    current->done.Wait();
    Status s = current->status;
    for (uint64_t i = 0; s.ok() && i < current->blocks.size(); i++) {
      s = ApplyBlock(*current->blocks[i]);
    }
    if (!s.ok()) {
      // The in-flight prefetch references this object; let it finish before
      // the error unwinds to a caller who may destroy us.
      if (pending != nullptr) pending->done.Wait();
      return s;
    }
  }
  return Status::OK();
}

Status ChainManager::Close() {
  MutexLock lock(&mu_);
  if (open_ && options_.checkpoint.checkpoint_on_close && ckpt_ != nullptr &&
      store_.num_blocks() > last_checkpoint_height_) {
    WriteCheckpointLocked().ok();  // best-effort; recovery replays the tail
  }
  open_ = false;
  return store_.Close();
}

Status ChainManager::WriteCheckpoint() {
  MutexLock lock(&mu_);
  if (!open_) return Status::Aborted("chain not open");
  return WriteCheckpointLocked();
}

ChainManager::StartupStats ChainManager::startup_stats() const {
  MutexLock lock(&mu_);
  return startup_;
}

BlockStore::RecoveryStats ChainManager::recovery_stats() const {
  BlockStore::RecoveryStats out = store_.recovery_stats();
  MutexLock lock(&mu_);
  if (degraded_carry_.degraded && !out.degraded) {
    out.degraded = true;
    out.segments_quarantined += degraded_carry_.segments_quarantined;
    out.bytes_quarantined += degraded_carry_.bytes_quarantined;
  }
  return out;
}

ChainManager::StateSyncStats ChainManager::state_sync_stats() const {
  MutexLock lock(&mu_);
  return state_sync_;
}

BufferManager::Stats ChainManager::buffer_stats() const {
  return pool_ != nullptr ? pool_->stats() : BufferManager::Stats{};
}

TxnSchedulerStats ChainManager::apply_stats() const {
  return scheduler_ != nullptr ? scheduler_->stats() : TxnSchedulerStats{};
}

uint64_t ChainManager::checkpoints_written() const {
  MutexLock lock(&mu_);
  return checkpoints_written_;
}

Status ChainManager::ApplyBlock(const Block& block) {
  // Order-then-execute scheduled apply (or the serial baseline when
  // options_.serial_apply is set): indexes + catalog advance together,
  // byte-identical to serial apply for any pool size. Startup replay,
  // gossip apply and consensus apply all land here, so one scheduler
  // covers every path a block reaches the indexes through.
  Status s = scheduler_->Apply(block, indexes_.get(), &catalog_);
  if (!s.ok()) return s;
  tip_hash_ = block.header().block_hash;
  last_ts_ = block.header().timestamp;
  if (block.header().num_transactions > 0) {
    next_tid_ = block.header().first_tid + block.header().num_transactions;
  }
  return Status::OK();
}

Status ChainManager::AppendBatch(uint64_t seq, std::vector<Transaction> txns,
                                 Timestamp timestamp,
                                 const std::string& packager_signature) {
  uint64_t expected_height = seq + 1;  // genesis occupies height 0
  Hash256 prev_hash;
  TransactionId first_tid;
  {
    MutexLock lock(&mu_);
    if (!open_) return Status::Aborted("chain not open");
    if (store_.num_blocks() != expected_height) {
      if (store_.num_blocks() > expected_height) {
        return Status::OK();  // already applied (e.g. arrived via gossip first)
      }
      return Status::InvalidArgument(
          "batch " + std::to_string(seq) + " arrived at chain height " +
          std::to_string(store_.num_blocks()));
    }
    // Block timestamps must be deterministic across replicas and monotone;
    // callers pass a content-derived timestamp (max transaction ts) and we
    // clamp against the previous block.
    if (timestamp < last_ts_) timestamp = last_ts_;
    prev_hash = tip_hash_;
    first_tid = next_tid_;
  }

  // Build the block — Merkle tree and SHA-256 over the whole body — outside
  // mu_ so readers and the gossip apply path aren't stalled behind hashing.
  // The snapshot stays valid as long as the height doesn't move (tid/ts/tip
  // only change together with the height, under mu_); rechecked below.
  BlockBuilder builder;
  builder.SetPrevHash(prev_hash)
      .SetHeight(expected_height)
      .SetTimestamp(timestamp)
      .SetFirstTid(first_tid);
  for (auto& txn : txns) builder.AddTransaction(std::move(txn));
  Block block = std::move(builder).Build(packager_signature);

  MutexLock lock(&mu_);
  if (!open_) return Status::Aborted("chain not open");
  if (store_.num_blocks() != expected_height) {
    // Raced with gossip delivering the same height; that block won.
    if (store_.num_blocks() > expected_height) return Status::OK();
    return Status::InvalidArgument(
        "batch " + std::to_string(seq) + " arrived at chain height " +
        std::to_string(store_.num_blocks()));
  }
  Status s = store_.Append(block);
  if (!s.ok()) return s;
  s = ApplyBlock(block);
  if (!s.ok()) return s;
  MaybeCheckpointLocked();
  return Status::OK();
}

Status ChainManager::ApplyBlockRecord(BlockId height,
                                      const std::string& record) {
  {
    MutexLock lock(&mu_);
    if (!open_) return Status::Aborted("chain not open");
    if (height < store_.num_blocks()) return Status::OK();  // stale
    if (height > store_.num_blocks()) {
      return Status::InvalidArgument("gap before block " +
                                     std::to_string(height));
    }
  }

  // Decode, Merkle-validate and signature-check outside mu_: none of it
  // depends on chain state, and signature verification fans out across the
  // pool. Only the prev-hash link and the append/apply need the lock.
  Block block;
  Slice input(record);
  Status s = Block::DecodeFrom(&input, &block);
  if (!s.ok()) return s;
  if (block.height() != height) {
    return Status::Corruption("block record height mismatch");
  }
  s = block.Validate();
  if (!s.ok()) return s;
  if (options_.verify_signatures && keystore_ != nullptr) {
    const auto& txns = block.transactions();
    s = ParallelForStatus(options_.pool, txns.size(), [&](uint64_t i) {
      return keystore_->VerifyTransaction(txns[i]);
    });
    if (!s.ok()) return s;
  }

  MutexLock lock(&mu_);
  if (!open_) return Status::Aborted("chain not open");
  if (height < store_.num_blocks()) return Status::OK();  // lost the race
  if (height > store_.num_blocks()) {
    return Status::InvalidArgument("gap before block " +
                                   std::to_string(height));
  }
  if (height > 0 && block.header().prev_hash != tip_hash_) {
    return Status::Corruption("prev hash mismatch at height " +
                              std::to_string(height));
  }
  s = store_.Append(block);
  if (!s.ok()) return s;
  s = ApplyBlock(block);
  if (!s.ok()) return s;
  MaybeCheckpointLocked();
  return Status::OK();
}

Status ChainManager::GetBlockRecord(BlockId height, std::string* record) {
  {
    MutexLock lock(&mu_);
    if (!open_) return Status::Aborted("chain not open");
  }
  return store_.ReadRawRecord(height, record);
}

// Taking mu_ orders the read after ApplyBlock: a height becomes visible
// only once the block's catalog and index updates have been applied.
uint64_t ChainManager::height() const {
  MutexLock lock(&mu_);
  return store_.num_blocks();
}

Hash256 ChainManager::tip_hash() const {
  MutexLock lock(&mu_);
  return tip_hash_;
}

TransactionId ChainManager::next_tid() const {
  MutexLock lock(&mu_);
  return next_tid_;
}

Status ChainManager::GetHeader(BlockId height, BlockHeader* out) {
  {
    MutexLock lock(&mu_);
    if (!open_) return Status::Aborted("chain not open");
  }
  return store_.ReadHeader(height, out);
}

}  // namespace sebdb
