#include "core/repair.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/sha256.h"

namespace sebdb {

namespace {

constexpr char kFetchType[] = "repair.fetch";
constexpr char kBlocksType[] = "repair.blocks";
constexpr char kCkptOfferType[] = "repair.ckpt_offer";
constexpr char kCkptMetaType[] = "repair.ckpt_meta";
constexpr char kCkptFetchType[] = "repair.ckpt_fetch";
constexpr char kCkptChunkType[] = "repair.ckpt_chunk";

}  // namespace

RepairCoordinator::RepairCoordinator(std::string node_id, Network* network,
                                     GossipDelegate* delegate,
                                     ChainManager* chain,
                                     std::vector<std::string> peers,
                                     const RepairOptions& options,
                                     std::function<void()> on_state_sync)
    : node_id_(std::move(node_id)),
      network_(network),
      delegate_(delegate),
      chain_(chain),
      peers_(std::move(peers)),
      options_(options),
      on_state_sync_(std::move(on_state_sync)),
      rng_(options.seed ^ std::hash<std::string>{}(node_id_)) {}

RepairCoordinator::~RepairCoordinator() { Stop(); }

void RepairCoordinator::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  ticker_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      Tick();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.tick_interval_millis));
    }
  });
}

void RepairCoordinator::Stop() {
  running_.store(false, std::memory_order_release);
  if (ticker_.joinable()) ticker_.join();
}

void RepairCoordinator::ArmDegradedRepair() {
  MutexLock lock(&mu_);
  armed_degraded_ = true;
}

RepairStats RepairCoordinator::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

bool RepairCoordinator::active() const {
  MutexLock lock(&mu_);
  return mode_ != Mode::kIdle;
}

void RepairCoordinator::NotePeerHeight(const std::string& peer,
                                       uint64_t height) {
  if (peers_.empty()) return;
  MutexLock lock(&mu_);
  const uint64_t my = delegate_->ChainHeight();
  if (height <= my) return;
  if (mode_ != Mode::kIdle) {
    // A session is running; remember the furthest advertised tip so block
    // repair keeps going until the real network height, not a stale one.
    if (height > target_height_) target_height_ = height;
    return;
  }
  const uint64_t gap = height - my;
  const bool want_state_sync = chain_ != nullptr &&
                               options_.state_sync_gap > 0 &&
                               gap >= options_.state_sync_gap;
  // Small gaps on a healthy node are gossip's job; the coordinator steps in
  // for degraded opens (any gap), for catch-up beyond the state-sync
  // threshold, and for everything when it is the node's only healer.
  if (!want_state_sync && !armed_degraded_ && !options_.heal_all_gaps) return;
  peer_ = peer;
  target_height_ = height;
  session_retries_ = 0;
  if (want_state_sync) {
    mode_ = Mode::kCkptMeta;
    stats_.state_syncs_started++;
    fprintf(stderr,
            "[sebdb] node %s: %llu block(s) behind %s — starting checkpoint "
            "state sync\n",
            node_id_.c_str(), static_cast<unsigned long long>(gap),
            peer.c_str());
    SendCkptOfferLocked();
  } else {
    mode_ = Mode::kBlockRepair;
    fprintf(stderr,
            "[sebdb] node %s: %s%llu block(s) behind %s — "
            "starting peer-assisted block repair\n",
            node_id_.c_str(), armed_degraded_ ? "degraded chain " : "",
            static_cast<unsigned long long>(gap), peer.c_str());
    SendFetchLocked(my);
  }
  ArmDeadlineLocked();
}

void RepairCoordinator::HandleMessage(const Message& message) {
  if (message.type == kBlocksType) {
    OnBlocks(message);
  } else if (message.type == kCkptMetaType) {
    OnCkptMeta(message);
  } else if (message.type == kFetchType) {
    ServeFetch(message);
  } else if (message.type == kCkptOfferType) {
    ServeCkptOffer(message);
  } else if (message.type == kCkptFetchType) {
    ServeCkptFetch(message);
  } else if (message.type == kCkptChunkType) {
    OnCkptChunk(message);
  }
}

// ---- client side -----------------------------------------------------------

void RepairCoordinator::OnBlocks(const Message& message) {
  MutexLock lock(&mu_);
  Slice input(message.payload);
  uint32_t count;
  if (!GetVarint32(&input, &count)) return;

  if (mode_ == Mode::kBlockRepair) {
    const uint64_t before = delegate_->ChainHeight();
    for (uint32_t i = 0; i < count; i++) {
      uint64_t height;
      Slice record;
      if (!GetVarint64(&input, &height) ||
          !GetLengthPrefixed(&input, &record)) {
        break;
      }
      stats_.records_fetched++;
      // The chain validates everything (decode, Merkle, prev-hash link,
      // optionally signatures); a bad record from a peer is just rejected.
      delegate_->ApplyBlockRecord(height, record.ToString());
    }
    const uint64_t after = delegate_->ChainHeight();
    if (after > before) stats_.blocks_repaired += after - before;
    if (after >= target_height_) {
      stats_.repairs_completed++;
      armed_degraded_ = false;
      fprintf(stderr,
              "[sebdb] node %s: block repair complete at height %llu "
              "(%llu repaired so far)\n",
              node_id_.c_str(), static_cast<unsigned long long>(after),
              static_cast<unsigned long long>(stats_.blocks_repaired));
      EndSessionLocked();
      return;
    }
    if (after > before) {
      session_retries_ = 0;
      SendFetchLocked(after);
      ArmDeadlineLocked();
    }
    // No progress: leave the deadline armed; Tick re-issues elsewhere.
    return;
  }

  if (mode_ == Mode::kCkptBlocks) {
    bool progressed = false;
    for (uint32_t i = 0; i < count; i++) {
      uint64_t height;
      Slice record;
      if (!GetVarint64(&input, &height) ||
          !GetLengthPrefixed(&input, &record)) {
        break;
      }
      const uint64_t expected = first_height_ + fetched_blocks_.size();
      if (height != expected || expected >= remote_.record.height) continue;
      fetched_blocks_.push_back(record.ToString());
      stats_.records_fetched++;
      progressed = true;
    }
    if (first_height_ + fetched_blocks_.size() >= remote_.record.height) {
      FinishStateSyncLocked();
      return;
    }
    if (progressed) {
      session_retries_ = 0;
      SendFetchLocked(first_height_ + fetched_blocks_.size());
      ArmDeadlineLocked();
    }
  }
}

void RepairCoordinator::OnCkptMeta(const Message& message) {
  MutexLock lock(&mu_);
  if (mode_ != Mode::kCkptMeta || message.from != peer_) return;
  Slice input(message.payload);
  uint32_t has;
  if (!GetVarint32(&input, &has)) return;
  if (has == 0) {
    FallBackToBlockRepairLocked("peer has no published checkpoint");
    return;
  }
  Slice encoded;
  CheckpointRecord record;
  if (!GetLengthPrefixed(&input, &encoded) ||
      !CheckpointManager::DecodeManifestRecord(&encoded, &record)) {
    FallBackToBlockRepairLocked("undecodable checkpoint descriptor");
    return;
  }
  if (record.height <= delegate_->ChainHeight()) {
    FallBackToBlockRepairLocked("peer checkpoint is not ahead of us");
    return;
  }
  // Per file: the SHA-256 of its transfer image plus that image's size —
  // everything fetched below lives in transfer (compressed) space.
  std::vector<Hash256> hashes(record.files.size());
  std::vector<uint64_t> transfer_sizes(record.files.size());
  bool ok = true;
  for (size_t i = 0; ok && i < record.files.size(); i++) {
    if (input.size() < 32) {
      ok = false;
      break;
    }
    std::copy_n(reinterpret_cast<const uint8_t*>(input.data()), 32,
                hashes[i].bytes.begin());
    input.remove_prefix(32);
    ok = GetVarint64(&input, &transfer_sizes[i]);
  }
  if (!ok || !input.empty()) {
    FallBackToBlockRepairLocked("descriptor hash list truncated");
    return;
  }
  remote_.record = std::move(record);
  remote_.file_hashes = std::move(hashes);
  remote_.transfer_sizes = std::move(transfer_sizes);
  fetched_files_.assign(remote_.record.files.size(), std::string());
  file_idx_ = 0;
  mode_ = Mode::kCkptChunks;
  session_retries_ = 0;
  ProgressChunksLocked();
}

void RepairCoordinator::OnCkptChunk(const Message& message) {
  MutexLock lock(&mu_);
  if (mode_ != Mode::kCkptChunks || message.from != peer_) return;
  Slice input(message.payload);
  Slice name, payload;
  uint64_t offset;
  uint32_t crc;
  if (!GetLengthPrefixed(&input, &name) || !GetVarint64(&input, &offset) ||
      !GetLengthPrefixed(&input, &payload) || !GetFixed32(&input, &crc)) {
    return;
  }
  if (file_idx_ >= remote_.record.files.size()) return;
  const CheckpointFile& cur = remote_.record.files[file_idx_];
  // Stale or duplicate chunk (a retried fetch answered twice): ignore.
  if (name != Slice(cur.name) || offset != fetched_files_[file_idx_].size()) {
    return;
  }
  // Frame-level integrity; a damaged chunk is dropped and re-fetched by the
  // timeout path. The end-to-end check is the per-file SHA-256 below.
  if (Crc32(payload) != crc) return;
  if (fetched_files_[file_idx_].size() + payload.size() >
      remote_.transfer_sizes[file_idx_]) {
    return;
  }
  fetched_files_[file_idx_].append(payload.data(), payload.size());
  stats_.chunks_fetched++;
  session_retries_ = 0;
  ProgressChunksLocked();
}

void RepairCoordinator::ProgressChunksLocked() {
  while (file_idx_ < remote_.record.files.size() &&
         fetched_files_[file_idx_].size() ==
             remote_.transfer_sizes[file_idx_]) {
    // verify: the fully fetched transfer image must hash to the descriptor
    // the peer offered up front — nothing below this line (including the
    // decompressor) sees unbound bytes.
    const Hash256 got = Sha256::Digest(Slice(fetched_files_[file_idx_]));
    if (!(got == remote_.file_hashes[file_idx_])) {
      FallBackToBlockRepairLocked("checkpoint file failed its SHA-256 check");
      return;
    }
    stats_.bytes_verified += remote_.transfer_sizes[file_idx_];
    // Expand the verified transfer image to the raw page file the install
    // expects; the decoded size must be exactly what the record declares.
    std::string raw;
    if (!CheckpointManager::DecompressZeroRuns(
             Slice(fetched_files_[file_idx_]),
             remote_.record.files[file_idx_].size, &raw)
             .ok()) {
      FallBackToBlockRepairLocked("checkpoint transfer failed to decompress");
      return;
    }
    fetched_files_[file_idx_] = std::move(raw);
    file_idx_++;
  }
  if (file_idx_ < remote_.record.files.size()) {
    SendChunkFetchLocked();
    ArmDeadlineLocked();
    return;
  }
  // Every file fetched and verified: collect the bridge block records from
  // the local tip to the checkpoint height (not applied — spliced by the
  // install after their own verification).
  mode_ = Mode::kCkptBlocks;
  first_height_ = delegate_->ChainHeight();
  fetched_blocks_.clear();
  if (first_height_ >= remote_.record.height) {
    // Gossip caught us up past the checkpoint while we were fetching.
    FallBackToBlockRepairLocked("local chain passed the peer checkpoint");
    return;
  }
  session_retries_ = 0;
  SendFetchLocked(first_height_);
  ArmDeadlineLocked();
}

void RepairCoordinator::FinishStateSyncLocked() {
  ChainManager::StateSyncPackage pkg;
  pkg.record = remote_.record;
  pkg.files = std::move(fetched_files_);
  pkg.first_height = first_height_;
  pkg.blocks = std::move(fetched_blocks_);
  // Every file in pkg passed its SHA-256 check against the offered
  // descriptor (ProgressChunksLocked); the bridge blocks are verified by the
  // install itself (decode + Merkle + hash-chain link).
  Status s = chain_->InstallStateSync(pkg);  // verify: SHA-256 per file above
  if (!s.ok()) {
    fprintf(stderr, "[sebdb] node %s: state-sync install failed: %s\n",
            node_id_.c_str(), s.ToString().c_str());
    FallBackToBlockRepairLocked("install rejected the package");
    return;
  }
  stats_.state_syncs_completed++;
  if (on_state_sync_) on_state_sync_();
  const uint64_t now_height = delegate_->ChainHeight();
  fprintf(stderr,
          "[sebdb] node %s: checkpoint state sync complete — installed "
          "height %llu, %llu chunk(s), %llu byte(s) verified\n",
          node_id_.c_str(),
          static_cast<unsigned long long>(remote_.record.height),
          static_cast<unsigned long long>(stats_.chunks_fetched),
          static_cast<unsigned long long>(stats_.bytes_verified));
  if (now_height < target_height_) {
    // Delta repair: the network moved on while we synced.
    mode_ = Mode::kBlockRepair;
    session_retries_ = 0;
    SendFetchLocked(now_height);
    ArmDeadlineLocked();
    return;
  }
  armed_degraded_ = false;
  EndSessionLocked();
}

void RepairCoordinator::FallBackToBlockRepairLocked(const char* why) {
  stats_.fallbacks++;
  fprintf(stderr,
          "[sebdb] node %s: state sync fell back to block repair (%s)\n",
          node_id_.c_str(), why);
  if (delegate_->ChainHeight() >= target_height_) {
    EndSessionLocked();
    return;
  }
  mode_ = Mode::kBlockRepair;
  session_retries_ = 0;
  SendFetchLocked(delegate_->ChainHeight());
  ArmDeadlineLocked();
}

void RepairCoordinator::EndSessionLocked() {
  mode_ = Mode::kIdle;
  peer_.clear();
  target_height_ = 0;
  deadline_millis_ = 0;
  session_retries_ = 0;
  remote_ = ChainManager::CheckpointDescriptor();
  fetched_files_.clear();
  file_idx_ = 0;
  first_height_ = 0;
  fetched_blocks_.clear();
}

void RepairCoordinator::Tick() {
  MutexLock lock(&mu_);
  if (mode_ == Mode::kIdle) return;
  if (SteadyNowMillis() < deadline_millis_) return;
  if (delegate_->ChainHeight() >= target_height_) {
    // Gossip (or another path) finished the job while we waited.
    if (mode_ == Mode::kBlockRepair) stats_.repairs_completed++;
    armed_degraded_ = false;
    EndSessionLocked();
    return;
  }
  session_retries_++;
  stats_.retries++;
  if (session_retries_ > options_.max_retries) {
    if (mode_ != Mode::kBlockRepair) {
      FallBackToBlockRepairLocked("too many timeouts");
      return;
    }
    // Out of retries on the last rung: disarm the session and leave the gap
    // to gossip anti-entropy. armed_degraded_ stays set so a future digest
    // can start a fresh session.
    fprintf(stderr,
            "[sebdb] node %s: block repair gave up after %u retries; gossip "
            "continues\n",
            node_id_.c_str(), options_.max_retries);
    EndSessionLocked();
    return;
  }
  ResendLocked();
  ArmDeadlineLocked();
}

void RepairCoordinator::ResendLocked() {
  switch (mode_) {
    case Mode::kIdle:
      break;
    case Mode::kBlockRepair:
      // Spread retries: the stuck peer may be partitioned away.
      peer_ = peers_[rng_.Uniform(peers_.size())];
      SendFetchLocked(delegate_->ChainHeight());
      break;
    case Mode::kCkptMeta:
      SendCkptOfferLocked();
      break;
    case Mode::kCkptChunks:
      // Chunks must keep coming from the descriptor's peer — another node
      // may have published a different checkpoint.
      SendChunkFetchLocked();
      break;
    case Mode::kCkptBlocks:
      SendFetchLocked(first_height_ + fetched_blocks_.size());
      break;
  }
}

void RepairCoordinator::ArmDeadlineLocked() {
  const int64_t timeout = options_.request_timeout_millis;
  deadline_millis_ =
      SteadyNowMillis() + timeout +
      static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(timeout / 2) + 1));
}

void RepairCoordinator::SendFetchLocked(uint64_t from) {
  uint32_t count = options_.fetch_batch;
  if (mode_ == Mode::kCkptBlocks) {
    const uint64_t remaining = remote_.record.height - from;
    count = static_cast<uint32_t>(
        std::min<uint64_t>(count, remaining));
  }
  std::string payload;
  PutVarint64(&payload, from);
  PutVarint32(&payload, count);
  network_->Send(Message{kFetchType, node_id_, peer_, payload});
}

void RepairCoordinator::SendCkptOfferLocked() {
  std::string payload;
  PutVarint64(&payload, delegate_->ChainHeight());
  network_->Send(Message{kCkptOfferType, node_id_, peer_, payload});
}

void RepairCoordinator::SendChunkFetchLocked() {
  const CheckpointFile& cur = remote_.record.files[file_idx_];
  const uint64_t offset = fetched_files_[file_idx_].size();
  const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(
      options_.chunk_bytes, remote_.transfer_sizes[file_idx_] - offset));
  std::string payload;
  PutLengthPrefixed(&payload, cur.name);
  PutVarint64(&payload, offset);
  PutVarint32(&payload, n);
  network_->Send(Message{kCkptFetchType, node_id_, peer_, payload});
}

// ---- serving side ----------------------------------------------------------

void RepairCoordinator::ServeFetch(const Message& message) {
  Slice input(message.payload);
  uint64_t from;
  uint32_t count;
  if (!GetVarint64(&input, &from) || !GetVarint32(&input, &count)) return;
  count = std::min(count, options_.fetch_batch);
  const uint64_t my = delegate_->ChainHeight();
  std::string body;
  uint32_t served = 0;
  uint64_t bytes = 0;
  for (uint64_t h = from; h < my && served < count; h++) {
    std::string record;
    if (!delegate_->GetBlockRecord(h, &record).ok()) break;
    if (served > 0 && bytes + record.size() > options_.fetch_response_bytes) {
      break;
    }
    PutVarint64(&body, h);
    PutLengthPrefixed(&body, record);
    bytes += record.size();
    served++;
  }
  if (served == 0) return;
  std::string payload;
  PutVarint32(&payload, served);
  payload.append(body);
  network_->Send(Message{kBlocksType, node_id_, message.from, payload});
}

void RepairCoordinator::ServeCkptOffer(const Message& message) {
  ChainManager::CheckpointDescriptor desc;
  const bool has =
      chain_ != nullptr && chain_->DescribeCheckpoint(&desc).ok();
  std::string payload;
  PutVarint32(&payload, has ? 1 : 0);
  if (has) {
    std::string encoded;
    CheckpointManager::EncodeManifestRecord(desc.record, &encoded);
    PutLengthPrefixed(&payload, encoded);
    for (size_t i = 0; i < desc.file_hashes.size(); i++) {
      payload.append(
          reinterpret_cast<const char*>(desc.file_hashes[i].bytes.data()),
          desc.file_hashes[i].bytes.size());
      PutVarint64(&payload, desc.transfer_sizes[i]);
    }
  }
  network_->Send(Message{kCkptMetaType, node_id_, message.from, payload});
}

void RepairCoordinator::ServeCkptFetch(const Message& message) {
  if (chain_ == nullptr) return;
  Slice input(message.payload);
  Slice name;
  uint64_t offset;
  uint32_t n;
  if (!GetLengthPrefixed(&input, &name) || !GetVarint64(&input, &offset) ||
      !GetVarint32(&input, &n)) {
    return;
  }
  std::string bytes;
  if (!chain_->ReadCheckpointTransfer(name.ToString(), offset, n, &bytes)
           .ok()) {
    // No reply: the requester's timeout re-fetches (or falls back) — e.g.
    // our checkpoint advanced and GC'd the file it wanted.
    return;
  }
  std::string payload;
  PutLengthPrefixed(&payload, name);
  PutVarint64(&payload, offset);
  PutLengthPrefixed(&payload, bytes);
  PutFixed32(&payload, Crc32(Slice(bytes)));
  network_->Send(Message{kCkptChunkType, node_id_, message.from, payload});
}

}  // namespace sebdb
