#include "core/signer.h"

namespace sebdb {

Status KeyStore::AddIdentity(const std::string& id,
                             const std::string& secret) {
  MutexLock lock(&mu_);
  auto it = secrets_.find(id);
  if (it != secrets_.end()) {
    if (it->second == secret) return Status::OK();
    return Status::InvalidArgument("identity already registered: " + id);
  }
  secrets_[id] = secret;
  return Status::OK();
}

bool KeyStore::HasIdentity(const std::string& id) const {
  MutexLock lock(&mu_);
  return secrets_.contains(id);
}

Status KeyStore::Sign(const std::string& id, const Slice& payload,
                      std::string* signature) const {
  std::string secret;
  {
    MutexLock lock(&mu_);
    auto it = secrets_.find(id);
    if (it == secrets_.end()) {
      return Status::NotFound("unknown identity: " + id);
    }
    secret = it->second;
  }
  Sha256 ctx;
  ctx.Update(secret.data(), secret.size());
  ctx.Update(payload);
  *signature = ctx.Finish().ToHex();
  return Status::OK();
}

Status KeyStore::Verify(const std::string& id, const Slice& payload,
                        const std::string& signature) const {
  std::string expected;
  Status s = Sign(id, payload, &expected);
  if (!s.ok()) return s;
  if (expected != signature) {
    return Status::VerificationFailed("bad signature for identity " + id);
  }
  return Status::OK();
}

Status KeyStore::SignTransaction(const std::string& id,
                                 Transaction* txn) const {
  txn->set_sender(id);
  std::string signature;
  Status s = Sign(id, txn->SigningPayload(), &signature);
  if (!s.ok()) return s;
  txn->set_signature(std::move(signature));
  return Status::OK();
}

Status KeyStore::VerifyTransaction(const Transaction& txn) const {
  return Verify(txn.sender(), txn.SigningPayload(), txn.signature());
}

}  // namespace sebdb
