#include "core/procedure.h"

#include "sql/lexer.h"
#include "sql/parser.h"

namespace sebdb {

namespace {

Status CountParameters(const std::string& sql, size_t* count) {
  std::vector<Token> tokens;
  Status s = Tokenize(sql, &tokens);
  if (!s.ok()) return s;
  *count = 0;
  for (const auto& token : tokens) {
    if (token.type == TokenType::kParameter) (*count)++;
  }
  return Status::OK();
}

}  // namespace

Status ProcedureRegistry::Register(const std::string& name,
                                   std::vector<std::string> statements) {
  if (statements.empty()) {
    return Status::InvalidArgument("procedure needs at least one statement");
  }
  for (const auto& sql : statements) {
    StatementPtr stmt;
    Status s = ParseStatement(sql, &stmt);
    if (!s.ok()) {
      return Status::InvalidArgument("procedure " + name +
                                     " statement invalid: " + s.ToString());
    }
  }
  MutexLock lock(&mu_);
  if (procedures_.contains(name)) {
    return Status::InvalidArgument("procedure exists: " + name);
  }
  procedures_[name] = std::move(statements);
  return Status::OK();
}

bool ProcedureRegistry::Has(const std::string& name) const {
  MutexLock lock(&mu_);
  return procedures_.contains(name);
}

std::vector<std::string> ProcedureRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(procedures_.size());
  for (const auto& [name, statements] : procedures_) names.push_back(name);
  return names;
}

Status ProcedureRegistry::Invoke(SebdbNode* node, const std::string& name,
                                 const std::vector<Value>& params,
                                 std::vector<ResultSet>* results) const {
  std::vector<std::string> statements;
  {
    MutexLock lock(&mu_);
    auto it = procedures_.find(name);
    if (it == procedures_.end()) {
      return Status::NotFound("no procedure named " + name);
    }
    statements = it->second;
  }
  size_t offset = 0;
  for (const auto& sql : statements) {
    size_t count;
    Status s = CountParameters(sql, &count);
    if (!s.ok()) return s;
    if (offset + count > params.size()) {
      return Status::InvalidArgument(
          "procedure " + name + " needs " + std::to_string(offset + count) +
          "+ parameters, got " + std::to_string(params.size()));
    }
    ExecOptions options;
    options.params.assign(params.begin() + offset,
                          params.begin() + offset + count);
    offset += count;

    ResultSet result;
    s = node->ExecuteSql(sql, options, &result);
    if (!s.ok()) {
      return Status::Aborted("procedure " + name + " failed at \"" + sql +
                             "\": " + s.ToString());
    }
    results->push_back(std::move(result));
  }
  return Status::OK();
}

}  // namespace sebdb
