#include "core/node.h"

#include "common/clock.h"

#include <algorithm>
#include <cstdio>

#include "consensus/kafka_orderer.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"
#include "common/coding.h"
#include "core/thin_client_transport.h"
#include "sql/eval.h"
#include "storage/block.h"

namespace sebdb {

ChainOptions DefaultNodeChainOptions() {
  ChainOptions chain;
  chain.store.block_cache_bytes = 64ull << 20;
  chain.store.transaction_cache_bytes = 16ull << 20;
  chain.pool = ThreadPool::Default();
  // Periodic checkpoints keep restart-to-serving flat in chain length: every
  // 1024 chained blocks the index state is frozen to page files, and a clean
  // shutdown writes a final checkpoint so the next Open replays no tail.
  chain.checkpoint.interval_blocks = 1024;
  chain.checkpoint.pool_bytes = 64ull << 20;
  chain.checkpoint.checkpoint_on_close = true;
  // A corrupt non-tail segment quarantines instead of refusing to open: the
  // node serves its verified prefix and the repair coordinator refetches the
  // quarantined blocks from peers (DESIGN.md §12).
  chain.store.degraded_open = true;
  return chain;
}

SebdbNode::SebdbNode(NodeOptions options, KeyStore* keystore,
                     OffchainDb* offchain)
    : options_(std::move(options)),
      keystore_(keystore),
      offchain_db_(offchain),
      chain_(options_.node_id,
             options_.chain.verify_signatures ? keystore : nullptr) {
  if (offchain_db_ != nullptr) {
    offchain_connector_ = std::make_unique<LocalOffchainConnector>(offchain_db_);
  }
}

SebdbNode::~SebdbNode() { Stop(); }

Status SebdbNode::Start(Network* network) {
  if (started_) return Status::Busy("node already started");
  network_ = network;

  Status s = chain_.Open(options_.chain, options_.data_dir);
  if (!s.ok()) return s;
  const BlockStore::RecoveryStats recovery = chain_.recovery_stats();
  if (!recovery.clean()) {
    fprintf(stderr,
            "[sebdb] node %s: storage self-healed on startup — %llu block(s) "
            "recovered, %llu torn byte(s) truncated; the chain resumes from "
            "the last durable block and gossip refetches the rest\n",
            options_.node_id.c_str(),
            static_cast<unsigned long long>(recovery.blocks_recovered),
            static_cast<unsigned long long>(recovery.bytes_truncated));
  }
  if (recovery.degraded) {
    fprintf(stderr,
            "[sebdb] node %s: DEGRADED open — %u corrupt segment(s) "
            "quarantined (%llu byte(s)); serving the verified prefix while "
            "peer repair refetches the rest\n",
            options_.node_id.c_str(), recovery.segments_quarantined,
            static_cast<unsigned long long>(recovery.bytes_quarantined));
  }
  const ChainManager::StartupStats startup = chain_.startup_stats();
  if (startup.from_checkpoint) {
    fprintf(stderr,
            "[sebdb] node %s: restored checkpoint at height %llu, replayed "
            "%llu tail block(s)\n",
            options_.node_id.c_str(),
            static_cast<unsigned long long>(startup.checkpoint_height),
            static_cast<unsigned long long>(startup.replayed_blocks));
  } else if (startup.replayed_blocks > 0) {
    fprintf(stderr,
            "[sebdb] node %s: no usable checkpoint — full replay of %llu "
            "block(s)\n",
            options_.node_id.c_str(),
            static_cast<unsigned long long>(startup.replayed_blocks));
  }
  const TxnSchedulerStats apply = chain_.apply_stats();
  if (apply.blocks > 0 && apply.txns > 0) {
    // Replay runs through the same scheduler the live apply path uses;
    // report how parallel the workload's history actually was.
    fprintf(stderr,
            "[sebdb] node %s: parallel apply — %llu block(s), %llu txn(s), "
            "%.2f wave(s)/block, conflict rate %.1f%%, %llu schema "
            "barrier(s), %llu conflict-free block(s)\n",
            options_.node_id.c_str(),
            static_cast<unsigned long long>(apply.blocks),
            static_cast<unsigned long long>(apply.txns),
            static_cast<double>(apply.waves) /
                static_cast<double>(apply.blocks),
            100.0 * static_cast<double>(apply.conflict_txns) /
                static_cast<double>(apply.txns),
            static_cast<unsigned long long>(apply.schema_barriers),
            static_cast<unsigned long long>(apply.single_wave_blocks));
  }
  const BufferManager::Stats pool_stats = chain_.buffer_stats();
  if (pool_stats.capacity > 0 && (pool_stats.pages > 0 || pool_stats.hits > 0 ||
                                  pool_stats.misses > 0)) {
    fprintf(stderr,
            "[sebdb] node %s: checkpoint pool %lluMB (usage %llu, pages %llu, "
            "hits %llu, misses %llu, evictions %llu)\n",
            options_.node_id.c_str(),
            static_cast<unsigned long long>(pool_stats.capacity >> 20),
            static_cast<unsigned long long>(pool_stats.usage),
            static_cast<unsigned long long>(pool_stats.pages),
            static_cast<unsigned long long>(pool_stats.hits),
            static_cast<unsigned long long>(pool_stats.misses),
            static_cast<unsigned long long>(pool_stats.evictions));
  }
  const BlockStore::CacheStats caches = chain_.cache_stats();
  if (chain_.height() > 1 &&
      (caches.block_capacity > 0 || caches.txn_capacity > 0)) {
    // Replay warms the block cache; report what startup left behind.
    fprintf(stderr,
            "[sebdb] node %s: caches block=%lluMB (usage %llu, hits %llu, "
            "misses %llu) txn=%lluMB (usage %llu, hits %llu, misses %llu)\n",
            options_.node_id.c_str(),
            static_cast<unsigned long long>(caches.block_capacity >> 20),
            static_cast<unsigned long long>(caches.block_usage),
            static_cast<unsigned long long>(caches.block_hits),
            static_cast<unsigned long long>(caches.block_misses),
            static_cast<unsigned long long>(caches.txn_capacity >> 20),
            static_cast<unsigned long long>(caches.txn_usage),
            static_cast<unsigned long long>(caches.txn_hits),
            static_cast<unsigned long long>(caches.txn_misses));
  }
  {
    MutexLock lock(&executor_mu_);
    executor_ = std::make_shared<Executor>(chain_.store(), chain_.indexes(),
                                           chain_.catalog(),
                                           offchain_connector_.get(),
                                           options_.chain.pool);
  }

  SetupRpcMethods();
  rpc_dispatcher_.Start(options_.rpc_server);

  // Consensus engine (only when this node is a participant).
  bool participant =
      std::find(options_.participants.begin(), options_.participants.end(),
                options_.node_id) != options_.participants.end();
  if (participant) {
    ConsensusOptions consensus_options = options_.consensus_options;
    // Resume consensus sequencing where the recovered chain left off: block
    // at height h was built from batch seq h-1, so the next batch is
    // height-1. Without this a restarted node re-assigns old sequences and
    // the chain manager drops the batches as already applied.
    consensus_options.start_sequence = chain_.height() - 1;
    if (!consensus_options.validator && keystore_ != nullptr) {
      const KeyStore* keystore = keystore_;
      consensus_options.validator = [keystore](const Transaction& txn) {
        return keystore->VerifyTransaction(txn);
      };
    }
    BatchCommitFn commit = [this](uint64_t seq,
                                  std::vector<Transaction> txns) {
      OnBatchCommitted(seq, std::move(txns));
    };
    switch (options_.consensus) {
      case ConsensusKind::kKafka: {
        std::string broker = options_.kafka_broker.empty()
                                 ? options_.participants.front()
                                 : options_.kafka_broker;
        engine_ = std::make_unique<KafkaOrderer>(
            options_.node_id, broker, options_.participants, network_,
            consensus_options, commit);
        break;
      }
      case ConsensusKind::kPbft:
        engine_ = std::make_unique<PbftEngine>(
            options_.node_id, options_.participants, network_,
            consensus_options, commit);
        break;
      case ConsensusKind::kTendermint:
        engine_ = std::make_unique<TendermintEngine>(
            options_.node_id, options_.participants, network_,
            consensus_options, commit);
        break;
    }
  }

  std::vector<std::string> peers;
  for (const auto& peer : options_.participants) {
    if (peer != options_.node_id) peers.push_back(peer);
  }
  if (options_.enable_gossip) {
    gossip_ = std::make_unique<GossipAgent>(options_.node_id, network_, this,
                                            peers, options_.gossip);
  }
  if (options_.enable_repair) {
    RepairOptions repair_options = options_.repair;
    // Without gossip there is no anti-entropy to absorb small gaps: the
    // coordinator is the only healer, so it must take any gap.
    if (!options_.enable_gossip) repair_options.heal_all_gaps = true;
    repair_ = std::make_unique<RepairCoordinator>(
        options_.node_id, network_, this, &chain_, std::move(peers),
        repair_options, [this] { RefreshExecutorAfterStateSync(); });
    if (recovery.degraded) repair_->ArmDegradedRepair();
  }

  // Register only after engine_ and gossip_ are fully constructed: the
  // network worker thread dispatches incoming messages into both through
  // OnMessage, and on a restart peers may already have traffic in flight
  // for this endpoint.
  s = network_->Register(options_.node_id,
                         [this](const Message& m) { OnMessage(m); });
  if (!s.ok()) return s;

  if (engine_ != nullptr) {
    s = engine_->Start();
    if (!s.ok()) return s;
    const AdmissionOptions& adm = options_.consensus_options.admission;
    if (adm.enabled) {
      fprintf(stderr,
              "[sebdb] node %s: admission caps txns=%llu bytes=%lluMB "
              "per-sender=%llu (0 = unlimited)\n",
              options_.node_id.c_str(),
              static_cast<unsigned long long>(adm.max_txns),
              static_cast<unsigned long long>(adm.max_bytes >> 20),
              static_cast<unsigned long long>(adm.max_txns_per_sender));
    }
  }
  if (gossip_ != nullptr) gossip_->Start();
  if (repair_ != nullptr) repair_->Start();
  if (gossip_ != nullptr) {
    // A peer coming (back) up is the moment it is most likely behind: run an
    // anti-entropy round now so repair and catch-up start immediately
    // instead of waiting out the gossip interval.
    const std::string self = options_.node_id;
    GossipAgent* gossip = gossip_.get();
    peer_watcher_token_ = network_->AddPeerWatcher(
        [self, gossip](const std::string& peer, bool up) {
          if (up && peer != self) gossip->RunRound();
        });
  }
  started_ = true;
  return Status::OK();
}

void SebdbNode::Stop() {
  if (!started_) return;
  started_ = false;
  if (peer_watcher_token_ != 0 && network_ != nullptr) {
    // Unsubscribe before tearing down gossip: the watcher runs on network
    // threads and must never see a half-destroyed agent.
    network_->RemovePeerWatcher(peer_watcher_token_);
    peer_watcher_token_ = 0;
  }
  if (repair_ != nullptr) {
    repair_->Stop();
    // One line on what self-healing did over the node's lifetime, next to
    // the admission summary.
    const RepairStats rs = repair_->stats();
    const ChainManager::StateSyncStats ss = chain_.state_sync_stats();
    if (rs.blocks_repaired > 0 || rs.state_syncs_started > 0 ||
        rs.retries > 0 || ss.fallbacks > 0) {
      fprintf(stderr,
              "[sebdb] node %s: repair blocks=%llu records=%llu "
              "state_syncs=%llu/%llu (installed height %llu, spliced %llu) "
              "chunks=%llu verified_bytes=%llu retries=%llu fallbacks=%llu\n",
              options_.node_id.c_str(),
              static_cast<unsigned long long>(rs.blocks_repaired),
              static_cast<unsigned long long>(rs.records_fetched),
              static_cast<unsigned long long>(rs.state_syncs_completed),
              static_cast<unsigned long long>(rs.state_syncs_started),
              static_cast<unsigned long long>(ss.installed_height),
              static_cast<unsigned long long>(ss.blocks_spliced),
              static_cast<unsigned long long>(rs.chunks_fetched),
              static_cast<unsigned long long>(rs.bytes_verified),
              static_cast<unsigned long long>(rs.retries),
              static_cast<unsigned long long>(rs.fallbacks + ss.fallbacks));
    }
  }
  if (gossip_ != nullptr) gossip_->Stop();
  if (engine_ != nullptr) {
    engine_->Stop();
    // Shutdown summary mirrors the startup cache report: one line on what
    // admission control saw over the node's lifetime.
    const MempoolStats mp = engine_->mempool_stats();
    if (mp.admission.admitted > 0 || mp.admission.rejected_total() > 0) {
      fprintf(stderr,
              "[sebdb] node %s: admission admitted=%llu deduped=%llu "
              "rejected=%llu (txns %llu, bytes %llu, sender %llu) "
              "peak=%llu txns/%llu bytes transitions=%llu state=%s\n",
              options_.node_id.c_str(),
              static_cast<unsigned long long>(mp.admission.admitted),
              static_cast<unsigned long long>(mp.admission.deduped),
              static_cast<unsigned long long>(mp.admission.rejected_total()),
              static_cast<unsigned long long>(mp.admission.rejected_txns),
              static_cast<unsigned long long>(mp.admission.rejected_bytes),
              static_cast<unsigned long long>(mp.admission.rejected_sender),
              static_cast<unsigned long long>(mp.admission.peak_txns),
              static_cast<unsigned long long>(mp.admission.peak_bytes),
              static_cast<unsigned long long>(mp.admission.state_transitions),
              OverloadStateName(mp.admission.state));
    }
  }
  {
    const TxnSchedulerStats apply = chain_.apply_stats();
    if (apply.blocks > 0 && apply.txns > 0) {
      fprintf(stderr,
              "[sebdb] node %s: apply scheduler blocks=%llu txns=%llu "
              "waves/block=%.2f conflict_rate=%.1f%% max_waves=%llu "
              "apply_ms=%lld\n",
              options_.node_id.c_str(),
              static_cast<unsigned long long>(apply.blocks),
              static_cast<unsigned long long>(apply.txns),
              static_cast<double>(apply.waves) /
                  static_cast<double>(apply.blocks),
              100.0 * static_cast<double>(apply.conflict_txns) /
                  static_cast<double>(apply.txns),
              static_cast<unsigned long long>(apply.max_waves_in_block),
              static_cast<long long>(apply.apply_micros / 1000));
    }
  }
  if (network_ != nullptr) network_->Unregister(options_.node_id);
  rpc_dispatcher_.Stop();
  Status s = chain_.Close();
  if (!s.ok()) {
    // Shutdown cannot fail upward; surface the error like the startup log.
    fprintf(stderr, "[%s] close: %s\n", options_.node_id.c_str(),
            s.ToString().c_str());
  }
}

void SebdbNode::OnMessage(const Message& message) {
  if (message.type.rfind("gossip.", 0) == 0) {
    if (gossip_ != nullptr) gossip_->HandleMessage(message);
    return;
  }
  if (message.type.rfind("repair.", 0) == 0) {
    if (repair_ != nullptr) repair_->HandleMessage(message);
    return;
  }
  if (message.type == RpcDispatcher::kRequestType) {
    rpc_dispatcher_.HandleMessage(network_, options_.node_id, message);
    return;
  }
  if (engine_ == nullptr) return;
  if (message.type.rfind("kafka.", 0) == 0) {
    static_cast<KafkaOrderer*>(engine_.get())->HandleMessage(message);
  } else if (message.type.rfind("pbft.", 0) == 0) {
    static_cast<PbftEngine*>(engine_.get())->HandleMessage(message);
  } else if (message.type.rfind("tm.", 0) == 0) {
    static_cast<TendermintEngine*>(engine_.get())->HandleMessage(message);
  }
}

void SebdbNode::OnBatchCommitted(uint64_t seq,
                                 std::vector<Transaction> txns) {
  // Deterministic block timestamp: the greatest transaction timestamp (the
  // chain clamps it monotone against the previous block).
  Timestamp ts = 0;
  for (const auto& txn : txns) ts = std::max(ts, txn.ts());

  std::string packager_signature;
  if (keystore_ != nullptr) {
    std::string batch;
    EncodeBatch(txns, &batch);
    keystore_->Sign(options_.node_id, BatchDigest(batch).AsSlice(),
                    &packager_signature);
  }
  Status s = chain_.AppendBatch(seq, std::move(txns), ts, packager_signature);
  if (s.ok() && gossip_ != nullptr) {
    // Eager push so observers learn about the block before the next
    // anti-entropy round.
    BlockId height = chain_.height() - 1;
    std::string record;
    if (chain_.GetBlockRecord(height, &record).ok()) {
      gossip_->PushBlock(height, record);
    }
  }
}

void SebdbNode::SetupRpcMethods() {
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kGetHeaders,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        uint64_t from;
        if (!GetVarint64(&input, &from)) {
          return Status::Corruption("bad get_headers request");
        }
        std::vector<BlockHeader> headers;
        Status s = GetHeaders(from, &headers);
        if (!s.ok()) return s;
        thin_rpc::EncodeHeaders(headers, response);
        return Status::OK();
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kGetRawBlock,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        uint64_t height;
        if (!GetVarint64(&input, &height)) {
          return Status::Corruption("bad get_raw_block request");
        }
        return GetRawBlock(height, response);
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kSubmit,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        Transaction txn;
        Status s = Transaction::DecodeFrom(&input, &txn);
        if (!s.ok()) return s;
        s = SubmitAndWait(std::move(txn));
        if (!s.ok()) return s;
        PutVarint64(response, chain_.height());
        return Status::OK();
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kStats,
      [this](const Slice& request, std::string* response) -> Status {
        (void)request;
        const uint64_t height = chain_.height();
        PutVarint64(response, height);
        BlockHeader tip;
        if (height > 0) {
          Status s = chain_.GetHeader(height - 1, &tip);
          if (!s.ok()) return s;
        }
        response->append(
            reinterpret_cast<const char*>(tip.block_hash.bytes.data()), 32);
        const NetworkStats net =
            network_ != nullptr ? network_->stats() : NetworkStats{};
        PutVarint64(response, net.frames_rejected);
        PutVarint64(response, net.overflow_drops);
        return Status::OK();
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kProveRange,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        thin_rpc::RangeRequest req;
        Status s = thin_rpc::RangeRequest::DecodeFrom(&input, &req);
        if (!s.ok()) return s;
        AuthQueryResponse out;
        s = AuthProveRange(req.table, req.column,
                           req.has_lo ? &req.lo : nullptr,
                           req.has_hi ? &req.hi : nullptr, &out);
        if (!s.ok()) return s;
        out.EncodeTo(response);
        return Status::OK();
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kDigestRange,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        thin_rpc::RangeRequest req;
        Status s = thin_rpc::RangeRequest::DecodeFrom(&input, &req);
        if (!s.ok()) return s;
        Hash256 digest;
        s = AuthDigestRange(req.table, req.column,
                            req.has_lo ? &req.lo : nullptr,
                            req.has_hi ? &req.hi : nullptr, req.height,
                            &digest);
        if (!s.ok()) return s;
        response->assign(reinterpret_cast<const char*>(digest.bytes.data()),
                         32);
        return Status::OK();
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kProveTrace,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        thin_rpc::TraceRequest req;
        Status s = thin_rpc::TraceRequest::DecodeFrom(&input, &req);
        if (!s.ok()) return s;
        AuthQueryResponse out;
        s = AuthProveTrace(req.by_sender, req.key, &out,
                           req.has_window ? &req.window_start : nullptr,
                           req.has_window ? &req.window_end : nullptr);
        if (!s.ok()) return s;
        out.EncodeTo(response);
        return Status::OK();
      });
  rpc_dispatcher_.RegisterMethod(
      thin_rpc::kDigestTrace,
      [this](const Slice& request, std::string* response) -> Status {
        Slice input = request;
        thin_rpc::TraceRequest req;
        Status s = thin_rpc::TraceRequest::DecodeFrom(&input, &req);
        if (!s.ok()) return s;
        Hash256 digest;
        s = AuthDigestTrace(req.by_sender, req.key, req.height, &digest,
                            req.has_window ? &req.window_start : nullptr,
                            req.has_window ? &req.window_end : nullptr);
        if (!s.ok()) return s;
        response->assign(reinterpret_cast<const char*>(digest.bytes.data()),
                         32);
        return Status::OK();
      });
}

Status SebdbNode::MakeInsertTransaction(const std::string& identity,
                                        const std::string& table,
                                        std::vector<Value> values,
                                        Transaction* out) {
  Schema schema;
  Status s = chain_.catalog()->GetSchema(table, &schema);
  if (!s.ok()) return s;
  if (static_cast<int>(values.size()) != schema.num_app_columns()) {
    return Status::InvalidArgument(
        "INSERT arity " + std::to_string(values.size()) + " != " +
        std::to_string(schema.num_app_columns()) + " columns of " + table);
  }
  for (size_t i = 0; i < values.size(); i++) {
    const ColumnDef& col =
        schema.columns()[Schema::kNumSystemColumns + static_cast<int>(i)];
    Value& v = values[i];
    if (v.is_null() || v.type() == col.type) continue;
    // Numeric widening: int literals fit decimal/double/timestamp columns.
    if (v.type() == ValueType::kInt64) {
      if (col.type == ValueType::kDecimal) {
        v = Value::Dec(Decimal::FromInt(v.AsInt()));
        continue;
      }
      if (col.type == ValueType::kDouble) {
        v = Value::Double(static_cast<double>(v.AsInt()));
        continue;
      }
      if (col.type == ValueType::kTimestamp) {
        v = Value::Ts(v.AsInt());
        continue;
      }
    }
    if (v.type() == ValueType::kDecimal && col.type == ValueType::kDouble) {
      v = Value::Double(v.AsDecimal().ToDouble());
      continue;
    }
    return Status::InvalidArgument(
        "value " + std::to_string(i + 1) + " has type " +
        ValueTypeName(v.type()) + ", column " + col.name + " wants " +
        ValueTypeName(col.type));
  }

  Transaction txn(table, std::move(values));
  txn.set_ts(SystemClock::Default()->NowMicros());
  if (keystore_ == nullptr) {
    txn.set_sender(identity);
  } else {
    s = keystore_->SignTransaction(identity, &txn);
    if (!s.ok()) return s;
  }
  *out = std::move(txn);
  return Status::OK();
}

Status SebdbNode::SubmitAsync(Transaction txn,
                              std::function<void(Status)> done) {
  if (engine_ == nullptr) {
    return Status::NotSupported("node is not a consensus participant");
  }
  return engine_->Submit(std::move(txn), std::move(done));
}

Status SebdbNode::SubmitAndWait(Transaction txn) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu);
  };
  auto waiter = std::make_shared<Waiter>();
  Status s = SubmitAsync(std::move(txn), [waiter](Status status) {
    MutexLock lock(&waiter->mu);
    waiter->status = std::move(status);
    waiter->ready = true;
    waiter->cv.NotifyAll();
  });
  if (!s.ok()) return s;
  MutexLock lock(&waiter->mu);
  const int64_t wait_deadline =
      SteadyNowMillis() + options_.write_timeout_millis;
  while (!waiter->ready) {
    int64_t remaining = wait_deadline - SteadyNowMillis();
    if (remaining <= 0) {
      return Status::TimedOut("write not committed within timeout");
    }
    waiter->cv.WaitFor(waiter->mu, std::chrono::milliseconds(remaining));
  }
  return waiter->status;
}

Status SebdbNode::ExecInsert(const InsertStmt& stmt,
                             const ExecOptions& options, ResultSet* result) {
  Status s = access_control_.CheckAccess(options_.node_id, stmt.table);
  if (!s.ok()) return s;
  // Multi-row INSERT: sign every transaction up front (all-or-nothing
  // validation), then submit and wait for each commit.
  std::vector<Transaction> txns;
  txns.reserve(stmt.rows.size());
  for (const auto& row : stmt.rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (const auto& expr : row) {
      Value v;
      s = EvalConstExpr(*expr, options.params, &v);
      if (!s.ok()) return s;
      values.push_back(std::move(v));
    }
    Transaction txn;
    s = MakeInsertTransaction(options_.node_id, stmt.table, std::move(values),
                              &txn);
    if (!s.ok()) return s;
    txns.push_back(std::move(txn));
  }
  for (auto& txn : txns) {
    s = SubmitAndWait(std::move(txn));
    if (!s.ok()) return s;
  }
  result->plan = "Insert(" + stmt.table + ", " +
                 std::to_string(stmt.rows.size()) + " rows)";
  return Status::OK();
}

Status SebdbNode::ExecCreateTable(const CreateTableStmt& stmt,
                                  ResultSet* result) {
  Schema schema;
  Status s = Schema::Create(stmt.table, stmt.columns, &schema);
  if (!s.ok()) return s;
  if (chain_.catalog()->HasTable(schema.table_name())) {
    return Status::InvalidArgument("table exists: " + schema.table_name());
  }
  Transaction txn = Catalog::MakeSchemaTransaction(schema);
  txn.set_ts(SystemClock::Default()->NowMicros());
  if (keystore_ != nullptr) {
    s = keystore_->SignTransaction(options_.node_id, &txn);
    if (!s.ok()) return s;
  } else {
    txn.set_sender(options_.node_id);
  }
  s = SubmitAndWait(std::move(txn));
  if (!s.ok()) return s;
  result->plan = "CreateTable(" + schema.table_name() + ")";
  return Status::OK();
}

Status SebdbNode::ExecuteSql(std::string_view sql, const ExecOptions& options,
                             ResultSet* result) {
  StatementPtr stmt;
  Status s = ParseStatement(sql, &stmt);
  if (!s.ok()) return s;
  if (const auto* insert = std::get_if<InsertStmt>(&stmt->node)) {
    return ExecInsert(*insert, options, result);
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt->node)) {
    return ExecCreateTable(*create, result);
  }
  // Read statements: access control on the referenced on-chain tables.
  if (const auto* select = std::get_if<SelectStmt>(&stmt->node)) {
    for (const auto& table : select->tables) {
      if (table.offchain) continue;
      s = access_control_.CheckAccess(options_.node_id, table.name);
      if (!s.ok()) return s;
    }
  }
  // Snapshot: a concurrent checkpoint state sync may swap the executor; the
  // shared_ptr keeps the old one (and, via the chain's retire list, the old
  // index set) alive for the duration of this query.
  return executor_snapshot()->Execute(*stmt, options, result);
}

std::shared_ptr<Executor> SebdbNode::executor_snapshot() const {
  MutexLock lock(&executor_mu_);
  return executor_;
}

void SebdbNode::RefreshExecutorAfterStateSync() {
  auto fresh = std::make_shared<Executor>(chain_.store(), chain_.indexes(),
                                          chain_.catalog(),
                                          offchain_connector_.get(),
                                          options_.chain.pool);
  MutexLock lock(&executor_mu_);
  executor_ = std::move(fresh);
}

RepairStats SebdbNode::repair_stats() const {
  return repair_ != nullptr ? repair_->stats() : RepairStats();
}

void SebdbNode::OnPeerAdvertisedHeight(const std::string& peer,
                                       uint64_t height) {
  if (repair_ != nullptr) repair_->NotePeerHeight(peer, height);
}

Status SebdbNode::GetHeaders(BlockId from, std::vector<BlockHeader>* out) {
  out->clear();
  uint64_t height = chain_.height();
  for (BlockId h = from; h < height; h++) {
    BlockHeader header;
    Status s = chain_.GetHeader(h, &header);
    if (!s.ok()) return s;
    out->push_back(std::move(header));
  }
  return Status::OK();
}

Status SebdbNode::GetRawBlock(BlockId height, std::string* record) {
  return chain_.GetBlockRecord(height, record);
}

AuthenticatedLayeredIndex* SebdbNode::FindAli(const std::string& table,
                                              const std::string& column) {
  return chain_.indexes()->GetAli(table, column);
}

Status SebdbNode::AuthProveRange(const std::string& table,
                                 const std::string& column, const Value* lo,
                                 const Value* hi, AuthQueryResponse* out) {
  AuthenticatedLayeredIndex* ali = FindAli(table, column);
  if (ali == nullptr) {
    return Status::NotFound("no authenticated index on " + table + "." +
                            column);
  }
  return ali->ProveRange(lo, hi, /*window=*/nullptr, ali->num_blocks(), out);
}

Status SebdbNode::AuthDigestRange(const std::string& table,
                                  const std::string& column, const Value* lo,
                                  const Value* hi, uint64_t height,
                                  Hash256* digest) {
  AuthenticatedLayeredIndex* ali = FindAli(table, column);
  if (ali == nullptr) {
    return Status::NotFound("no authenticated index on " + table + "." +
                            column);
  }
  if (height > ali->num_blocks()) {
    return Status::InvalidArgument("pinned height beyond local chain");
  }
  return ali->ComputeDigest(lo, hi, /*window=*/nullptr, height, digest);
}

Status SebdbNode::AuthProveTrace(bool by_sender, const std::string& key,
                                 AuthQueryResponse* out,
                                 const Timestamp* window_start,
                                 const Timestamp* window_end) {
  AuthenticatedLayeredIndex* ali = by_sender
                                       ? chain_.indexes()->senid_ali()
                                       : chain_.indexes()->tname_ali();
  if (ali == nullptr) {
    return Status::NotFound("authenticated system indices disabled");
  }
  Value v = Value::Str(key);
  std::optional<Bitmap> window;
  if (window_start != nullptr && window_end != nullptr) {
    window = chain_.indexes()->block_index().BlocksInWindow(*window_start,
                                                            *window_end);
  }
  return ali->ProveRange(&v, &v, window.has_value() ? &*window : nullptr,
                         ali->num_blocks(), out);
}

Status SebdbNode::AuthDigestTrace(bool by_sender, const std::string& key,
                                  uint64_t height, Hash256* digest,
                                  const Timestamp* window_start,
                                  const Timestamp* window_end) {
  AuthenticatedLayeredIndex* ali = by_sender
                                       ? chain_.indexes()->senid_ali()
                                       : chain_.indexes()->tname_ali();
  if (ali == nullptr) {
    return Status::NotFound("authenticated system indices disabled");
  }
  if (height > ali->num_blocks()) {
    return Status::InvalidArgument("pinned height beyond local chain");
  }
  Value v = Value::Str(key);
  std::optional<Bitmap> window;
  if (window_start != nullptr && window_end != nullptr) {
    window = chain_.indexes()->block_index().BlocksInWindow(*window_start,
                                                            *window_end);
  }
  return ali->ComputeDigest(&v, &v, window.has_value() ? &*window : nullptr,
                            height, digest);
}

uint64_t SebdbNode::ChainHeight() { return chain_.height(); }

Status SebdbNode::GetBlockRecord(BlockId height, std::string* record) {
  return chain_.GetBlockRecord(height, record);
}

Status SebdbNode::ApplyBlockRecord(BlockId height, const std::string& record) {
  const uint64_t before = chain_.height();
  Status s = chain_.ApplyBlockRecord(height, record);
  if (s.ok() && engine_ != nullptr && chain_.height() > before) {
    // A gossip-learned block may carry transactions this engine still holds
    // as pending (their deliver messages were lost to a partition). Let the
    // engine release admission charges and resolve waiting submitters.
    Block block;
    Slice input(record);
    if (Block::DecodeFrom(&input, &block).ok()) {
      engine_->OnExternalCommit(block.transactions());
    }
  }
  return s;
}

MempoolStats SebdbNode::mempool_stats() const {
  return engine_ != nullptr ? engine_->mempool_stats() : MempoolStats();
}

OverloadState SebdbNode::overload_state() const {
  return engine_ != nullptr ? engine_->mempool_stats().admission.state
                            : OverloadState::kHealthy;
}

RpcServerStats SebdbNode::rpc_stats() const { return rpc_dispatcher_.stats(); }

}  // namespace sebdb
