#include "core/thin_client.h"

#include "common/clock.h"

#include <chrono>
#include <set>

namespace sebdb {

namespace {

int64_t NowMicros() { return SteadyNowMicros(); }

RecordKeyFn ColumnKeyFn(int column_index) {
  return [column_index](const Slice& record, Value* key) -> Status {
    Transaction txn;
    Slice input = record;
    Status s = Transaction::DecodeFrom(&input, &txn);
    if (!s.ok()) return s;
    *key = txn.GetColumn(column_index);
    return Status::OK();
  };
}

Status DecodeRecords(const std::vector<std::string>& records,
                     std::vector<Transaction>* out) {
  for (const auto& record : records) {
    Transaction txn;
    Slice input(record);
    Status s = Transaction::DecodeFrom(&input, &txn);
    if (!s.ok()) return s;
    out->push_back(std::move(txn));
  }
  return Status::OK();
}

}  // namespace

ThinClient::ThinClient(std::vector<SebdbNode*> full_nodes, uint64_t seed)
    : ThinClient(std::make_unique<DirectTransport>(full_nodes), seed) {}

ThinClient::ThinClient(std::unique_ptr<ThinClientTransport> transport,
                       uint64_t seed)
    : transport_(std::move(transport)),
      node_ids_(transport_->Nodes()),
      rng_(seed) {}

const std::string& ThinClient::PickNode() {
  return node_ids_[rng_.Uniform(node_ids_.size())];
}

Status ThinClient::SyncHeaders() {
  const std::string& node = PickNode();
  std::vector<BlockHeader> fresh;
  Status s = transport_->GetHeaders(node, headers_.size(), &fresh);
  if (!s.ok()) return s;
  for (auto& header : fresh) {
    // Chain continuity check before adopting a header.
    if (!headers_.empty() &&
        header.prev_hash != headers_.back().block_hash) {
      return Status::VerificationFailed("header chain broken at height " +
                                        std::to_string(header.height));
    }
    if (header.ComputeHash() != header.block_hash) {
      return Status::VerificationFailed("header hash mismatch at height " +
                                        std::to_string(header.height));
    }
    headers_.push_back(std::move(header));
  }
  return Status::OK();
}

Status ThinClient::AuthRangeQuery(const std::string& table,
                                  const std::string& column, int column_index,
                                  const Value* lo, const Value* hi,
                                  size_t num_auxiliary,
                                  size_t required_matching,
                                  std::vector<Transaction>* out,
                                  AuthQueryStats* stats) {
  *stats = AuthQueryStats{};

  // Phase 1: VO from a random full node.
  int64_t t0 = NowMicros();
  AuthQueryResponse response;
  Status s =
      transport_->ProveRange(PickNode(), table, column, lo, hi, &response);
  if (!s.ok()) return s;
  stats->server_micros = NowMicros() - t0;
  stats->vo_bytes = response.ByteSize();

  // Phase 2: digests from auxiliary nodes at the pinned height.
  std::vector<Hash256> digests;
  int64_t t1 = NowMicros();
  for (size_t i = 0; i < num_auxiliary; i++) {
    Hash256 digest;
    s = transport_->DigestRange(PickNode(), table, column, lo, hi,
                                response.chain_height, &digest);
    if (!s.ok()) return s;
    digests.push_back(digest);
  }
  stats->aux_micros = NowMicros() - t1;

  // Client: reconstruct roots, compare digests, check completeness.
  int64_t t2 = NowMicros();
  std::vector<std::string> records;
  s = AuthenticatedLayeredIndex::VerifyResponse(
      response, lo, hi, ColumnKeyFn(column_index), digests, required_matching,
      &records);
  if (!s.ok()) return s;
  s = DecodeRecords(records, out);
  if (!s.ok()) return s;
  stats->client_micros = NowMicros() - t2;
  stats->result_count = out->size();
  return Status::OK();
}

Status ThinClient::AuthTraceQuery(bool by_sender, const std::string& key,
                                  size_t num_auxiliary,
                                  size_t required_matching,
                                  std::vector<Transaction>* out,
                                  AuthQueryStats* stats,
                                  const Timestamp* window_start,
                                  const Timestamp* window_end) {
  *stats = AuthQueryStats{};
  Value v = Value::Str(key);
  // SenID is schema column 3, Tname column 4.
  int column_index = by_sender ? 3 : 4;

  int64_t t0 = NowMicros();
  AuthQueryResponse response;
  Status s = transport_->ProveTrace(PickNode(), by_sender, key, window_start,
                                    window_end, &response);
  if (!s.ok()) return s;
  stats->server_micros = NowMicros() - t0;
  stats->vo_bytes = response.ByteSize();

  std::vector<Hash256> digests;
  int64_t t1 = NowMicros();
  for (size_t i = 0; i < num_auxiliary; i++) {
    Hash256 digest;
    s = transport_->DigestTrace(PickNode(), by_sender, key,
                                response.chain_height, window_start,
                                window_end, &digest);
    if (!s.ok()) return s;
    digests.push_back(digest);
  }
  stats->aux_micros = NowMicros() - t1;

  int64_t t2 = NowMicros();
  std::vector<std::string> records;
  s = AuthenticatedLayeredIndex::VerifyResponse(
      response, &v, &v, ColumnKeyFn(column_index), digests, required_matching,
      &records);
  if (!s.ok()) return s;
  s = DecodeRecords(records, out);
  if (!s.ok()) return s;
  stats->client_micros = NowMicros() - t2;
  stats->result_count = out->size();
  return Status::OK();
}

Status ThinClient::AuthTraceTwoDimQuery(const std::string& operator_id,
                                        const std::string& operation,
                                        size_t num_auxiliary,
                                        size_t required_matching,
                                        std::vector<Transaction>* out,
                                        AuthQueryStats* stats) {
  *stats = AuthQueryStats{};

  // Phase 1: one full node answers both dimensions; retry until both
  // responses pin the same height (they almost always do — the indexes are
  // updated atomically per block).
  const std::string& full_node = PickNode();
  AuthQueryResponse sender_response, tname_response;
  int64_t t0 = NowMicros();
  for (int attempt = 0;; attempt++) {
    Status s = transport_->ProveTrace(full_node, /*by_sender=*/true,
                                      operator_id, nullptr, nullptr,
                                      &sender_response);
    if (!s.ok()) return s;
    s = transport_->ProveTrace(full_node, /*by_sender=*/false, operation,
                               nullptr, nullptr, &tname_response);
    if (!s.ok()) return s;
    if (sender_response.chain_height == tname_response.chain_height) break;
    if (attempt >= 3) {
      return Status::Busy("full node height moved between dimensions");
    }
  }
  uint64_t height = sender_response.chain_height;
  stats->server_micros = NowMicros() - t0;
  stats->vo_bytes = sender_response.ByteSize() + tname_response.ByteSize();

  // Phase 2: per auxiliary node, digests for both dimensions at the pinned
  // height.
  std::vector<Hash256> sender_digests, tname_digests;
  int64_t t1 = NowMicros();
  for (size_t i = 0; i < num_auxiliary; i++) {
    const std::string& aux = PickNode();
    Hash256 digest;
    Status s = transport_->DigestTrace(aux, true, operator_id, height,
                                       nullptr, nullptr, &digest);
    if (!s.ok()) return s;
    sender_digests.push_back(digest);
    s = transport_->DigestTrace(aux, false, operation, height, nullptr,
                                nullptr, &digest);
    if (!s.ok()) return s;
    tname_digests.push_back(digest);
  }
  stats->aux_micros = NowMicros() - t1;

  // Client: verify each dimension, then intersect by transaction id.
  int64_t t2 = NowMicros();
  Value op_key = Value::Str(operator_id);
  std::vector<std::string> sender_records;
  Status s = AuthenticatedLayeredIndex::VerifyResponse(
      sender_response, &op_key, &op_key, ColumnKeyFn(3), sender_digests,
      required_matching, &sender_records);
  if (!s.ok()) return s;
  Value tname_key = Value::Str(operation);
  std::vector<std::string> tname_records;
  s = AuthenticatedLayeredIndex::VerifyResponse(
      tname_response, &tname_key, &tname_key, ColumnKeyFn(4), tname_digests,
      required_matching, &tname_records);
  if (!s.ok()) return s;

  std::vector<Transaction> sender_txns, tname_txns;
  s = DecodeRecords(sender_records, &sender_txns);
  if (!s.ok()) return s;
  s = DecodeRecords(tname_records, &tname_txns);
  if (!s.ok()) return s;
  std::set<TransactionId> by_type;
  for (const auto& txn : tname_txns) by_type.insert(txn.tid());
  for (auto& txn : sender_txns) {
    if (by_type.contains(txn.tid())) out->push_back(std::move(txn));
  }
  stats->client_micros = NowMicros() - t2;
  stats->result_count = out->size();
  return Status::OK();
}

Status ThinClient::BasicScan(
    const std::function<bool(const Transaction&)>& keep,
    std::vector<Transaction>* out, AuthQueryStats* stats) {
  *stats = AuthQueryStats{};
  Status s = SyncHeaders();
  if (!s.ok()) return s;

  // "Server": transfer every block; the transferred bytes play the role of
  // the VO in the basic approach.
  int64_t t0 = NowMicros();
  std::vector<std::string> records;
  records.reserve(headers_.size());
  const std::string& node = PickNode();
  for (const auto& header : headers_) {
    std::string record;
    s = transport_->GetRawBlock(node, header.height, &record);
    if (!s.ok()) return s;
    stats->vo_bytes += record.size();
    records.push_back(std::move(record));
  }
  stats->server_micros = NowMicros() - t0;

  // Client: recompute each block's transaction Merkle root against the
  // stored header, then filter.
  int64_t t1 = NowMicros();
  for (size_t h = 0; h < records.size(); h++) {
    Block block;
    Slice input(records[h]);
    s = Block::DecodeFrom(&input, &block);
    if (!s.ok()) return s;
    if (block.ComputeMerkleRoot() != headers_[h].trans_root) {
      return Status::VerificationFailed("merkle root mismatch at height " +
                                        std::to_string(h));
    }
    for (const auto& txn : block.transactions()) {
      if (keep(txn)) out->push_back(txn);
    }
  }
  stats->client_micros = NowMicros() - t1;
  stats->result_count = out->size();
  return Status::OK();
}

Status ThinClient::BasicRangeQuery(const std::string& table, int column_index,
                                   const Value* lo, const Value* hi,
                                   std::vector<Transaction>* out,
                                   AuthQueryStats* stats) {
  return BasicScan(
      [&](const Transaction& txn) {
        if (txn.tname() != table) return false;
        Value v = txn.GetColumn(column_index);
        if (lo != nullptr && v.CompareTotal(*lo) < 0) return false;
        if (hi != nullptr && v.CompareTotal(*hi) > 0) return false;
        return true;
      },
      out, stats);
}

Status ThinClient::BasicTraceQuery(bool by_sender, const std::string& key,
                                   std::vector<Transaction>* out,
                                   AuthQueryStats* stats) {
  return BasicScan(
      [&](const Transaction& txn) {
        return by_sender ? txn.sender() == key : txn.tname() == key;
      },
      out, stats);
}

}  // namespace sebdb
