// ChainSQL-style baseline (paper §VII-G): ChainSQL replicates every on-chain
// transaction into a commercial RDBMS and serves tracking through a
// GET_TRANSACTION-style API — all transactions of an operator are returned
// and the *client* filters by operation/time window. This class reproduces
// exactly that behaviour on top of the off-chain mini engine (one indexed
// "transactions" table), so Figs. 20–21 can compare SEBDB's optimized
// tracking against it.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/chain_manager.h"
#include "offchain/offchain_db.h"

namespace sebdb {

class ChainsqlBaseline {
 public:
  ChainsqlBaseline();

  /// Replicates a block's transactions into the relational replica (called
  /// as blocks commit, like ChainSQL's outer loop).
  Status IngestBlock(const Block& block);
  /// Replicates the whole chain.
  Status IngestChain(ChainManager* chain);

  size_t num_replicated() const;

  /// GET_TRANSACTION: every transaction sent by `operator_id` (index-backed
  /// lookup, no server-side filtering by operation or window).
  Status GetTransactionsByOperator(const std::string& operator_id,
                                   std::vector<Transaction>* out) const;

  /// Client-side tracking: fetch by operator, then filter by operation
  /// and/or window locally — the paper's explanation for ChainSQL's latency
  /// growth in Fig. 21.
  Status TrackClientSide(const std::string& operator_id,
                         const std::string& operation, Timestamp window_start,
                         Timestamp window_end,
                         std::vector<Transaction>* out) const;

 private:
  OffchainDb db_;
  OffchainTable* table_ = nullptr;  // owned by db_
};

}  // namespace sebdb
