// Access control (paper §III-B application layer): before a request
// executes, its sender's permission is checked. A lightweight multi-channel
// model: tables belong to channels, identities are channel members, and a
// request may only read or write tables of channels the sender belongs to.
// Tables outside any channel are public.
#pragma once

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sebdb {

class AccessControl {
 public:
  /// Assigns a table to a channel (a table joins at most one channel).
  Status AssignTable(const std::string& table, const std::string& channel);
  /// Adds an identity to a channel.
  Status AddMember(const std::string& channel, const std::string& identity);

  /// OK when the table is public or the sender belongs to its channel.
  Status CheckAccess(const std::string& identity,
                     const std::string& table) const;

  bool IsPublic(const std::string& table) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::string> table_channel_ GUARDED_BY(mu_);
  std::map<std::string, std::set<std::string>> channel_members_
      GUARDED_BY(mu_);
};

}  // namespace sebdb
