// Transport abstraction between a thin client and full nodes. The paper's
// thin clients are remote: DirectTransport calls nodes in-process (tests,
// benchmarks), RpcThinTransport carries the same calls over the simulated
// network through network/rpc.h — a node answers them via
// SebdbNode's RPC dispatcher.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/ali.h"
#include "common/clock.h"
#include "network/rpc.h"
#include "storage/block.h"

namespace sebdb {

class SebdbNode;

class ThinClientTransport {
 public:
  virtual ~ThinClientTransport() = default;

  /// Ids of the reachable full nodes.
  virtual std::vector<std::string> Nodes() = 0;

  virtual Status GetHeaders(const std::string& node, BlockId from,
                            std::vector<BlockHeader>* out) = 0;
  virtual Status GetRawBlock(const std::string& node, BlockId height,
                             std::string* record) = 0;
  virtual Status ProveRange(const std::string& node, const std::string& table,
                            const std::string& column, const Value* lo,
                            const Value* hi, AuthQueryResponse* out) = 0;
  virtual Status DigestRange(const std::string& node,
                             const std::string& table,
                             const std::string& column, const Value* lo,
                             const Value* hi, uint64_t height,
                             Hash256* digest) = 0;
  virtual Status ProveTrace(const std::string& node, bool by_sender,
                            const std::string& key,
                            const Timestamp* window_start,
                            const Timestamp* window_end,
                            AuthQueryResponse* out) = 0;
  virtual Status DigestTrace(const std::string& node, bool by_sender,
                             const std::string& key, uint64_t height,
                             const Timestamp* window_start,
                             const Timestamp* window_end,
                             Hash256* digest) = 0;
};

/// In-process transport over direct node pointers.
class DirectTransport : public ThinClientTransport {
 public:
  explicit DirectTransport(const std::vector<SebdbNode*>& nodes);

  std::vector<std::string> Nodes() override;
  Status GetHeaders(const std::string& node, BlockId from,
                    std::vector<BlockHeader>* out) override;
  Status GetRawBlock(const std::string& node, BlockId height,
                     std::string* record) override;
  Status ProveRange(const std::string& node, const std::string& table,
                    const std::string& column, const Value* lo,
                    const Value* hi, AuthQueryResponse* out) override;
  Status DigestRange(const std::string& node, const std::string& table,
                     const std::string& column, const Value* lo,
                     const Value* hi, uint64_t height,
                     Hash256* digest) override;
  Status ProveTrace(const std::string& node, bool by_sender,
                    const std::string& key, const Timestamp* window_start,
                    const Timestamp* window_end,
                    AuthQueryResponse* out) override;
  Status DigestTrace(const std::string& node, bool by_sender,
                     const std::string& key, uint64_t height,
                     const Timestamp* window_start,
                     const Timestamp* window_end, Hash256* digest) override;

 private:
  Status Find(const std::string& node, SebdbNode** out);
  std::map<std::string, SebdbNode*> nodes_;
};

/// Network transport: every call is one RPC round trip.
class RpcThinTransport : public ThinClientTransport {
 public:
  /// `client_id` registers on the network; `nodes` are the full-node ids.
  /// This form performs exactly one attempt per call (no retries).
  RpcThinTransport(std::string client_id, Network* network,
                   std::vector<std::string> nodes,
                   int64_t call_timeout_millis = 5000);

  /// Retrying form: every call is governed by `policy` (backoff, jitter,
  /// per-attempt timeouts, overall deadline).
  RpcThinTransport(std::string client_id, Network* network,
                   std::vector<std::string> nodes, const RetryPolicy& policy);

  std::vector<std::string> Nodes() override { return nodes_; }
  Status GetHeaders(const std::string& node, BlockId from,
                    std::vector<BlockHeader>* out) override;
  Status GetRawBlock(const std::string& node, BlockId height,
                     std::string* record) override;
  Status ProveRange(const std::string& node, const std::string& table,
                    const std::string& column, const Value* lo,
                    const Value* hi, AuthQueryResponse* out) override;
  Status DigestRange(const std::string& node, const std::string& table,
                     const std::string& column, const Value* lo,
                     const Value* hi, uint64_t height,
                     Hash256* digest) override;
  Status ProveTrace(const std::string& node, bool by_sender,
                    const std::string& key, const Timestamp* window_start,
                    const Timestamp* window_end,
                    AuthQueryResponse* out) override;
  Status DigestTrace(const std::string& node, bool by_sender,
                     const std::string& key, uint64_t height,
                     const Timestamp* window_start,
                     const Timestamp* window_end, Hash256* digest) override;

  /// Retry attempts performed across all calls so far.
  uint64_t retries() const { return client_.retries(); }

  /// Remote write (thin.submit): returns once `node` has committed and
  /// applied the transaction; *height (optional) is the node's chain height
  /// right after the commit.
  Status Submit(const std::string& node, const Transaction& txn,
                uint64_t* height = nullptr);

  /// Node observability (thin.stats) for harnesses and benchmarks.
  struct NodeStats {
    uint64_t height = 0;
    Hash256 tip_hash;
    uint64_t frames_rejected = 0;
    uint64_t overflow_drops = 0;
  };
  Status GetNodeStats(const std::string& node, NodeStats* out);

 private:
  Status DoCall(const std::string& node, const char* method,
                const std::string& request, std::string* response);

  RpcClient client_;
  std::vector<std::string> nodes_;
  RetryPolicy policy_;
};

// ---- wire codecs shared by the transports and the node dispatcher ----

namespace thin_rpc {

constexpr const char* kGetHeaders = "thin.get_headers";
constexpr const char* kGetRawBlock = "thin.get_raw_block";
/// Remote write: body is one signed Transaction; the node runs it through
/// consensus and replies OK only after local commit+apply (the ack the
/// cluster chaos test holds kill -9 against).
constexpr const char* kSubmit = "thin.submit";
/// Node observability for harnesses: chain height, tip hash, and transport
/// frames_rejected, varint/fixed-encoded (see node.cc for layout).
constexpr const char* kStats = "thin.stats";
constexpr const char* kProveRange = "thin.prove_range";
constexpr const char* kDigestRange = "thin.digest_range";
constexpr const char* kProveTrace = "thin.prove_trace";
constexpr const char* kDigestTrace = "thin.digest_trace";

struct RangeRequest {
  std::string table;
  std::string column;
  bool has_lo = false;
  bool has_hi = false;
  Value lo;
  Value hi;
  uint64_t height = 0;  // digest calls only

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, RangeRequest* out);
};

struct TraceRequest {
  bool by_sender = true;
  std::string key;
  bool has_window = false;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  uint64_t height = 0;  // digest calls only

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, TraceRequest* out);
};

void EncodeHeaders(const std::vector<BlockHeader>& headers, std::string* dst);
Status DecodeHeaders(Slice* input, std::vector<BlockHeader>* out);

}  // namespace thin_rpc

}  // namespace sebdb
