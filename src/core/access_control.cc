#include "core/access_control.h"

namespace sebdb {

Status AccessControl::AssignTable(const std::string& table,
                                  const std::string& channel) {
  MutexLock lock(&mu_);
  auto it = table_channel_.find(table);
  if (it != table_channel_.end() && it->second != channel) {
    return Status::InvalidArgument("table " + table +
                                   " already belongs to channel " +
                                   it->second);
  }
  table_channel_[table] = channel;
  return Status::OK();
}

Status AccessControl::AddMember(const std::string& channel,
                                const std::string& identity) {
  MutexLock lock(&mu_);
  channel_members_[channel].insert(identity);
  return Status::OK();
}

Status AccessControl::CheckAccess(const std::string& identity,
                                  const std::string& table) const {
  MutexLock lock(&mu_);
  auto it = table_channel_.find(table);
  if (it == table_channel_.end()) return Status::OK();  // public table
  auto members = channel_members_.find(it->second);
  if (members != channel_members_.end() &&
      members->second.contains(identity)) {
    return Status::OK();
  }
  return Status::InvalidArgument("identity " + identity +
                                 " is not a member of channel " + it->second +
                                 " for table " + table);
}

bool AccessControl::IsPublic(const std::string& table) const {
  MutexLock lock(&mu_);
  return !table_channel_.contains(table);
}

}  // namespace sebdb
