#include "network/frame.h"

#include <array>

#include "common/coding.h"
#include "common/crc32.h"

namespace sebdb {

bool IsAllowedMessageType(std::string_view type) {
  if (type.empty() || type.size() > 64) return false;
  for (char c : type) {
    // Type tags are dotted lowercase identifiers ("gossip.digest").
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
          c == '_')) {
      return false;
    }
  }
  static constexpr std::array<std::string_view, 8> kPrefixes = {
      "gossip.", "repair.", "rpc.", "thin.", "kafka.", "pbft.", "tm.", "net."};
  for (std::string_view prefix : kPrefixes) {
    if (type.size() > prefix.size() && type.substr(0, prefix.size()) == prefix) {
      return true;
    }
  }
  return false;
}

void EncodeFrame(const Message& message, std::string* dst) {
  std::string payload;
  PutLengthPrefixed(&payload, message.type);
  PutLengthPrefixed(&payload, message.from);
  PutLengthPrefixed(&payload, message.to);
  PutLengthPrefixed(&payload, message.payload);

  PutFixed32(dst, kFrameMagic);
  dst->push_back(static_cast<char>(kFrameVersion));
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Crc32(Slice(payload)));
  dst->append(payload);
}

Status DecodeFrameHeader(const char* data, size_t max_frame_bytes,
                         FrameHeader* out) {
  if (DecodeFixed32(data) != kFrameMagic) {
    return Status::Corruption("tcp frame: bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(data[4]);
  if (version != kFrameVersion) {
    return Status::Corruption("tcp frame: unknown version " +
                              std::to_string(version));
  }
  const uint32_t payload_len = DecodeFixed32(data + 5);
  // The length gates the allocation that follows: reject before reserving a
  // single byte a hostile peer asked for.
  if (payload_len > max_frame_bytes) {
    return Status::Corruption("tcp frame: length " +
                              std::to_string(payload_len) + " exceeds cap " +
                              std::to_string(max_frame_bytes));
  }
  out->payload_len = payload_len;
  out->payload_crc = DecodeFixed32(data + 9);
  return Status::OK();
}

Status DecodeFramePayload(const Slice& payload, uint32_t expected_crc,
                          Message* out) {
  if (Crc32(payload) != expected_crc) {
    return Status::Corruption("tcp frame: payload crc mismatch");
  }
  Slice input = payload;
  Slice type, from, to, body;
  if (!GetLengthPrefixed(&input, &type) ||
      !GetLengthPrefixed(&input, &from) || !GetLengthPrefixed(&input, &to) ||
      !GetLengthPrefixed(&input, &body)) {
    return Status::Corruption("tcp frame: truncated payload");
  }
  if (!input.empty()) {
    return Status::Corruption("tcp frame: trailing bytes after body");
  }
  if (!IsAllowedMessageType(type.ToStringView())) {
    return Status::Corruption("tcp frame: type not allowlisted");
  }
  if (from.empty() || from.size() > kMaxEndpointIdBytes || to.empty() ||
      to.size() > kMaxEndpointIdBytes) {
    return Status::Corruption("tcp frame: bad endpoint id length");
  }
  out->type = type.ToString();
  out->from = from.ToString();
  out->to = to.ToString();
  out->payload = body.ToString();
  return Status::OK();
}

Status DecodeFrame(Slice* input, size_t max_frame_bytes, Message* out) {
  if (input->size() < kFrameHeaderBytes) {
    return Status::Corruption("tcp frame: short header");
  }
  FrameHeader header;
  Status s = DecodeFrameHeader(input->data(), max_frame_bytes, &header);
  if (!s.ok()) return s;
  if (input->size() < kFrameHeaderBytes + header.payload_len) {
    return Status::Corruption("tcp frame: short payload");
  }
  Slice payload(input->data() + kFrameHeaderBytes, header.payload_len);
  s = DecodeFramePayload(payload, header.payload_crc, out);
  if (!s.ok()) return s;
  input->remove_prefix(kFrameHeaderBytes + header.payload_len);
  return Status::OK();
}

}  // namespace sebdb
