// Gossip anti-entropy for block propagation and data recovery (paper §III-B:
// SEBDB's network layer uses gossip as in Dynamo/Cassandra and the major
// blockchains). Each agent periodically advertises its chain height to a few
// random peers; a peer that is behind pulls the missing block records and
// applies them in order. New blocks can also be pushed eagerly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "network/network.h"
#include "storage/block.h"

namespace sebdb {

/// What the gossip agent needs from its node: chain height, raw block
/// records for serving pulls, and an apply hook for received blocks
/// (validation happens inside the hook).
class GossipDelegate {
 public:
  virtual ~GossipDelegate() = default;
  virtual uint64_t ChainHeight() = 0;
  virtual Status GetBlockRecord(BlockId height, std::string* record) = 0;
  virtual Status ApplyBlockRecord(BlockId height, const std::string& record) = 0;
  /// Observation hook: every received digest reports the sender's
  /// advertised chain height. The repair/state-sync coordinator keys off
  /// this to detect gaps worth healing; default is a no-op.
  virtual void OnPeerAdvertisedHeight(const std::string& peer,
                                      uint64_t height) {
    (void)peer;
    (void)height;
  }
};

struct GossipOptions {
  /// Anti-entropy round interval (real time).
  int64_t interval_millis = 50;
  /// Peers contacted per round.
  int fanout = 2;
  /// Max blocks returned per pull response.
  uint32_t max_blocks_per_pull = 32;
  uint64_t seed = 7;
  /// A pull (or its response) can be lost on a lossy network. While we know
  /// a peer is ahead of us and no progress arrives within the backoff
  /// window, RunRound re-issues the pull to a random peer, doubling the
  /// window up to the max. Each window is jittered (uniform in
  /// [window/2, window]) so lagging peers that armed at the same instant —
  /// e.g. when a partition heals — don't re-pull in lockstep.
  int64_t pull_retry_initial_millis = 100;
  int64_t pull_retry_max_millis = 2000;
};

class GossipAgent {
 public:
  GossipAgent(std::string node_id, Network* network,
              GossipDelegate* delegate, std::vector<std::string> peers,
              const GossipOptions& options = GossipOptions());
  ~GossipAgent();

  /// Starts the periodic anti-entropy thread.
  void Start();
  void Stop();

  /// Routes "gossip.*" messages; call from the node's network handler.
  void HandleMessage(const Message& message);

  /// Eagerly pushes a freshly committed block to all peers.
  void PushBlock(BlockId height, const std::string& record);

  /// One synchronous anti-entropy round (digest to `fanout` random peers);
  /// useful in deterministic tests without the background thread.
  void RunRound();

  const std::string& node_id() const { return node_id_; }

  /// Number of pulls re-issued because no progress arrived in time.
  uint64_t pull_retries() const {
    return pull_retries_.load(std::memory_order_relaxed);
  }

 private:
  void SendDigest(const std::string& peer);
  void SendPull(const std::string& peer);
  void OnDigest(const Message& message);
  void OnPull(const Message& message);
  void OnBlocks(const Message& message);
  /// Called from RunRound: re-issues the armed pull when its backoff window
  /// expired without the chain reaching the known target height.
  void MaybeRetryPull() EXCLUDES(pull_mu_);
  /// Uniform draw in [window/2, window] (anti-storm jitter).
  int64_t JitteredWindow(int64_t window) REQUIRES(pull_mu_);

  std::string node_id_;
  Network* network_;
  GossipDelegate* delegate_;
  const std::vector<std::string> peers_;  // immutable after construction
  GossipOptions options_;
  std::thread ticker_;
  std::atomic<bool> running_{false};

  // Pending-pull retry state: armed by OnDigest when a peer is ahead,
  // disarmed once the chain catches up to the advertised height. The RNG
  // shares the lock: RunRound (ticker thread or a test driver) and
  // MaybeRetryPull both draw peers from it.
  Mutex pull_mu_;
  Random rng_ GUARDED_BY(pull_mu_);
  uint64_t pull_target_height_ GUARDED_BY(pull_mu_) = 0;  // 0 = disarmed
  uint64_t pull_last_height_ GUARDED_BY(pull_mu_) = 0;
  int64_t pull_deadline_millis_ GUARDED_BY(pull_mu_) = 0;
  int64_t pull_backoff_millis_ GUARDED_BY(pull_mu_) = 0;
  std::atomic<uint64_t> pull_retries_{0};
};

}  // namespace sebdb
