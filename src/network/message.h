// Wire message for the simulated network. `type` routes to a protocol
// handler ("pbft.prepare", "gossip.digest", "orderer.submit", ...); payload
// is the protocol-specific serialized body.
#pragma once

#include <string>

namespace sebdb {

struct Message {
  std::string type;
  std::string from;  // sender node id
  std::string to;    // destination node id
  std::string payload;

  size_t ByteSize() const {
    return type.size() + from.size() + to.size() + payload.size();
  }
};

}  // namespace sebdb
