#include "network/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>

#include "common/clock.h"

namespace sebdb {

namespace {

constexpr int kPollSliceMillis = 100;

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void TuneSocket(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpNetwork::TcpNetwork(TcpNetworkOptions options)
    : options_(std::move(options)), backoff_rng_(options_.seed) {}

TcpNetwork::~TcpNetwork() { Shutdown(); }

Status TcpNetwork::BindAndListen() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  if (::inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + options_.listen_host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("bind " + options_.listen_host + ":" +
                               std::to_string(options_.listen_port) + ": " +
                               strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::IOError("listen: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Status::IOError("getsockname: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  SetNonBlocking(fd);
  listen_fd_ = fd;
  bound_port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status TcpNetwork::Start() {
  if (started_.exchange(true)) return Status::Aborted("already started");
  Status s = BindAndListen();
  if (!s.ok()) return s;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (const TcpPeer& peer : options_.peers) {
    auto link = std::make_unique<Link>();
    link->supervised = true;
    link->host = peer.host;
    link->port = peer.port;
    {
      MutexLock lock(&link->mu);
      link->peer_id = peer.id;
    }
    Link* raw = link.get();
    supervised_.push_back(std::move(link));
    raw->supervisor = std::thread([this, raw] { SupervisorLoop(raw); });
  }
  return Status::OK();
}

void TcpNetwork::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, kPollSliceMillis);
    if (shutdown_.load(std::memory_order_acquire)) return;
    if (n <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    TuneSocket(fd);
    SetNonBlocking(fd);

    auto link = std::make_unique<Link>();
    link->supervised = false;
    link->last_recv_millis.store(SteadyNowMillis(), std::memory_order_release);
    link->up.store(true, std::memory_order_release);
    {
      MutexLock lock(&link->mu);
      link->fd = fd;
    }
    Link* raw = link.get();
    {
      MutexLock lock(&stats_mu_);
      tcp_stats_.accepts++;
    }
    raw->reader = std::thread([this, raw, fd] {
      ReaderLoop(raw, fd);
      ::shutdown(fd, SHUT_RDWR);
      DropRoutes(raw);
      raw->up.store(false, std::memory_order_release);
      {
        MutexLock lock(&raw->mu);
        raw->cv.NotifyAll();
      }
      raw->reader_done.store(true, std::memory_order_release);
    });
    raw->writer = std::thread([this, raw, fd] {
      WriterLoop(raw, fd);
      ::shutdown(fd, SHUT_RDWR);
      raw->up.store(false, std::memory_order_release);
      raw->writer_done.store(true, std::memory_order_release);
    });
    {
      MutexLock lock(&inbound_mu_);
      inbound_.push_back(std::move(link));
      ReapInboundLocked();
    }
  }
}

void TcpNetwork::ReapInboundLocked() {
  for (auto it = inbound_.begin(); it != inbound_.end();) {
    Link* link = it->get();
    if (link->reader_done.load(std::memory_order_acquire) &&
        link->writer_done.load(std::memory_order_acquire)) {
      if (link->reader.joinable()) link->reader.join();
      if (link->writer.joinable()) link->writer.join();
      int fd;
      {
        MutexLock lock(&link->mu);
        fd = link->fd;
        link->fd = -1;
      }
      if (fd >= 0) ::close(fd);
      {
        MutexLock lock(&stats_mu_);
        tcp_stats_.disconnects++;
      }
      it = inbound_.erase(it);
    } else {
      ++it;
    }
  }
}

int TcpNetwork::ConnectWithTimeout(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  SetNonBlocking(fd);
  TuneSocket(fd);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    int64_t deadline = SteadyNowMillis() + options_.connect_timeout_millis;
    while (true) {
      if (shutdown_.load(std::memory_order_acquire)) {
        ::close(fd);
        return -1;
      }
      int64_t now = SteadyNowMillis();
      if (now >= deadline) {
        ::close(fd);
        return -1;
      }
      pollfd pfd{fd, POLLOUT, 0};
      int n = ::poll(&pfd, 1,
                     static_cast<int>(std::min<int64_t>(deadline - now,
                                                        kPollSliceMillis)));
      if (n < 0 && errno != EINTR) {
        ::close(fd);
        return -1;
      }
      if (n > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

void TcpNetwork::SleepBackoff(Link* link, int64_t* backoff_millis) {
  double jitter;
  {
    MutexLock lock(&stats_mu_);
    jitter = 1.0 - options_.reconnect_jitter +
             2.0 * options_.reconnect_jitter * backoff_rng_.NextDouble();
  }
  auto sleep_millis = static_cast<int64_t>(
      static_cast<double>(*backoff_millis) * jitter);
  if (sleep_millis < 1) sleep_millis = 1;
  *backoff_millis =
      std::min(*backoff_millis * 2, options_.reconnect_backoff_max_millis);

  int64_t deadline = SteadyNowMillis() + sleep_millis;
  MutexLock lock(&link->mu);
  while (!link->stop && !shutdown_.load(std::memory_order_acquire)) {
    int64_t now = SteadyNowMillis();
    if (now >= deadline) return;
    link->cv.WaitFor(link->mu, std::chrono::milliseconds(deadline - now));
  }
}

void TcpNetwork::SupervisorLoop(Link* link) {
  int64_t backoff = options_.reconnect_backoff_initial_millis;
  std::string peer_id;
  {
    MutexLock lock(&link->mu);
    peer_id = link->peer_id;
  }
  while (!shutdown_.load(std::memory_order_acquire)) {
    {
      MutexLock lock(&link->mu);
      if (link->stop) return;
    }
    {
      MutexLock lock(&stats_mu_);
      tcp_stats_.connects_attempted++;
    }
    int fd = ConnectWithTimeout(link->host, link->port);
    if (fd < 0) {
      SleepBackoff(link, &backoff);
      continue;
    }
    {
      MutexLock lock(&stats_mu_);
      tcp_stats_.connects_ok++;
    }
    link->last_recv_millis.store(SteadyNowMillis(), std::memory_order_release);
    bool stopped = false;
    {
      MutexLock lock(&link->mu);
      if (link->stop) {
        stopped = true;
      } else {
        link->fd = fd;
      }
    }
    if (stopped) {
      ::close(fd);
      return;
    }
    link->up.store(true, std::memory_order_release);
    NotifyPeerWatchers(peer_id, /*up=*/true);
    backoff = options_.reconnect_backoff_initial_millis;

    std::thread reader([this, link, fd] { ReaderLoop(link, fd); });
    CloseReason reason = WriterLoop(link, fd);
    // Shut down both directions so the reader's blocked poll/read returns,
    // then close only after it has joined (never close an fd another thread
    // still uses — the descriptor number could be recycled under it).
    ::shutdown(fd, SHUT_RDWR);
    reader.join();
    link->up.store(false, std::memory_order_release);
    {
      MutexLock lock(&link->mu);
      link->fd = -1;
    }
    ::close(fd);
    {
      MutexLock lock(&stats_mu_);
      tcp_stats_.disconnects++;
      tcp_stats_.peer_down_events++;
      if (reason == CloseReason::kStale) tcp_stats_.stale_closes++;
      if (reason == CloseReason::kWriteDeadline) {
        tcp_stats_.write_deadline_closes++;
      }
    }
    NotifyPeerWatchers(peer_id, /*up=*/false);
    if (reason == CloseReason::kStop) return;
    SleepBackoff(link, &backoff);
  }
}

bool TcpNetwork::ReadFully(int fd, char* buffer, size_t n) {
  size_t done = 0;
  while (done < n) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    ssize_t r = ::recv(fd, buffer + done, n - done, 0);
    if (r > 0) {
      done += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return false;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kPollSliceMillis) < 0 && errno != EINTR) return false;
  }
  return true;
}

bool TcpNetwork::WriteFully(int fd, const char* data, size_t n,
                            bool* timed_out) {
  *timed_out = false;
  int64_t deadline = SteadyNowMillis() + options_.write_deadline_millis;
  size_t done = 0;
  while (done < n) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return false;
    int64_t now = SteadyNowMillis();
    if (now >= deadline) {
      *timed_out = true;
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1,
               static_cast<int>(std::min<int64_t>(deadline - now,
                                                  kPollSliceMillis))) < 0 &&
        errno != EINTR) {
      return false;
    }
  }
  return true;
}

TcpNetwork::CloseReason TcpNetwork::WriterLoop(Link* link, int fd) {
  int64_t last_ping = SteadyNowMillis();
  while (true) {
    Message message;
    std::string control_frame;
    bool have_user = false;
    bool have_control = false;
    {
      MutexLock lock(&link->mu);
      while (!link->stop && link->queue.empty() && link->control.empty()) {
        int64_t now = SteadyNowMillis();
        int64_t ping_due = last_ping + options_.heartbeat_interval_millis;
        int64_t stale_at =
            link->last_recv_millis.load(std::memory_order_acquire) +
            options_.peer_down_after_millis;
        int64_t next = std::min(ping_due, stale_at);
        if (now >= next) break;
        link->cv.WaitFor(link->mu, std::chrono::milliseconds(next - now));
      }
      if (link->stop || shutdown_.load(std::memory_order_acquire)) {
        return CloseReason::kStop;
      }
      if (!link->control.empty()) {
        control_frame = std::move(link->control.front());
        link->control.pop_front();
        have_control = true;
      } else if (!link->queue.empty()) {
        message = std::move(link->queue.front());
        link->queue.pop_front();
        have_user = true;
      }
    }
    int64_t now = SteadyNowMillis();
    if (now - link->last_recv_millis.load(std::memory_order_acquire) >
        options_.peer_down_after_millis) {
      return CloseReason::kStale;
    }

    bool timed_out = false;
    if (have_control) {
      if (!WriteFully(fd, control_frame.data(), control_frame.size(),
                      &timed_out)) {
        return timed_out ? CloseReason::kWriteDeadline : CloseReason::kError;
      }
      continue;
    }
    if (have_user) {
      if (options_.send_fault && link->supervised) {
        TcpNetworkOptions::Fault fault = options_.send_fault(message);
        if (fault.delay_millis > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fault.delay_millis));
        }
        if (fault.drop) {
          MutexLock lock(&stats_mu_);
          stats_.messages_dropped++;
          stats_.random_drops++;
          continue;
        }
        if (fault.reset) return CloseReason::kReset;
      }
      std::string frame;
      EncodeFrame(message, &frame);
      if (frame.size() > kFrameHeaderBytes + options_.max_frame_bytes) {
        // Our own message exceeds what the peer will accept; sending it
        // would just cost us the connection.
        MutexLock lock(&stats_mu_);
        stats_.messages_dropped++;
        tcp_stats_.oversize_send_drops++;
        continue;
      }
      if (!WriteFully(fd, frame.data(), frame.size(), &timed_out)) {
        return timed_out ? CloseReason::kWriteDeadline : CloseReason::kError;
      }
      continue;
    }
    // Queue still empty after the wait: heartbeat if due.
    if (now - last_ping >= options_.heartbeat_interval_millis) {
      std::string to;
      {
        MutexLock lock(&link->mu);
        to = link->peer_id.empty() ? "peer" : link->peer_id;
      }
      std::string frame;
      EncodeFrame(Message{"net.ping", options_.local_id, to, ""}, &frame);
      if (!WriteFully(fd, frame.data(), frame.size(), &timed_out)) {
        return timed_out ? CloseReason::kWriteDeadline : CloseReason::kError;
      }
      last_ping = now;
      MutexLock lock(&stats_mu_);
      tcp_stats_.heartbeats_sent++;
    }
  }
}

void TcpNetwork::ReaderLoop(Link* link, int fd) {
  char header[kFrameHeaderBytes];
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (!ReadFully(fd, header, kFrameHeaderBytes)) return;
    FrameHeader frame_header;
    Status s =
        DecodeFrameHeader(header, options_.max_frame_bytes, &frame_header);
    if (!s.ok()) {
      MutexLock lock(&stats_mu_);
      stats_.frames_rejected++;
      return;  // framing is lost; drop the connection, not the process
    }
    std::string payload(frame_header.payload_len, '\0');
    if (frame_header.payload_len > 0 &&
        !ReadFully(fd, payload.data(), payload.size())) {
      return;
    }
    Message message;
    s = DecodeFramePayload(Slice(payload), frame_header.payload_crc, &message);
    if (!s.ok()) {
      MutexLock lock(&stats_mu_);
      stats_.frames_rejected++;
      return;
    }
    link->last_recv_millis.store(SteadyNowMillis(), std::memory_order_release);
    {
      MutexLock lock(&stats_mu_);
      tcp_stats_.bytes_received += kFrameHeaderBytes + payload.size();
    }
    HandleIncoming(link, std::move(message));
  }
}

void TcpNetwork::HandleIncoming(Link* link, Message message) {
  if (message.type == "net.ping") {
    // Answer on the SAME connection: between cluster nodes the reverse path
    // is the peer's own supervised link, so replying there would leave this
    // link's reader silent and trip the staleness bound.
    QueueControl(link, Message{"net.pong", options_.local_id,
                               std::move(message.from), ""});
    return;
  }
  if (message.type == "net.pong") return;  // life signal already recorded
  if (!link->supervised) LearnRoute(message.from, link);
  if (!DeliverLocal(&message)) {
    MutexLock lock(&stats_mu_);
    stats_.messages_dropped++;
    stats_.unreachable_drops++;
  }
}

void TcpNetwork::QueueControl(Link* link, const Message& message) {
  std::string frame;
  EncodeFrame(message, &frame);
  MutexLock lock(&link->mu);
  if (link->stop) return;
  // Control frames are tiny and self-renewing; a stuck writer sheds them.
  if (link->control.size() >= 64) link->control.pop_front();
  link->control.push_back(std::move(frame));
  link->cv.NotifyAll();
}

void TcpNetwork::EnqueueOnLink(Link* link, Message message) {
  MutexLock lock(&link->mu);
  if (link->stop) {
    MutexLock stats_lock(&stats_mu_);
    stats_.messages_dropped++;
    stats_.unreachable_drops++;
    return;
  }
  link->queue.push_back(std::move(message));
  if (options_.max_send_queue_per_peer > 0 &&
      link->queue.size() > options_.max_send_queue_per_peer) {
    link->queue.pop_front();
    MutexLock stats_lock(&stats_mu_);
    stats_.messages_dropped++;
    stats_.overflow_drops++;
  }
  link->cv.NotifyAll();
}

TcpNetwork::Link* TcpNetwork::FindSupervised(const std::string& peer_id) {
  for (const auto& link : supervised_) {
    MutexLock lock(&link->mu);
    if (link->peer_id == peer_id) return link.get();
  }
  return nullptr;
}

void TcpNetwork::LearnRoute(const std::string& from, Link* link) {
  if (from.empty() || from == options_.local_id) return;
  {
    MutexLock lock(&link->mu);
    if (link->peer_id.empty()) link->peer_id = from;
  }
  MutexLock lock(&routes_mu_);
  routes_[from] = link;
}

void TcpNetwork::DropRoutes(Link* link) {
  MutexLock lock(&routes_mu_);
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second == link) {
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
}

Status TcpNetwork::Register(const std::string& node_id, Handler handler) {
  {
    MutexLock lock(&endpoints_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Aborted("network shut down");
    }
    if (endpoints_.contains(node_id)) {
      return Status::InvalidArgument("node already registered: " + node_id);
    }
    auto endpoint = std::make_unique<Endpoint>(std::move(handler));
    Endpoint* ep = endpoint.get();
    endpoints_[node_id] = std::move(endpoint);
    ep->worker = std::thread([this, ep] { EndpointWorkerLoop(ep); });
  }
  NotifyPeerWatchers(node_id, /*up=*/true);
  return Status::OK();
}

Status TcpNetwork::Unregister(const std::string& node_id) {
  std::unique_ptr<Endpoint> endpoint;
  {
    MutexLock lock(&endpoints_mu_);
    auto it = endpoints_.find(node_id);
    if (it == endpoints_.end()) {
      return Status::NotFound("node not registered: " + node_id);
    }
    endpoint = std::move(it->second);
    endpoints_.erase(it);
    endpoint->stop = true;
    endpoint->cv.NotifyAll();
  }
  if (endpoint->worker.joinable()) endpoint->worker.join();
  NotifyPeerWatchers(node_id, /*up=*/false);
  return Status::OK();
}

void TcpNetwork::EndpointWorkerLoop(Endpoint* endpoint) {
  endpoints_mu_.Lock();
  while (!endpoint->stop) {
    if (endpoint->queue.empty()) {
      endpoint->cv.Wait(endpoints_mu_);
      continue;
    }
    Message message = std::move(endpoint->queue.front());
    endpoint->queue.pop_front();
    Handler handler = endpoint->handler;
    endpoints_mu_.Unlock();
    {
      MutexLock lock(&stats_mu_);
      stats_.messages_delivered++;
    }
    handler(message);
    endpoints_mu_.Lock();
  }
  endpoints_mu_.Unlock();
}

bool TcpNetwork::DeliverLocal(Message* message) {
  MutexLock lock(&endpoints_mu_);
  auto it = endpoints_.find(message->to);
  if (it == endpoints_.end()) return false;
  Endpoint* ep = it->second.get();
  ep->queue.push_back(std::move(*message));
  if (options_.max_delivery_queue_per_endpoint > 0 &&
      ep->queue.size() > options_.max_delivery_queue_per_endpoint) {
    ep->queue.pop_front();
    MutexLock stats_lock(&stats_mu_);
    stats_.messages_dropped++;
    stats_.overflow_drops++;
  }
  ep->cv.NotifyAll();
  return true;
}

void TcpNetwork::Send(Message message) {
  if (shutdown_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(&stats_mu_);
    stats_.messages_sent++;
    stats_.bytes_sent += message.ByteSize();
  }
  // Routing preference: local endpoint, then a supervised peer link, then a
  // dynamic route learned from an inbound connection (remote thin clients).
  if (DeliverLocal(&message)) return;
  Link* link = FindSupervised(message.to);
  if (link != nullptr) {
    EnqueueOnLink(link, std::move(message));
    return;
  }
  {
    // Enqueue while still holding routes_mu_: an inbound link is only
    // destroyed after DropRoutes has removed it from this map, so holding
    // the map lock pins the Link alive for the enqueue.
    MutexLock lock(&routes_mu_);
    auto it = routes_.find(message.to);
    if (it != routes_.end()) {
      EnqueueOnLink(it->second, std::move(message));
      return;
    }
  }
  MutexLock lock(&stats_mu_);
  stats_.messages_dropped++;
  stats_.unreachable_drops++;
}

void TcpNetwork::Broadcast(const std::string& from, const std::string& type,
                           const std::string& payload) {
  std::set<std::string> targets;
  {
    MutexLock lock(&endpoints_mu_);
    for (const auto& [node_id, endpoint] : endpoints_) {
      if (node_id != from) targets.insert(node_id);
    }
  }
  for (const auto& link : supervised_) {
    MutexLock lock(&link->mu);
    if (link->peer_id != from) targets.insert(link->peer_id);
  }
  for (const auto& target : targets) {
    Send(Message{type, from, target, payload});
  }
}

std::vector<std::string> TcpNetwork::Nodes() const {
  std::set<std::string> names;
  {
    MutexLock lock(&endpoints_mu_);
    for (const auto& [node_id, endpoint] : endpoints_) names.insert(node_id);
  }
  for (const auto& link : supervised_) {
    if (link->up.load(std::memory_order_acquire)) {
      MutexLock lock(&link->mu);
      names.insert(link->peer_id);
    }
  }
  return {names.begin(), names.end()};
}

bool TcpNetwork::PeerUp(const std::string& peer) const {
  for (const auto& link : supervised_) {
    bool match;
    {
      MutexLock lock(&link->mu);
      match = (link->peer_id == peer);
    }
    if (match) return link->up.load(std::memory_order_acquire);
  }
  return false;
}

uint64_t TcpNetwork::AddPeerWatcher(PeerWatcher watcher) {
  MutexLock lock(&watchers_mu_);
  const uint64_t token = next_watcher_token_++;
  watchers_[token] = std::move(watcher);
  return token;
}

void TcpNetwork::RemovePeerWatcher(uint64_t token) {
  MutexLock lock(&watchers_mu_);
  watchers_.erase(token);
}

void TcpNetwork::NotifyPeerWatchers(const std::string& peer, bool up) {
  std::vector<PeerWatcher> watchers;
  {
    MutexLock lock(&watchers_mu_);
    watchers.reserve(watchers_.size());
    for (const auto& [token, watcher] : watchers_) watchers.push_back(watcher);
  }
  for (const auto& watcher : watchers) watcher(peer, up);
}

NetworkStats TcpNetwork::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

TcpTransportStats TcpNetwork::tcp_stats() const {
  MutexLock lock(&stats_mu_);
  return tcp_stats_;
}

void TcpNetwork::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (!started_.load(std::memory_order_acquire)) return;

  // Accept thread first: no new inbound connections during teardown.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  for (const auto& link : supervised_) {
    MutexLock lock(&link->mu);
    link->stop = true;
    if (link->fd >= 0) ::shutdown(link->fd, SHUT_RDWR);
    link->cv.NotifyAll();
  }
  for (const auto& link : supervised_) {
    if (link->supervisor.joinable()) link->supervisor.join();
  }

  {
    MutexLock lock(&inbound_mu_);
    for (const auto& link : inbound_) {
      MutexLock link_lock(&link->mu);
      link->stop = true;
      if (link->fd >= 0) ::shutdown(link->fd, SHUT_RDWR);
      link->cv.NotifyAll();
    }
    for (const auto& link : inbound_) {
      if (link->reader.joinable()) link->reader.join();
      if (link->writer.joinable()) link->writer.join();
      MutexLock link_lock(&link->mu);
      if (link->fd >= 0) {
        ::close(link->fd);
        link->fd = -1;
      }
    }
    inbound_.clear();
  }

  std::vector<std::unique_ptr<Endpoint>> endpoints;
  {
    MutexLock lock(&endpoints_mu_);
    for (auto& [node_id, endpoint] : endpoints_) {
      endpoint->stop = true;
      endpoint->cv.NotifyAll();
      endpoints.push_back(std::move(endpoint));
    }
    endpoints_.clear();
  }
  for (auto& endpoint : endpoints) {
    if (endpoint->worker.joinable()) endpoint->worker.join();
  }
}

}  // namespace sebdb
