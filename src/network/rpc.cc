#include "network/rpc.h"

#include <chrono>

#include "common/coding.h"

namespace sebdb {

void RpcDispatcher::RegisterMethod(const std::string& name,
                                   RpcMethod method) {
  methods_[name] = std::move(method);
}

void RpcDispatcher::HandleMessage(SimNetwork* network,
                                  const std::string& self_id,
                                  const Message& message) const {
  Slice input(message.payload);
  uint64_t request_id;
  Slice method_name, body;
  if (!GetFixed64(&input, &request_id) ||
      !GetLengthPrefixed(&input, &method_name) ||
      !GetLengthPrefixed(&input, &body)) {
    return;  // malformed request: nothing to answer
  }

  Status status;
  std::string response_body;
  auto it = methods_.find(method_name.ToString());
  if (it == methods_.end()) {
    status = Status::NotFound("no RPC method " + method_name.ToString());
  } else {
    status = it->second(body, &response_body);
  }

  std::string payload;
  PutFixed64(&payload, request_id);
  payload.push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(&payload, status.message());
  PutLengthPrefixed(&payload, response_body);
  network->Send(Message{RpcDispatcher::kResponseType, self_id, message.from,
                        payload});
}

RpcClient::RpcClient(std::string client_id, SimNetwork* network)
    : client_id_(std::move(client_id)), network_(network) {
  network_->Register(client_id_,
                     [this](const Message& m) { OnResponse(m); });
}

RpcClient::~RpcClient() { network_->Unregister(client_id_); }

void RpcClient::OnResponse(const Message& message) {
  if (message.type != RpcDispatcher::kResponseType) return;
  Slice input(message.payload);
  uint64_t request_id;
  if (!GetFixed64(&input, &request_id)) return;
  if (input.empty()) return;
  auto code = static_cast<Status::Code>((input)[0]);
  input.remove_prefix(1);
  Slice status_msg, body;
  if (!GetLengthPrefixed(&input, &status_msg) ||
      !GetLengthPrefixed(&input, &body)) {
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // timed out already
  it->second.done = true;
  switch (code) {
    case Status::Code::kOk:
      it->second.status = Status::OK();
      break;
    case Status::Code::kNotFound:
      it->second.status = Status::NotFound(status_msg.ToStringView());
      break;
    case Status::Code::kCorruption:
      it->second.status = Status::Corruption(status_msg.ToStringView());
      break;
    case Status::Code::kInvalidArgument:
      it->second.status = Status::InvalidArgument(status_msg.ToStringView());
      break;
    case Status::Code::kIOError:
      it->second.status = Status::IOError(status_msg.ToStringView());
      break;
    case Status::Code::kNotSupported:
      it->second.status = Status::NotSupported(status_msg.ToStringView());
      break;
    case Status::Code::kAborted:
      it->second.status = Status::Aborted(status_msg.ToStringView());
      break;
    case Status::Code::kBusy:
      it->second.status = Status::Busy(status_msg.ToStringView());
      break;
    case Status::Code::kVerificationFailed:
      it->second.status =
          Status::VerificationFailed(status_msg.ToStringView());
      break;
    case Status::Code::kTimedOut:
      it->second.status = Status::TimedOut(status_msg.ToStringView());
      break;
  }
  it->second.body = body.ToString();
  cv_.notify_all();
}

Status RpcClient::Call(const std::string& server, const std::string& method,
                       const std::string& request, std::string* response,
                       int64_t timeout_millis) {
  uint64_t request_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    request_id = next_request_id_++;
    pending_[request_id] = Pending{};
  }
  std::string payload;
  PutFixed64(&payload, request_id);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, request);
  network_->Send(
      Message{RpcDispatcher::kRequestType, client_id_, server, payload});

  std::unique_lock<std::mutex> lock(mu_);
  bool got = cv_.wait_for(lock, std::chrono::milliseconds(timeout_millis),
                          [&] { return pending_[request_id].done; });
  Pending pending = std::move(pending_[request_id]);
  pending_.erase(request_id);
  if (!got) {
    return Status::TimedOut("no response from " + server + " for " + method);
  }
  if (!pending.status.ok()) return pending.status;
  *response = std::move(pending.body);
  return Status::OK();
}

}  // namespace sebdb
