#include "network/rpc.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

RpcDispatcher::~RpcDispatcher() { Stop(); }

void RpcDispatcher::RegisterMethod(const std::string& name,
                                   RpcMethod method) {
  methods_[name] = std::move(method);
}

void RpcDispatcher::Start(const RpcServerOptions& options) {
  if (options.workers <= 0) return;
  MutexLock lock(&mu_);
  if (running_) return;
  options_ = options;
  running_ = true;
  workers_.reserve(static_cast<size_t>(options.workers));
  for (int i = 0; i < options.workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void RpcDispatcher::Stop() {
  std::deque<QueuedRequest> drained;
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
    drained.swap(queue_);
    cv_.NotifyAll();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  for (const auto& request : drained) {
    Reply(request.network, request.self_id, request.reply_to,
          request.request_id, Status::Aborted("rpc server stopped"), "");
  }
}

void RpcDispatcher::Reply(Network* network, const std::string& self_id,
                          const std::string& reply_to, uint64_t request_id,
                          const Status& status, const std::string& body) {
  std::string payload;
  PutFixed64(&payload, request_id);
  payload.push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(&payload, status.message());
  PutLengthPrefixed(&payload, body);
  PutVarint64(&payload,
              static_cast<uint64_t>(std::max<int64_t>(
                  status.retry_after_millis(), 0)));
  network->Send(
      Message{RpcDispatcher::kResponseType, self_id, reply_to, payload});
}

void RpcDispatcher::Execute(Network* network, const std::string& self_id,
                            const std::string& reply_to, uint64_t request_id,
                            const std::string& method, const Slice& body) {
  Status status;
  std::string response_body;
  auto it = methods_.find(method);
  if (it == methods_.end()) {
    status = Status::NotFound("no RPC method " + method);
  } else {
    status = it->second(body, &response_body);
  }
  {
    MutexLock lock(&mu_);
    stats_.executed++;
  }
  Reply(network, self_id, reply_to, request_id, status, response_body);
}

void RpcDispatcher::WorkerLoop() {
  while (true) {
    QueuedRequest request;
    bool expired = false;
    {
      MutexLock lock(&mu_);
      while (running_ && queue_.empty()) cv_.Wait(mu_);
      if (!running_) return;
      request = std::move(queue_.front());
      queue_.pop_front();
      expired = request.deadline_millis > 0 &&
                SteadyNowMillis() > request.deadline_millis;
      if (expired) stats_.expired_in_queue++;
    }
    if (expired) {
      Reply(request.network, request.self_id, request.reply_to,
            request.request_id,
            Status::TimedOut("deadline expired in rpc queue"), "");
      continue;
    }
    Execute(request.network, request.self_id, request.reply_to,
            request.request_id, request.method, Slice(request.body));
  }
}

void RpcDispatcher::HandleMessage(Network* network,
                                  const std::string& self_id,
                                  const Message& message) {
  Slice input(message.payload);
  uint64_t request_id, budget_millis;
  Slice method_name, body;
  if (!GetFixed64(&input, &request_id) ||
      !GetFixed64(&input, &budget_millis) ||
      !GetLengthPrefixed(&input, &method_name) ||
      !GetLengthPrefixed(&input, &body)) {
    return;  // malformed request: nothing to answer
  }
  // Re-anchor the client's remaining-time budget against OUR steady clock.
  // The wire never carries absolute instants: the two processes' steady
  // clocks share no epoch, so comparing a remote instant against
  // SteadyNowMillis() here would be garbage (and was, before budgets —
  // every cross-process request looked expired or immortal at random).
  const int64_t deadline_millis =
      budget_millis > 0
          ? SteadyNowMillis() + static_cast<int64_t>(budget_millis)
          : 0;

  enum class Action { kExecuteInline, kQueued, kRejected };
  Action action;
  int64_t hint = 0;
  {
    MutexLock lock(&mu_);
    stats_.received++;
    if (!running_) {
      action = Action::kExecuteInline;
    } else if (queue_.size() >= options_.max_queue) {
      stats_.rejected_queue_full++;
      hint = options_.retry_after_base_millis * 2;
      action = Action::kRejected;
    } else {
      queue_.push_back(QueuedRequest{network, self_id, message.from,
                                     request_id, deadline_millis,
                                     method_name.ToString(), body.ToString()});
      cv_.NotifyOne();
      action = Action::kQueued;
    }
  }
  switch (action) {
    case Action::kQueued:
      break;
    case Action::kExecuteInline:
      Execute(network, self_id, message.from, request_id,
              method_name.ToString(), body);
      break;
    case Action::kRejected:
      Reply(network, self_id, message.from, request_id,
            Status::ResourceExhausted("rpc server queue full", hint), "");
      break;
  }
}

RpcServerStats RpcDispatcher::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

RpcClient::RpcClient(std::string client_id, Network* network)
    : client_id_(std::move(client_id)), network_(network) {
  network_->Register(client_id_,
                     [this](const Message& m) { OnResponse(m); });
  watcher_token_ = network_->AddPeerWatcher(
      [this](const std::string& peer, bool up) {
        if (!up) OnPeerDown(peer);
      });
}

RpcClient::~RpcClient() {
  network_->RemovePeerWatcher(watcher_token_);
  network_->Unregister(client_id_);
}

void RpcClient::OnPeerDown(const std::string& peer) {
  MutexLock lock(&mu_);
  bool failed_any = false;
  for (auto& [id, pending] : pending_) {
    if (pending.done || pending.server != peer) continue;
    pending.done = true;
    pending.status =
        Status::Unavailable("peer " + peer + " down (connection lost)");
    failed_any = true;
  }
  if (failed_any) cv_.NotifyAll();
}

void RpcClient::OnResponse(const Message& message) {
  if (message.type != RpcDispatcher::kResponseType) return;
  Slice input(message.payload);
  uint64_t request_id;
  if (!GetFixed64(&input, &request_id)) return;
  if (input.empty()) return;
  auto code = static_cast<Status::Code>((input)[0]);
  input.remove_prefix(1);
  Slice status_msg, body;
  if (!GetLengthPrefixed(&input, &status_msg) ||
      !GetLengthPrefixed(&input, &body)) {
    return;
  }
  uint64_t retry_after = 0;
  GetVarint64(&input, &retry_after);  // absent in malformed/legacy frames

  MutexLock lock(&mu_);
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // timed out already
  it->second.done = true;
  switch (code) {
    case Status::Code::kOk:
      it->second.status = Status::OK();
      break;
    case Status::Code::kNotFound:
      it->second.status = Status::NotFound(status_msg.ToStringView());
      break;
    case Status::Code::kCorruption:
      it->second.status = Status::Corruption(status_msg.ToStringView());
      break;
    case Status::Code::kInvalidArgument:
      it->second.status = Status::InvalidArgument(status_msg.ToStringView());
      break;
    case Status::Code::kIOError:
      it->second.status = Status::IOError(status_msg.ToStringView());
      break;
    case Status::Code::kNotSupported:
      it->second.status = Status::NotSupported(status_msg.ToStringView());
      break;
    case Status::Code::kAborted:
      it->second.status = Status::Aborted(status_msg.ToStringView());
      break;
    case Status::Code::kBusy:
      it->second.status = Status::Busy(status_msg.ToStringView());
      break;
    case Status::Code::kVerificationFailed:
      it->second.status =
          Status::VerificationFailed(status_msg.ToStringView());
      break;
    case Status::Code::kTimedOut:
      it->second.status = Status::TimedOut(status_msg.ToStringView());
      break;
    case Status::Code::kResourceExhausted:
      it->second.status =
          Status::ResourceExhausted(status_msg.ToStringView(),
                                    static_cast<int64_t>(retry_after));
      break;
    case Status::Code::kUnavailable:
      it->second.status = Status::Unavailable(status_msg.ToStringView());
      break;
  }
  it->second.body = body.ToString();
  cv_.NotifyAll();
}

Status RpcClient::Call(const std::string& server, const std::string& method,
                       const std::string& request, std::string* response,
                       int64_t timeout_millis) {
  uint64_t request_id;
  {
    MutexLock lock(&mu_);
    request_id = next_request_id_++;
    pending_[request_id].server = server;
  }
  const int64_t wait_deadline = SteadyNowMillis() + timeout_millis;
  std::string payload;
  PutFixed64(&payload, request_id);
  // Deadline propagation as a remaining-time budget: the server re-anchors
  // it against its own steady clock (absolute instants don't survive a
  // process boundary) and sheds the request once it runs out in the queue.
  PutFixed64(&payload, static_cast<uint64_t>(std::max<int64_t>(
                           timeout_millis, 0)));
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, request);
  network_->Send(
      Message{RpcDispatcher::kRequestType, client_id_, server, payload});

  MutexLock lock(&mu_);
  bool got;
  while (!(got = pending_[request_id].done)) {
    int64_t remaining = wait_deadline - SteadyNowMillis();
    if (remaining <= 0) break;
    cv_.WaitFor(mu_, std::chrono::milliseconds(remaining));
  }
  Pending pending = std::move(pending_[request_id]);
  pending_.erase(request_id);
  if (!got) {
    return Status::TimedOut("no response from " + server + " for " + method);
  }
  if (!pending.status.ok()) return pending.status;
  *response = std::move(pending.body);
  return Status::OK();
}

bool RpcClient::IsRetryable(const Status& status) {
  return status.IsTimedOut() || status.IsIOError() || status.IsBusy() ||
         status.IsResourceExhausted() || status.IsUnavailable();
}

Status RpcClient::Call(const std::string& server, const std::string& method,
                       const std::string& request, std::string* response,
                       const RetryPolicy& policy) {
  const int64_t start = SteadyNowMillis();
  const int64_t deadline = policy.overall_deadline_millis > 0
                               ? start + policy.overall_deadline_millis
                               : 0;
  int64_t backoff = std::max<int64_t>(policy.initial_backoff_millis, 1);
  Status last = Status::TimedOut("no attempts allowed by retry policy");
  const int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; attempt++) {
    int64_t attempt_timeout = policy.attempt_timeout_millis;
    if (deadline > 0) {
      int64_t remaining = deadline - SteadyNowMillis();
      if (remaining <= 0) {
        return Status::TimedOut("retry deadline exhausted calling " + server +
                                "." + method + ": " + last.message());
      }
      attempt_timeout = std::min(attempt_timeout, remaining);
    }
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    last = Call(server, method, request, response, attempt_timeout);
    if (last.ok() || !IsRetryable(last)) return last;
    if (attempt + 1 == attempts) break;

    // Exponential backoff with jitter; never sleep past the deadline.
    double factor = 1.0;
    if (policy.jitter > 0) {
      MutexLock lock(&mu_);
      factor += policy.jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
    }
    int64_t sleep_ms = static_cast<int64_t>(
        static_cast<double>(backoff) * std::max(factor, 0.0));
    // A server-supplied retry_after hint overrides the client-side guess:
    // the server knows when its queue will have drained.
    if (last.retry_after_millis() > 0) sleep_ms = last.retry_after_millis();
    if (deadline > 0) {
      int64_t remaining = deadline - SteadyNowMillis();
      if (remaining <= 0) break;
      sleep_ms = std::min(sleep_ms, remaining);
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    backoff = std::min<int64_t>(
        static_cast<int64_t>(static_cast<double>(backoff) *
                             std::max(policy.backoff_multiplier, 1.0)),
        std::max<int64_t>(policy.max_backoff_millis, 1));
  }
  if (deadline > 0 && SteadyNowMillis() >= deadline && IsRetryable(last)) {
    return Status::TimedOut("retry deadline exhausted calling " + server +
                            "." + method + ": " + last.message());
  }
  return last;
}

}  // namespace sebdb
