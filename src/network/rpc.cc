#include "network/rpc.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

void RpcDispatcher::RegisterMethod(const std::string& name,
                                   RpcMethod method) {
  methods_[name] = std::move(method);
}

void RpcDispatcher::HandleMessage(SimNetwork* network,
                                  const std::string& self_id,
                                  const Message& message) const {
  Slice input(message.payload);
  uint64_t request_id;
  Slice method_name, body;
  if (!GetFixed64(&input, &request_id) ||
      !GetLengthPrefixed(&input, &method_name) ||
      !GetLengthPrefixed(&input, &body)) {
    return;  // malformed request: nothing to answer
  }

  Status status;
  std::string response_body;
  auto it = methods_.find(method_name.ToString());
  if (it == methods_.end()) {
    status = Status::NotFound("no RPC method " + method_name.ToString());
  } else {
    status = it->second(body, &response_body);
  }

  std::string payload;
  PutFixed64(&payload, request_id);
  payload.push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(&payload, status.message());
  PutLengthPrefixed(&payload, response_body);
  network->Send(Message{RpcDispatcher::kResponseType, self_id, message.from,
                        payload});
}

RpcClient::RpcClient(std::string client_id, SimNetwork* network)
    : client_id_(std::move(client_id)), network_(network) {
  network_->Register(client_id_,
                     [this](const Message& m) { OnResponse(m); });
}

RpcClient::~RpcClient() { network_->Unregister(client_id_); }

void RpcClient::OnResponse(const Message& message) {
  if (message.type != RpcDispatcher::kResponseType) return;
  Slice input(message.payload);
  uint64_t request_id;
  if (!GetFixed64(&input, &request_id)) return;
  if (input.empty()) return;
  auto code = static_cast<Status::Code>((input)[0]);
  input.remove_prefix(1);
  Slice status_msg, body;
  if (!GetLengthPrefixed(&input, &status_msg) ||
      !GetLengthPrefixed(&input, &body)) {
    return;
  }

  MutexLock lock(&mu_);
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // timed out already
  it->second.done = true;
  switch (code) {
    case Status::Code::kOk:
      it->second.status = Status::OK();
      break;
    case Status::Code::kNotFound:
      it->second.status = Status::NotFound(status_msg.ToStringView());
      break;
    case Status::Code::kCorruption:
      it->second.status = Status::Corruption(status_msg.ToStringView());
      break;
    case Status::Code::kInvalidArgument:
      it->second.status = Status::InvalidArgument(status_msg.ToStringView());
      break;
    case Status::Code::kIOError:
      it->second.status = Status::IOError(status_msg.ToStringView());
      break;
    case Status::Code::kNotSupported:
      it->second.status = Status::NotSupported(status_msg.ToStringView());
      break;
    case Status::Code::kAborted:
      it->second.status = Status::Aborted(status_msg.ToStringView());
      break;
    case Status::Code::kBusy:
      it->second.status = Status::Busy(status_msg.ToStringView());
      break;
    case Status::Code::kVerificationFailed:
      it->second.status =
          Status::VerificationFailed(status_msg.ToStringView());
      break;
    case Status::Code::kTimedOut:
      it->second.status = Status::TimedOut(status_msg.ToStringView());
      break;
  }
  it->second.body = body.ToString();
  cv_.NotifyAll();
}

Status RpcClient::Call(const std::string& server, const std::string& method,
                       const std::string& request, std::string* response,
                       int64_t timeout_millis) {
  uint64_t request_id;
  {
    MutexLock lock(&mu_);
    request_id = next_request_id_++;
    pending_[request_id] = Pending{};
  }
  std::string payload;
  PutFixed64(&payload, request_id);
  PutLengthPrefixed(&payload, method);
  PutLengthPrefixed(&payload, request);
  network_->Send(
      Message{RpcDispatcher::kRequestType, client_id_, server, payload});

  MutexLock lock(&mu_);
  const int64_t wait_deadline = SteadyNowMillis() + timeout_millis;
  bool got;
  while (!(got = pending_[request_id].done)) {
    int64_t remaining = wait_deadline - SteadyNowMillis();
    if (remaining <= 0) break;
    cv_.WaitFor(mu_, std::chrono::milliseconds(remaining));
  }
  Pending pending = std::move(pending_[request_id]);
  pending_.erase(request_id);
  if (!got) {
    return Status::TimedOut("no response from " + server + " for " + method);
  }
  if (!pending.status.ok()) return pending.status;
  *response = std::move(pending.body);
  return Status::OK();
}

bool RpcClient::IsRetryable(const Status& status) {
  return status.IsTimedOut() || status.IsIOError() || status.IsBusy();
}

Status RpcClient::Call(const std::string& server, const std::string& method,
                       const std::string& request, std::string* response,
                       const RetryPolicy& policy) {
  const int64_t start = SteadyNowMillis();
  const int64_t deadline = policy.overall_deadline_millis > 0
                               ? start + policy.overall_deadline_millis
                               : 0;
  int64_t backoff = std::max<int64_t>(policy.initial_backoff_millis, 1);
  Status last = Status::TimedOut("no attempts allowed by retry policy");
  const int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; attempt++) {
    int64_t attempt_timeout = policy.attempt_timeout_millis;
    if (deadline > 0) {
      int64_t remaining = deadline - SteadyNowMillis();
      if (remaining <= 0) {
        return Status::TimedOut("retry deadline exhausted calling " + server +
                                "." + method + ": " + last.message());
      }
      attempt_timeout = std::min(attempt_timeout, remaining);
    }
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    last = Call(server, method, request, response, attempt_timeout);
    if (last.ok() || !IsRetryable(last)) return last;
    if (attempt + 1 == attempts) break;

    // Exponential backoff with jitter; never sleep past the deadline.
    double factor = 1.0;
    if (policy.jitter > 0) {
      MutexLock lock(&mu_);
      factor += policy.jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
    }
    int64_t sleep_ms = static_cast<int64_t>(
        static_cast<double>(backoff) * std::max(factor, 0.0));
    if (deadline > 0) {
      int64_t remaining = deadline - SteadyNowMillis();
      if (remaining <= 0) break;
      sleep_ms = std::min(sleep_ms, remaining);
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    backoff = std::min<int64_t>(
        static_cast<int64_t>(static_cast<double>(backoff) *
                             std::max(policy.backoff_multiplier, 1.0)),
        std::max<int64_t>(policy.max_backoff_millis, 1));
  }
  if (deadline > 0 && SteadyNowMillis() >= deadline && IsRetryable(last)) {
    return Status::TimedOut("retry deadline exhausted calling " + server +
                            "." + method + ": " + last.message());
  }
  return last;
}

}  // namespace sebdb
