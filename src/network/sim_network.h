// In-process simulated network (substitutes the paper's 1 Gbps LAN). Each
// registered node gets a delivery thread draining a queue of timestamped
// messages; per-message latency is drawn uniformly from a configurable
// range, links can be taken down (partition tests) and messages dropped
// probabilistically (loss tests). With zero latency and loss the network is
// deterministic per sender order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "network/message.h"
#include "network/network.h"

namespace sebdb {

struct SimNetworkOptions {
  /// Uniform one-way latency range, microseconds of real time.
  int64_t min_latency_micros = 0;
  int64_t max_latency_micros = 0;
  /// Probability a message silently disappears.
  double drop_rate = 0.0;
  uint64_t seed = 42;
  /// Cap on any endpoint's delivery queue (0 = unbounded). When exceeded
  /// the oldest queued message is shed — under overload, stale traffic is
  /// the least valuable (its senders have likely timed out already).
  size_t max_queue_per_endpoint = 0;
  /// Tighter cap on queued "gossip.*" messages per endpoint (0 =
  /// unbounded). Anti-entropy re-requests anything shed here, so gossip is
  /// the safe class to shed first when a node falls behind.
  size_t max_gossip_queue_per_endpoint = 0;
};

class SimNetwork : public Network {
 public:
  explicit SimNetwork(const SimNetworkOptions& options = SimNetworkOptions());
  ~SimNetwork() override;
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a node; its handler runs on the node's own delivery thread
  /// (handlers must be thread-safe with respect to the caller's state).
  Status Register(const std::string& node_id, Handler handler) override;
  Status Unregister(const std::string& node_id) override;

  /// Queues a message for delivery. Unknown destinations and down links
  /// swallow the message (like a real network).
  void Send(Message message) override;

  /// Sends to every registered node except the sender.
  void Broadcast(const std::string& from, const std::string& type,
                 const std::string& payload) override;

  std::vector<std::string> Nodes() const override;

  /// Partition control: while down, messages in either direction vanish.
  void SetLinkDown(const std::string& a, const std::string& b, bool down);

  /// Blocks until every queue is empty and every in-flight handler returned.
  /// Only meaningful with zero latency (deterministic tests).
  void DrainAll();

  NetworkStats stats() const override;

  void Shutdown() override;

  /// Peer watchers observe endpoint registration: Register fires (id, up),
  /// Unregister fires (id, down) — the in-process analogue of a connection
  /// establishing / dropping, so fail-fast paths can be tested without
  /// sockets.
  uint64_t AddPeerWatcher(PeerWatcher watcher) override;
  void RemovePeerWatcher(uint64_t token) override;

 private:
  // All mutable Endpoint state (queue/stop/busy) is guarded by the outer
  // SimNetwork::mu_ — nested members cannot name it in a GUARDED_BY.
  struct Endpoint {
    explicit Endpoint(Handler h) : handler(std::move(h)) {}
    Handler handler;
    std::deque<std::pair<int64_t, Message>> queue;  // (deliver_at_micros, msg)
    size_t gossip_queued = 0;  // queue entries whose type is "gossip.*"
    CondVar cv;
    std::thread worker;
    bool stop = false;
    bool busy = false;  // handler currently running
  };

  void WorkerLoop(const std::string& node_id, Endpoint* endpoint);
  int64_t NowMicros() const;
  /// Invokes every watcher with (peer, up). Never called with mu_ held —
  /// watchers may re-enter Send/Register.
  void NotifyPeerWatchers(const std::string& peer, bool up) EXCLUDES(mu_);

  SimNetworkOptions options_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Endpoint>> endpoints_
      GUARDED_BY(mu_);
  std::set<std::pair<std::string, std::string>> down_links_ GUARDED_BY(mu_);
  Random rng_ GUARDED_BY(mu_);
  NetworkStats stats_ GUARDED_BY(mu_);
  uint64_t next_watcher_token_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, PeerWatcher> watchers_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace sebdb
