// Transport seam (DESIGN.md §15). Every component that talks to peers —
// gossip, RPC, consensus, repair — holds a Network*, never a concrete
// implementation. Two implementations exist with deliberately identical
// delivery semantics (at-most-once, per-sender FIFO while a link is up,
// silent drops when it is not):
//   - SimNetwork: in-process, deterministic with zero latency/loss. Every
//     existing test and the chaos/soak matrices run on it.
//   - TcpNetwork: real sockets, one instance per OS process, with per-peer
//     connection supervision (reconnect backoff, heartbeats, bounded send
//     queues). sebdb_server and the multi-process cluster harness run on it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "network/message.h"

namespace sebdb {

struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  /// Total drops; always equals unreachable_drops + link_drops +
  /// random_drops + overflow_drops.
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  /// Destination was never registered (or already unregistered), and no
  /// route to it is known.
  uint64_t unreachable_drops = 0;
  /// Swallowed by a down link (SimNetwork partition, or a TCP connection
  /// that is currently broken and reconnecting).
  uint64_t link_drops = 0;
  /// Lost to probabilistic loss (SimNetwork drop_rate, TCP fault shim).
  uint64_t random_drops = 0;
  /// Shed oldest-first by a bounded queue (delivery or send side).
  uint64_t overflow_drops = 0;
  /// Inbound frames rejected by strict validation (bad magic/CRC/length/
  /// type). Always 0 on SimNetwork — in-process messages cannot corrupt.
  uint64_t frames_rejected = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Peer liveness observation: `up` flips true when a supervised connection
  /// (or a registered in-process endpoint) to `peer` becomes usable, false
  /// when it is lost. Watchers run outside the network's internal locks but
  /// on its threads — keep them cheap and never call back into Send
  /// synchronously with long work.
  using PeerWatcher = std::function<void(const std::string& peer, bool up)>;

  virtual ~Network() = default;

  /// Registers a local endpoint; its handler runs on a delivery thread owned
  /// by the network (handlers must be thread-safe w.r.t. the caller's own
  /// state, and are invoked serially per endpoint).
  virtual Status Register(const std::string& node_id, Handler handler) = 0;
  virtual Status Unregister(const std::string& node_id) = 0;

  /// Queues a message for delivery. Unknown destinations and down links
  /// swallow the message (like a real network) — reliability is the job of
  /// the protocols above (gossip anti-entropy, RPC retries).
  virtual void Send(Message message) = 0;

  /// Sends to every known endpoint except the sender. On SimNetwork "known"
  /// means registered; on TcpNetwork it means every supervised peer plus
  /// local endpoints.
  virtual void Broadcast(const std::string& from, const std::string& type,
                         const std::string& payload) = 0;

  /// Ids this network can currently address (sorted).
  virtual std::vector<std::string> Nodes() const = 0;

  virtual NetworkStats stats() const = 0;

  virtual void Shutdown() = 0;

  /// Subscribes to peer up/down transitions; returns a token for
  /// RemovePeerWatcher. SimNetwork reports endpoint register/unregister;
  /// TcpNetwork reports supervised-connection establishment and loss
  /// (heartbeat timeout, reset, kill -9 on the far side). Feed this into
  /// fail-fast paths (RpcClient) and catch-up triggers (gossip round on
  /// peer-up) — never into correctness decisions, it is advisory.
  virtual uint64_t AddPeerWatcher(PeerWatcher watcher) = 0;
  virtual void RemovePeerWatcher(uint64_t token) = 0;
};

}  // namespace sebdb
