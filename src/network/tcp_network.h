// Real-socket implementation of the Network seam (DESIGN.md §15). One
// TcpNetwork instance per OS process: it listens on one address, keeps a
// supervised outbound connection to every configured peer, and serves any
// number of inbound connections (other full nodes, remote thin clients).
//
// Connection supervision, per configured peer:
//   - a supervisor thread reconnects with jittered exponential backoff and
//     never gives up while the network is up;
//   - application-level heartbeats ("net.ping"/"net.pong", answered on the
//     same socket) bound silence: a link with no valid inbound frame for
//     peer_down_after_millis is declared down, closed, and re-dialed;
//   - writes go through a bounded per-peer send queue (shed oldest-first
//     into NetworkStats::overflow_drops) and a write deadline, so one slow
//     or SIGSTOPped peer can never wedge the process;
//   - peer up/down transitions fire the Network peer watchers (RpcClient
//     fail-fast, gossip catch-up rounds).
//
// Inbound bytes are hostile until proven otherwise: every frame passes the
// strict codec in network/frame.h; any violation counts frames_rejected and
// costs the sender its connection — never the process. Delivery semantics
// match SimNetwork: at-most-once, per-sender FIFO while a link is up, silent
// drops while it is not (gossip/RPC retries own reliability).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "network/frame.h"
#include "network/network.h"

namespace sebdb {

/// One supervised remote peer (a full node of the cluster).
struct TcpPeer {
  std::string id;
  std::string host;
  uint16_t port = 0;
};

struct TcpNetworkOptions {
  /// Name this process speaks as on transport-level frames (heartbeats).
  /// User messages carry their own `from`.
  std::string local_id = "local";
  std::string listen_host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via listen_port().
  uint16_t listen_port = 0;
  /// Peers this process supervises outbound connections to. Exclude the
  /// process's own id — Send prefers local endpoints anyway.
  std::vector<TcpPeer> peers;

  /// Strict cap the frame decoder enforces before allocating.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bounded per-peer send queue (messages); oldest shed first.
  size_t max_send_queue_per_peer = 4096;
  /// Bounded per-endpoint delivery queue (messages); oldest shed first.
  /// 0 = unbounded (matches SimNetwork's default).
  size_t max_delivery_queue_per_endpoint = 8192;

  /// An idle link sends "net.ping" this often; any valid inbound frame
  /// counts as life.
  int64_t heartbeat_interval_millis = 250;
  /// No valid inbound frame for this long declares the peer down and
  /// recycles the connection. Must comfortably exceed the heartbeat
  /// interval.
  int64_t peer_down_after_millis = 1500;
  int64_t connect_timeout_millis = 1000;
  /// A single frame write stalled past this closes the connection (the
  /// bounded send queue sheds behind it).
  int64_t write_deadline_millis = 5000;
  int64_t reconnect_backoff_initial_millis = 50;
  int64_t reconnect_backoff_max_millis = 2000;
  /// Backoff sleeps are scaled by a uniform factor in [1-j, 1+j] so a
  /// restarted node's peers do not re-dial in lockstep.
  double reconnect_jitter = 0.5;
  uint64_t seed = 0x7cb5ebdbULL;

  /// Socket-level fault shim (bench_net, tests): consulted for every user
  /// frame leaving on a supervised link. `drop` loses the frame (counted as
  /// random_drops), `delay_millis` stalls the link's writer first (latency
  /// injection), `reset` closes the connection mid-traffic. Never set in
  /// production.
  struct Fault {
    bool drop = false;
    bool reset = false;
    int64_t delay_millis = 0;
  };
  std::function<Fault(const Message&)> send_fault;
};

/// Socket-layer counters surfaced next to NetworkStats.
struct TcpTransportStats {
  uint64_t connects_attempted = 0;
  uint64_t connects_ok = 0;
  uint64_t accepts = 0;
  uint64_t disconnects = 0;       // established connections lost (any cause)
  uint64_t peer_down_events = 0;  // supervised links declared down
  uint64_t heartbeats_sent = 0;
  uint64_t stale_closes = 0;      // closed by the silence bound
  uint64_t write_deadline_closes = 0;
  uint64_t oversize_send_drops = 0;  // local message exceeded the frame cap
  uint64_t bytes_received = 0;
};

class TcpNetwork : public Network {
 public:
  explicit TcpNetwork(TcpNetworkOptions options);
  ~TcpNetwork() override;
  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Binds + listens + starts the accept thread and one supervisor per
  /// configured peer. Must be called before Register/Send.
  Status Start();

  /// The bound listen port (after Start; resolves listen_port == 0).
  uint16_t listen_port() const { return bound_port_; }

  // --- Network interface ---
  Status Register(const std::string& node_id, Handler handler) override;
  Status Unregister(const std::string& node_id) override;
  void Send(Message message) override;
  void Broadcast(const std::string& from, const std::string& type,
                 const std::string& payload) override;
  std::vector<std::string> Nodes() const override;
  NetworkStats stats() const override;
  void Shutdown() override;
  uint64_t AddPeerWatcher(PeerWatcher watcher) override;
  void RemovePeerWatcher(uint64_t token) override;

  TcpTransportStats tcp_stats() const;

  /// True while the supervised link to `peer` is established and fresh.
  bool PeerUp(const std::string& peer) const;

 private:
  /// Local delivery endpoint — mirrors SimNetwork: one queue + one delivery
  /// thread per registered id, so handlers are invoked serially per
  /// endpoint. All mutable state guarded by the outer endpoints_mu_.
  struct Endpoint {
    explicit Endpoint(Handler h) : handler(std::move(h)) {}
    Handler handler;
    std::deque<Message> queue;
    CondVar cv;
    std::thread worker;
    bool stop = false;
  };

  /// One live or reconnecting connection. Supervised links own a supervisor
  /// thread that dials forever; inbound connections are created established
  /// and die once. Queue state is guarded by the link's own mu (leaf-ward
  /// of endpoints_mu_/routes_mu_; never taken while holding it the other
  /// way around).
  struct Link {
    Link() = default;
    bool supervised = false;
    std::string host;
    uint16_t port = 0;

    Mutex mu;
    CondVar cv;
    /// Supervised: configured id, never changes. Inbound: learned from the
    /// first valid frame's `from`.
    std::string peer_id GUARDED_BY(mu);
    std::deque<Message> queue GUARDED_BY(mu);        // user messages
    std::deque<std::string> control GUARDED_BY(mu);  // pre-encoded frames
    int fd GUARDED_BY(mu) = -1;
    bool stop GUARDED_BY(mu) = false;

    std::atomic<int64_t> last_recv_millis{0};
    std::atomic<bool> up{false};
    std::atomic<bool> reader_done{false};  // inbound reaping
    std::atomic<bool> writer_done{false};

    std::thread supervisor;  // supervised links only
    std::thread writer;      // inbound links only (supervised: inline)
    std::thread reader;      // inbound links only (supervised: per-dial)
  };

  // Socket lifecycle.
  Status BindAndListen();
  void AcceptLoop();
  int ConnectWithTimeout(const std::string& host, uint16_t port);
  void SupervisorLoop(Link* link);
  /// Drains link->queue/control onto fd until error/stale/stop. Returns the
  /// close reason for stats.
  enum class CloseReason { kStop, kError, kStale, kWriteDeadline, kReset };
  CloseReason WriterLoop(Link* link, int fd);
  void ReaderLoop(Link* link, int fd);
  bool ReadFully(int fd, char* buffer, size_t n);
  /// False on error or deadline; *timed_out distinguishes the two.
  bool WriteFully(int fd, const char* data, size_t n, bool* timed_out);
  /// Sleeps the current (jittered, then doubled) backoff; wakes early on
  /// stop/shutdown.
  void SleepBackoff(Link* link, int64_t* backoff_millis);

  // Frame dispatch.
  void HandleIncoming(Link* link, Message message);
  /// Queues onto the local endpoint for message->to, consuming *message;
  /// false (message untouched) if no such endpoint exists.
  bool DeliverLocal(Message* message);
  void EndpointWorkerLoop(Endpoint* endpoint);
  void QueueControl(Link* link, const Message& message);
  void EnqueueOnLink(Link* link, Message message);

  // Routing.
  Link* FindSupervised(const std::string& peer_id);
  void LearnRoute(const std::string& from, Link* link);
  void DropRoutes(Link* link);

  void NotifyPeerWatchers(const std::string& peer, bool up);
  void ReapInboundLocked() REQUIRES(inbound_mu_);
  void CloseLinkSocket(Link* link);

  TcpNetworkOptions options_;
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_{false};
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;

  std::vector<std::unique_ptr<Link>> supervised_;  // fixed after Start

  mutable Mutex endpoints_mu_;
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_
      GUARDED_BY(endpoints_mu_);

  mutable Mutex inbound_mu_;
  std::vector<std::unique_ptr<Link>> inbound_ GUARDED_BY(inbound_mu_);

  mutable Mutex routes_mu_;
  std::map<std::string, Link*> routes_ GUARDED_BY(routes_mu_);

  mutable Mutex watchers_mu_;
  uint64_t next_watcher_token_ GUARDED_BY(watchers_mu_) = 1;
  std::map<uint64_t, PeerWatcher> watchers_ GUARDED_BY(watchers_mu_);

  mutable Mutex stats_mu_;  // leaf lock: never hold while taking another
  NetworkStats stats_ GUARDED_BY(stats_mu_);
  TcpTransportStats tcp_stats_ GUARDED_BY(stats_mu_);
  Random backoff_rng_ GUARDED_BY(stats_mu_);
};

}  // namespace sebdb
