#include "network/sim_network.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"

namespace sebdb {

namespace {

bool IsGossip(const Message& message) {
  return message.type.rfind("gossip.", 0) == 0;
}

}  // namespace

SimNetwork::SimNetwork(const SimNetworkOptions& options)
    : options_(options), rng_(options.seed) {}

SimNetwork::~SimNetwork() { Shutdown(); }

int64_t SimNetwork::NowMicros() const { return SteadyNowMicros(); }

Status SimNetwork::Register(const std::string& node_id, Handler handler) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return Status::Aborted("network shut down");
    if (endpoints_.contains(node_id)) {
      return Status::InvalidArgument("node already registered: " + node_id);
    }
    auto endpoint = std::make_unique<Endpoint>(std::move(handler));
    Endpoint* ep = endpoint.get();
    endpoints_[node_id] = std::move(endpoint);
    ep->worker = std::thread([this, node_id, ep] { WorkerLoop(node_id, ep); });
  }
  NotifyPeerWatchers(node_id, /*up=*/true);
  return Status::OK();
}

Status SimNetwork::Unregister(const std::string& node_id) {
  std::unique_ptr<Endpoint> endpoint;
  {
    MutexLock lock(&mu_);
    auto it = endpoints_.find(node_id);
    if (it == endpoints_.end()) {
      return Status::NotFound("node not registered: " + node_id);
    }
    endpoint = std::move(it->second);
    endpoints_.erase(it);
    endpoint->stop = true;
    endpoint->cv.NotifyAll();
  }
  if (endpoint->worker.joinable()) endpoint->worker.join();
  NotifyPeerWatchers(node_id, /*up=*/false);
  return Status::OK();
}

void SimNetwork::NotifyPeerWatchers(const std::string& peer, bool up) {
  std::vector<PeerWatcher> watchers;
  {
    MutexLock lock(&mu_);
    watchers.reserve(watchers_.size());
    for (const auto& [token, watcher] : watchers_) watchers.push_back(watcher);
  }
  for (const auto& watcher : watchers) watcher(peer, up);
}

uint64_t SimNetwork::AddPeerWatcher(PeerWatcher watcher) {
  MutexLock lock(&mu_);
  const uint64_t token = next_watcher_token_++;
  watchers_[token] = std::move(watcher);
  return token;
}

void SimNetwork::RemovePeerWatcher(uint64_t token) {
  MutexLock lock(&mu_);
  watchers_.erase(token);
}

void SimNetwork::Send(Message message) {
  MutexLock lock(&mu_);
  if (shutdown_) return;
  stats_.messages_sent++;
  stats_.bytes_sent += message.ByteSize();

  auto it = endpoints_.find(message.to);
  if (it == endpoints_.end()) {
    stats_.messages_dropped++;
    stats_.unreachable_drops++;
    return;
  }
  auto link = std::minmax(message.from, message.to);
  if (down_links_.contains({link.first, link.second})) {
    stats_.messages_dropped++;
    stats_.link_drops++;
    return;
  }
  if (options_.drop_rate > 0 && rng_.NextDouble() < options_.drop_rate) {
    stats_.messages_dropped++;
    stats_.random_drops++;
    return;
  }

  int64_t latency = options_.min_latency_micros;
  if (options_.max_latency_micros > options_.min_latency_micros) {
    latency += static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(
        options_.max_latency_micros - options_.min_latency_micros + 1)));
  }
  int64_t deliver_at = NowMicros() + latency;
  Endpoint* ep = it->second.get();
  bool is_gossip = IsGossip(message);
  // Keep the queue ordered by delivery time (stable for equal times).
  auto pos = std::upper_bound(
      ep->queue.begin(), ep->queue.end(), deliver_at,
      [](int64_t t, const auto& entry) { return t < entry.first; });
  ep->queue.insert(pos, {deliver_at, std::move(message)});
  if (is_gossip) ep->gossip_queued++;

  // Queue bounds, oldest-first shedding. Gossip has its own (tighter) cap:
  // anti-entropy re-requests anything shed, so it goes first.
  if (options_.max_gossip_queue_per_endpoint > 0 &&
      ep->gossip_queued > options_.max_gossip_queue_per_endpoint) {
    for (auto entry = ep->queue.begin(); entry != ep->queue.end(); ++entry) {
      if (IsGossip(entry->second)) {
        ep->queue.erase(entry);
        ep->gossip_queued--;
        stats_.messages_dropped++;
        stats_.overflow_drops++;
        break;
      }
    }
  }
  if (options_.max_queue_per_endpoint > 0 &&
      ep->queue.size() > options_.max_queue_per_endpoint) {
    if (IsGossip(ep->queue.front().second)) ep->gossip_queued--;
    ep->queue.pop_front();
    stats_.messages_dropped++;
    stats_.overflow_drops++;
  }
  ep->cv.NotifyAll();
}

void SimNetwork::Broadcast(const std::string& from, const std::string& type,
                           const std::string& payload) {
  std::vector<std::string> targets;
  {
    MutexLock lock(&mu_);
    for (const auto& [node_id, endpoint] : endpoints_) {
      if (node_id != from) targets.push_back(node_id);
    }
  }
  for (const auto& target : targets) {
    Send(Message{type, from, target, payload});
  }
}

std::vector<std::string> SimNetwork::Nodes() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [node_id, endpoint] : endpoints_) out.push_back(node_id);
  std::sort(out.begin(), out.end());
  return out;
}

void SimNetwork::SetLinkDown(const std::string& a, const std::string& b,
                             bool down) {
  MutexLock lock(&mu_);
  auto link = std::minmax(a, b);
  if (down) {
    down_links_.insert({link.first, link.second});
  } else {
    down_links_.erase({link.first, link.second});
  }
}

void SimNetwork::WorkerLoop(const std::string& node_id, Endpoint* endpoint) {
  (void)node_id;
  mu_.Lock();
  while (!endpoint->stop) {
    if (endpoint->queue.empty()) {
      while (!endpoint->stop && endpoint->queue.empty()) {
        endpoint->cv.Wait(mu_);
      }
      continue;
    }
    int64_t deliver_at = endpoint->queue.front().first;
    int64_t now = NowMicros();
    if (deliver_at > now) {
      endpoint->cv.WaitFor(mu_, std::chrono::microseconds(deliver_at - now));
      continue;
    }
    Message message = std::move(endpoint->queue.front().second);
    endpoint->queue.pop_front();
    if (IsGossip(message)) endpoint->gossip_queued--;
    endpoint->busy = true;
    Handler handler = endpoint->handler;
    stats_.messages_delivered++;
    mu_.Unlock();
    handler(message);
    mu_.Lock();
    endpoint->busy = false;
    endpoint->cv.NotifyAll();
  }
  mu_.Unlock();
}

void SimNetwork::DrainAll() {
  mu_.Lock();
  while (true) {
    bool idle = true;
    for (const auto& [node_id, endpoint] : endpoints_) {
      if (!endpoint->queue.empty() || endpoint->busy) {
        idle = false;
        break;
      }
    }
    if (idle) break;
    mu_.Unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    mu_.Lock();
  }
  mu_.Unlock();
}

NetworkStats SimNetwork::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void SimNetwork::Shutdown() {
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [node_id, endpoint] : endpoints_) {
      endpoint->stop = true;
      endpoint->cv.NotifyAll();
      endpoints.push_back(std::move(endpoint));
    }
    endpoints_.clear();
  }
  for (auto& endpoint : endpoints) {
    if (endpoint->worker.joinable()) endpoint->worker.join();
  }
}

}  // namespace sebdb
