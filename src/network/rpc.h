// Request/response RPC on top of the simulated network. The paper's thin
// clients are remote processes that "send a query to a randomly selected
// full node" (§VI); this layer carries those calls over the wire instead of
// via in-process pointers.
//
// Wire format: an "rpc.request" message whose payload is
//   [request_id u64][budget_millis u64][method lp][body lp]
// answered by an "rpc.response" to the caller:
//   [request_id u64][status_code u8][status_msg lp][body lp][retry_after vi]
//
// `budget_millis` is the client's REMAINING time budget at send (0 = none),
// never an absolute instant: steady clocks are process-local, so an
// absolute deadline is meaningless the moment the request crosses a
// process boundary (TcpNetwork). The server re-anchors the budget against
// its own clock on arrival and drops requests whose re-anchored deadline
// passes while queued, instead of wasting execution on answers nobody
// waits for. `retry_after` carries the server-driven backoff hint of
// ResourceExhausted rejections; RetryPolicy honors it in place of the
// client-side exponential backoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "network/network.h"

namespace sebdb {

/// Server-side method: consumes a serialized request body, produces a
/// serialized response body.
using RpcMethod =
    std::function<Status(const Slice& request, std::string* response)>;

/// Server-side queue bounds. With workers = 0 (the default) requests
/// execute inline on the network delivery thread, unqueued — the historical
/// behavior. With workers > 0, requests land in a bounded queue drained by
/// a worker pool; when the queue is full new requests are rejected with
/// ResourceExhausted carrying a retry_after hint instead of growing the
/// queue without bound.
struct RpcServerOptions {
  int workers = 0;
  size_t max_queue = 256;
  /// Base for the retry_after hint attached to queue-full rejections.
  int64_t retry_after_base_millis = 20;
};

struct RpcServerStats {
  uint64_t received = 0;
  uint64_t executed = 0;
  uint64_t rejected_queue_full = 0;  // shed with ResourceExhausted
  /// Client budget (re-anchored on arrival) ran out while queued. Arrival
  /// itself can never be expired: the budget starts counting here.
  uint64_t expired_in_queue = 0;
};

/// Dispatch table a node plugs into its network handler.
class RpcDispatcher {
 public:
  RpcDispatcher() = default;
  ~RpcDispatcher();
  RpcDispatcher(const RpcDispatcher&) = delete;
  RpcDispatcher& operator=(const RpcDispatcher&) = delete;

  /// Registration must complete before messages arrive (the worker pool
  /// reads the table without a lock).
  void RegisterMethod(const std::string& name, RpcMethod method);

  /// Enables the bounded-queue worker mode. No-op when
  /// options.workers == 0.
  void Start(const RpcServerOptions& options);
  /// Drains the queue (pending requests are answered Aborted) and joins
  /// the workers. Idempotent.
  void Stop();

  /// Handles an "rpc.request" message and replies via `network` as
  /// `self_id`. Unknown methods answer with NotFound; expired deadlines
  /// answer with TimedOut before execution; a full queue answers with
  /// ResourceExhausted plus a retry_after hint.
  void HandleMessage(Network* network, const std::string& self_id,
                     const Message& message);

  RpcServerStats stats() const;

  static constexpr const char* kRequestType = "rpc.request";
  static constexpr const char* kResponseType = "rpc.response";

 private:
  struct QueuedRequest {
    Network* network = nullptr;
    std::string self_id;
    std::string reply_to;
    uint64_t request_id = 0;
    /// Local steady-clock deadline, re-anchored from the wire budget at
    /// arrival (0 = none).
    int64_t deadline_millis = 0;
    std::string method;
    std::string body;
  };

  /// Looks up and runs the method, then sends the response.
  void Execute(Network* network, const std::string& self_id,
               const std::string& reply_to, uint64_t request_id,
               const std::string& method, const Slice& body);
  static void Reply(Network* network, const std::string& self_id,
                    const std::string& reply_to, uint64_t request_id,
                    const Status& status, const std::string& body);
  void WorkerLoop();

  std::map<std::string, RpcMethod> methods_;
  RpcServerOptions options_;

  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  std::deque<QueuedRequest> queue_ GUARDED_BY(mu_);
  RpcServerStats stats_ GUARDED_BY(mu_);
  CondVar cv_;
  std::vector<std::thread> workers_;
};

/// Opt-in retry for RpcClient::Call: exponential backoff with jitter,
/// per-attempt deadlines, and an overall deadline. The default policy
/// (max_attempts = 1) performs no retries, so zero-retry callers are
/// unchanged. Only transient failures — TimedOut, IOError, Busy,
/// ResourceExhausted, Unavailable — are retried; semantic errors (NotFound,
/// InvalidArgument, Corruption, …) surface immediately. When a rejection
/// carries a server retry_after_millis hint, the hint replaces the
/// client-side backoff for that sleep (still capped by the overall
/// deadline) — the server knows its own drain rate better than the client.
struct RetryPolicy {
  int max_attempts = 1;
  /// Deadline applied to each attempt.
  int64_t attempt_timeout_millis = 1000;
  /// Budget across all attempts and backoff sleeps; 0 = unlimited.
  int64_t overall_deadline_millis = 0;
  int64_t initial_backoff_millis = 10;
  int64_t max_backoff_millis = 1000;
  double backoff_multiplier = 2.0;
  /// Each sleep is scaled by a uniform factor in [1 - jitter, 1 + jitter]
  /// so retrying clients do not stampede in lockstep.
  double jitter = 0.5;

  static RetryPolicy WithAttempts(int attempts) {
    RetryPolicy policy;
    policy.max_attempts = attempts;
    return policy;
  }
};

/// Blocking client: registers itself on the network under `client_id`,
/// correlates responses by request id. Subscribes to the network's peer
/// watcher: when the connection to a server is lost, every call pending
/// against it fails immediately with Unavailable (retryable) instead of
/// hanging until its deadline — the reconnect supervisor owns the link,
/// RetryPolicy owns the retry.
class RpcClient {
 public:
  RpcClient(std::string client_id, Network* network);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Synchronous call; the server's Status is propagated (TimedOut when no
  /// response arrives in time — e.g. the node is down or partitioned).
  Status Call(const std::string& server, const std::string& method,
              const std::string& request, std::string* response,
              int64_t timeout_millis = 5000);

  /// Synchronous call governed by a RetryPolicy: transient failures are
  /// retried with exponential backoff + jitter until the attempts or the
  /// overall deadline run out. The last attempt's status is returned.
  Status Call(const std::string& server, const std::string& method,
              const std::string& request, std::string* response,
              const RetryPolicy& policy);

  /// True for failures worth retrying (lost/timed-out messages, transient
  /// I/O); false for semantic errors a retry cannot fix.
  static bool IsRetryable(const Status& status);

  /// Cumulative number of retry attempts performed (excludes first tries).
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  const std::string& client_id() const { return client_id_; }

 private:
  struct Pending {
    std::string server;  // fail-fast matching on peer-down
    bool done = false;
    Status status;
    std::string body;
  };
  void OnResponse(const Message& message);
  /// Peer-watcher callback: fails every pending call against `peer`.
  void OnPeerDown(const std::string& peer);

  const std::string client_id_;
  Network* network_;
  uint64_t watcher_token_ = 0;
  Mutex mu_;
  CondVar cv_;
  uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, Pending> pending_ GUARDED_BY(mu_);
  Random jitter_rng_ GUARDED_BY(mu_){0x5ebdbu};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace sebdb
