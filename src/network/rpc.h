// Request/response RPC on top of the simulated network. The paper's thin
// clients are remote processes that "send a query to a randomly selected
// full node" (§VI); this layer carries those calls over the wire instead of
// via in-process pointers.
//
// Wire format: an "rpc.request" message whose payload is
//   [request_id u64][method lp][body lp]
// answered by an "rpc.response" to the caller:
//   [request_id u64][status_code u8][status_msg lp][body lp]
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "network/sim_network.h"

namespace sebdb {

/// Server-side method: consumes a serialized request body, produces a
/// serialized response body.
using RpcMethod =
    std::function<Status(const Slice& request, std::string* response)>;

/// Dispatch table a node plugs into its network handler.
class RpcDispatcher {
 public:
  void RegisterMethod(const std::string& name, RpcMethod method);

  /// Handles an "rpc.request" message and replies via `network` as
  /// `self_id`. Unknown methods answer with NotFound.
  void HandleMessage(SimNetwork* network, const std::string& self_id,
                     const Message& message) const;

  static constexpr const char* kRequestType = "rpc.request";
  static constexpr const char* kResponseType = "rpc.response";

 private:
  std::map<std::string, RpcMethod> methods_;
};

/// Blocking client: registers itself on the network under `client_id`,
/// correlates responses by request id.
class RpcClient {
 public:
  RpcClient(std::string client_id, SimNetwork* network);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Synchronous call; the server's Status is propagated (TimedOut when no
  /// response arrives in time — e.g. the node is down or partitioned).
  Status Call(const std::string& server, const std::string& method,
              const std::string& request, std::string* response,
              int64_t timeout_millis = 5000);

  const std::string& client_id() const { return client_id_; }

 private:
  struct Pending {
    bool done = false;
    Status status;
    std::string body;
  };
  void OnResponse(const Message& message);

  const std::string client_id_;
  SimNetwork* network_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Pending> pending_;
};

}  // namespace sebdb
