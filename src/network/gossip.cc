#include "network/gossip.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"

namespace sebdb {

namespace {

constexpr char kDigestType[] = "gossip.digest";
constexpr char kPullType[] = "gossip.pull";
constexpr char kBlocksType[] = "gossip.blocks";

}  // namespace

GossipAgent::GossipAgent(std::string node_id, Network* network,
                         GossipDelegate* delegate,
                         std::vector<std::string> peers,
                         const GossipOptions& options)
    : node_id_(std::move(node_id)),
      network_(network),
      delegate_(delegate),
      peers_(std::move(peers)),
      options_(options),
      rng_(options.seed ^ std::hash<std::string>{}(node_id_)) {}

GossipAgent::~GossipAgent() { Stop(); }

void GossipAgent::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  ticker_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      RunRound();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.interval_millis));
    }
  });
}

void GossipAgent::Stop() {
  if (!running_.exchange(false)) {
    if (ticker_.joinable()) ticker_.join();
    return;
  }
  if (ticker_.joinable()) ticker_.join();
}

void GossipAgent::RunRound() {
  if (peers_.empty()) return;
  MaybeRetryPull();
  int fanout = std::min<int>(options_.fanout, static_cast<int>(peers_.size()));
  // Draw the round's targets under pull_mu_: the RNG is shared with
  // MaybeRetryPull, and tests drive RunRound concurrently with the ticker.
  std::vector<std::string> targets;
  {
    MutexLock lock(&pull_mu_);
    targets.reserve(fanout);
    for (int i = 0; i < fanout; i++) {
      targets.push_back(peers_[rng_.Uniform(peers_.size())]);
    }
  }
  for (const auto& target : targets) SendDigest(target);
}

void GossipAgent::MaybeRetryPull() {
  std::string peer;
  {
    MutexLock lock(&pull_mu_);
    if (pull_target_height_ == 0) return;
    uint64_t my_height = delegate_->ChainHeight();
    if (my_height >= pull_target_height_) {
      // Caught up: disarm.
      pull_target_height_ = 0;
      pull_backoff_millis_ = 0;
      pull_deadline_millis_ = 0;
      return;
    }
    if (SteadyNowMillis() < pull_deadline_millis_) return;
    pull_backoff_millis_ =
        std::min(pull_backoff_millis_ * 2, options_.pull_retry_max_millis);
    pull_deadline_millis_ =
        SteadyNowMillis() + JitteredWindow(pull_backoff_millis_);
    pull_retries_.fetch_add(1, std::memory_order_relaxed);
    peer = peers_[rng_.Uniform(peers_.size())];
  }
  SendPull(peer);
}

// Pure doubling re-arms every lagging peer on the same schedule: after a
// partition heals they all discover the gap in the same round and then
// re-pull in synchronized bursts forever. Drawing each window uniformly
// from [window/2, window] keeps the expected backoff shape while spreading
// the retry instants.
int64_t GossipAgent::JitteredWindow(int64_t window) {
  if (window <= 1) return window;
  const int64_t half = window / 2;
  return half + static_cast<int64_t>(
                    rng_.Uniform(static_cast<uint64_t>(window - half) + 1));
}

void GossipAgent::SendDigest(const std::string& peer) {
  std::string payload;
  PutVarint64(&payload, delegate_->ChainHeight());
  network_->Send(Message{kDigestType, node_id_, peer, payload});
}

void GossipAgent::SendPull(const std::string& peer) {
  std::string payload;
  PutVarint64(&payload, delegate_->ChainHeight());
  network_->Send(Message{kPullType, node_id_, peer, payload});
}

void GossipAgent::HandleMessage(const Message& message) {
  if (message.type == kDigestType) {
    OnDigest(message);
  } else if (message.type == kPullType) {
    OnPull(message);
  } else if (message.type == kBlocksType) {
    OnBlocks(message);
  }
}

void GossipAgent::OnDigest(const Message& message) {
  Slice input(message.payload);
  uint64_t peer_height;
  if (!GetVarint64(&input, &peer_height)) return;
  delegate_->OnPeerAdvertisedHeight(message.from, peer_height);
  uint64_t my_height = delegate_->ChainHeight();
  if (peer_height > my_height) {
    // Behind: pull from our height onward, and arm the retry timer so a
    // lost pull or response gets re-issued by a later round.
    {
      MutexLock lock(&pull_mu_);
      if (peer_height > pull_target_height_) {
        pull_target_height_ = peer_height;
      }
      if (pull_backoff_millis_ == 0 || pull_deadline_millis_ == 0) {
        pull_backoff_millis_ = options_.pull_retry_initial_millis;
        pull_deadline_millis_ =
            SteadyNowMillis() + JitteredWindow(pull_backoff_millis_);
      }
      pull_last_height_ = my_height;
    }
    std::string payload;
    PutVarint64(&payload, my_height);
    network_->Send(Message{kPullType, node_id_, message.from, payload});
  } else if (peer_height < my_height) {
    // Peer is behind: let it know so it pulls from us.
    SendDigest(message.from);
  }
}

void GossipAgent::OnPull(const Message& message) {
  Slice input(message.payload);
  uint64_t from_height;
  if (!GetVarint64(&input, &from_height)) return;
  uint64_t my_height = delegate_->ChainHeight();
  if (from_height >= my_height) return;

  std::string payload;
  uint32_t count = 0;
  std::string body;
  for (uint64_t h = from_height;
       h < my_height && count < options_.max_blocks_per_pull; h++, count++) {
    std::string record;
    if (!delegate_->GetBlockRecord(h, &record).ok()) break;
    PutVarint64(&body, h);
    PutLengthPrefixed(&body, record);
  }
  PutVarint32(&payload, count);
  payload.append(body);
  network_->Send(Message{kBlocksType, node_id_, message.from, payload});
}

void GossipAgent::OnBlocks(const Message& message) {
  Slice input(message.payload);
  uint32_t count;
  if (!GetVarint32(&input, &count)) return;
  for (uint32_t i = 0; i < count; i++) {
    uint64_t height;
    Slice record;
    if (!GetVarint64(&input, &height) || !GetLengthPrefixed(&input, &record)) {
      return;
    }
    // Apply in order; stale or future blocks are the delegate's call.
    delegate_->ApplyBlockRecord(height, record.ToString());
  }
  {
    MutexLock lock(&pull_mu_);
    if (pull_target_height_ != 0) {
      uint64_t my_height = delegate_->ChainHeight();
      if (my_height >= pull_target_height_) {
        // Caught up: disarm.
        pull_target_height_ = 0;
        pull_backoff_millis_ = 0;
        pull_deadline_millis_ = 0;
      } else if (my_height > pull_last_height_) {
        // Progress: restart the backoff window from the initial value.
        pull_last_height_ = my_height;
        pull_backoff_millis_ = options_.pull_retry_initial_millis;
        pull_deadline_millis_ =
            SteadyNowMillis() + JitteredWindow(pull_backoff_millis_);
      }
    }
  }
  // If we may still be behind, keep the exchange going.
  SendDigest(message.from);
}

void GossipAgent::PushBlock(BlockId height, const std::string& record) {
  std::string payload;
  PutVarint32(&payload, 1);
  PutVarint64(&payload, height);
  PutLengthPrefixed(&payload, record);
  for (const auto& peer : peers_) {
    network_->Send(Message{kBlocksType, node_id_, peer, payload});
  }
}

}  // namespace sebdb
