// Wire framing for the TCP transport (DESIGN.md §15). Every message crosses
// the socket as one length-prefixed, CRC-guarded frame:
//
//   [magic u32][version u8][payload_len u32][payload_crc u32][payload]
//   payload = [type lp][from lp][to lp][body lp]
//
// Decoding is strict reject-don't-crash: bad magic, unknown version, a
// length beyond the negotiated cap, a CRC mismatch, an unknown message-type
// prefix, oversized/empty endpoint ids, or trailing bytes all fail with
// Corruption and never allocate more than the declared (capped) length. A
// hostile or corrupt peer can cost us its connection, never the process.
// The codec is pure (no sockets) so fuzz_tcp_frame drives it directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/slice.h"
#include "common/status.h"
#include "network/message.h"

namespace sebdb {

/// "SBDB" little-endian.
constexpr uint32_t kFrameMagic = 0x42424453u;
constexpr uint8_t kFrameVersion = 1;
/// magic(4) + version(1) + payload_len(4) + payload_crc(4).
constexpr size_t kFrameHeaderBytes = 13;
/// Default cap on a frame's payload. Checkpoint transfer chunks and pulled
/// block batches are the largest legitimate frames; both are built well
/// below this.
constexpr size_t kDefaultMaxFrameBytes = 64u << 20;
/// Endpoint ids ("from"/"to") are short names, never bulk data.
constexpr size_t kMaxEndpointIdBytes = 256;

struct FrameHeader {
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// True iff `type` starts with one of the protocol prefixes this codebase
/// speaks ("gossip.", "repair.", "rpc.", "thin.", "kafka.", "pbft.", "tm.",
/// "net.") and is short enough to be a real type tag. The transport drops
/// anything else before it reaches a handler.
bool IsAllowedMessageType(std::string_view type);

/// Appends one complete frame for `message` to `dst`.
void EncodeFrame(const Message& message, std::string* dst);

/// Validates the fixed-size header at `data` (must hold kFrameHeaderBytes).
/// On OK, *out carries the payload length (already checked against
/// `max_frame_bytes`) and the expected CRC.
Status DecodeFrameHeader(const char* data, size_t max_frame_bytes,
                         FrameHeader* out);

/// Validates `payload` against `expected_crc` and parses it into *out:
/// allowlisted type, non-empty bounded from/to, no trailing bytes.
Status DecodeFramePayload(const Slice& payload, uint32_t expected_crc,
                          Message* out);

/// Whole-buffer convenience (fuzz harness, tests): consumes exactly one
/// frame from *input or fails without side effects on *out's validity.
Status DecodeFrame(Slice* input, size_t max_frame_bytes, Message* out);

}  // namespace sebdb
