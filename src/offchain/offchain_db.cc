#include "offchain/offchain_db.h"

#include <algorithm>

namespace sebdb {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

int OffchainTable::ColumnIndex(std::string_view column) const {
  std::string lower = ToLower(column);
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == lower) return static_cast<int>(i);
  }
  return -1;
}

Status OffchainTable::Insert(OffchainRow row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        name_ + " (" + std::to_string(columns_.size()) + " columns)");
  }
  for (size_t i = 0; i < row.size(); i++) {
    if (!row[i].is_null() && row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "type mismatch for column " + columns_[i].name + ": expected " +
          ValueTypeName(columns_[i].type) + ", got " +
          ValueTypeName(row[i].type()));
    }
  }
  size_t row_id = rows_.size();
  for (auto& [column, tree] : indexes_) {
    int ci = ColumnIndex(column);
    tree->Insert(row[ci], row_id);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<size_t> OffchainTable::Scan(
    const std::function<bool(const OffchainRow&)>& pred) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rows_.size(); i++) {
    if (pred(rows_[i])) out.push_back(i);
  }
  return out;
}

Status OffchainTable::CreateIndex(std::string_view column) {
  int ci = ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no column " + std::string(column));
  auto tree = std::make_unique<ColumnIndexTree>();
  for (size_t i = 0; i < rows_.size(); i++) {
    tree->Insert(rows_[i][ci], i);
  }
  indexes_[ToLower(column)] = std::move(tree);
  return Status::OK();
}

bool OffchainTable::HasIndex(std::string_view column) const {
  return indexes_.contains(ToLower(column));
}

Status OffchainTable::SortedBy(std::string_view column,
                               std::vector<size_t>* out) const {
  int ci = ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no column " + std::string(column));
  out->clear();
  auto it = indexes_.find(ToLower(column));
  if (it != indexes_.end()) {
    for (auto iter = it->second->Begin(); iter.Valid(); iter.Next()) {
      out->push_back(iter.value());
    }
    return Status::OK();
  }
  out->resize(rows_.size());
  for (size_t i = 0; i < rows_.size(); i++) (*out)[i] = i;
  std::stable_sort(out->begin(), out->end(), [&](size_t a, size_t b) {
    return rows_[a][ci].CompareTotal(rows_[b][ci]) < 0;
  });
  return Status::OK();
}

Status OffchainTable::MinMax(std::string_view column, Value* min,
                             Value* max) const {
  int ci = ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no column " + std::string(column));
  if (rows_.empty()) return Status::NotFound("table " + name_ + " is empty");
  *min = rows_[0][ci];
  *max = rows_[0][ci];
  for (const auto& row : rows_) {
    if (row[ci].CompareTotal(*min) < 0) *min = row[ci];
    if (row[ci].CompareTotal(*max) > 0) *max = row[ci];
  }
  return Status::OK();
}

Status OffchainTable::Distinct(std::string_view column,
                               std::vector<Value>* out) const {
  int ci = ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no column " + std::string(column));
  std::vector<Value> values;
  values.reserve(rows_.size());
  for (const auto& row : rows_) values.push_back(row[ci]);
  std::sort(values.begin(), values.end(), [](const Value& a, const Value& b) {
    return a.CompareTotal(b) < 0;
  });
  values.erase(std::unique(values.begin(), values.end(),
                           [](const Value& a, const Value& b) {
                             return a.CompareTotal(b) == 0;
                           }),
               values.end());
  *out = std::move(values);
  return Status::OK();
}

Status OffchainTable::Lookup(std::string_view column, const Value& v,
                             std::vector<size_t>* out) const {
  int ci = ColumnIndex(column);
  if (ci < 0) return Status::NotFound("no column " + std::string(column));
  auto it = indexes_.find(ToLower(column));
  if (it != indexes_.end()) {
    for (auto iter = it->second->SeekGE(v);
         iter.Valid() && iter.key().CompareTotal(v) == 0; iter.Next()) {
      out->push_back(iter.value());
    }
    return Status::OK();
  }
  for (size_t i = 0; i < rows_.size(); i++) {
    if (rows_[i][ci].CompareTotal(v) == 0) out->push_back(i);
  }
  return Status::OK();
}

Status OffchainDb::CreateTable(const std::string& name,
                               std::vector<ColumnDef> columns) {
  MutexLock lock(&mu_);
  std::string lower = ToLower(name);
  if (tables_.contains(lower)) {
    return Status::InvalidArgument("off-chain table exists: " + lower);
  }
  for (auto& col : columns) col.name = ToLower(col.name);
  tables_[lower] = std::make_unique<OffchainTable>(lower, std::move(columns));
  return Status::OK();
}

Status OffchainDb::DropTable(const std::string& name) {
  MutexLock lock(&mu_);
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("no off-chain table " + name);
  }
  return Status::OK();
}

OffchainTable* OffchainDb::GetTable(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const OffchainTable* OffchainDb::GetTable(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status OffchainDb::Insert(const std::string& table, OffchainRow row) {
  OffchainTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no off-chain table " + table);
  return t->Insert(std::move(row));
}

std::vector<std::string> OffchainDb::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status LocalOffchainConnector::TableColumns(const std::string& table,
                                            std::vector<ColumnDef>* out) {
  const OffchainTable* t = db_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no off-chain table " + table);
  *out = t->columns();
  return Status::OK();
}

Status LocalOffchainConnector::FetchAll(const std::string& table,
                                        std::vector<OffchainRow>* out) {
  const OffchainTable* t = db_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no off-chain table " + table);
  out->clear();
  out->reserve(t->num_rows());
  for (size_t i = 0; i < t->num_rows(); i++) out->push_back(t->row(i));
  return Status::OK();
}

Status LocalOffchainConnector::FetchSortedBy(const std::string& table,
                                             const std::string& column,
                                             std::vector<OffchainRow>* out) {
  const OffchainTable* t = db_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no off-chain table " + table);
  std::vector<size_t> order;
  Status s = t->SortedBy(column, &order);
  if (!s.ok()) return s;
  out->clear();
  out->reserve(order.size());
  for (size_t i : order) out->push_back(t->row(i));
  return Status::OK();
}

Status LocalOffchainConnector::MinMax(const std::string& table,
                                      const std::string& column, Value* min,
                                      Value* max) {
  const OffchainTable* t = db_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no off-chain table " + table);
  return t->MinMax(column, min, max);
}

Status LocalOffchainConnector::Distinct(const std::string& table,
                                        const std::string& column,
                                        std::vector<Value>* out) {
  const OffchainTable* t = db_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no off-chain table " + table);
  return t->Distinct(column, out);
}

}  // namespace sebdb
