// Off-chain relational store (paper §IV-A): private per-site data managed by
// a local RDBMS and accessed through a connector interface (the paper uses
// MySQL via ODBC/JDBC; we substitute an in-process engine exposing the same
// operations the on–off-chain join needs — predicate scans, sorted retrieval
// on the join attribute, min/max and DISTINCT).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/bptree.h"
#include "types/schema.h"
#include "types/value.h"

namespace sebdb {

/// One off-chain row: values positionally matched to the table's columns.
using OffchainRow = std::vector<Value>;

class OffchainTable {
 public:
  OffchainTable(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int ColumnIndex(std::string_view column) const;
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row after arity and type checking (NULLs always accepted).
  Status Insert(OffchainRow row);

  const OffchainRow& row(size_t i) const { return rows_[i]; }

  /// Row indices matching a predicate (full scan).
  std::vector<size_t> Scan(
      const std::function<bool(const OffchainRow&)>& pred) const;

  /// Builds (or rebuilds) a B+-tree index on a column; speeds up
  /// FetchSortedBy and point lookups.
  Status CreateIndex(std::string_view column);
  bool HasIndex(std::string_view column) const;

  /// Row indices ordered by the column's value (uses the index when
  /// present, otherwise sorts). The on–off-chain join consumes this: its
  /// sort-merge pass needs off-chain rows sorted on the join attribute.
  Status SortedBy(std::string_view column, std::vector<size_t>* out) const;

  /// Minimum and maximum value of a column (NotFound for an empty table).
  Status MinMax(std::string_view column, Value* min, Value* max) const;

  /// Distinct values of a column, sorted ascending.
  Status Distinct(std::string_view column, std::vector<Value>* out) const;

  /// Row indices whose column equals v (index-backed when available).
  Status Lookup(std::string_view column, const Value& v,
                std::vector<size_t>* out) const;

 private:
  struct ValueCmp {
    bool operator()(const Value& a, const Value& b) const {
      return a.CompareTotal(b) < 0;
    }
  };
  using ColumnIndexTree = BpTree<Value, size_t, ValueCmp>;

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<OffchainRow> rows_;
  std::map<std::string, std::unique_ptr<ColumnIndexTree>> indexes_;
};

/// A named collection of off-chain tables — one per participant site in the
/// donation scenario (DonorInfo at the charity, DoneeInfo at the school...).
class OffchainDb {
 public:
  Status CreateTable(const std::string& name, std::vector<ColumnDef> columns);
  Status DropTable(const std::string& name);
  /// nullptr when absent.
  OffchainTable* GetTable(const std::string& name);
  const OffchainTable* GetTable(const std::string& name) const;
  Status Insert(const std::string& table, OffchainRow row);
  std::vector<std::string> TableNames() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<OffchainTable>> tables_
      GUARDED_BY(mu_);
};

/// The ODBC/JDBC stand-in: what the query processor sees of the local RDBMS.
class OffchainConnector {
 public:
  virtual ~OffchainConnector() = default;
  virtual Status TableColumns(const std::string& table,
                              std::vector<ColumnDef>* out) = 0;
  virtual Status FetchAll(const std::string& table,
                          std::vector<OffchainRow>* out) = 0;
  /// Rows sorted ascending by `column` (the join attribute).
  virtual Status FetchSortedBy(const std::string& table,
                               const std::string& column,
                               std::vector<OffchainRow>* out) = 0;
  virtual Status MinMax(const std::string& table, const std::string& column,
                        Value* min, Value* max) = 0;
  virtual Status Distinct(const std::string& table, const std::string& column,
                          std::vector<Value>* out) = 0;
};

class LocalOffchainConnector : public OffchainConnector {
 public:
  explicit LocalOffchainConnector(OffchainDb* db) : db_(db) {}

  Status TableColumns(const std::string& table,
                      std::vector<ColumnDef>* out) override;
  Status FetchAll(const std::string& table,
                  std::vector<OffchainRow>* out) override;
  Status FetchSortedBy(const std::string& table, const std::string& column,
                       std::vector<OffchainRow>* out) override;
  Status MinMax(const std::string& table, const std::string& column,
                Value* min, Value* max) override;
  Status Distinct(const std::string& table, const std::string& column,
                  std::vector<Value>* out) override;

 private:
  OffchainDb* db_;
};

}  // namespace sebdb
