#include "auth/mbtree.h"

#include <algorithm>

#include "common/coding.h"

namespace sebdb {

namespace {

constexpr uint8_t kLeafDomain = 0x00;
constexpr uint8_t kInternalDomain = 0x01;

Hash256 HashLeafRange(const std::vector<Hash256>& record_hashes, size_t start,
                      size_t count) {
  Sha256 ctx;
  ctx.Update(&kLeafDomain, 1);
  for (size_t i = 0; i < count; i++) {
    ctx.Update(record_hashes[start + i].bytes.data(), 32);
  }
  return ctx.Finish();
}

Hash256 HashChildren(const std::vector<Hash256>& child_hashes) {
  Sha256 ctx;
  ctx.Update(&kInternalDomain, 1);
  for (const auto& h : child_hashes) ctx.Update(h.bytes.data(), 32);
  return ctx.Finish();
}

}  // namespace

size_t VerificationObject::ByteSize() const {
  std::string enc;
  EncodeTo(&enc);
  return enc.size();
}

namespace {

void EncodeVoNode(const VerificationObject::Node& node, std::string* dst) {
  dst->push_back(static_cast<char>(node.kind));
  switch (node.kind) {
    case VerificationObject::Kind::kPruned:
      dst->append(reinterpret_cast<const char*>(node.hash.bytes.data()), 32);
      break;
    case VerificationObject::Kind::kLeaf:
      PutVarint32(dst, static_cast<uint32_t>(node.entries.size()));
      for (const auto& entry : node.entries) {
        dst->push_back(entry.full ? 1 : 0);
        if (entry.full) {
          PutLengthPrefixed(dst, entry.record);
        } else {
          dst->append(reinterpret_cast<const char*>(entry.hash.bytes.data()),
                      32);
        }
      }
      break;
    case VerificationObject::Kind::kInternal:
      PutVarint32(dst, static_cast<uint32_t>(node.children.size()));
      for (const auto& child : node.children) EncodeVoNode(child, dst);
      break;
  }
}

bool GetHash(Slice* input, Hash256* out) {
  if (input->size() < 32) return false;
  memcpy(out->bytes.data(), input->data(), 32);
  input->remove_prefix(32);
  return true;
}

Status DecodeVoNode(Slice* input, VerificationObject::Node* out, int depth) {
  if (depth > 64) return Status::Corruption("VO nesting too deep");
  if (input->empty()) return Status::Corruption("truncated VO");
  auto kind = static_cast<VerificationObject::Kind>((*input)[0]);
  input->remove_prefix(1);
  out->kind = kind;
  switch (kind) {
    case VerificationObject::Kind::kPruned:
      if (!GetHash(input, &out->hash)) return Status::Corruption("truncated VO hash");
      return Status::OK();
    case VerificationObject::Kind::kLeaf: {
      uint32_t n;
      if (!GetVarint32(input, &n)) return Status::Corruption("truncated VO leaf");
      out->entries.resize(n);
      for (auto& entry : out->entries) {
        if (input->empty()) return Status::Corruption("truncated VO entry");
        entry.full = (*input)[0] != 0;
        input->remove_prefix(1);
        if (entry.full) {
          Slice record;
          if (!GetLengthPrefixed(input, &record)) {
            return Status::Corruption("truncated VO record");
          }
          entry.record = record.ToString();
        } else if (!GetHash(input, &entry.hash)) {
          return Status::Corruption("truncated VO entry hash");
        }
      }
      return Status::OK();
    }
    case VerificationObject::Kind::kInternal: {
      uint32_t n;
      if (!GetVarint32(input, &n)) return Status::Corruption("truncated VO node");
      out->children.resize(n);
      for (auto& child : out->children) {
        Status s = DecodeVoNode(input, &child, depth + 1);
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown VO node kind");
}

}  // namespace

void VerificationObject::EncodeTo(std::string* dst) const {
  EncodeVoNode(root, dst);
}

Status VerificationObject::DecodeFrom(Slice* input, VerificationObject* out) {
  return DecodeVoNode(input, &out->root, 0);
}

std::unique_ptr<MbTree> MbTree::Build(std::vector<Entry> sorted_entries) {
  return Build(std::move(sorted_entries), Options());
}

std::unique_ptr<MbTree> MbTree::Build(std::vector<Entry> sorted_entries,
                                      const Options& options) {
  auto tree = std::unique_ptr<MbTree>(new MbTree());
  tree->options_ = options;
  const size_t fanout = std::max<size_t>(2, options.fanout);
  const size_t n = sorted_entries.size();
  tree->keys_.reserve(n);
  tree->records_.reserve(n);
  tree->record_hashes_.reserve(n);
  for (auto& entry : sorted_entries) {
    tree->record_hashes_.push_back(entry.has_record_hash
                                       ? entry.record_hash
                                       : Sha256::Digest(entry.record));
    tree->keys_.push_back(std::move(entry.key));
    tree->records_.push_back(std::move(entry.record));
  }

  // Leaf level.
  std::vector<std::unique_ptr<Node>> level;
  if (n == 0) {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->hash = HashLeafRange(tree->record_hashes_, 0, 0);
    level.push_back(std::move(leaf));
  } else {
    for (size_t i = 0; i < n; i += fanout) {
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      leaf->start = i;
      leaf->count = std::min(fanout, n - i);
      leaf->hash = HashLeafRange(tree->record_hashes_, leaf->start, leaf->count);
      level.push_back(std::move(leaf));
    }
  }
  tree->height_ = 1;

  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> up;
    for (size_t i = 0; i < level.size(); i += fanout) {
      auto internal = std::make_unique<Node>();
      size_t take = std::min(fanout, level.size() - i);
      std::vector<Hash256> child_hashes;
      internal->start = level[i]->start;
      for (size_t j = 0; j < take; j++) {
        internal->count += level[i + j]->count;
        child_hashes.push_back(level[i + j]->hash);
        internal->children.push_back(std::move(level[i + j]));
      }
      internal->hash = HashChildren(child_hashes);
      up.push_back(std::move(internal));
    }
    level = std::move(up);
    tree->height_++;
  }
  tree->root_ = std::move(level[0]);
  tree->root_hash_ = tree->root_->hash;
  return tree;
}

void MbTree::Range(const Value* lo, const Value* hi,
                   std::vector<size_t>* indices) const {
  auto cmp = [](const Value& a, const Value& b) {
    return a.CompareTotal(b) < 0;
  };
  size_t a = lo == nullptr
                 ? 0
                 : std::lower_bound(keys_.begin(), keys_.end(), *lo, cmp) -
                       keys_.begin();
  size_t b_end = hi == nullptr
                     ? keys_.size()
                     : std::upper_bound(keys_.begin(), keys_.end(), *hi, cmp) -
                           keys_.begin();
  for (size_t i = a; i < b_end; i++) indices->push_back(i);
}

VerificationObject::Node MbTree::ProveNode(const Node& node,
                                           size_t expose_start,
                                           size_t expose_end) const {
  VerificationObject::Node out;
  size_t node_end = node.start + node.count;
  bool overlaps = node.count > 0 && node.start <= expose_end &&
                  expose_start < node_end;
  if (!overlaps && !(node.count == 0 && keys_.empty())) {
    out.kind = VerificationObject::Kind::kPruned;
    out.hash = node.hash;
    return out;
  }
  if (node.leaf) {
    out.kind = VerificationObject::Kind::kLeaf;
    out.entries.reserve(node.count);
    for (size_t i = node.start; i < node_end; i++) {
      VerificationObject::LeafEntry entry;
      if (i >= expose_start && i <= expose_end) {
        entry.full = true;
        entry.record = records_[i];
      } else {
        entry.hash = record_hashes_[i];
      }
      out.entries.push_back(std::move(entry));
    }
    return out;
  }
  out.kind = VerificationObject::Kind::kInternal;
  out.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    out.children.push_back(ProveNode(*child, expose_start, expose_end));
  }
  return out;
}

Status MbTree::ProveRange(const Value* lo, const Value* hi,
                          VerificationObject* vo) const {
  const size_t n = keys_.size();
  if (n == 0) {
    // Whole (empty) tree is the proof of emptiness.
    vo->root = ProveNode(*root_, 0, 0);
    return Status::OK();
  }
  auto cmp = [](const Value& a, const Value& b) {
    return a.CompareTotal(b) < 0;
  };
  size_t a = lo == nullptr
                 ? 0
                 : std::lower_bound(keys_.begin(), keys_.end(), *lo, cmp) -
                       keys_.begin();
  size_t b_end = hi == nullptr
                     ? n
                     : std::upper_bound(keys_.begin(), keys_.end(), *hi, cmp) -
                           keys_.begin();
  size_t expose_start, expose_end;
  if (a >= b_end) {
    // Empty result: expose the two entries straddling the gap.
    expose_start = a > 0 ? a - 1 : 0;
    expose_end = std::min(a, n - 1);
  } else {
    expose_start = a > 0 ? a - 1 : 0;
    expose_end = b_end < n ? b_end : n - 1;  // b_end == index after last hit
  }
  vo->root = ProveNode(*root_, expose_start, expose_end);
  return Status::OK();
}

namespace {

struct SequenceItem {
  bool full = false;
  Value key;            // when full
  std::string record;   // when full
};

Status RebuildHash(const VerificationObject::Node& node,
                   const RecordKeyFn& key_of,
                   std::vector<SequenceItem>* sequence, Hash256* hash,
                   int depth) {
  if (depth > 64) return Status::VerificationFailed("VO nesting too deep");
  switch (node.kind) {
    case VerificationObject::Kind::kPruned:
      sequence->emplace_back();  // opaque
      *hash = node.hash;
      return Status::OK();
    case VerificationObject::Kind::kLeaf: {
      Sha256 ctx;
      ctx.Update(&kLeafDomain, 1);
      for (const auto& entry : node.entries) {
        Hash256 rh;
        if (entry.full) {
          rh = Sha256::Digest(entry.record);
          SequenceItem item;
          item.full = true;
          Status s = key_of(entry.record, &item.key);
          if (!s.ok()) {
            return Status::VerificationFailed("cannot derive key: " +
                                              s.ToString());
          }
          item.record = entry.record;
          sequence->push_back(std::move(item));
        } else {
          rh = entry.hash;
          sequence->push_back(SequenceItem{});
        }
        ctx.Update(rh.bytes.data(), 32);
      }
      *hash = ctx.Finish();
      return Status::OK();
    }
    case VerificationObject::Kind::kInternal: {
      if (node.children.empty()) {
        return Status::VerificationFailed("internal VO node without children");
      }
      Sha256 ctx;
      ctx.Update(&kInternalDomain, 1);
      for (const auto& child : node.children) {
        Hash256 child_hash;
        Status s = RebuildHash(child, key_of, sequence, &child_hash, depth + 1);
        if (!s.ok()) return s;
        ctx.Update(child_hash.bytes.data(), 32);
      }
      *hash = ctx.Finish();
      return Status::OK();
    }
  }
  return Status::VerificationFailed("unknown VO node kind");
}

}  // namespace

Status MbTree::VerifyRange(const Hash256& trusted_root,
                           const VerificationObject& vo, const Value* lo,
                           const Value* hi, const RecordKeyFn& key_of,
                           std::vector<std::string>* records) {
  Hash256 root;
  Status s = ReconstructRoot(vo, lo, hi, key_of, records, &root);
  if (!s.ok()) return s;
  if (root != trusted_root) {
    return Status::VerificationFailed("VO root hash mismatch");
  }
  return Status::OK();
}

Status MbTree::ReconstructRoot(const VerificationObject& vo, const Value* lo,
                               const Value* hi, const RecordKeyFn& key_of,
                               std::vector<std::string>* records,
                               Hash256* root) {
  std::vector<SequenceItem> sequence;
  Status s = RebuildHash(vo.root, key_of, &sequence, root, 0);
  if (!s.ok()) return s;

  // Keys of full records must be non-decreasing.
  const Value* prev = nullptr;
  for (const auto& item : sequence) {
    if (!item.full) continue;
    if (prev != nullptr && prev->CompareTotal(item.key) > 0) {
      return Status::VerificationFailed("VO records out of order");
    }
    prev = &item.key;
  }

  // Completeness: no opaque item may be able to hide an in-range key. An
  // opaque item's keys are bounded by its nearest full neighbours; it is
  // safe only if its upper neighbour is strictly below lo or its lower
  // neighbour strictly above hi.
  for (size_t i = 0; i < sequence.size(); i++) {
    if (sequence[i].full) continue;
    const Value* k1 = nullptr;  // nearest full key before
    for (size_t j = i; j-- > 0;) {
      if (sequence[j].full) {
        k1 = &sequence[j].key;
        break;
      }
    }
    const Value* k2 = nullptr;  // nearest full key after
    for (size_t j = i + 1; j < sequence.size(); j++) {
      if (sequence[j].full) {
        k2 = &sequence[j].key;
        break;
      }
    }
    bool safe_low = lo != nullptr && k2 != nullptr && k2->CompareTotal(*lo) < 0;
    bool safe_high =
        hi != nullptr && k1 != nullptr && k1->CompareTotal(*hi) > 0;
    if (!safe_low && !safe_high) {
      return Status::VerificationFailed(
          "VO incomplete: pruned region may hide results");
    }
  }

  records->clear();
  for (auto& item : sequence) {
    if (!item.full) continue;
    bool ge_lo = lo == nullptr || item.key.CompareTotal(*lo) >= 0;
    bool le_hi = hi == nullptr || item.key.CompareTotal(*hi) <= 0;
    if (ge_lo && le_hi) records->push_back(std::move(item.record));
  }
  return Status::OK();
}

}  // namespace sebdb
