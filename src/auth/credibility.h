// Credibility of the auxiliary-digest sampling protocol (paper §VI,
// Eqs. 4–6): when a thin client asks n auxiliary nodes for a digest and m of
// them agree, what is the probability the agreed digest is wrong, given a
// Byzantine fraction p and an upper bound `max_byzantine` on the number of
// Byzantine nodes?
#pragma once

namespace sebdb {

struct CredibilityParams {
  double byzantine_fraction = 0.0;  // p
  int requests = 0;                 // n (auxiliary nodes queried)
  int matching = 0;                 // m (identical digests received)
  int max_byzantine = 0;            // max
};

/// Eq. 4: probability that the m-th identical *wrong* digest arrives after
/// m-1 wrong and i right ones: p_w = p * sum_{i=0}^{m-1} C(m-1+i, i) *
/// p^{m-1} * (1-p)^i.
double WrongFirstProbability(double p, int m);

/// Eq. 5: symmetric probability that m identical *right* digests arrive
/// first.
double RightFirstProbability(double p, int m);

/// Eq. 6: theta, the probability the accepted digest is wrong. Zero when
/// m exceeds the Byzantine bound (a set of m identical digests must then
/// include an honest node); p_w / (p_w + p_r) otherwise. Returns a value in
/// [0, 1].
double DigestWrongProbability(const CredibilityParams& params);

/// Smallest m (<= n) such that DigestWrongProbability <= target, or -1 when
/// unattainable. Convenience for clients tuning (n, m) "to achieve different
/// credibilities" (paper §VI).
int MinMatchingForCredibility(double p, int n, int max_byzantine,
                              double target);

}  // namespace sebdb
