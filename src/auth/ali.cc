#include "auth/ali.h"

#include <algorithm>

#include "common/coding.h"

namespace sebdb {

void AliBlockProof::EncodeTo(std::string* dst) const {
  PutVarint64(dst, block);
  vo.EncodeTo(dst);
}

Status AliBlockProof::DecodeFrom(Slice* input, AliBlockProof* out) {
  uint64_t bid;
  if (!GetVarint64(input, &bid)) return Status::Corruption("truncated proof");
  out->block = bid;
  return VerificationObject::DecodeFrom(input, &out->vo);
}

size_t AuthQueryResponse::ByteSize() const {
  std::string enc;
  EncodeTo(&enc);
  return enc.size();
}

void AuthQueryResponse::EncodeTo(std::string* dst) const {
  PutVarint64(dst, chain_height);
  PutVarint32(dst, static_cast<uint32_t>(proofs.size()));
  for (const auto& proof : proofs) proof.EncodeTo(dst);
}

Status AuthQueryResponse::DecodeFrom(Slice* input, AuthQueryResponse* out) {
  uint64_t height;
  uint32_t n;
  if (!GetVarint64(input, &height) || !GetVarint32(input, &n)) {
    return Status::Corruption("truncated auth response");
  }
  out->chain_height = height;
  out->proofs.resize(n);
  for (auto& proof : out->proofs) {
    Status s = AliBlockProof::DecodeFrom(input, &proof);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

AuthenticatedLayeredIndex::AuthenticatedLayeredIndex(
    std::string name, LayeredIndexOptions options, ColumnExtractor extractor,
    MbTree::Options mb_options)
    : layered_(std::move(name), options, extractor),
      extractor_(std::move(extractor)),
      mb_options_(mb_options) {}

Status AuthenticatedLayeredIndex::SetHistogram(EqualDepthHistogram histogram) {
  return layered_.SetHistogram(std::move(histogram));
}

Status AuthenticatedLayeredIndex::AddBlock(const Block& block) {
  Status s = layered_.AddBlock(block);
  if (!s.ok()) return s;

  std::vector<MbTree::Entry> entries;
  for (const auto& txn : block.transactions()) {
    Value key;
    if (!extractor_(txn, &key)) continue;
    std::string record;
    txn.EncodeTo(&record);
    entries.push_back({std::move(key), std::move(record)});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const MbTree::Entry& a, const MbTree::Entry& b) {
                     return a.key.CompareTotal(b.key) < 0;
                   });
  block_trees_.push_back(entries.empty() ? nullptr
                                         : MbTree::Build(std::move(entries),
                                                         mb_options_));
  return Status::OK();
}

Bitmap AuthenticatedLayeredIndex::BlocksToVisit(const Value* lo,
                                                const Value* hi,
                                                const Bitmap* window,
                                                uint64_t height_limit) const {
  Bitmap candidates = layered_.CandidateBlocks(lo, hi);
  if (window != nullptr) candidates.And(*window);
  // Pin the snapshot: ignore blocks at or above the height limit.
  for (size_t bid = height_limit; bid < candidates.size(); bid++) {
    if (candidates.Test(bid)) candidates.Clear(bid);
  }
  return candidates;
}

Status AuthenticatedLayeredIndex::BlockRoot(BlockId bid, Hash256* out) const {
  if (bid >= block_trees_.size()) {
    return Status::NotFound("block not indexed");
  }
  if (block_trees_[bid] == nullptr) {
    *out = Hash256{};
    return Status::OK();
  }
  *out = block_trees_[bid]->root_hash();
  return Status::OK();
}

Status AuthenticatedLayeredIndex::ProveRange(const Value* lo, const Value* hi,
                                             const Bitmap* window,
                                             uint64_t chain_height,
                                             AuthQueryResponse* out) const {
  out->chain_height = chain_height;
  out->proofs.clear();
  Bitmap candidates = BlocksToVisit(lo, hi, window, chain_height);
  for (size_t bid : candidates.SetBits()) {
    const MbTree* tree = block_trees_[bid].get();
    if (tree == nullptr) continue;  // candidate bitmaps only cover non-empty
    AliBlockProof proof;
    proof.block = bid;
    Status s = tree->ProveRange(lo, hi, &proof.vo);
    if (!s.ok()) return s;
    out->proofs.push_back(std::move(proof));
  }
  return Status::OK();
}

Status AuthenticatedLayeredIndex::ComputeDigest(const Value* lo,
                                                const Value* hi,
                                                const Bitmap* window,
                                                uint64_t chain_height,
                                                Hash256* digest) const {
  Bitmap candidates = BlocksToVisit(lo, hi, window, chain_height);
  Sha256 ctx;
  for (size_t bid : candidates.SetBits()) {
    if (block_trees_[bid] == nullptr) continue;
    const Hash256& root = block_trees_[bid]->root_hash();
    ctx.Update(root.bytes.data(), 32);
  }
  *digest = ctx.Finish();
  return Status::OK();
}

Status AuthenticatedLayeredIndex::VerifyResponse(
    const AuthQueryResponse& response, const Value* lo, const Value* hi,
    const RecordKeyFn& key_of, const std::vector<Hash256>& auxiliary_digests,
    size_t required_matching, std::vector<std::string>* records) {
  // Reconstruct every block's MB-tree root from its VO and verify the
  // per-block soundness/completeness rules.
  std::vector<std::string> all_records;
  Sha256 digest_ctx;
  BlockId prev_block = 0;
  bool first = true;
  for (const auto& proof : response.proofs) {
    if (!first && proof.block <= prev_block) {
      return Status::VerificationFailed("proof blocks out of order");
    }
    first = false;
    prev_block = proof.block;
    Hash256 root;
    std::vector<std::string> block_records;
    Status s =
        MbTree::ReconstructRoot(proof.vo, lo, hi, key_of, &block_records, &root);
    if (!s.ok()) return s;
    digest_ctx.Update(root.bytes.data(), 32);
    for (auto& record : block_records) {
      all_records.push_back(std::move(record));
    }
  }
  Hash256 reconstructed = digest_ctx.Finish();

  size_t matching = 0;
  for (const auto& digest : auxiliary_digests) {
    if (digest == reconstructed) matching++;
  }
  if (matching < required_matching) {
    return Status::VerificationFailed(
        "only " + std::to_string(matching) + " of " +
        std::to_string(auxiliary_digests.size()) +
        " auxiliary digests match (need " +
        std::to_string(required_matching) + ")");
  }
  for (auto& record : all_records) records->push_back(std::move(record));
  return Status::OK();
}

}  // namespace sebdb
