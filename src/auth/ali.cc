#include "auth/ali.h"

#include <algorithm>

#include "common/coding.h"

namespace sebdb {

void AliBlockProof::EncodeTo(std::string* dst) const {
  PutVarint64(dst, block);
  vo.EncodeTo(dst);
}

Status AliBlockProof::DecodeFrom(Slice* input, AliBlockProof* out) {
  uint64_t bid;
  if (!GetVarint64(input, &bid)) return Status::Corruption("truncated proof");
  out->block = bid;
  return VerificationObject::DecodeFrom(input, &out->vo);
}

size_t AuthQueryResponse::ByteSize() const {
  std::string enc;
  EncodeTo(&enc);
  return enc.size();
}

void AuthQueryResponse::EncodeTo(std::string* dst) const {
  PutVarint64(dst, chain_height);
  PutVarint32(dst, static_cast<uint32_t>(proofs.size()));
  for (const auto& proof : proofs) proof.EncodeTo(dst);
}

Status AuthQueryResponse::DecodeFrom(Slice* input, AuthQueryResponse* out) {
  uint64_t height;
  uint32_t n;
  if (!GetVarint64(input, &height) || !GetVarint32(input, &n)) {
    return Status::Corruption("truncated auth response");
  }
  out->chain_height = height;
  out->proofs.resize(n);
  for (auto& proof : out->proofs) {
    Status s = AliBlockProof::DecodeFrom(input, &proof);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

/// (value, encoded transaction) pairs of one block, in MB-tree build order.
std::vector<MbTree::Entry> ExtractEntries(const Block& block,
                                          const ColumnExtractor& extractor) {
  std::vector<MbTree::Entry> entries;
  for (const auto& txn : block.transactions()) {
    Value key;
    if (!extractor(txn, &key)) continue;
    std::string record;
    txn.EncodeTo(&record);
    entries.push_back({std::move(key), std::move(record)});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const MbTree::Entry& a, const MbTree::Entry& b) {
                     return a.key.CompareTotal(b.key) < 0;
                   });
  return entries;
}

}  // namespace

AuthenticatedLayeredIndex::AuthenticatedLayeredIndex(
    std::string name, LayeredIndexOptions options, ColumnExtractor extractor,
    MbTree::Options mb_options)
    : layered_(std::move(name), options, extractor),
      extractor_(std::move(extractor)),
      mb_options_(mb_options) {}

Status AuthenticatedLayeredIndex::SetHistogram(EqualDepthHistogram histogram) {
  return layered_.SetHistogram(std::move(histogram));
}

Status AuthenticatedLayeredIndex::AddBlock(const Block& block) {
  // Extraction + MergeTxnDeltas, like LayeredIndex::AddBlock: one extractor
  // pass feeds both the layered entries and the MB-tree entries, and the
  // merge half is shared with the parallel apply pipeline.
  std::vector<std::pair<Value, uint32_t>> layered_entries;
  std::vector<MbTree::Entry> mb_entries;
  const auto& txns = block.transactions();
  for (uint32_t i = 0; i < txns.size(); i++) {
    Value key;
    if (!extractor_(txns[i], &key)) continue;
    MbTree::Entry entry;
    entry.key = key;
    txns[i].EncodeTo(&entry.record);
    mb_entries.push_back(std::move(entry));
    layered_entries.emplace_back(std::move(key), i);
  }
  return MergeTxnDeltas(block.height(), std::move(layered_entries),
                        std::move(mb_entries));
}

Status AuthenticatedLayeredIndex::MergeTxnDeltas(
    uint64_t height, std::vector<std::pair<Value, uint32_t>> layered_entries,
    std::vector<MbTree::Entry> mb_entries) {
  Status s = layered_.MergeTxnDeltas(height, std::move(layered_entries));
  if (!s.ok()) return s;

  std::stable_sort(mb_entries.begin(), mb_entries.end(),
                   [](const MbTree::Entry& a, const MbTree::Entry& b) {
                     return a.key.CompareTotal(b.key) < 0;
                   });
  std::shared_ptr<const MbTree> tree =
      mb_entries.empty() ? nullptr
                         : std::shared_ptr<const MbTree>(
                               MbTree::Build(std::move(mb_entries),
                                             mb_options_));
  roots_.push_back(tree == nullptr ? Hash256{} : tree->root_hash());
  block_trees_.push_back(std::move(tree));
  return Status::OK();
}

Bitmap AuthenticatedLayeredIndex::BlocksToVisit(const Value* lo,
                                                const Value* hi,
                                                const Bitmap* window,
                                                uint64_t height_limit) const {
  Bitmap candidates = layered_.CandidateBlocks(lo, hi);
  if (window != nullptr) candidates.And(*window);
  // Pin the snapshot: ignore blocks at or above the height limit.
  for (size_t bid = height_limit; bid < candidates.size(); bid++) {
    if (candidates.Test(bid)) candidates.Clear(bid);
  }
  return candidates;
}

Status AuthenticatedLayeredIndex::BlockRoot(BlockId bid, Hash256* out) const {
  if (bid >= roots_.size()) {
    return Status::NotFound("block not indexed");
  }
  *out = roots_[bid];
  return Status::OK();
}

Status AuthenticatedLayeredIndex::Tree(
    BlockId bid, std::shared_ptr<const MbTree>* out) const {
  if (bid >= roots_.size()) return Status::NotFound("block not indexed");
  if (bid >= mem_base_) {
    *out = block_trees_[bid - mem_base_];
    return Status::OK();
  }
  if (roots_[bid] == Hash256{}) {  // no indexed entries — no tree
    *out = nullptr;
    return Status::OK();
  }
  if (rebuilt_ != nullptr) {
    if (auto cached = rebuilt_->Lookup(bid)) {
      *out = std::move(cached);
      return Status::OK();
    }
  }
  return RebuildTree(bid, out);
}

Status AuthenticatedLayeredIndex::RebuildTree(
    BlockId bid, std::shared_ptr<const MbTree>* out) const {
  if (loader_ == nullptr) {
    return Status::InvalidArgument("no block loader installed");
  }
  std::shared_ptr<const Block> block;
  Status s = loader_(bid, &block);
  if (!s.ok()) return s;
  std::vector<MbTree::Entry> entries = ExtractEntries(*block, extractor_);
  uint64_t charge = 64;
  for (const auto& e : entries) charge += e.key.ByteSize() + e.record.size();
  std::shared_ptr<const MbTree> tree =
      entries.empty() ? nullptr
                      : std::shared_ptr<const MbTree>(
                            MbTree::Build(std::move(entries), mb_options_));
  // The rebuilt tree must reproduce the root recorded when the block was
  // first indexed; anything else means the raw block changed underneath us.
  Hash256 root = tree == nullptr ? Hash256{} : tree->root_hash();
  if (root != roots_[bid]) {
    return Status::Corruption("rebuilt MB-tree root mismatch for block " +
                              std::to_string(bid));
  }
  const uint64_t budget = layered_.options().materialized_cache_bytes;
  if (tree != nullptr && budget > 0) {
    if (rebuilt_ == nullptr) {
      rebuilt_ = std::make_unique<LruCache<uint64_t, const MbTree>>(budget);
    }
    rebuilt_->Insert(bid, tree, charge);
  }
  *out = std::move(tree);
  return Status::OK();
}

Status AuthenticatedLayeredIndex::ProveRange(const Value* lo, const Value* hi,
                                             const Bitmap* window,
                                             uint64_t chain_height,
                                             AuthQueryResponse* out) const {
  out->chain_height = chain_height;
  out->proofs.clear();
  Bitmap candidates = BlocksToVisit(lo, hi, window, chain_height);
  for (size_t bid : candidates.SetBits()) {
    std::shared_ptr<const MbTree> tree;
    Status s = Tree(bid, &tree);
    if (!s.ok()) return s;
    if (tree == nullptr) continue;  // candidate bitmaps only cover non-empty
    AliBlockProof proof;
    proof.block = bid;
    s = tree->ProveRange(lo, hi, &proof.vo);
    if (!s.ok()) return s;
    out->proofs.push_back(std::move(proof));
  }
  return Status::OK();
}

Status AuthenticatedLayeredIndex::ComputeDigest(const Value* lo,
                                                const Value* hi,
                                                const Bitmap* window,
                                                uint64_t chain_height,
                                                Hash256* digest) const {
  Bitmap candidates = BlocksToVisit(lo, hi, window, chain_height);
  Sha256 ctx;
  for (size_t bid : candidates.SetBits()) {
    if (roots_[bid] == Hash256{}) continue;
    ctx.Update(roots_[bid].bytes.data(), 32);
  }
  *digest = ctx.Finish();
  return Status::OK();
}

Status AuthenticatedLayeredIndex::VerifyResponse(
    const AuthQueryResponse& response, const Value* lo, const Value* hi,
    const RecordKeyFn& key_of, const std::vector<Hash256>& auxiliary_digests,
    size_t required_matching, std::vector<std::string>* records) {
  // Reconstruct every block's MB-tree root from its VO and verify the
  // per-block soundness/completeness rules.
  std::vector<std::string> all_records;
  Sha256 digest_ctx;
  BlockId prev_block = 0;
  bool first = true;
  for (const auto& proof : response.proofs) {
    if (!first && proof.block <= prev_block) {
      return Status::VerificationFailed("proof blocks out of order");
    }
    first = false;
    prev_block = proof.block;
    Hash256 root;
    std::vector<std::string> block_records;
    Status s =
        MbTree::ReconstructRoot(proof.vo, lo, hi, key_of, &block_records, &root);
    if (!s.ok()) return s;
    digest_ctx.Update(root.bytes.data(), 32);
    for (auto& record : block_records) {
      all_records.push_back(std::move(record));
    }
  }
  Hash256 reconstructed = digest_ctx.Finish();

  size_t matching = 0;
  for (const auto& digest : auxiliary_digests) {
    if (digest == reconstructed) matching++;
  }
  if (matching < required_matching) {
    return Status::VerificationFailed(
        "only " + std::to_string(matching) + " of " +
        std::to_string(auxiliary_digests.size()) +
        " auxiliary digests match (need " +
        std::to_string(required_matching) + ")");
  }
  for (auto& record : all_records) records->push_back(std::move(record));
  return Status::OK();
}

void AuthenticatedLayeredIndex::AdoptFrozen(
    BufferManager* pool, BufferManager::FileId file,
    const std::vector<LayeredIndex::FrozenTreeRef>& refs) {
  layered_.AdoptFrozen(pool, file, refs);
  // The adopted blocks' MB-trees become rebuild-on-demand: this is the
  // memory bound. Roots stay — they are the verification anchor.
  block_trees_.erase(block_trees_.begin(),
                     block_trees_.begin() +
                         std::min(refs.size(), block_trees_.size()));
  mem_base_ += refs.size();
}

void AuthenticatedLayeredIndex::EncodeCheckpointState(
    const std::vector<LayeredIndex::FrozenTreeRef>& pending,
    std::string* dst) const {
  std::string layered_state;
  layered_.EncodeCheckpointState(pending, &layered_state);
  PutLengthPrefixed(dst, layered_state);
  PutVarint64(dst, roots_.size());
  for (const Hash256& root : roots_) {
    dst->append(reinterpret_cast<const char*>(root.bytes.data()), 32);
  }
}

Status AuthenticatedLayeredIndex::RestoreCheckpoint(
    BufferManager* pool, std::vector<BufferManager::FileId> files,
    Slice state) {
  Slice in = state;
  Slice layered_state;
  if (!GetLengthPrefixed(&in, &layered_state)) {
    return Status::Corruption("truncated ALI checkpoint state");
  }
  Status s = layered_.RestoreCheckpoint(pool, std::move(files), layered_state);
  if (!s.ok()) return s;
  uint64_t nroots;
  if (!GetVarint64(&in, &nroots) || nroots != layered_.num_blocks() ||
      in.size() < nroots * 32) {
    return Status::Corruption("truncated ALI root list");
  }
  roots_.resize(nroots);
  for (uint64_t i = 0; i < nroots; i++) {
    std::memcpy(roots_[i].bytes.data(), in.data(), 32);
    in.remove_prefix(32);
  }
  mem_base_ = nroots;
  block_trees_.clear();
  return Status::OK();
}

}  // namespace sebdb
