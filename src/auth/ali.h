// ALI — Authenticated Layered Index (paper §VI): the layered index with its
// per-block second-level B+-trees replaced by MB-trees, plus the two-phase
// authenticated query protocol:
//   phase 1: a full node answers a query with one VO per visited block and
//            the chain height h it executed at;
//   phase 2: auxiliary full nodes, given the query and h, re-derive the set
//            of blocks the query must visit and return a digest — the hash
//            of the concatenation of those blocks' MB-tree roots.
// The client reconstructs each block's root from its VO, recomputes the
// digest, and accepts when enough auxiliary digests match (credibility
// Eqs. 4–6).
//
// Persistence: MB-trees are deterministic functions of their block's
// transactions, so checkpoints never serialize them — only the per-block
// root hashes (32 bytes/block) travel in the checkpoint meta. After a
// restart, a checkpointed block's MB-tree is rebuilt on demand from the raw
// block (via the installed BlockLoader), verified against the recorded root,
// and LRU-cached. Digests (phase 2) need only the stored roots, so auxiliary
// nodes answer without touching raw blocks at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "auth/mbtree.h"
#include "common/bitmap.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "index/layered_index.h"
#include "storage/block.h"

namespace sebdb {

/// Phase-1 response: per visited block, the block id and its range VO.
struct AliBlockProof {
  BlockId block = 0;
  VerificationObject vo;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, AliBlockProof* out);
};

struct AuthQueryResponse {
  /// Chain height the full node executed at (pins the snapshot).
  uint64_t chain_height = 0;
  /// One proof per block the query visited, ascending block order. Blocks
  /// visited but empty of results still get a (emptiness) proof.
  std::vector<AliBlockProof> proofs;

  size_t ByteSize() const;
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, AuthQueryResponse* out);
};

class AuthenticatedLayeredIndex {
 public:
  /// Fetches a raw block so a checkpointed block's MB-tree can be rebuilt.
  using BlockLoader =
      std::function<Status(BlockId, std::shared_ptr<const Block>*)>;

  AuthenticatedLayeredIndex(std::string name, LayeredIndexOptions options,
                            ColumnExtractor extractor,
                            MbTree::Options mb_options = MbTree::Options());

  const std::string& name() const { return layered_.name(); }

  /// Continuous indexes need the histogram before the first block.
  Status SetHistogram(EqualDepthHistogram histogram);

  /// Required before any frozen block's tree can be rebuilt.
  void SetBlockLoader(BlockLoader loader) { loader_ = std::move(loader); }

  /// Indexes a newly chained block: updates the first level and bulk-builds
  /// the block's MB-tree over (attribute value, encoded transaction).
  Status AddBlock(const Block& block);

  /// Merge step of the parallel apply pipeline: ingests one block from
  /// deltas the execute phase prepared — `layered_entries` as
  /// LayeredIndex::MergeTxnDeltas (block position order), `mb_entries` the
  /// per-covered-transaction (key, encoded record, precomputed SHA-256)
  /// triples in the same order. Stable-sorts by key and builds the MB-tree
  /// without re-hashing, byte-identical to AddBlock.
  Status MergeTxnDeltas(uint64_t height,
                        std::vector<std::pair<Value, uint32_t>> layered_entries,
                        std::vector<MbTree::Entry> mb_entries);

  uint64_t num_blocks() const { return layered_.num_blocks(); }
  const LayeredIndex& layered() const { return layered_; }

  /// Blocks a range query over [lo, hi] must visit, intersected with an
  /// optional time-window bitmap, limited to heights < height_limit.
  Bitmap BlocksToVisit(const Value* lo, const Value* hi, const Bitmap* window,
                       uint64_t height_limit) const;

  /// Root of one block's MB-tree (zero hash if the block holds no entries —
  /// such blocks are never candidates). Served from the stored root list;
  /// never rebuilds.
  Status BlockRoot(BlockId bid, Hash256* out) const;

  /// One block's MB-tree (*out == nullptr when the block holds no indexed
  /// entries). For blocks below the checkpoint boundary this rebuilds from
  /// the raw block, verifies the root against the recorded one (Corruption
  /// on mismatch), and caches the result.
  Status Tree(BlockId bid, std::shared_ptr<const MbTree>* out) const;

  /// Phase 1 (full node): executes the range query and assembles the VO set.
  Status ProveRange(const Value* lo, const Value* hi, const Bitmap* window,
                    uint64_t chain_height, AuthQueryResponse* out) const;

  /// Phase 2 (auxiliary node): digest over the roots of the blocks the query
  /// visits at the pinned height: SHA256(root_1 || root_2 || ...).
  Status ComputeDigest(const Value* lo, const Value* hi, const Bitmap* window,
                       uint64_t chain_height, Hash256* digest) const;

  /// Client: verifies a phase-1 response against auxiliary digests. Requires
  /// at least `required_matching` digests equal to the reconstructed one.
  /// On success appends the verified records (encoded transactions).
  static Status VerifyResponse(const AuthQueryResponse& response,
                               const Value* lo, const Value* hi,
                               const RecordKeyFn& key_of,
                               const std::vector<Hash256>& auxiliary_digests,
                               size_t required_matching,
                               std::vector<std::string>* records);

  // --- checkpoint protocol (driven by IndexSet; single-threaded) ---
  // The inner layered index checkpoints exactly like a plain one; the ALI
  // layer adds only the root list to the meta state and drops the adopted
  // blocks' in-memory MB-trees.

  Status WriteFrozenDelta(BufferManager* pool, BufferManager::FileId file,
                          uint64_t up_to,
                          std::vector<LayeredIndex::FrozenTreeRef>* refs) {
    return layered_.WriteFrozenDelta(pool, file, up_to, refs);
  }

  void AdoptFrozen(BufferManager* pool, BufferManager::FileId file,
                   const std::vector<LayeredIndex::FrozenTreeRef>& refs);

  void EncodeCheckpointState(
      const std::vector<LayeredIndex::FrozenTreeRef>& pending,
      std::string* dst) const;

  Status RestoreCheckpoint(BufferManager* pool,
                           std::vector<BufferManager::FileId> files,
                           Slice state);

 private:
  Status RebuildTree(BlockId bid, std::shared_ptr<const MbTree>* out) const;

  LayeredIndex layered_;
  ColumnExtractor extractor_;
  MbTree::Options mb_options_;
  BlockLoader loader_;

  /// MB-tree root of every indexed block (zero hash = no entries). The
  /// authenticated part of the checkpoint state.
  std::vector<Hash256> roots_;

  /// In-memory MB-trees of the tail: block_trees_[i] belongs to block
  /// mem_base_ + i. Blocks below mem_base_ rebuild on demand.
  uint64_t mem_base_ = 0;
  std::vector<std::shared_ptr<const MbTree>> block_trees_;

  /// Rebuilt frozen-block trees, charged by encoded record bytes. Lazily
  /// created; nullptr when the cache budget is zero.
  mutable std::unique_ptr<LruCache<uint64_t, const MbTree>> rebuilt_;
};

}  // namespace sebdb
