#include "auth/credibility.h"

#include <cmath>

namespace sebdb {

namespace {

// C(n, k) in double precision (n stays small: n < 2m <= ~2 * cluster size).
double Choose(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  double result = 1.0;
  for (int i = 1; i <= k; i++) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

double NegativeBinomialFirst(double p_success, int m) {
  // Probability that m successes accumulate before m failures, with the
  // final arrival being a success: p * sum_{i=0}^{m-1} C(m-1+i, i) *
  // p^{m-1} * (1-p)^i.
  if (m <= 0) return 0.0;
  double sum = 0.0;
  for (int i = 0; i < m; i++) {
    sum += Choose(m - 1 + i, i) * std::pow(p_success, m - 1) *
           std::pow(1.0 - p_success, i);
  }
  return p_success * sum;
}

}  // namespace

double WrongFirstProbability(double p, int m) {
  return NegativeBinomialFirst(p, m);
}

double RightFirstProbability(double p, int m) {
  return NegativeBinomialFirst(1.0 - p, m);
}

double DigestWrongProbability(const CredibilityParams& params) {
  const double p = params.byzantine_fraction;
  const int m = params.matching;
  if (m <= 0 || m > params.requests) return 1.0;
  if (m > params.max_byzantine) return 0.0;  // Eq. 6, second branch
  double pw = WrongFirstProbability(p, m);
  double pr = RightFirstProbability(p, m);
  if (pw + pr == 0.0) return 0.0;
  double theta = pw / (pw + pr);
  if (theta < 0.0) theta = 0.0;
  if (theta > 1.0) theta = 1.0;
  return theta;
}

int MinMatchingForCredibility(double p, int n, int max_byzantine,
                              double target) {
  for (int m = 1; m <= n; m++) {
    CredibilityParams params{p, n, m, max_byzantine};
    if (DigestWrongProbability(params) <= target) return m;
  }
  return -1;
}

}  // namespace sebdb
