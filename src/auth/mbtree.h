// Merkle B-tree (paper §VI, after Li et al. SIGMOD'06): a B+-tree whose
// leaves hash the records they hold and whose internal nodes hash the
// concatenation of their children's hashes. A range query produces a
// verification object (VO) from which an untrusting client recomputes the
// root hash and checks both soundness (every returned record hashes into the
// root) and completeness (boundary records prove nothing in the range was
// withheld).
//
// Our MB-trees are immutable: one per block, bulk-loaded when the block is
// chained (the ALI's second level), so no insert/rebalance machinery exists.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/slice.h"
#include "common/status.h"
#include "types/value.h"

namespace sebdb {

/// Pruned-tree verification object for one MB-tree range query.
struct VerificationObject {
  enum class Kind : uint8_t {
    kPruned = 0,    // subtree outside the exposed range: hash only
    kLeaf = 1,      // expanded leaf: per-entry record or record hash
    kInternal = 2,  // expanded internal node: child VOs
  };

  struct LeafEntry {
    bool full = false;    // full record included (result or boundary)
    Hash256 hash;         // record hash when !full
    std::string record;   // record bytes when full
  };

  struct Node {
    Kind kind = Kind::kPruned;
    Hash256 hash;                  // kPruned
    std::vector<LeafEntry> entries;  // kLeaf
    std::vector<Node> children;    // kInternal
  };

  Node root;

  /// Serialized size — the paper's "VO size" metric (Fig. 17).
  size_t ByteSize() const;
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, VerificationObject* out);
};

/// Extracts the index key from a record's bytes (the client re-derives keys
/// from returned records during verification).
using RecordKeyFn = std::function<Status(const Slice& record, Value* key)>;

class MbTree {
 public:
  struct Options {
    /// Max entries per leaf / children per internal node. The paper uses
    /// 4 KB pages with ~300 B transactions, i.e. roughly this many.
    size_t fanout = 16;
  };

  struct Entry {
    Value key;
    std::string record;
    /// Precomputed SHA-256 of `record`. The parallel apply pipeline hashes
    /// each transaction once on a worker during the execute phase and every
    /// MB-tree built from it skips re-hashing; when unset, Build hashes.
    Hash256 record_hash{};
    bool has_record_hash = false;
  };

  /// Builds the tree from entries sorted by key (duplicates allowed).
  static std::unique_ptr<MbTree> Build(std::vector<Entry> sorted_entries,
                                       const Options& options);
  static std::unique_ptr<MbTree> Build(std::vector<Entry> sorted_entries);

  const Hash256& root_hash() const { return root_hash_; }
  size_t size() const { return keys_.size(); }
  int height() const { return height_; }

  /// Plain (unauthenticated) range lookup; appends record indices.
  void Range(const Value* lo, const Value* hi,
             std::vector<size_t>* indices) const;
  const std::string& record(size_t i) const { return records_[i]; }
  const Value& key(size_t i) const { return keys_[i]; }

  /// Builds the VO for range [lo, hi] (null = unbounded): result records plus
  /// one boundary record on each side, everything else pruned to hashes.
  Status ProveRange(const Value* lo, const Value* hi,
                    VerificationObject* vo) const;

  /// Client-side check. Recomputes the root from `vo`, compares with
  /// `trusted_root`, verifies ordering/contiguity/boundaries, and on success
  /// fills *records with exactly the in-range records.
  static Status VerifyRange(const Hash256& trusted_root,
                            const VerificationObject& vo, const Value* lo,
                            const Value* hi, const RecordKeyFn& key_of,
                            std::vector<std::string>* records);

  /// Like VerifyRange but returns the reconstructed root instead of comparing
  /// it — the two-phase protocol checks roots in aggregate, via the digest
  /// from auxiliary nodes (paper §VI).
  static Status ReconstructRoot(const VerificationObject& vo, const Value* lo,
                                const Value* hi, const RecordKeyFn& key_of,
                                std::vector<std::string>* records,
                                Hash256* root);

 private:
  struct Node {
    bool leaf = false;
    Hash256 hash;
    size_t start = 0;  // first covered entry index
    size_t count = 0;  // covered entries
    std::vector<std::unique_ptr<Node>> children;
  };

  MbTree() = default;

  VerificationObject::Node ProveNode(const Node& node, size_t expose_start,
                                     size_t expose_end) const;

  std::vector<Value> keys_;
  std::vector<std::string> records_;
  std::vector<Hash256> record_hashes_;
  std::unique_ptr<Node> root_;
  Hash256 root_hash_;
  int height_ = 0;
  Options options_;
};

}  // namespace sebdb
