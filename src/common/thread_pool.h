// Shared work-stealing thread pool driving the parallel scan/verify/replay
// pipelines (executor block scans, ChainManager signature verification and
// startup replay). One deque per worker: a worker pops its own deque LIFO
// (cache-warm) and steals FIFO from the others when empty. ParallelFor is the
// main entry point — the calling thread always participates, so a loop makes
// progress even when every worker is busy (nested loops cannot deadlock) and
// a nullptr pool degrades to the plain serial loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sebdb {

/// One-shot countdown synchronizer (std::latch without <latch>, which the
/// toolchain's libstdc++ ships but tsan instrumentation dislikes).
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void CountDown() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (count_ > 0 && --count_ == 0) cv_.NotifyAll();
  }

  void Wait() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (count_ != 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ GUARDED_BY(mu_);
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool sized from std::thread::hardware_concurrency().
  /// Created on first use, never destroyed (like Env::Default()).
  static ThreadPool* Default();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. A task submitted from a pool worker lands on that
  /// worker's own deque (depth-first execution); external submissions are
  /// distributed round-robin. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n), fanning chunks of `grain` indices out
  /// across the workers. The caller participates and the call returns only
  /// when every index has run. Safe to nest (inner loops drain themselves).
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& fn,
                   uint64_t grain = 1);

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t id);
  /// Pops from `preferred`'s deque, stealing from the others on miss.
  bool RunOneTask(size_t preferred);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Pairs with idle_cv_ to park idle workers; the wait predicates read only
  /// the atomics below, so nothing is GUARDED_BY it.
  Mutex idle_mu_;
  CondVar idle_cv_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

/// Runs fn(i) for i in [0, n) on the pool and returns the failure of the
/// *smallest* failing index — exactly the Status a serial early-exit loop
/// would report — or OK. With a nullptr pool this IS the serial early-exit
/// loop, so serial and parallel callers share one code path.
Status ParallelForStatus(ThreadPool* pool, uint64_t n,
                         const std::function<Status(uint64_t)>& fn,
                         uint64_t grain = 1);

}  // namespace sebdb
