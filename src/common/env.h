// File-system seam (LevelDB Env idiom): every byte the storage layer writes
// or reads goes through an Env, so tests can interpose fault injection
// (torn writes, EIO, sync failures, crash points — see fault_env.h) without
// touching the production code paths. Env::Default() is the real POSIX
// implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace sebdb {

/// Append-only output stream. Append buffers nothing: a returned OK means
/// the bytes reached the kernel (durability still requires Sync).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  /// fdatasync-equivalent; an error here means the file tail state on disk
  /// is unknown (the caller must treat unacked records as lost).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  /// Bytes successfully appended so far (existing bytes included at open).
  virtual uint64_t size() const = 0;
};

/// Positional (pread-style) input stream.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;
  /// Reads up to n bytes at `offset` into *out; *out may come back shorter
  /// than n only at end-of-file (or under injected short reads).
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual Status Close() = 0;
  virtual uint64_t size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never deleted).
  static Env* Default();

  /// Opens `path` for append, creating it if missing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewReadableFile(const std::string& path,
                                 std::unique_ptr<ReadableFile>* out) = 0;

  /// Recursively creates a directory (a la mkdir -p).
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  /// Lists entries in a directory (names only, unsorted).
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* out) = 0;
  /// Removes a directory tree (tests and benches use scratch dirs).
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Truncates `path` to `size` bytes (crash recovery drops torn tails).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status FileSize(const std::string& path, uint64_t* size) = 0;
  /// fsyncs the directory itself so freshly created files survive a crash.
  virtual Status SyncDir(const std::string& path) = 0;
};

}  // namespace sebdb
