#include "common/admission.h"

#include <algorithm>

namespace sebdb {

const char* OverloadStateName(OverloadState state) {
  switch (state) {
    case OverloadState::kHealthy:
      return "healthy";
    case OverloadState::kThrottling:
      return "throttling";
    case OverloadState::kShedding:
      return "shedding";
  }
  return "unknown";
}

AdmissionStats MergeAdmissionStats(const AdmissionStats& a,
                                   const AdmissionStats& b) {
  AdmissionStats out;
  out.admitted = a.admitted + b.admitted;
  out.deduped = a.deduped + b.deduped;
  out.released = a.released + b.released;
  out.rejected_txns = a.rejected_txns + b.rejected_txns;
  out.rejected_bytes = a.rejected_bytes + b.rejected_bytes;
  out.rejected_sender = a.rejected_sender + b.rejected_sender;
  out.cur_txns = a.cur_txns + b.cur_txns;
  out.cur_bytes = a.cur_bytes + b.cur_bytes;
  out.peak_txns = std::max(a.peak_txns, b.peak_txns);
  out.peak_bytes = std::max(a.peak_bytes, b.peak_bytes);
  out.state_transitions = a.state_transitions + b.state_transitions;
  out.state = std::max(a.state, b.state);
  return out;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

double AdmissionController::OccupancyLocked() const {
  double occ = 0.0;
  if (options_.max_txns > 0) {
    occ = std::max(occ, static_cast<double>(inflight_.size()) /
                            static_cast<double>(options_.max_txns));
  }
  if (options_.max_bytes > 0) {
    occ = std::max(occ, static_cast<double>(stats_.cur_bytes) /
                            static_cast<double>(options_.max_bytes));
  }
  return std::min(occ, 1.0);
}

void AdmissionController::UpdateStateLocked() {
  double occ = OccupancyLocked();
  OverloadState next = OverloadState::kHealthy;
  if (occ >= 1.0) {
    next = OverloadState::kShedding;
  } else if (occ >= options_.throttle_threshold) {
    next = OverloadState::kThrottling;
  }
  if (next != stats_.state) {
    stats_.state = next;
    stats_.state_transitions++;
  }
}

int64_t AdmissionController::RetryAfterLocked() const {
  // Scale the hint with occupancy: a barely-full queue suggests a short
  // wait, a saturated one up to 4x the base.
  double occ = OccupancyLocked();
  return options_.retry_after_base_millis +
         static_cast<int64_t>(3.0 * occ *
                              static_cast<double>(
                                  options_.retry_after_base_millis));
}

Status AdmissionController::Admit(const std::string& key,
                                  const std::string& sender, size_t bytes,
                                  bool* duplicate) {
  if (duplicate != nullptr) *duplicate = false;
  MutexLock lock(&mu_);
  if (!options_.enabled) {
    stats_.admitted++;
    return Status::OK();
  }
  if (inflight_.find(key) != inflight_.end()) {
    stats_.deduped++;
    if (duplicate != nullptr) *duplicate = true;
    return Status::OK();
  }
  if (options_.max_txns > 0 && inflight_.size() + 1 > options_.max_txns) {
    stats_.rejected_txns++;
    UpdateStateLocked();
    return Status::ResourceExhausted("mempool txn cap reached",
                                     RetryAfterLocked());
  }
  if (options_.max_bytes > 0 &&
      stats_.cur_bytes + bytes > options_.max_bytes) {
    stats_.rejected_bytes++;
    UpdateStateLocked();
    return Status::ResourceExhausted("mempool byte cap reached",
                                     RetryAfterLocked());
  }
  if (options_.max_txns_per_sender > 0) {
    auto it = per_sender_.find(sender);
    uint64_t held = it == per_sender_.end() ? 0 : it->second;
    if (held + 1 > options_.max_txns_per_sender) {
      stats_.rejected_sender++;
      UpdateStateLocked();
      return Status::ResourceExhausted("sender quota reached for " + sender,
                                       options_.retry_after_base_millis);
    }
  }
  inflight_.emplace(key, Entry{sender, static_cast<uint64_t>(bytes)});
  per_sender_[sender]++;
  stats_.admitted++;
  stats_.cur_txns = inflight_.size();
  stats_.cur_bytes += bytes;
  stats_.peak_txns = std::max(stats_.peak_txns, stats_.cur_txns);
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.cur_bytes);
  UpdateStateLocked();
  return Status::OK();
}

void AdmissionController::Release(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  stats_.cur_bytes -= it->second.bytes;
  auto sender_it = per_sender_.find(it->second.sender);
  if (sender_it != per_sender_.end() && --sender_it->second == 0) {
    per_sender_.erase(sender_it);
  }
  inflight_.erase(it);
  stats_.cur_txns = inflight_.size();
  stats_.released++;
  UpdateStateLocked();
}

void AdmissionController::Clear() {
  MutexLock lock(&mu_);
  inflight_.clear();
  per_sender_.clear();
  stats_.cur_txns = 0;
  stats_.cur_bytes = 0;
  UpdateStateLocked();
}

OverloadState AdmissionController::state() const {
  MutexLock lock(&mu_);
  return stats_.state;
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace sebdb
