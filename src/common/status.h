// Status: result of a fallible operation. Modeled after the LevelDB/RocksDB
// idiom: cheap to copy in the OK case, carries a code plus message otherwise.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace sebdb {

class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kAborted = 6,
    kBusy = 7,
    kVerificationFailed = 8,
    kTimedOut = 9,
    kResourceExhausted = 10,
    kUnavailable = 11,
  };

  /// Creates an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }
  static Status VerificationFailed(std::string_view msg) {
    return Status(Code::kVerificationFailed, msg);
  }
  static Status TimedOut(std::string_view msg) {
    return Status(Code::kTimedOut, msg);
  }
  /// Overload rejection. `retry_after_millis` is a server-driven backoff
  /// hint: how long the caller should wait before resubmitting (0 = none).
  static Status ResourceExhausted(std::string_view msg,
                                  int64_t retry_after_millis = 0) {
    return Status(Code::kResourceExhausted, msg, retry_after_millis);
  }
  /// The peer is known to be down right now (supervised connection lost,
  /// endpoint unregistered). Unlike TimedOut, it arrives immediately —
  /// callers fail over to another node instead of waiting out a deadline.
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsVerificationFailed() const {
    return code() == Code::kVerificationFailed;
  }
  bool IsTimedOut() const { return code() == Code::kTimedOut; }
  bool IsResourceExhausted() const {
    return code() == Code::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == Code::kUnavailable; }

  Code code() const { return rep_ == nullptr ? Code::kOk : rep_->code; }

  /// Human-readable representation, e.g. "NotFound: block 17".
  std::string ToString() const;

  /// The message passed at construction ("" for OK).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ == nullptr ? kEmpty : rep_->msg;
  }

  /// Server-driven backoff hint in milliseconds (0 when absent). Only
  /// meaningful on ResourceExhausted statuses.
  int64_t retry_after_millis() const {
    return rep_ == nullptr ? 0 : rep_->retry_after_millis;
  }

 private:
  struct Rep {
    Code code;
    std::string msg;
    int64_t retry_after_millis = 0;
  };

  Status(Code code, std::string_view msg, int64_t retry_after_millis = 0)
      : rep_(std::make_shared<Rep>(
            Rep{code, std::string(msg), retry_after_millis})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr means OK
};

}  // namespace sebdb
