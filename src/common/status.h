// Status: result of a fallible operation. Modeled after the LevelDB/RocksDB
// idiom: cheap to copy in the OK case, carries a code plus message otherwise.
#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace sebdb {

class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kAborted = 6,
    kBusy = 7,
    kVerificationFailed = 8,
    kTimedOut = 9,
  };

  /// Creates an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }
  static Status VerificationFailed(std::string_view msg) {
    return Status(Code::kVerificationFailed, msg);
  }
  static Status TimedOut(std::string_view msg) {
    return Status(Code::kTimedOut, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsVerificationFailed() const {
    return code() == Code::kVerificationFailed;
  }
  bool IsTimedOut() const { return code() == Code::kTimedOut; }

  Code code() const { return rep_ == nullptr ? Code::kOk : rep_->code; }

  /// Human-readable representation, e.g. "NotFound: block 17".
  std::string ToString() const;

  /// The message passed at construction ("" for OK).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ == nullptr ? kEmpty : rep_->msg;
  }

 private:
  struct Rep {
    Code code;
    std::string msg;
  };

  Status(Code code, std::string_view msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::string(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr means OK
};

}  // namespace sebdb
