// Fault-injection Env wrapper (LevelDB FaultInjectionTestEnv idiom): wraps a
// base Env and injects torn writes, EIO on read/write/sync, short reads, and
// a crash-point counter. Used by the crash-loop tests to prove the block
// store recovers from a kill at any write boundary.
//
// Crash model: ScheduleCrash(n, keep) arms a countdown; the n-th write
// operation from now persists only its first `keep` bytes (a torn write),
// and every subsequent write/sync/file-creation fails with IOError as if
// the process had died. Reads keep working so a test can inspect state, but
// a real restart is simulated by reopening the store against a clean Env on
// the same directory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/thread_annotations.h"

namespace sebdb {

class FaultInjectionEnv : public Env {
 public:
  struct Stats {
    uint64_t write_ops = 0;    // Append calls observed
    uint64_t sync_ops = 0;     // Sync calls observed
    uint64_t torn_writes = 0;  // writes truncated by an injected crash
    uint64_t injected_errors = 0;
  };

  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Arms a crash at the n-th write op from now (n >= 1). That write
  /// persists only its first `keep_bytes` bytes; later I/O fails.
  void ScheduleCrash(uint64_t nth_write, uint64_t keep_bytes);
  /// Clears the crashed state and any armed crash (simulated restart).
  void ResetCrash();
  bool crashed() const;

  /// Unconditional failure knobs (EIO-style injections).
  void SetFailWrites(bool fail);
  void SetFailSyncs(bool fail);
  void SetFailReads(bool fail);
  /// When set, every read returns only the first half of the requested
  /// bytes (a short read the caller must treat as an I/O failure).
  void SetShortReads(bool on);

  Stats stats() const;

  // --- Env ---
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewReadableFile(const std::string& path,
                         std::unique_ptr<ReadableFile>* out) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override;
  Status RemoveDirRecursive(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status FileSize(const std::string& path, uint64_t* size) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultWritableFile;
  friend class FaultReadableFile;

  /// Called by FaultWritableFile before each append. Returns the number of
  /// bytes of this write to persist (== data size normally; less on the
  /// crash-point write) or an error when already crashed / failing writes.
  Status OnWrite(size_t len, size_t* keep);
  Status OnSync();
  Status OnRead(size_t len, size_t* keep);

  Env* const base_;
  mutable Mutex mu_;
  Stats stats_ GUARDED_BY(mu_);
  bool crashed_ GUARDED_BY(mu_) = false;
  bool fail_writes_ GUARDED_BY(mu_) = false;
  bool fail_syncs_ GUARDED_BY(mu_) = false;
  bool fail_reads_ GUARDED_BY(mu_) = false;
  bool short_reads_ GUARDED_BY(mu_) = false;
  uint64_t crash_countdown_ GUARDED_BY(mu_) = 0;  // 0 = disarmed
  uint64_t crash_keep_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace sebdb
