// Seedable PRNG (xorshift64*) with uniform and Gaussian helpers. Used by the
// BChainBench data generator to place result tuples across blocks (paper
// §VII-A: uniform and Gaussian distributions).
#pragma once

#include <cmath>
#include <cstdint>

namespace sebdb {

class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal via Box–Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Gaussian with the given mean and standard deviation, clamped to
  /// [lo, hi] (paper clamps placement to valid block ids).
  int64_t GaussianInRange(double mean, double stddev, int64_t lo, int64_t hi) {
    double v = mean + stddev * NextGaussian();
    auto r = static_cast<int64_t>(std::llround(v));
    if (r < lo) r = lo;
    if (r > hi) r = hi;
    return r;
  }

 private:
  uint64_t state_;
};

}  // namespace sebdb
