// Standalone SHA-256 (FIPS 180-4). Used for block hashes, Merkle trees and
// the keyed-hash signature scheme. No external crypto dependency.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace sebdb {

/// A 32-byte SHA-256 digest with value semantics and ordering.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256&) const = default;
  auto operator<=>(const Hash256&) const = default;

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  /// Lowercase hex rendering, e.g. "9f86d0…".
  std::string ToHex() const;

  /// Parses 64 hex characters; returns false on malformed input.
  static bool FromHex(std::string_view hex, Hash256* out);

  Slice AsSlice() const {
    return Slice(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
};

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const Slice& s) { Update(s.data(), s.size()); }
  Hash256 Finish();

  /// One-shot digest of a byte range.
  static Hash256 Digest(const Slice& data);
  /// Digest of the concatenation a||b (Merkle interior nodes).
  static Hash256 DigestPair(const Hash256& a, const Hash256& b);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace sebdb
