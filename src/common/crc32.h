// CRC-32 (IEEE 802.3 polynomial) for on-disk block record integrity.
#pragma once

#include <cstdint>

#include "common/slice.h"

namespace sebdb {

/// Extends a running CRC with the given bytes (start with crc = 0).
uint32_t Crc32(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32(const Slice& s) { return Crc32(0, s.data(), s.size()); }

}  // namespace sebdb
