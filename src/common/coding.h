// Little-endian fixed-width and varint encoders/decoders for the on-disk
// block format and network messages. All Get* functions consume from a Slice
// and return false on truncated input (callers translate to
// Status::Corruption).
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace sebdb {

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends a varint length prefix followed by the bytes of value.
void PutLengthPrefixed(std::string* dst, const Slice& value);

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixed(Slice* input, Slice* result);

/// Encodes a signed value with zig-zag so small magnitudes stay short.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutVarSigned64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}
inline bool GetVarSigned64(Slice* input, int64_t* value) {
  uint64_t u;
  if (!GetVarint64(input, &u)) return false;
  *value = ZigZagDecode(u);
  return true;
}

/// Decodes a fixed 32/64 directly from a raw pointer (caller checks bounds).
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

}  // namespace sebdb
