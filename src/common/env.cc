#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sebdb {

namespace {

Status PosixError(const std::string& context) {
  return Status::IOError(context + ": " + strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixWritableFile() override { Close(); }

  Status Append(const Slice& data) override {
    if (fd_ < 0) return Status::IOError("append to closed file");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
      size_ += static_cast<uint64_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync of closed file");
    if (::fdatasync(fd_) != 0) return PosixError("fdatasync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int r = ::close(fd_);
    fd_ = -1;
    if (r != 0) return PosixError("close " + path_);
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

class PosixReadableFile : public ReadableFile {
 public:
  PosixReadableFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixReadableFile() override { Close(); }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    if (fd_ < 0) return Status::IOError("read from closed file");
    out->resize(n);
    char* p = out->data();
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, p + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread " + path_);
      }
      if (r == 0) break;  // end of file: return the short prefix
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int r = ::close(fd_);
    fd_ = -1;
    if (r != 0) return PosixError("close " + path_);
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  mutable int fd_;
  uint64_t size_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return PosixError("open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status s = PosixError("fstat " + path);
      ::close(fd);
      return s;
    }
    *out = std::make_unique<PosixWritableFile>(
        fd, static_cast<uint64_t>(st.st_size), path);
    return Status::OK();
  }

  Status NewReadableFile(const std::string& path,
                         std::unique_ptr<ReadableFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status s = PosixError("fstat " + path);
      ::close(fd);
      return s;
    }
    *out = std::make_unique<PosixReadableFile>(
        fd, static_cast<uint64_t>(st.st_size), path);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    std::string partial;
    size_t i = 0;
    while (i < path.size()) {
      size_t next = path.find('/', i + 1);
      if (next == std::string::npos) next = path.size();
      partial = path.substr(0, next);
      if (!partial.empty() && partial != "/") {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return PosixError("mkdir " + partial);
        }
      }
      i = next;
    }
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override {
    out->clear();
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return PosixError("opendir " + path);
    struct dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      out->push_back(std::move(name));
    }
    ::closedir(dir);
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      if (errno == ENOENT) return Status::OK();
      return PosixError("opendir " + path);
    }
    struct dirent* entry;
    Status result;
    while ((entry = ::readdir(dir)) != nullptr) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::string child = path + "/" + name;
      struct stat st;
      if (::lstat(child.c_str(), &st) != 0) {
        result = PosixError("lstat " + child);
        break;
      }
      if (S_ISDIR(st.st_mode)) {
        result = RemoveDirRecursive(child);
        if (!result.ok()) break;
      } else if (::unlink(child.c_str()) != 0) {
        result = PosixError("unlink " + child);
        break;
      }
    }
    ::closedir(dir);
    if (!result.ok()) return result;
    if (::rmdir(path.c_str()) != 0) return PosixError("rmdir " + path);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return PosixError("unlink " + path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError("truncate " + path);
    }
    return Status::OK();
  }

  Status FileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return PosixError("stat " + path);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open dir " + path);
    Status s;
    if (::fsync(fd) != 0) s = PosixError("fsync dir " + path);
    ::close(fd);
    return s;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace sebdb
