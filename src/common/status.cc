#include "common/status.h"

namespace sebdb {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "Unknown";
  switch (code()) {
    case Code::kOk:
      name = "OK";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kAborted:
      name = "Aborted";
      break;
    case Code::kBusy:
      name = "Busy";
      break;
    case Code::kVerificationFailed:
      name = "VerificationFailed";
      break;
    case Code::kTimedOut:
      name = "TimedOut";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
    case Code::kUnavailable:
      name = "Unavailable";
      break;
  }
  std::string out = name;
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace sebdb
