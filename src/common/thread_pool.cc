#include "common/thread_pool.h"

#include <algorithm>

namespace sebdb {

namespace {

// Which pool (if any) the current thread belongs to, and its worker slot.
// Submissions from a worker go to its own deque; everyone else round-robins.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; i++) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(&idle_mu_);
    idle_cv_.NotifyAll();
  }
  for (auto& worker : workers_) worker.join();
  // Workers drain their deques before exiting, but a task submitted during
  // shutdown could slip in after a worker's last sweep; run the leftovers
  // here so no submitted task is silently dropped.
  for (size_t i = 0; i < queues_.size(); i++) {
    while (RunOneTask(i)) {
    }
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<int>(std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::Submit(std::function<void()> fn) {
  size_t target = tls_pool == this
                      ? tls_worker
                      : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                            queues_.size();
  {
    MutexLock lock(&queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  MutexLock lock(&idle_mu_);
  idle_cv_.NotifyOne();
}

bool ThreadPool::RunOneTask(size_t preferred) {
  std::function<void()> task;
  const size_t k = queues_.size();
  {
    // Own deque first, newest task (LIFO keeps the working set hot)...
    MutexLock lock(&queues_[preferred]->mu);
    if (!queues_[preferred]->tasks.empty()) {
      task = std::move(queues_[preferred]->tasks.back());
      queues_[preferred]->tasks.pop_back();
    }
  }
  // ...then steal the oldest task from a sibling (FIFO takes the largest
  // remaining piece of a fan-out).
  for (size_t i = 1; task == nullptr && i < k; i++) {
    WorkerQueue& victim = *queues_[(preferred + i) % k];
    MutexLock lock(&victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
    }
  }
  if (task == nullptr) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t id) {
  tls_pool = this;
  tls_worker = id;
  for (;;) {
    if (RunOneTask(id)) continue;
    MutexLock lock(&idle_mu_);
    while (!stop_.load(std::memory_order_acquire) &&
           pending_.load(std::memory_order_acquire) == 0) {
      idle_cv_.Wait(idle_mu_);
    }
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(uint64_t n,
                             const std::function<void(uint64_t)>& fn,
                             uint64_t grain) {
  if (n == 0) return;
  grain = std::max<uint64_t>(1, grain);
  if (n <= grain) {
    for (uint64_t i = 0; i < n; i++) fn(i);
    return;
  }

  struct LoopState {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    uint64_t n;
    uint64_t grain;
    const std::function<void(uint64_t)>* fn;
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->fn = &fn;  // valid: the caller blocks until done == n

  auto run = [state] {
    for (;;) {
      uint64_t begin =
          state->next.fetch_add(state->grain, std::memory_order_relaxed);
      if (begin >= state->n) return;
      uint64_t end = std::min(state->n, begin + state->grain);
      for (uint64_t i = begin; i < end; i++) (*state->fn)(i);
      uint64_t finished =
          state->done.fetch_add(end - begin, std::memory_order_acq_rel) +
          (end - begin);
      if (finished == state->n) {
        MutexLock lock(&state->mu);
        state->cv.NotifyAll();
      }
    }
  };

  // One runner per worker (minus the caller, who runs inline) is enough:
  // runners claim chunks dynamically, so idle ones just exit.
  uint64_t chunks = (n + grain - 1) / grain;
  uint64_t helpers =
      std::min<uint64_t>(static_cast<uint64_t>(num_threads()), chunks - 1);
  for (uint64_t i = 0; i < helpers; i++) Submit(run);
  run();
  MutexLock lock(&state->mu);
  while (state->done.load(std::memory_order_acquire) != state->n) {
    state->cv.Wait(state->mu);
  }
}

Status ParallelForStatus(ThreadPool* pool, uint64_t n,
                         const std::function<Status(uint64_t)>& fn,
                         uint64_t grain) {
  if (pool == nullptr || n <= 1) {
    for (uint64_t i = 0; i < n; i++) {
      Status s = fn(i);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  struct ErrorState {
    Mutex mu;
    uint64_t first_index GUARDED_BY(mu) = UINT64_MAX;
    Status status GUARDED_BY(mu);
  };
  ErrorState error;
  pool->ParallelFor(
      n,
      [&](uint64_t i) {
        // Skip work past an already-recorded failure; a serial loop would
        // have stopped there, and its output is discarded anyway.
        {
          MutexLock lock(&error.mu);
          if (i > error.first_index) return;
        }
        Status s = fn(i);
        if (!s.ok()) {
          MutexLock lock(&error.mu);
          if (i < error.first_index) {
            error.first_index = i;
            error.status = std::move(s);
          }
        }
      },
      grain);
  MutexLock lock(&error.mu);  // workers are done; satisfies the analysis
  return error.status;
}

}  // namespace sebdb
