// Clang Thread Safety Analysis annotations plus the project's annotated
// locking primitives. All mutex-guarded classes in src/ use Mutex /
// MutexLock / CondVar from this header instead of the raw <mutex> types so
// that the `clang-thread-safety` preset (-Wthread-safety -Werror) can prove
// the locking discipline at compile time: every GUARDED_BY member access
// outside its mutex, every REQUIRES violation, and every unbalanced
// Lock/Unlock becomes a build error under clang. Under GCC the macros
// expand to nothing and the wrappers compile down to the std types.
//
// Conventions (see DESIGN.md §"Static analysis & locking discipline"):
//   - members protected by mu_ are declared GUARDED_BY(mu_);
//   - private helpers called with the lock held are named *Locked() and
//     annotated REQUIRES(mu_);
//   - public entry points that take the lock are annotated EXCLUDES(mu_);
//   - the unlock-deliver-relock pattern (callbacks fired outside the lock
//     from a locked region) uses explicit mu_.Unlock()/mu_.Lock() inside a
//     REQUIRES(mu_) function — the analysis checks the balance.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SEBDB_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SEBDB_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define CAPABILITY(x) SEBDB_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY SEBDB_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) SEBDB_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) SEBDB_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  SEBDB_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SEBDB_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  SEBDB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SEBDB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SEBDB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SEBDB_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SEBDB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SEBDB_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SEBDB_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SEBDB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SEBDB_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) SEBDB_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SEBDB_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace sebdb {

/// Annotated mutex. Identical to std::mutex at runtime; under clang the
/// capability annotations let -Wthread-safety track what it protects.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII guard — the only sanctioned way to take a Mutex for a full scope
/// (scripts/lint.sh rejects raw std::lock_guard / .lock() in src/).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Every wait requires the mutex held
/// on entry and holds it again on return (release + reacquire happen inside,
/// invisible to the analysis — the REQUIRES contract is what clang checks).
/// Predicate loops are written explicitly at the call site:
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Returns false on timeout (like std::cv_status::timeout).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool signalled = cv_.wait_for(lock, dur) == std::cv_status::no_timeout;
    lock.release();
    return signalled;
  }

  /// Returns false on timeout (deadline is a steady_clock time point).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool signalled = cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    return signalled;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sebdb
