// Bounded admission control for the write path (DESIGN.md §"Overload and
// admission contract"). Every consensus ingress queue — the Tendermint/PBFT
// mempools and the Kafka orderer's pending queue — charges transactions
// against an AdmissionController before enqueueing them, so a saturated node
// sheds load with a structured ResourceExhausted (carrying a retry_after
// hint) instead of growing without bound.
//
// The controller is dedup-aware: admitting a key that is already in flight
// is a no-op success (resubmission of a pending txn is not double-counted).
// Occupancy drives a three-state overload machine:
//   healthy    — below the throttle threshold
//   throttling — above the threshold but below the caps; admissions still
//                succeed, but surfaced state tells callers to slow down
//   shedding   — a cap is exhausted; new work is rejected with a
//                retry_after hint that scales with occupancy
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sebdb {

enum class OverloadState : unsigned char {
  kHealthy = 0,
  kThrottling = 1,
  kShedding = 2,
};

const char* OverloadStateName(OverloadState state);

struct AdmissionOptions {
  /// Master switch. When false, Admit always succeeds and nothing is
  /// tracked (Release becomes a no-op); counters still tally admissions so
  /// benchmarks can compare on-vs-off.
  bool enabled = true;

  /// Global cap on in-flight transactions (0 = unlimited).
  uint64_t max_txns = 100000;

  /// Global cap on in-flight transaction bytes (0 = unlimited).
  uint64_t max_bytes = 64ull << 20;

  /// Fair-share cap on in-flight transactions per sender (SenID). 0 means
  /// no per-sender quota.
  uint64_t max_txns_per_sender = 0;

  /// Occupancy fraction (of either global cap) at which the state machine
  /// leaves kHealthy for kThrottling.
  double throttle_threshold = 0.75;

  /// Base for the retry_after hint attached to rejections. The hint grows
  /// with occupancy, up to 4x this base.
  int64_t retry_after_base_millis = 25;
};

struct AdmissionStats {
  uint64_t admitted = 0;  // successful first-time admissions
  uint64_t deduped = 0;   // admissions of an already-in-flight key
  uint64_t released = 0;  // keys released (committed, shed downstream, ...)
  uint64_t rejected_txns = 0;    // rejections by the global txn cap
  uint64_t rejected_bytes = 0;   // rejections by the global byte cap
  uint64_t rejected_sender = 0;  // rejections by a per-sender quota
  uint64_t cur_txns = 0;
  uint64_t cur_bytes = 0;
  uint64_t peak_txns = 0;
  uint64_t peak_bytes = 0;
  uint64_t state_transitions = 0;  // overload-state changes since start
  OverloadState state = OverloadState::kHealthy;

  uint64_t rejected_total() const {
    return rejected_txns + rejected_bytes + rejected_sender;
  }
};

/// Sums the counters of two controllers (used by engines that run separate
/// submit-side and orderer-side controllers); peaks take the max, the state
/// takes the more severe of the two.
AdmissionStats MergeAdmissionStats(const AdmissionStats& a,
                                   const AdmissionStats& b);

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Charges one transaction against the caps. `key` identifies the txn
  /// (engines use the txn hash), `sender` its SenID for the fair-share
  /// quota, `bytes` its encoded size. Returns OK and records the key as
  /// in-flight on success; if the key is already in flight, returns OK
  /// without charging and sets *duplicate. On overload returns
  /// ResourceExhausted with a retry_after_millis hint.
  Status Admit(const std::string& key, const std::string& sender, size_t bytes,
               bool* duplicate = nullptr) EXCLUDES(mu_);

  /// Returns the charge for `key` (committed, shed downstream, aborted).
  /// Unknown keys are ignored, so callers may release unconditionally.
  void Release(const std::string& key) EXCLUDES(mu_);

  /// Drops all in-flight charges (engine shutdown). Counters survive so a
  /// final stats snapshot still reflects the run.
  void Clear() EXCLUDES(mu_);

  OverloadState state() const EXCLUDES(mu_);

  /// Point-in-time snapshot, by value (same idiom as CacheStats).
  AdmissionStats stats() const EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string sender;
    uint64_t bytes = 0;
  };

  /// Max of txn- and byte-occupancy, in [0, 1].
  double OccupancyLocked() const REQUIRES(mu_);
  /// Recomputes the overload state from occupancy, counting transitions.
  void UpdateStateLocked() REQUIRES(mu_);
  /// Backoff hint for a rejection at current occupancy.
  int64_t RetryAfterLocked() const REQUIRES(mu_);

  const AdmissionOptions options_;

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> inflight_ GUARDED_BY(mu_);
  std::unordered_map<std::string, uint64_t> per_sender_ GUARDED_BY(mu_);
  AdmissionStats stats_ GUARDED_BY(mu_);
};

}  // namespace sebdb
