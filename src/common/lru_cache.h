// Charge-based LRU cache, used both as the block cache and the transaction
// cache (paper §VII-H). Thread-safe; values are shared_ptr so a cached entry
// can outlive its eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace sebdb {

template <typename Key, typename Value, typename Hasher = std::hash<Key>>
class LruCache {
 public:
  /// capacity is the total charge budget in arbitrary units (bytes here).
  explicit LruCache(uint64_t capacity) : capacity_(capacity) {}

  /// Inserts (or replaces) key with the given charge. Entries larger than the
  /// whole capacity are not cached.
  void Insert(const Key& key, std::shared_ptr<Value> value, uint64_t charge) {
    if (charge > capacity_) return;
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      usage_ -= it->second->charge;
      lru_.erase(it->second);
      map_.erase(it);
    }
    lru_.push_front(Entry{key, std::move(value), charge});
    map_[key] = lru_.begin();
    usage_ += charge;
    EvictIfNeeded();
  }

  /// Returns the cached value or nullptr; promotes the entry on hit.
  std::shared_ptr<Value> Lookup(const Key& key) {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_++;
      return nullptr;
    }
    hits_++;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  void Erase(const Key& key) {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    usage_ -= it->second->charge;
    lru_.erase(it->second);
    map_.erase(it);
  }

  void Clear() {
    MutexLock lock(&mu_);
    lru_.clear();
    map_.clear();
    usage_ = 0;
  }

  /// One coherent snapshot of all counters (a single lock acquisition, so
  /// hits/misses/usage are mutually consistent — per-counter getters are
  /// not, when readers race insertions).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t usage = 0;
    uint64_t entries = 0;
  };
  Stats stats() const {
    MutexLock lock(&mu_);
    return Stats{hits_, misses_, evictions_, usage_, map_.size()};
  }

  uint64_t usage() const {
    MutexLock lock(&mu_);
    return usage_;
  }
  uint64_t capacity() const { return capacity_; }
  size_t size() const {
    MutexLock lock(&mu_);
    return map_.size();
  }
  uint64_t hits() const {
    MutexLock lock(&mu_);
    return hits_;
  }
  uint64_t misses() const {
    MutexLock lock(&mu_);
    return misses_;
  }
  uint64_t evictions() const {
    MutexLock lock(&mu_);
    return evictions_;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<Value> value;
    uint64_t charge;
  };

  void EvictIfNeeded() REQUIRES(mu_) {
    while (usage_ > capacity_ && !lru_.empty()) {
      const Entry& victim = lru_.back();
      usage_ -= victim.charge;
      map_.erase(victim.key);
      lru_.pop_back();
      evictions_++;
    }
  }

  const uint64_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hasher> map_
      GUARDED_BY(mu_);
  uint64_t usage_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace sebdb
