#include "common/fault_env.h"

namespace sebdb {

namespace {

Status InjectedCrash() {
  return Status::IOError("injected crash: file system is down");
}

}  // namespace

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env), size_(base_->size()) {}

  Status Append(const Slice& data) override {
    size_t keep = data.size();
    Status s = env_->OnWrite(data.size(), &keep);
    if (keep > 0) {
      // Persist the (possibly torn) prefix even when the op then "crashes":
      // that is exactly what a kill mid-write leaves on disk.
      Status ws = base_->Append(Slice(data.data(), keep));
      if (!ws.ok()) return ws;
    }
    if (!s.ok()) return s;
    size_ += data.size();
    return Status::OK();
  }

  Status Sync() override {
    Status s = env_->OnSync();
    if (!s.ok()) return s;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return size_; }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
  // Mirrors what the caller believes it wrote; diverges from the base file
  // after a torn write, as it would for a buffered writer at crash time.
  uint64_t size_;
};

class FaultReadableFile : public ReadableFile {
 public:
  FaultReadableFile(std::unique_ptr<ReadableFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    size_t keep = n;
    Status s = env_->OnRead(n, &keep);
    if (!s.ok()) return s;
    s = base_->Read(offset, keep, out);
    if (!s.ok()) return s;
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }
  uint64_t size() const override { return base_->size(); }

 private:
  std::unique_ptr<ReadableFile> base_;
  FaultInjectionEnv* env_;
};

void FaultInjectionEnv::ScheduleCrash(uint64_t nth_write,
                                      uint64_t keep_bytes) {
  MutexLock lock(&mu_);
  crash_countdown_ = nth_write;
  crash_keep_bytes_ = keep_bytes;
}

void FaultInjectionEnv::ResetCrash() {
  MutexLock lock(&mu_);
  crashed_ = false;
  crash_countdown_ = 0;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

void FaultInjectionEnv::SetFailWrites(bool fail) {
  MutexLock lock(&mu_);
  fail_writes_ = fail;
}

void FaultInjectionEnv::SetFailSyncs(bool fail) {
  MutexLock lock(&mu_);
  fail_syncs_ = fail;
}

void FaultInjectionEnv::SetFailReads(bool fail) {
  MutexLock lock(&mu_);
  fail_reads_ = fail;
}

void FaultInjectionEnv::SetShortReads(bool on) {
  MutexLock lock(&mu_);
  short_reads_ = on;
}

FaultInjectionEnv::Stats FaultInjectionEnv::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Status FaultInjectionEnv::OnWrite(size_t len, size_t* keep) {
  MutexLock lock(&mu_);
  stats_.write_ops++;
  *keep = len;
  if (crashed_ || fail_writes_) {
    *keep = 0;
    stats_.injected_errors++;
    return InjectedCrash();
  }
  if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
    crashed_ = true;
    *keep = static_cast<size_t>(
        crash_keep_bytes_ < len ? crash_keep_bytes_ : len);
    if (*keep < len) stats_.torn_writes++;
    stats_.injected_errors++;
    return InjectedCrash();
  }
  return Status::OK();
}

Status FaultInjectionEnv::OnSync() {
  MutexLock lock(&mu_);
  stats_.sync_ops++;
  if (crashed_ || fail_syncs_) {
    stats_.injected_errors++;
    return Status::IOError("injected sync failure");
  }
  return Status::OK();
}

Status FaultInjectionEnv::OnRead(size_t len, size_t* keep) {
  MutexLock lock(&mu_);
  *keep = len;
  if (fail_reads_) {
    stats_.injected_errors++;
    return Status::IOError("injected read failure");
  }
  if (short_reads_ && len > 1) {
    *keep = len / 2;
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(const std::string& path,
                                          std::unique_ptr<WritableFile>* out) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return InjectedCrash();
  }
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewWritableFile(path, &base);
  if (!s.ok()) return s;
  *out = std::make_unique<FaultWritableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewReadableFile(const std::string& path,
                                          std::unique_ptr<ReadableFile>* out) {
  std::unique_ptr<ReadableFile> base;
  Status s = base_->NewReadableFile(path, &base);
  if (!s.ok()) return s;
  *out = std::make_unique<FaultReadableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* out) {
  return base_->ListDir(path, out);
}

Status FaultInjectionEnv::RemoveDirRecursive(const std::string& path) {
  return base_->RemoveDirRecursive(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return InjectedCrash();
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return InjectedCrash();
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::FileSize(const std::string& path, uint64_t* size) {
  return base_->FileSize(path, size);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  Status s = OnSync();
  if (!s.ok()) return s;
  return base_->SyncDir(path);
}

}  // namespace sebdb
