#include "common/bitmap.h"

#include <bit>
#include <cassert>

#include "common/coding.h"

namespace sebdb {

void Bitmap::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  // Clear any stale bits beyond the new logical size in the last word.
  if (num_bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (num_bits_ % 64)) - 1;
  }
}

void Bitmap::Set(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] |= uint64_t{1} << (i % 64);
}

void Bitmap::Clear(size_t i) {
  assert(i < num_bits_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

bool Bitmap::Test(size_t i) const {
  if (i >= num_bits_) return false;
  return (words_[i / 64] >> (i % 64)) & 1;
}

void Bitmap::SetGrow(size_t i) {
  if (i >= num_bits_) Resize(i + 1);
  Set(i);
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool Bitmap::AnySet() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

Bitmap& Bitmap::And(const Bitmap& other) {
  if (other.num_bits_ > num_bits_) Resize(other.num_bits_);
  for (size_t i = 0; i < words_.size(); i++) {
    uint64_t o = i < other.words_.size() ? other.words_[i] : 0;
    words_[i] &= o;
  }
  return *this;
}

Bitmap& Bitmap::Or(const Bitmap& other) {
  if (other.num_bits_ > num_bits_) Resize(other.num_bits_);
  for (size_t i = 0; i < other.words_.size(); i++) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

std::vector<size_t> Bitmap::SetBits() const {
  std::vector<size_t> out;
  for (size_t wi = 0; wi < words_.size(); wi++) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int bit = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<size_t>(bit));
      w &= w - 1;
    }
  }
  return out;
}

size_t Bitmap::NextSetBit(size_t from) const {
  if (from >= num_bits_) return npos;
  size_t wi = from / 64;
  uint64_t w = words_[wi] & ~((uint64_t{1} << (from % 64)) - 1);
  while (true) {
    if (w != 0) {
      size_t pos = wi * 64 + static_cast<size_t>(std::countr_zero(w));
      return pos < num_bits_ ? pos : npos;
    }
    if (++wi >= words_.size()) return npos;
    w = words_[wi];
  }
}

void Bitmap::EncodeTo(std::string* dst) const {
  PutVarint64(dst, num_bits_);
  for (uint64_t w : words_) PutFixed64(dst, w);
}

bool Bitmap::DecodeFrom(Slice* input, Bitmap* out) {
  uint64_t num_bits;
  if (!GetVarint64(input, &num_bits)) return false;
  out->Resize(static_cast<size_t>(num_bits));
  for (auto& w : out->words_) {
    if (!GetFixed64(input, &w)) return false;
  }
  return true;
}

std::string Bitmap::ToString() const {
  std::string s;
  s.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; i++) s.push_back(Test(i) ? '1' : '0');
  return s;
}

}  // namespace sebdb
