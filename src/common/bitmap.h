// Dynamically-sized bitmap used by the table-level index and by the first
// level of the layered index (one bit per block, or per histogram bucket).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace sebdb {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits) { Resize(num_bits); }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Grows (or shrinks) the bitmap; new bits are zero.
  void Resize(size_t num_bits);

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Sets bit i, growing the bitmap if i is past the end.
  void SetGrow(size_t i);

  /// Number of set bits.
  size_t Count() const;
  bool AnySet() const;

  /// In-place intersection / union. The result has max(size) bits; the
  /// shorter operand is treated as zero-extended.
  Bitmap& And(const Bitmap& other);
  Bitmap& Or(const Bitmap& other);

  /// Positions of all set bits, ascending.
  std::vector<size_t> SetBits() const;

  /// First set bit at or after `from`, or npos.
  size_t NextSetBit(size_t from) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Compact binary form for embedding in index snapshots / messages.
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, Bitmap* out);

  bool operator==(const Bitmap&) const = default;

  std::string ToString() const;  // e.g. "10110" (bit 0 first), for debugging

 private:
  std::vector<uint64_t> words_;
  size_t num_bits_ = 0;
};

}  // namespace sebdb
