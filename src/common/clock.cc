#include "common/clock.h"

namespace sebdb {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SteadyNowMillis() { return SteadyNowMicros() / 1000; }

const std::shared_ptr<SystemClock>& SystemClock::Default() {
  static std::shared_ptr<SystemClock> instance =
      std::make_shared<SystemClock>();
  return instance;
}

}  // namespace sebdb
