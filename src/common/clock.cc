#include "common/clock.h"

namespace sebdb {

const std::shared_ptr<SystemClock>& SystemClock::Default() {
  static std::shared_ptr<SystemClock> instance =
      std::make_shared<SystemClock>();
  return instance;
}

}  // namespace sebdb
