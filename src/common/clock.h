// Clock abstraction: SystemClock for benchmarks, ManualClock for
// deterministic consensus / gossip tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace sebdb {

/// Microseconds since the unix epoch (system clock) or since simulation
/// start (manual clock).
using Timestamp = int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp NowMicros() const = 0;
  Timestamp NowMillis() const { return NowMicros() / 1000; }
};

class SystemClock : public Clock {
 public:
  Timestamp NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  /// Shared process-wide instance.
  static const std::shared_ptr<SystemClock>& Default();
};

/// Monotonic time since an arbitrary epoch, for timeouts, retry backoff
/// and latency measurement only (never persisted, never compared across
/// processes). The only sanctioned uses of std::chrono::*_clock::now() in
/// src/ live in common/clock.* — scripts/lint.sh enforces this.
int64_t SteadyNowMicros();
int64_t SteadyNowMillis();

/// A clock that only moves when told to; thread-safe.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Timestamp start_micros = 0) : now_(start_micros) {}

  Timestamp NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }
  void AdvanceMicros(Timestamp delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void SetMicros(Timestamp t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace sebdb
