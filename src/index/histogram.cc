#include "index/histogram.h"

#include <algorithm>

namespace sebdb {

Status EqualDepthHistogram::Build(std::vector<Value> sample,
                                  size_t num_buckets,
                                  EqualDepthHistogram* out) {
  if (num_buckets < 2) {
    return Status::InvalidArgument("histogram needs at least 2 buckets");
  }
  if (sample.empty()) {
    return Status::InvalidArgument("histogram sample is empty");
  }
  std::sort(sample.begin(), sample.end(),
            [](const Value& a, const Value& b) { return a.CompareTotal(b) < 0; });

  out->boundaries_.clear();
  // Equal-depth: boundary i sits at quantile i / num_buckets of the sample.
  for (size_t i = 1; i < num_buckets; i++) {
    size_t pos = i * sample.size() / num_buckets;
    if (pos >= sample.size()) pos = sample.size() - 1;
    const Value& boundary = sample[pos];
    if (out->boundaries_.empty() ||
        out->boundaries_.back().CompareTotal(boundary) < 0) {
      out->boundaries_.push_back(boundary);
    }
  }
  if (out->boundaries_.empty()) {
    // Degenerate sample (single distinct value): one boundary, two buckets.
    out->boundaries_.push_back(sample[0]);
  }
  return Status::OK();
}

size_t EqualDepthHistogram::BucketOf(const Value& v) const {
  // Buckets are (k_{i-1}, k_i]; bucket index = count of boundaries < v.
  size_t lo = 0, hi = boundaries_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (boundaries_[mid].CompareTotal(v) < 0) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}

Bitmap EqualDepthHistogram::BucketsOverlapping(const Value* lo,
                                               const Value* hi) const {
  Bitmap result(num_buckets());
  if (num_buckets() == 0) return result;
  size_t first = lo == nullptr ? 0 : BucketOf(*lo);
  size_t last = hi == nullptr ? num_buckets() - 1 : BucketOf(*hi);
  for (size_t b = first; b <= last && b < num_buckets(); b++) result.Set(b);
  return result;
}

}  // namespace sebdb
