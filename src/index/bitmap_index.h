// Table-level bitmap index (paper §IV-B): one bitmap per key (table name —
// or SenID when created for tracking queries); bit i is set iff block i
// contains at least one matching transaction. Generic over the string key so
// the same structure serves Tname and SenID.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "storage/block.h"

namespace sebdb {

class DiscreteBitmapIndex {
 public:
  DiscreteBitmapIndex() = default;

  /// Registers block `bid` as containing the given keys. Blocks must be added
  /// in order (dense heights).
  void AddBlock(BlockId bid, const std::vector<std::string>& keys);

  uint64_t num_blocks() const { return num_blocks_; }
  size_t num_keys() const { return bitmaps_.size(); }

  /// Bitmap for one key (all-zero bitmap of current width if unseen).
  Bitmap Lookup(const std::string& key) const;

  /// Union of the bitmaps of several keys (used by on-off join on discrete
  /// attributes: OR over the distinct off-chain join values).
  Bitmap LookupAny(const std::vector<std::string>& keys) const;

  bool Contains(const std::string& key) const {
    return bitmaps_.contains(key);
  }

  /// All indexed keys (unordered).
  std::vector<std::string> Keys() const;

  /// Checkpoint codec: EncodeTo writes the full index (keys sorted, so the
  /// bytes are deterministic); RestoreFrom rebuilds a fresh index from them.
  void EncodeTo(std::string* dst) const;
  Status RestoreFrom(Slice* in);

 private:
  std::unordered_map<std::string, Bitmap> bitmaps_;
  uint64_t num_blocks_ = 0;
};

/// The paper's table-level index: DiscreteBitmapIndex keyed by Tname,
/// updated from each chained block.
class TableBitmapIndex {
 public:
  /// Scans the block's transactions and flips the bit of every table that
  /// appears in it. CollectTables + MergeTxnDeltas.
  void AddBlock(const Block& block);

  /// The tables appearing in `block`, first-occurrence order — the delta the
  /// parallel apply pipeline hands to MergeTxnDeltas.
  static std::vector<std::string> CollectTables(const Block& block);

  /// Merge step of the parallel apply pipeline: ingests one block from its
  /// pre-collected table list.
  void MergeTxnDeltas(BlockId bid, const std::vector<std::string>& tables) {
    index_.AddBlock(bid, tables);
  }

  uint64_t num_blocks() const { return index_.num_blocks(); }
  Bitmap BlocksWithTable(const std::string& table_name) const {
    return index_.Lookup(table_name);
  }
  bool HasTable(const std::string& table_name) const {
    return index_.Contains(table_name);
  }

  void EncodeTo(std::string* dst) const { index_.EncodeTo(dst); }
  Status RestoreFrom(Slice* in) { return index_.RestoreFrom(in); }

 private:
  DiscreteBitmapIndex index_;
};

}  // namespace sebdb
