// Pointer to a transaction's physical position: (block height, position in
// block). What the second level of the layered index stores and what
// BlockStore::ReadTransaction dereferences.
#pragma once

#include <cstdint>
#include <string>

#include "storage/block.h"

namespace sebdb {

struct TxnPointer {
  BlockId block = 0;
  uint32_t index = 0;

  bool operator==(const TxnPointer&) const = default;
  auto operator<=>(const TxnPointer&) const = default;

  std::string ToString() const {
    return "(" + std::to_string(block) + "," + std::to_string(index) + ")";
  }
};

}  // namespace sebdb
