#include "index/bitmap_index.h"

#include <algorithm>

#include "common/coding.h"

namespace sebdb {

void DiscreteBitmapIndex::AddBlock(BlockId bid,
                                   const std::vector<std::string>& keys) {
  if (bid >= num_blocks_) num_blocks_ = bid + 1;
  for (const auto& key : keys) {
    bitmaps_[key].SetGrow(bid);
  }
}

Bitmap DiscreteBitmapIndex::Lookup(const std::string& key) const {
  auto it = bitmaps_.find(key);
  Bitmap result(num_blocks_);
  if (it != bitmaps_.end()) result.Or(it->second);
  return result;
}

Bitmap DiscreteBitmapIndex::LookupAny(
    const std::vector<std::string>& keys) const {
  Bitmap result(num_blocks_);
  for (const auto& key : keys) {
    auto it = bitmaps_.find(key);
    if (it != bitmaps_.end()) result.Or(it->second);
  }
  return result;
}

std::vector<std::string> DiscreteBitmapIndex::Keys() const {
  std::vector<std::string> out;
  out.reserve(bitmaps_.size());
  for (const auto& [key, bitmap] : bitmaps_) out.push_back(key);
  return out;
}

void DiscreteBitmapIndex::EncodeTo(std::string* dst) const {
  PutVarint64(dst, num_blocks_);
  std::vector<std::string> keys = Keys();
  std::sort(keys.begin(), keys.end());
  PutVarint32(dst, static_cast<uint32_t>(keys.size()));
  for (const auto& key : keys) {
    PutLengthPrefixed(dst, key);
    bitmaps_.at(key).EncodeTo(dst);
  }
}

Status DiscreteBitmapIndex::RestoreFrom(Slice* in) {
  uint32_t nkeys;
  if (!GetVarint64(in, &num_blocks_) || !GetVarint32(in, &nkeys) ||
      nkeys > in->size()) {
    return Status::Corruption("truncated bitmap index");
  }
  bitmaps_.clear();
  for (uint32_t i = 0; i < nkeys; i++) {
    Slice key;
    Bitmap bitmap;
    if (!GetLengthPrefixed(in, &key) || !Bitmap::DecodeFrom(in, &bitmap)) {
      return Status::Corruption("truncated bitmap index entry");
    }
    bitmaps_[key.ToString()] = std::move(bitmap);
  }
  return Status::OK();
}

std::vector<std::string> TableBitmapIndex::CollectTables(const Block& block) {
  std::vector<std::string> tables;
  for (const auto& txn : block.transactions()) {
    if (std::find(tables.begin(), tables.end(), txn.tname()) == tables.end()) {
      tables.push_back(txn.tname());
    }
  }
  return tables;
}

void TableBitmapIndex::AddBlock(const Block& block) {
  MergeTxnDeltas(block.height(), CollectTables(block));
}

}  // namespace sebdb
