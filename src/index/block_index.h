// Block-level B+-tree (paper §IV-B): keyed by the co-monotone triple
// (bid, tid, Ts). One tree answers three lookups — block by id, block
// containing a transaction id, block covering a timestamp — each via a
// monotone-predicate descent. Entries are appended in order, so leaves stay
// full (the paper's observation).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bitmap.h"
#include "common/clock.h"
#include "common/status.h"
#include "index/bptree.h"
#include "storage/block.h"

namespace sebdb {

struct BlockIndexKey {
  BlockId bid = 0;
  TransactionId first_tid = 0;
  Timestamp ts = 0;
};

struct BlockIndexEntry {
  BlockId bid = 0;
  TransactionId first_tid = 0;  // tid of the block's first transaction
  uint32_t num_transactions = 0;
  Timestamp ts = 0;  // packaging timestamp
};

class BlockIndex {
 public:
  BlockIndex() : tree_(KeyCmp{}) {}

  /// Appends the entry for a newly chained block; heights must be dense and
  /// ascending.
  Status Add(const BlockHeader& header);

  uint64_t num_blocks() const { return tree_.size(); }

  /// Block with the given id.
  Status FindByBlockId(BlockId bid, BlockIndexEntry* out) const;
  /// Block containing the given global transaction id.
  Status FindByTid(TransactionId tid, BlockIndexEntry* out) const;
  /// First block with packaging timestamp >= ts (NotFound past the tip).
  Status FindFirstAtOrAfter(Timestamp ts, BlockIndexEntry* out) const;

  /// Bitmap over blocks whose timestamp lies in [start, end] (paper
  /// Algorithms 1–3, line "B <- BI(c, e)").
  Bitmap BlocksInWindow(Timestamp start, Timestamp end) const;

  int tree_height() const { return tree_.height(); }

 private:
  struct KeyCmp {
    bool operator()(const BlockIndexKey& a, const BlockIndexKey& b) const {
      return a.bid < b.bid;  // co-monotone with first_tid and ts
    }
  };

  BpTree<BlockIndexKey, BlockIndexEntry, KeyCmp> tree_;
  Timestamp last_ts_ = INT64_MIN;
  TransactionId next_tid_ = 0;
};

}  // namespace sebdb
