// Block-level B+-tree (paper §IV-B): keyed by the co-monotone triple
// (bid, tid, Ts). One tree answers three lookups — block by id, block
// containing a transaction id, block covering a timestamp — each via a
// monotone-predicate descent. Entries are appended in order, so leaves stay
// full (the paper's observation).
//
// Persistence: after a restart from a checkpoint, blocks below frozen_end()
// are served from checkpointed disk segments (one immutable DiskBpTree per
// checkpoint delta, faulted through the buffer pool) and everything chained
// since the restart lives in the in-memory tree. The co-monotone trick
// extends across the split: a monotone predicate's boundary segment is found
// from the segments' first keys, then a single disk descent finishes the
// seek (VisitFrom). Entries are ~40 bytes/block, so keeping the in-memory
// tail since restart is a deliberate trade for zero-I/O queries on recent
// blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bitmap.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/status.h"
#include "index/bptree.h"
#include "storage/block.h"
#include "storage/buffer_manager.h"
#include "storage/disk_bptree.h"

namespace sebdb {

struct BlockIndexKey {
  BlockId bid = 0;
  TransactionId first_tid = 0;
  Timestamp ts = 0;
};

struct BlockIndexEntry {
  BlockId bid = 0;
  TransactionId first_tid = 0;  // tid of the block's first transaction
  uint32_t num_transactions = 0;
  Timestamp ts = 0;  // packaging timestamp
};

struct BlockIndexKeyCmp {
  bool operator()(const BlockIndexKey& a, const BlockIndexKey& b) const {
    return a.bid < b.bid;  // co-monotone with first_tid and ts
  }
};

/// On-disk codec for checkpointed block-index trees.
struct BlockIndexCodec {
  static void EncodeKey(std::string* dst, const BlockIndexKey& k) {
    PutVarint64(dst, k.bid);
    PutVarint64(dst, k.first_tid);
    PutVarSigned64(dst, k.ts);
  }
  static bool DecodeKey(Slice* in, BlockIndexKey* k) {
    return GetVarint64(in, &k->bid) && GetVarint64(in, &k->first_tid) &&
           GetVarSigned64(in, &k->ts);
  }
  static void EncodeVal(std::string* dst, const BlockIndexEntry& e) {
    PutVarint64(dst, e.bid);
    PutVarint64(dst, e.first_tid);
    PutVarint32(dst, e.num_transactions);
    PutVarSigned64(dst, e.ts);
  }
  static bool DecodeVal(Slice* in, BlockIndexEntry* e) {
    return GetVarint64(in, &e->bid) && GetVarint64(in, &e->first_tid) &&
           GetVarint32(in, &e->num_transactions) &&
           GetVarSigned64(in, &e->ts);
  }
};

class BlockIndex {
 public:
  using DiskTree =
      DiskBpTree<BlockIndexKey, BlockIndexEntry, BlockIndexCodec,
                 BlockIndexKeyCmp>;

  /// One checkpoint delta: `entries` consecutive blocks starting at `first`
  /// (the block index holds exactly one entry per block, so the entry count
  /// is the block count). entries == 0 marks a delta written while no new
  /// blocks had arrived.
  struct SegmentRef {
    PageId root = kInvalidPageId;
    uint64_t entries = 0;
    BlockId first = 0;
    BlockIndexKey first_key;  // meaningful when entries > 0
  };

  BlockIndex() : tree_(BlockIndexKeyCmp{}) {}

  /// Appends the entry for a newly chained block; heights must be dense and
  /// ascending. During a scheduled apply this runs as one merge-phase task
  /// under IndexSet::mu_ (DESIGN.md §13) — one task per independent index
  /// structure, so no two tasks touch the same BlockIndex concurrently.
  Status Add(const BlockHeader& header);

  uint64_t num_blocks() const { return frozen_blocks_ + tree_.size(); }
  /// Blocks below this height are served from checkpoint segments.
  uint64_t frozen_end() const { return frozen_blocks_; }

  /// Block with the given id.
  Status FindByBlockId(BlockId bid, BlockIndexEntry* out) const;
  /// Block containing the given global transaction id.
  Status FindByTid(TransactionId tid, BlockIndexEntry* out) const;
  /// First block with packaging timestamp >= ts (NotFound past the tip).
  Status FindFirstAtOrAfter(Timestamp ts, BlockIndexEntry* out) const;

  /// Bitmap over blocks whose timestamp lies in [start, end] (paper
  /// Algorithms 1–3, line "B <- BI(c, e)"). I/O errors against checkpoint
  /// segments degrade to an empty window for the affected range.
  Bitmap BlocksInWindow(Timestamp start, Timestamp end) const;

  int tree_height() const { return tree_.height(); }

  // --- checkpoint protocol (driven by IndexSet; single-threaded) ---

  /// Blocks covered by adopted deltas (the next delta starts here). Unlike
  /// frozen_end(), advances on every AdoptFrozen — the in-memory tree keeps
  /// covering adopted blocks until a restore.
  uint64_t persisted_end() const;

  /// Streams the entries of blocks [persisted_end(), up_to) into `file` as
  /// one tree and describes it in *ref. Pure write; no index state changes.
  Status WriteFrozenDelta(BufferManager* pool, BufferManager::FileId file,
                          uint64_t up_to, SegmentRef* ref) const;

  /// Records a published delta for future EncodeCheckpointState calls. The
  /// in-memory tree keeps covering the blocks (cheap, and keeps recent-block
  /// queries I/O-free); the segment only goes live on the next restore.
  void AdoptFrozen(const SegmentRef& ref);

  /// Serializes every adopted segment ref (+ the pending one, if any) and
  /// the monotonicity cursors. Segment file names are tracked by the caller
  /// in the same order.
  void EncodeCheckpointState(const SegmentRef* pending,
                             std::string* dst) const;

  /// Rebuilds from a checkpoint: files[i] backs the i-th encoded segment.
  /// All checkpointed blocks come back frozen; the tail replay refills the
  /// in-memory tree above them.
  Status RestoreCheckpoint(BufferManager* pool,
                           std::vector<BufferManager::FileId> files,
                           Slice state);

 private:
  struct LiveSegment {
    BufferManager::FileId file = BufferManager::kInvalidFileId;
    SegmentRef ref;
  };
  using MemTree = BpTree<BlockIndexKey, BlockIndexEntry, BlockIndexKeyCmp>;

  /// Visits entries in key order starting from the first one satisfying the
  /// monotone predicate, across segments and the in-memory tail, until
  /// `visit` returns false.
  Status VisitFrom(
      const std::function<bool(const BlockIndexKey&)>& pred,
      const std::function<bool(const BlockIndexEntry&)>& visit) const;

  BufferManager* pool_ = nullptr;
  std::vector<LiveSegment> segments_;  // non-empty deltas, installed at restore
  uint64_t frozen_blocks_ = 0;         // blocks covered by segments_
  std::vector<SegmentRef> adopted_;    // every delta, checkpoint order
  MemTree tree_;                       // blocks [frozen_blocks_, num_blocks())
  Timestamp last_ts_ = INT64_MIN;
  TransactionId next_tid_ = 0;
};

}  // namespace sebdb
