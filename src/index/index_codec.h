// Key/value codec plugging Value-keyed index entries into the disk-resident
// B+-tree (storage/disk_bptree.h). The block index's codec lives with its
// key type in block_index.h.
#pragma once

#include <cstdint>

#include "common/coding.h"
#include "common/slice.h"
#include "types/value.h"

namespace sebdb {

/// Second-level layered-index trees: attribute value -> position in block.
struct ValuePosCodec {
  static void EncodeKey(std::string* dst, const Value& v) { v.EncodeTo(dst); }
  static bool DecodeKey(Slice* in, Value* v) {
    return Value::DecodeFrom(in, v);
  }
  static void EncodeVal(std::string* dst, const uint32_t& pos) {
    PutVarint32(dst, pos);
  }
  static bool DecodeVal(Slice* in, uint32_t* pos) {
    return GetVarint32(in, pos);
  }
};

}  // namespace sebdb
