// Layered index (paper §IV-B, Fig. 4). Two levels:
//   1. per-block summaries of the indexed attribute's values — for a
//      continuous attribute, a bitmap over the buckets of an equal-depth
//      histogram; for a discrete attribute, one bitmap over blocks per value;
//   2. one B+-tree per block on the attribute, bulk-loaded when the block is
//      chained (no rebalancing, batch-append friendly).
// A range query ANDs the query's bucket bitmap against each block entry to
// filter blocks, then searches the surviving blocks' trees.
//
// Created on an application-level column of one table (range/point queries),
// or on a system-level column (SenID / Tname) across all tables (tracking
// queries).
//
// Persistence: the second level is hybrid. Blocks below frozen_end() have
// their trees in checkpoint page files (immutable DiskBpTrees, faulted
// through a BufferManager); blocks above it — chained since the last
// checkpoint — keep ordinary in-memory trees. The first level (bitmaps,
// histogram) always stays in memory and is serialized wholesale into each
// checkpoint's meta blob (EncodeCheckpointState / RestoreCheckpoint).
// Checkpointing appends one delta file covering the blocks frozen since the
// previous checkpoint (WriteFrozenDelta), and after the manifest publishes,
// AdoptFrozen swaps those blocks' in-memory trees for their disk refs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bitmap.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "index/bptree.h"
#include "index/histogram.h"
#include "index/index_codec.h"
#include "index/txn_pointer.h"
#include "storage/block.h"
#include "storage/buffer_manager.h"
#include "storage/disk_bptree.h"
#include "types/value.h"

namespace sebdb {

/// Extracts the indexed attribute from a transaction. Returns false when the
/// transaction does not participate in this index (different table).
using ColumnExtractor = std::function<bool(const Transaction&, Value*)>;

struct LayeredIndexOptions {
  /// Discrete attributes get per-value block bitmaps; continuous attributes
  /// get histogram-bucket bitmaps.
  bool discrete = false;
  /// Bucket count of the equal-depth histogram (continuous only). The paper
  /// sets "the depth of histogram" to 100 in the range-query experiments.
  size_t histogram_buckets = 100;
  /// Byte budget for in-memory trees materialized from frozen blocks (the
  /// merge-join path needs whole trees). 0 disables caching (each request
  /// rebuilds).
  uint64_t materialized_cache_bytes = 8ull << 20;
};

class LayeredIndex {
 public:
  struct ValueCmp {
    bool operator()(const Value& a, const Value& b) const {
      return a.CompareTotal(b) < 0;
    }
  };
  /// Per-block second level: attribute value -> position in block.
  using SecondLevelTree = BpTree<Value, uint32_t, ValueCmp>;
  using DiskTree = DiskBpTree<Value, uint32_t, ValuePosCodec, ValueCmp>;

  /// Where a frozen block's tree lives: which delta file (ordinal into the
  /// checkpoint's file list for this index) and which root page. A block
  /// with no indexed entries has file_ordinal == kNoTree.
  struct FrozenTreeRef {
    static constexpr uint32_t kNoTree = 0xFFFFFFFFu;
    uint32_t file_ordinal = kNoTree;
    PageId root = kInvalidPageId;
    uint64_t entries = 0;
  };

  LayeredIndex(std::string name, LayeredIndexOptions options,
               ColumnExtractor extractor)
      : name_(std::move(name)),
        options_(options),
        extractor_(std::move(extractor)) {}

  const std::string& name() const { return name_; }
  const LayeredIndexOptions& options() const { return options_; }

  /// Installs the histogram (continuous indexes only; required before the
  /// first AddBlock). Typically built by sampling historical transactions.
  Status SetHistogram(EqualDepthHistogram histogram);
  const EqualDepthHistogram& histogram() const { return histogram_; }

  /// Indexes a newly chained block: appends the first-level entry and
  /// bulk-loads the block's second-level tree. Blocks must arrive in order.
  /// Extraction + MergeTxnDeltas; the scheduled apply path runs the two
  /// halves on different threads (see IndexSet::ApplyBlockScheduled).
  Status AddBlock(const Block& block);

  /// The installed extractor. The parallel apply pipeline's execute phase
  /// runs it off-index into per-transaction delta slots, so the merge step
  /// can ingest a block without re-touching the transactions.
  const ColumnExtractor& extractor() const { return extractor_; }

  /// Merge step of the parallel apply pipeline: ingests one block from
  /// pre-extracted (value, block position) pairs, which MUST be in block
  /// position (= original transaction) order — exactly what AddBlock
  /// gathers. Sorting, histogram bootstrap, first-level update and the
  /// bulk-load all happen here, so serial and scheduled apply share one
  /// deterministic code path and produce byte-identical state.
  Status MergeTxnDeltas(uint64_t height,
                        std::vector<std::pair<Value, uint32_t>> entries);

  uint64_t num_blocks() const { return num_blocks_; }
  /// Blocks below this height are disk-backed; at or above, in memory.
  uint64_t frozen_end() const { return frozen_.size(); }

  /// First-level filter: bitmap over blocks that may contain values in
  /// [lo, hi] (either bound may be null for unbounded; lo == hi for point).
  Bitmap CandidateBlocks(const Value* lo, const Value* hi) const;

  /// Bitmap of blocks that contain at least one indexed entry.
  Bitmap BlocksWithEntries() const;

  /// Second-level search in one block; appends matching positions to *out in
  /// attribute order. Frozen blocks are searched directly on their disk
  /// trees (no materialization).
  Status SearchBlock(BlockId bid, const Value* lo, const Value* hi,
                     std::vector<TxnPointer>* out) const;

  /// The block's second-level tree, materializing (and caching) it from disk
  /// for frozen blocks. *out is nullptr when the block holds no entries.
  /// Leaf order is attribute order — what the sort-merge joins exploit.
  Status Tree(BlockId bid, std::shared_ptr<const SecondLevelTree>* out) const;

  /// First-level bucket bitmap of one block (continuous only; empty bitmap
  /// if the block holds no entries). Used by the join intersect() tests.
  const Bitmap* BlockBuckets(BlockId bid) const;

  /// Discrete only: blocks containing the exact value.
  Bitmap BlocksWithValue(const Value& v) const;

  /// Discrete only: the full first level, value -> blocks containing it.
  /// (The discrete on-chain join iterates common values; paper Alg. 2.)
  const std::map<Value, Bitmap, ValueCmp>& discrete_values() const {
    return value_blocks_;
  }

  /// Approximate memory footprint (reported by index stats).
  size_t ApproximateEntryCount() const { return total_entries_; }

  // --- checkpoint protocol (driven by IndexSet; single-threaded) ---

  /// Streams the trees of blocks [frozen_end(), up_to) into `file` (one
  /// builder per non-empty block) and returns their refs, with file_ordinal
  /// pre-assigned to the slot the file will occupy after AdoptFrozen. Pure
  /// write: no index state changes (the checkpoint may still fail).
  Status WriteFrozenDelta(BufferManager* pool, BufferManager::FileId file,
                          uint64_t up_to, std::vector<FrozenTreeRef>* refs);

  /// Commits a published delta: registers `file`, records the refs, and
  /// drops the now-frozen blocks' in-memory trees (the memory bound that
  /// makes long-lived nodes viable). `refs` must be WriteFrozenDelta's.
  void AdoptFrozen(BufferManager* pool, BufferManager::FileId file,
                   const std::vector<FrozenTreeRef>& refs);

  /// Serializes the first level + frozen refs, where `pending` are refs not
  /// yet adopted (from an in-flight WriteFrozenDelta; frozen refs + pending
  /// must cover every indexed block, i.e. checkpoints snapshot the tip).
  void EncodeCheckpointState(const std::vector<FrozenTreeRef>& pending,
                             std::string* dst) const;

  /// Rebuilds from a checkpoint: `files` are the index's delta files in
  /// ordinal order (already opened in `pool`), `state` is what
  /// EncodeCheckpointState produced at the checkpoint height. The index
  /// resumes with every checkpointed block frozen and an empty tail.
  Status RestoreCheckpoint(BufferManager* pool,
                           std::vector<BufferManager::FileId> files,
                           Slice state);

 private:
  Status DecodeFirstLevel(Slice* in);
  void EncodeFirstLevel(std::string* dst) const;
  DiskTree FrozenTree(const FrozenTreeRef& ref) const;

  std::string name_;
  LayeredIndexOptions options_;
  ColumnExtractor extractor_;
  EqualDepthHistogram histogram_;
  bool histogram_set_ = false;

  // First level. Continuous: block -> bucket bitmap. Discrete: value ->
  // block bitmap.
  std::vector<Bitmap> block_buckets_;
  std::map<Value, Bitmap, ValueCmp> value_blocks_;

  // Second level, frozen part: frozen_[bid] locates block bid's disk tree
  // inside tree_files_. Grown only by RestoreCheckpoint/AdoptFrozen.
  BufferManager* pool_ = nullptr;
  std::vector<BufferManager::FileId> tree_files_;
  std::vector<FrozenTreeRef> frozen_;

  // Second level, tail part: in-memory trees of blocks chained since the
  // last checkpoint; block_trees_[i] belongs to block frozen_end() + i
  // (nullptr when the block holds no entries).
  std::vector<std::shared_ptr<SecondLevelTree>> block_trees_;

  // Frozen trees materialized back into memory for merge joins, keyed by
  // block id, charged by decoded bytes. Lazily created; nullptr when
  // materialized_cache_bytes == 0.
  mutable std::unique_ptr<LruCache<uint64_t, const SecondLevelTree>>
      materialized_;

  uint64_t num_blocks_ = 0;
  size_t total_entries_ = 0;
};

}  // namespace sebdb
