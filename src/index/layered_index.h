// Layered index (paper §IV-B, Fig. 4). Two levels:
//   1. per-block summaries of the indexed attribute's values — for a
//      continuous attribute, a bitmap over the buckets of an equal-depth
//      histogram; for a discrete attribute, one bitmap over blocks per value;
//   2. one B+-tree per block on the attribute, bulk-loaded when the block is
//      chained (no rebalancing, batch-append friendly).
// A range query ANDs the query's bucket bitmap against each block entry to
// filter blocks, then searches the surviving blocks' trees.
//
// Created on an application-level column of one table (range/point queries),
// or on a system-level column (SenID / Tname) across all tables (tracking
// queries).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "index/bptree.h"
#include "index/histogram.h"
#include "index/txn_pointer.h"
#include "storage/block.h"
#include "types/value.h"

namespace sebdb {

/// Extracts the indexed attribute from a transaction. Returns false when the
/// transaction does not participate in this index (different table).
using ColumnExtractor = std::function<bool(const Transaction&, Value*)>;

struct LayeredIndexOptions {
  /// Discrete attributes get per-value block bitmaps; continuous attributes
  /// get histogram-bucket bitmaps.
  bool discrete = false;
  /// Bucket count of the equal-depth histogram (continuous only). The paper
  /// sets "the depth of histogram" to 100 in the range-query experiments.
  size_t histogram_buckets = 100;
};

class LayeredIndex {
 public:
  struct ValueCmp {
    bool operator()(const Value& a, const Value& b) const {
      return a.CompareTotal(b) < 0;
    }
  };
  /// Per-block second level: attribute value -> position in block.
  using SecondLevelTree = BpTree<Value, uint32_t, ValueCmp>;

  LayeredIndex(std::string name, LayeredIndexOptions options,
               ColumnExtractor extractor)
      : name_(std::move(name)),
        options_(options),
        extractor_(std::move(extractor)) {}

  const std::string& name() const { return name_; }
  const LayeredIndexOptions& options() const { return options_; }

  /// Installs the histogram (continuous indexes only; required before the
  /// first AddBlock). Typically built by sampling historical transactions.
  Status SetHistogram(EqualDepthHistogram histogram);
  const EqualDepthHistogram& histogram() const { return histogram_; }

  /// Indexes a newly chained block: appends the first-level entry and
  /// bulk-loads the block's second-level tree. Blocks must arrive in order.
  Status AddBlock(const Block& block);

  uint64_t num_blocks() const { return num_blocks_; }

  /// First-level filter: bitmap over blocks that may contain values in
  /// [lo, hi] (either bound may be null for unbounded; lo == hi for point).
  Bitmap CandidateBlocks(const Value* lo, const Value* hi) const;

  /// Bitmap of blocks that contain at least one indexed entry.
  Bitmap BlocksWithEntries() const;

  /// Second-level search in one block; appends matching positions to *out in
  /// attribute order.
  Status SearchBlock(BlockId bid, const Value* lo, const Value* hi,
                     std::vector<TxnPointer>* out) const;

  /// The block's second-level tree (nullptr if the block holds no entries).
  /// Leaf order is attribute order — what the sort-merge joins exploit.
  const SecondLevelTree* BlockTree(BlockId bid) const;

  /// First-level bucket bitmap of one block (continuous only; empty bitmap
  /// if the block holds no entries). Used by the join intersect() tests.
  const Bitmap* BlockBuckets(BlockId bid) const;

  /// Discrete only: blocks containing the exact value.
  Bitmap BlocksWithValue(const Value& v) const;

  /// Discrete only: the full first level, value -> blocks containing it.
  /// (The discrete on-chain join iterates common values; paper Alg. 2.)
  const std::map<Value, Bitmap, ValueCmp>& discrete_values() const {
    return value_blocks_;
  }

  /// Approximate memory footprint (reported by index stats).
  size_t ApproximateEntryCount() const { return total_entries_; }

 private:
  std::string name_;
  LayeredIndexOptions options_;
  ColumnExtractor extractor_;
  EqualDepthHistogram histogram_;
  bool histogram_set_ = false;

  // First level. Continuous: block -> bucket bitmap. Discrete: value ->
  // block bitmap.
  std::vector<Bitmap> block_buckets_;
  std::map<Value, Bitmap, ValueCmp> value_blocks_;

  // Second level: one bulk-loaded tree per block (nullptr when empty).
  std::vector<std::unique_ptr<SecondLevelTree>> block_trees_;

  uint64_t num_blocks_ = 0;
  size_t total_entries_ = 0;
};

}  // namespace sebdb
