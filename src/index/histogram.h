// Equal-depth histogram over a continuous attribute (paper §IV-B): bucket
// boundaries are chosen from a sample of historical values so each bucket
// holds roughly the same number of samples. The first level of a layered
// index on a continuous attribute maps each block to the set of buckets its
// values fall into. Bucket count ("height of the histogram") is configurable
// for different precisions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "types/value.h"

namespace sebdb {

class EqualDepthHistogram {
 public:
  EqualDepthHistogram() = default;

  /// Builds boundaries from a sample. The resulting histogram has up to
  /// `num_buckets` buckets: (-inf, k1], (k1, k2], ..., (kp, +inf). Fewer
  /// buckets result when the sample has few distinct values. A continuous
  /// layered index bootstraps its histogram from the first block's entries
  /// in transaction order (LayeredIndex::MergeTxnDeltas) — the scheduled
  /// apply hands entries over in that same order, so boundaries are
  /// byte-identical to a serial build.
  static Status Build(std::vector<Value> sample, size_t num_buckets,
                      EqualDepthHistogram* out);

  /// Reconstructs a histogram from previously built boundaries (checkpoint
  /// restore; boundaries must be sorted ascending, as boundaries() returns).
  static EqualDepthHistogram FromBoundaries(std::vector<Value> boundaries) {
    EqualDepthHistogram out;
    out.boundaries_ = std::move(boundaries);
    return out;
  }

  /// Number of buckets (boundaries + 1). Zero means not built.
  size_t num_buckets() const {
    return boundaries_.empty() ? 0 : boundaries_.size() + 1;
  }
  const std::vector<Value>& boundaries() const { return boundaries_; }

  /// Bucket index of a value: first bucket whose upper boundary >= v.
  size_t BucketOf(const Value& v) const;

  /// Bitmap over buckets intersecting [lo, hi] (unbounded sides via nullptr).
  Bitmap BucketsOverlapping(const Value* lo, const Value* hi) const;

 private:
  // p sorted boundary values k1 < k2 < ... < kp; p + 1 buckets.
  std::vector<Value> boundaries_;
};

}  // namespace sebdb
