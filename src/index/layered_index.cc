#include "index/layered_index.h"

#include <algorithm>

namespace sebdb {

Status LayeredIndex::SetHistogram(EqualDepthHistogram histogram) {
  if (options_.discrete) {
    return Status::InvalidArgument("discrete index takes no histogram");
  }
  if (num_blocks_ > 0) {
    return Status::InvalidArgument("histogram must be set before indexing");
  }
  if (histogram.num_buckets() == 0) {
    return Status::InvalidArgument("histogram not built");
  }
  histogram_ = std::move(histogram);
  histogram_set_ = true;
  return Status::OK();
}

Status LayeredIndex::AddBlock(const Block& block) {
  if (block.height() != num_blocks_) {
    return Status::InvalidArgument("layered index blocks must arrive in order");
  }

  // Gather (value, position) pairs for transactions this index covers.
  std::vector<std::pair<Value, uint32_t>> entries;
  const auto& txns = block.transactions();
  for (uint32_t i = 0; i < txns.size(); i++) {
    Value v;
    if (extractor_(txns[i], &v)) entries.emplace_back(std::move(v), i);
  }

  // An index created on an empty chain has no history to sample; bootstrap
  // the equal-depth histogram from the first block that carries entries.
  if (!options_.discrete && !histogram_set_ && !entries.empty()) {
    std::vector<Value> sample;
    sample.reserve(entries.size());
    for (const auto& [v, pos] : entries) sample.push_back(v);
    EqualDepthHistogram histogram;
    Status s = EqualDepthHistogram::Build(std::move(sample),
                                          options_.histogram_buckets,
                                          &histogram);
    if (!s.ok()) return s;
    histogram_ = std::move(histogram);
    histogram_set_ = true;
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              int c = a.first.CompareTotal(b.first);
              return c != 0 ? c < 0 : a.second < b.second;
            });

  // First level.
  if (options_.discrete) {
    for (const auto& [v, pos] : entries) {
      value_blocks_[v].SetGrow(block.height());
    }
  } else {
    Bitmap buckets(histogram_.num_buckets());
    for (const auto& [v, pos] : entries) {
      buckets.Set(histogram_.BucketOf(v));
    }
    block_buckets_.push_back(std::move(buckets));
  }

  // Second level: bulk-load the per-block tree.
  std::unique_ptr<SecondLevelTree> tree;
  if (!entries.empty()) {
    tree = std::make_unique<SecondLevelTree>();
    tree->BulkLoad(std::move(entries));
  }
  total_entries_ += tree ? tree->size() : 0;
  block_trees_.push_back(std::move(tree));
  num_blocks_++;
  return Status::OK();
}

Bitmap LayeredIndex::CandidateBlocks(const Value* lo, const Value* hi) const {
  Bitmap result(num_blocks_);
  if (options_.discrete) {
    if (lo != nullptr && hi != nullptr && lo->CompareTotal(*hi) == 0) {
      return BlocksWithValue(*lo);
    }
    // Range over a discrete attribute: union of all values in the range.
    for (const auto& [v, blocks] : value_blocks_) {
      if (lo != nullptr && v.CompareTotal(*lo) < 0) continue;
      if (hi != nullptr && v.CompareTotal(*hi) > 0) break;
      result.Or(blocks);
    }
    return result;
  }
  Bitmap query_buckets = histogram_.BucketsOverlapping(lo, hi);
  for (uint64_t bid = 0; bid < block_buckets_.size(); bid++) {
    Bitmap probe = block_buckets_[bid];  // copy; AND is destructive
    probe.And(query_buckets);
    if (probe.AnySet()) result.Set(bid);
  }
  return result;
}

Bitmap LayeredIndex::BlocksWithEntries() const {
  Bitmap result(num_blocks_);
  for (uint64_t bid = 0; bid < block_trees_.size(); bid++) {
    if (block_trees_[bid] != nullptr) result.Set(bid);
  }
  return result;
}

Status LayeredIndex::SearchBlock(BlockId bid, const Value* lo, const Value* hi,
                                 std::vector<TxnPointer>* out) const {
  if (bid >= num_blocks_) {
    return Status::InvalidArgument("block not indexed yet");
  }
  const SecondLevelTree* tree = block_trees_[bid].get();
  if (tree == nullptr) return Status::OK();
  auto it = lo != nullptr ? tree->SeekGE(*lo) : tree->Begin();
  for (; it.Valid(); it.Next()) {
    if (hi != nullptr && it.key().CompareTotal(*hi) > 0) break;
    out->push_back(TxnPointer{bid, it.value()});
  }
  return Status::OK();
}

const LayeredIndex::SecondLevelTree* LayeredIndex::BlockTree(
    BlockId bid) const {
  if (bid >= block_trees_.size()) return nullptr;
  return block_trees_[bid].get();
}

const Bitmap* LayeredIndex::BlockBuckets(BlockId bid) const {
  if (options_.discrete || bid >= block_buckets_.size()) return nullptr;
  return &block_buckets_[bid];
}

Bitmap LayeredIndex::BlocksWithValue(const Value& v) const {
  Bitmap result(num_blocks_);
  auto it = value_blocks_.find(v);
  if (it != value_blocks_.end()) result.Or(it->second);
  return result;
}

}  // namespace sebdb
