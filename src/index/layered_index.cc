#include "index/layered_index.h"

#include <algorithm>

#include "common/coding.h"

namespace sebdb {

Status LayeredIndex::SetHistogram(EqualDepthHistogram histogram) {
  if (options_.discrete) {
    return Status::InvalidArgument("discrete index takes no histogram");
  }
  if (num_blocks_ > 0) {
    return Status::InvalidArgument("histogram must be set before indexing");
  }
  if (histogram.num_buckets() == 0) {
    return Status::InvalidArgument("histogram not built");
  }
  histogram_ = std::move(histogram);
  histogram_set_ = true;
  return Status::OK();
}

Status LayeredIndex::AddBlock(const Block& block) {
  // Gather (value, position) pairs for transactions this index covers.
  std::vector<std::pair<Value, uint32_t>> entries;
  const auto& txns = block.transactions();
  for (uint32_t i = 0; i < txns.size(); i++) {
    Value v;
    if (extractor_(txns[i], &v)) entries.emplace_back(std::move(v), i);
  }
  return MergeTxnDeltas(block.height(), std::move(entries));
}

Status LayeredIndex::MergeTxnDeltas(
    uint64_t height, std::vector<std::pair<Value, uint32_t>> entries) {
  if (height != num_blocks_) {
    return Status::InvalidArgument("layered index blocks must arrive in order");
  }

  // An index created on an empty chain has no history to sample; bootstrap
  // the equal-depth histogram from the first block that carries entries.
  if (!options_.discrete && !histogram_set_ && !entries.empty()) {
    std::vector<Value> sample;
    sample.reserve(entries.size());
    for (const auto& [v, pos] : entries) sample.push_back(v);
    EqualDepthHistogram histogram;
    Status s = EqualDepthHistogram::Build(std::move(sample),
                                          options_.histogram_buckets,
                                          &histogram);
    if (!s.ok()) return s;
    histogram_ = std::move(histogram);
    histogram_set_ = true;
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              int c = a.first.CompareTotal(b.first);
              return c != 0 ? c < 0 : a.second < b.second;
            });

  // First level.
  if (options_.discrete) {
    for (const auto& [v, pos] : entries) {
      value_blocks_[v].SetGrow(height);
    }
  } else {
    Bitmap buckets(histogram_.num_buckets());
    for (const auto& [v, pos] : entries) {
      buckets.Set(histogram_.BucketOf(v));
    }
    block_buckets_.push_back(std::move(buckets));
  }

  // Second level: bulk-load the per-block tree (tail: in memory until the
  // next checkpoint freezes it).
  std::shared_ptr<SecondLevelTree> tree;
  if (!entries.empty()) {
    tree = std::make_shared<SecondLevelTree>();
    tree->BulkLoad(std::move(entries));
  }
  total_entries_ += tree ? tree->size() : 0;
  block_trees_.push_back(std::move(tree));
  num_blocks_++;
  return Status::OK();
}

Bitmap LayeredIndex::CandidateBlocks(const Value* lo, const Value* hi) const {
  Bitmap result(num_blocks_);
  if (options_.discrete) {
    if (lo != nullptr && hi != nullptr && lo->CompareTotal(*hi) == 0) {
      return BlocksWithValue(*lo);
    }
    // Range over a discrete attribute: union of all values in the range.
    for (const auto& [v, blocks] : value_blocks_) {
      if (lo != nullptr && v.CompareTotal(*lo) < 0) continue;
      if (hi != nullptr && v.CompareTotal(*hi) > 0) break;
      result.Or(blocks);
    }
    return result;
  }
  Bitmap query_buckets = histogram_.BucketsOverlapping(lo, hi);
  for (uint64_t bid = 0; bid < block_buckets_.size(); bid++) {
    Bitmap probe = block_buckets_[bid];  // copy; AND is destructive
    probe.And(query_buckets);
    if (probe.AnySet()) result.Set(bid);
  }
  return result;
}

Bitmap LayeredIndex::BlocksWithEntries() const {
  Bitmap result(num_blocks_);
  for (uint64_t bid = 0; bid < frozen_.size(); bid++) {
    if (frozen_[bid].file_ordinal != FrozenTreeRef::kNoTree) result.Set(bid);
  }
  for (uint64_t i = 0; i < block_trees_.size(); i++) {
    if (block_trees_[i] != nullptr) result.Set(frozen_.size() + i);
  }
  return result;
}

LayeredIndex::DiskTree LayeredIndex::FrozenTree(
    const FrozenTreeRef& ref) const {
  return DiskTree(pool_, {tree_files_[ref.file_ordinal], ref.root,
                          ref.entries});
}

Status LayeredIndex::SearchBlock(BlockId bid, const Value* lo, const Value* hi,
                                 std::vector<TxnPointer>* out) const {
  if (bid >= num_blocks_) {
    return Status::InvalidArgument("block not indexed yet");
  }
  if (bid < frozen_.size()) {
    const FrozenTreeRef& ref = frozen_[bid];
    if (ref.file_ordinal == FrozenTreeRef::kNoTree) return Status::OK();
    DiskTree tree = FrozenTree(ref);
    auto it = lo != nullptr ? tree.SeekGE(*lo) : tree.Begin();
    for (; it.Valid(); it.Next()) {
      if (hi != nullptr && it.key().CompareTotal(*hi) > 0) break;
      out->push_back(TxnPointer{bid, it.value()});
    }
    return it.status();
  }
  const SecondLevelTree* tree = block_trees_[bid - frozen_.size()].get();
  if (tree == nullptr) return Status::OK();
  auto it = lo != nullptr ? tree->SeekGE(*lo) : tree->Begin();
  for (; it.Valid(); it.Next()) {
    if (hi != nullptr && it.key().CompareTotal(*hi) > 0) break;
    out->push_back(TxnPointer{bid, it.value()});
  }
  return Status::OK();
}

Status LayeredIndex::Tree(BlockId bid,
                          std::shared_ptr<const SecondLevelTree>* out) const {
  out->reset();
  if (bid >= num_blocks_) return Status::OK();
  if (bid >= frozen_.size()) {
    *out = block_trees_[bid - frozen_.size()];
    return Status::OK();
  }
  const FrozenTreeRef& ref = frozen_[bid];
  if (ref.file_ordinal == FrozenTreeRef::kNoTree) return Status::OK();
  if (materialized_ == nullptr && options_.materialized_cache_bytes > 0) {
    materialized_ = std::make_unique<LruCache<uint64_t, const SecondLevelTree>>(
        options_.materialized_cache_bytes);
  }
  if (materialized_ != nullptr) {
    if (auto cached = materialized_->Lookup(bid)) {
      *out = std::move(cached);
      return Status::OK();
    }
  }
  // Fault the whole tree back: decode every leaf in order and bulk-load an
  // in-memory twin (merge joins walk entire trees, so partial faulting
  // would thrash).
  DiskTree disk = FrozenTree(ref);
  std::vector<std::pair<Value, uint32_t>> entries;
  entries.reserve(ref.entries);
  size_t charge = 64;
  auto it = disk.Begin();
  for (; it.Valid(); it.Next()) {
    charge += it.key().ByteSize() + 16;
    entries.emplace_back(it.key(), it.value());
  }
  if (!it.status().ok()) return it.status();
  if (entries.size() != ref.entries) {
    return Status::Corruption("frozen tree of block " + std::to_string(bid) +
                              " has " + std::to_string(entries.size()) +
                              " entries, expected " +
                              std::to_string(ref.entries));
  }
  auto tree = std::make_shared<SecondLevelTree>();
  tree->BulkLoad(std::move(entries));
  if (materialized_ != nullptr) materialized_->Insert(bid, tree, charge);
  *out = std::move(tree);
  return Status::OK();
}

const Bitmap* LayeredIndex::BlockBuckets(BlockId bid) const {
  if (options_.discrete || bid >= block_buckets_.size()) return nullptr;
  return &block_buckets_[bid];
}

Bitmap LayeredIndex::BlocksWithValue(const Value& v) const {
  Bitmap result(num_blocks_);
  auto it = value_blocks_.find(v);
  if (it != value_blocks_.end()) result.Or(it->second);
  return result;
}

Status LayeredIndex::WriteFrozenDelta(BufferManager* pool,
                                      BufferManager::FileId file,
                                      uint64_t up_to,
                                      std::vector<FrozenTreeRef>* refs) {
  refs->clear();
  if (up_to > num_blocks_) {
    return Status::InvalidArgument("cannot freeze unindexed blocks");
  }
  const uint32_t ordinal = static_cast<uint32_t>(tree_files_.size());
  for (uint64_t bid = frozen_.size(); bid < up_to; bid++) {
    const SecondLevelTree* tree = block_trees_[bid - frozen_.size()].get();
    FrozenTreeRef ref;
    if (tree != nullptr) {
      DiskBpTreeBuilder<Value, uint32_t, ValuePosCodec, ValueCmp> builder(
          pool, file);
      for (auto it = tree->Begin(); it.Valid(); it.Next()) {
        Status s = builder.Add(it.key(), it.value());
        if (!s.ok()) return s;
      }
      typename DiskTree::Ref built;
      Status s = builder.Finish(&built);
      if (!s.ok()) return s;
      ref.file_ordinal = ordinal;
      ref.root = built.root;
      ref.entries = built.entries;
    }
    refs->push_back(ref);
  }
  return Status::OK();
}

void LayeredIndex::AdoptFrozen(BufferManager* pool,
                               BufferManager::FileId file,
                               const std::vector<FrozenTreeRef>& refs) {
  pool_ = pool;
  tree_files_.push_back(file);
  frozen_.insert(frozen_.end(), refs.begin(), refs.end());
  // The refs cover the oldest refs.size() tail blocks: drop their in-memory
  // trees (this is where a long-running node's memory stops growing).
  block_trees_.erase(block_trees_.begin(), block_trees_.begin() + refs.size());
}

void LayeredIndex::EncodeFirstLevel(std::string* dst) const {
  PutVarint64(dst, total_entries_);
  dst->push_back(histogram_set_ ? 1 : 0);
  if (options_.discrete) {
    PutVarint32(dst, static_cast<uint32_t>(value_blocks_.size()));
    for (const auto& [v, blocks] : value_blocks_) {
      v.EncodeTo(dst);
      blocks.EncodeTo(dst);
    }
  } else {
    PutVarint32(dst, static_cast<uint32_t>(histogram_.boundaries().size()));
    for (const Value& b : histogram_.boundaries()) b.EncodeTo(dst);
    PutVarint64(dst, block_buckets_.size());
    for (const Bitmap& b : block_buckets_) b.EncodeTo(dst);
  }
}

Status LayeredIndex::DecodeFirstLevel(Slice* in) {
  uint64_t total;
  if (!GetVarint64(in, &total) || in->empty()) {
    return Status::Corruption("truncated index first level");
  }
  total_entries_ = total;
  histogram_set_ = (*in)[0] != 0;
  in->remove_prefix(1);
  if (options_.discrete) {
    uint32_t nvalues;
    if (!GetVarint32(in, &nvalues)) {
      return Status::Corruption("truncated discrete first level");
    }
    for (uint32_t i = 0; i < nvalues; i++) {
      Value v;
      Bitmap blocks;
      if (!Value::DecodeFrom(in, &v) || !Bitmap::DecodeFrom(in, &blocks)) {
        return Status::Corruption("truncated discrete first level");
      }
      value_blocks_[std::move(v)] = std::move(blocks);
    }
  } else {
    uint32_t nbounds;
    if (!GetVarint32(in, &nbounds)) {
      return Status::Corruption("truncated histogram");
    }
    std::vector<Value> bounds;
    bounds.reserve(nbounds);
    for (uint32_t i = 0; i < nbounds; i++) {
      Value v;
      if (!Value::DecodeFrom(in, &v)) {
        return Status::Corruption("truncated histogram boundary");
      }
      bounds.push_back(std::move(v));
    }
    histogram_ = EqualDepthHistogram::FromBoundaries(std::move(bounds));
    uint64_t nbuckets;
    if (!GetVarint64(in, &nbuckets) || nbuckets > in->size()) {
      return Status::Corruption("truncated bucket bitmaps");
    }
    block_buckets_.reserve(nbuckets);
    for (uint64_t i = 0; i < nbuckets; i++) {
      Bitmap b;
      if (!Bitmap::DecodeFrom(in, &b)) {
        return Status::Corruption("truncated bucket bitmap");
      }
      block_buckets_.push_back(std::move(b));
    }
  }
  return Status::OK();
}

void LayeredIndex::EncodeCheckpointState(
    const std::vector<FrozenTreeRef>& pending, std::string* dst) const {
  EncodeFirstLevel(dst);
  PutVarint64(dst, frozen_.size() + pending.size());
  auto put_ref = [dst](const FrozenTreeRef& ref) {
    if (ref.file_ordinal == FrozenTreeRef::kNoTree) {
      PutVarint32(dst, 0);
      return;
    }
    PutVarint32(dst, ref.file_ordinal + 1);
    PutVarint32(dst, ref.root);
    PutVarint64(dst, ref.entries);
  };
  for (const FrozenTreeRef& ref : frozen_) put_ref(ref);
  for (const FrozenTreeRef& ref : pending) put_ref(ref);
}

Status LayeredIndex::RestoreCheckpoint(BufferManager* pool,
                                       std::vector<BufferManager::FileId> files,
                                       Slice state) {
  if (num_blocks_ != 0) {
    return Status::InvalidArgument("restore requires a fresh index");
  }
  Slice in = state;
  Status s = DecodeFirstLevel(&in);
  if (!s.ok()) return s;
  uint64_t nrefs = 0;
  if (!GetVarint64(&in, &nrefs) || nrefs > in.size()) {
    return Status::Corruption("truncated frozen tree refs");
  }
  frozen_.clear();
  frozen_.reserve(nrefs);
  for (uint64_t i = 0; i < nrefs; i++) {
    uint32_t tag;
    if (!GetVarint32(&in, &tag)) {
      return Status::Corruption("truncated frozen tree ref");
    }
    FrozenTreeRef ref;
    if (tag != 0) {
      uint32_t root;
      uint64_t entries;
      if (!GetVarint32(&in, &root) || !GetVarint64(&in, &entries)) {
        return Status::Corruption("truncated frozen tree ref");
      }
      ref.file_ordinal = tag - 1;
      if (ref.file_ordinal >= files.size()) {
        return Status::Corruption("frozen tree ref past the delta file list");
      }
      ref.root = root;
      ref.entries = entries;
    }
    frozen_.push_back(ref);
  }
  if (!options_.discrete && block_buckets_.size() != nrefs) {
    return Status::Corruption("first level covers the wrong block count");
  }
  pool_ = pool;
  tree_files_ = std::move(files);
  num_blocks_ = nrefs;
  return Status::OK();
}

}  // namespace sebdb
