// In-memory B+-tree (paper §IV-B). Used for the block-level index — keyed by
// the co-monotone triple (bid, tid, Ts) — and for the per-block second level
// of the layered index. Supports duplicate keys, ordered iteration over a
// linked leaf level, point/range seeks and one-shot bulk loading (blocks are
// immutable, so per-block trees are built once, full, and never rebalanced).
//
// In addition to ordinary comparator-based seeks, SeekFirstTrue descends with
// any monotone predicate over keys. Because (bid, tid, Ts) are co-monotone
// (paper's invariant), one tree serves lookups by block id, transaction id or
// timestamp.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace sebdb {

template <typename Key, typename Val, typename Cmp = std::less<Key>>
class BpTree {
 public:
  static constexpr int kFanout = 64;  // max children / leaf entries

  BpTree() = default;
  explicit BpTree(Cmp cmp) : cmp_(std::move(cmp)) {}

  BpTree(const BpTree&) = delete;
  BpTree& operator=(const BpTree&) = delete;
  BpTree(BpTree&&) = default;
  BpTree& operator=(BpTree&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

  /// Inserts key/value; duplicates permitted (placed after existing equals).
  void Insert(const Key& key, Val value);

  /// Builds the tree from entries already sorted by key. Leaves are packed
  /// full — the append-only usage pattern of the block-level index.
  void BulkLoad(std::vector<std::pair<Key, Val>> sorted_entries);

  class Iterator {
   public:
    Iterator() = default;
    bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const { return leaf_->keys[pos_]; }
    const Val& value() const { return leaf_->vals[pos_]; }
    void Next() {
      if (leaf_ == nullptr) return;
      if (++pos_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        pos_ = 0;
      }
    }

   private:
    friend class BpTree;
    struct Leaf;
    Iterator(const Leaf* leaf, size_t pos) : leaf_(leaf), pos_(pos) {}
    const Leaf* leaf_ = nullptr;
    size_t pos_ = 0;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const;
  /// First entry with key >= target (end iterator if none).
  Iterator SeekGE(const Key& target) const;
  /// First entry with key > target.
  Iterator SeekGT(const Key& target) const;
  /// First entry where pred(key) is true. pred must be monotone over the key
  /// order: false for a (possibly empty) prefix, then true.
  Iterator SeekFirstTrue(const std::function<bool(const Key&)>& pred) const;

  /// Collects values for all keys in [lo, hi] into *out; returns the count.
  size_t RangeScan(const Key& lo, const Key& hi, std::vector<Val>* out) const;

 private:
  struct Node;
  using Leaf = typename Iterator::Leaf;

  struct Node {
    bool is_leaf = false;
    virtual ~Node() = default;
  };

  struct Internal : Node {
    // children.size() == keys.size() + 1; keys[i] is the smallest key in the
    // subtree of children[i + 1].
    std::vector<Key> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

  // Defined inside Iterator so the iterator can hold it without a forward
  // declaration dance.
 public:
  // (implementation detail; public only for the nested-type definition)
 private:
  // Split result propagated up during insert.
  struct SplitResult {
    bool split = false;
    Key separator{};  // smallest key of the new right sibling
    std::unique_ptr<Node> right;
  };

  bool Less(const Key& a, const Key& b) const { return cmp_(a, b); }

  SplitResult InsertRec(Node* node, const Key& key, Val&& value);
  const Leaf* LeftmostLeaf() const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 0;
  Cmp cmp_{};
};

// ---- implementation ----

template <typename Key, typename Val, typename Cmp>
struct BpTree<Key, Val, Cmp>::Iterator::Leaf : BpTree<Key, Val, Cmp>::Node {
  std::vector<Key> keys;
  std::vector<Val> vals;
  Leaf* next = nullptr;
  Leaf() { this->is_leaf = true; }
};

template <typename Key, typename Val, typename Cmp>
void BpTree<Key, Val, Cmp>::Insert(const Key& key, Val value) {
  if (root_ == nullptr) {
    auto leaf = std::make_unique<Leaf>();
    leaf->keys.push_back(key);
    leaf->vals.push_back(std::move(value));
    root_ = std::move(leaf);
    size_ = 1;
    height_ = 1;
    return;
  }
  SplitResult split = InsertRec(root_.get(), key, std::move(value));
  size_++;
  if (split.split) {
    auto new_root = std::make_unique<Internal>();
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
    height_++;
  }
}

template <typename Key, typename Val, typename Cmp>
typename BpTree<Key, Val, Cmp>::SplitResult BpTree<Key, Val, Cmp>::InsertRec(
    Node* node, const Key& key, Val&& value) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    // upper_bound: after existing duplicates.
    size_t pos = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key,
                                  cmp_) -
                 leaf->keys.begin();
    leaf->keys.insert(leaf->keys.begin() + pos, key);
    leaf->vals.insert(leaf->vals.begin() + pos, std::move(value));
    if (leaf->keys.size() <= kFanout) return {};

    auto right = std::make_unique<Leaf>();
    size_t mid = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
    right->vals.assign(std::make_move_iterator(leaf->vals.begin() + mid),
                       std::make_move_iterator(leaf->vals.end()));
    leaf->keys.resize(mid);
    leaf->vals.resize(mid);
    right->next = leaf->next;
    leaf->next = right.get();
    SplitResult result;
    result.split = true;
    result.separator = right->keys.front();
    result.right = std::move(right);
    return result;
  }

  auto* internal = static_cast<Internal*>(node);
  // Child index: first key > target goes right of that separator.
  size_t child = std::upper_bound(internal->keys.begin(), internal->keys.end(),
                                  key, cmp_) -
                 internal->keys.begin();
  SplitResult child_split =
      InsertRec(internal->children[child].get(), key, std::move(value));
  if (!child_split.split) return {};

  internal->keys.insert(internal->keys.begin() + child, child_split.separator);
  internal->children.insert(internal->children.begin() + child + 1,
                            std::move(child_split.right));
  if (internal->children.size() <= kFanout) return {};

  auto right = std::make_unique<Internal>();
  size_t mid_key = internal->keys.size() / 2;
  SplitResult result;
  result.split = true;
  result.separator = internal->keys[mid_key];
  right->keys.assign(internal->keys.begin() + mid_key + 1,
                     internal->keys.end());
  right->children.assign(
      std::make_move_iterator(internal->children.begin() + mid_key + 1),
      std::make_move_iterator(internal->children.end()));
  internal->keys.resize(mid_key);
  internal->children.resize(mid_key + 1);
  result.right = std::move(right);
  return result;
}

template <typename Key, typename Val, typename Cmp>
void BpTree<Key, Val, Cmp>::BulkLoad(
    std::vector<std::pair<Key, Val>> sorted_entries) {
  root_.reset();
  size_ = sorted_entries.size();
  height_ = 0;
  if (sorted_entries.empty()) return;

  // Level 0: packed leaves.
  std::vector<std::unique_ptr<Node>> level;
  std::vector<Key> level_min_keys;
  Leaf* prev = nullptr;
  for (size_t i = 0; i < sorted_entries.size();) {
    auto leaf = std::make_unique<Leaf>();
    size_t take = std::min<size_t>(kFanout, sorted_entries.size() - i);
    for (size_t j = 0; j < take; j++) {
      leaf->keys.push_back(sorted_entries[i + j].first);
      leaf->vals.push_back(std::move(sorted_entries[i + j].second));
    }
    if (prev != nullptr) prev->next = leaf.get();
    prev = leaf.get();
    level_min_keys.push_back(leaf->keys.front());
    level.push_back(std::move(leaf));
    i += take;
  }
  height_ = 1;

  // Build internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> up;
    std::vector<Key> up_min_keys;
    for (size_t i = 0; i < level.size();) {
      auto internal = std::make_unique<Internal>();
      size_t take = std::min<size_t>(kFanout, level.size() - i);
      for (size_t j = 0; j < take; j++) {
        if (j > 0) internal->keys.push_back(level_min_keys[i + j]);
        internal->children.push_back(std::move(level[i + j]));
      }
      up_min_keys.push_back(level_min_keys[i]);
      up.push_back(std::move(internal));
      i += take;
    }
    level = std::move(up);
    level_min_keys = std::move(up_min_keys);
    height_++;
  }
  root_ = std::move(level[0]);
}

template <typename Key, typename Val, typename Cmp>
const typename BpTree<Key, Val, Cmp>::Leaf*
BpTree<Key, Val, Cmp>::LeftmostLeaf() const {
  const Node* node = root_.get();
  if (node == nullptr) return nullptr;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children.front().get();
  }
  return static_cast<const Leaf*>(node);
}

template <typename Key, typename Val, typename Cmp>
typename BpTree<Key, Val, Cmp>::Iterator BpTree<Key, Val, Cmp>::Begin() const {
  const Leaf* leaf = LeftmostLeaf();
  if (leaf == nullptr || leaf->keys.empty()) return Iterator();
  return Iterator(leaf, 0);
}

template <typename Key, typename Val, typename Cmp>
typename BpTree<Key, Val, Cmp>::Iterator BpTree<Key, Val, Cmp>::SeekGE(
    const Key& target) const {
  return SeekFirstTrue(
      [&](const Key& k) { return !Less(k, target); });  // k >= target
}

template <typename Key, typename Val, typename Cmp>
typename BpTree<Key, Val, Cmp>::Iterator BpTree<Key, Val, Cmp>::SeekGT(
    const Key& target) const {
  return SeekFirstTrue([&](const Key& k) { return Less(target, k); });
}

template <typename Key, typename Val, typename Cmp>
typename BpTree<Key, Val, Cmp>::Iterator BpTree<Key, Val, Cmp>::SeekFirstTrue(
    const std::function<bool(const Key&)>& pred) const {
  const Node* node = root_.get();
  if (node == nullptr) return Iterator();
  while (!node->is_leaf) {
    const auto* internal = static_cast<const Internal*>(node);
    // First separator where pred holds: descend left of it (the subtree that
    // may contain earlier true keys); if none, rightmost child.
    size_t lo = 0, hi = internal->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (pred(internal->keys[mid])) hi = mid;
      else lo = mid + 1;
    }
    node = internal->children[lo].get();
  }
  const auto* leaf = static_cast<const Leaf*>(node);
  size_t lo = 0, hi = leaf->keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (pred(leaf->keys[mid])) hi = mid;
    else lo = mid + 1;
  }
  if (lo < leaf->keys.size()) return Iterator(leaf, lo);
  // The first true key, if any, is in the next leaf.
  const Leaf* next = leaf->next;
  while (next != nullptr && next->keys.empty()) next = next->next;
  if (next == nullptr) return Iterator();
  return pred(next->keys.front()) ? Iterator(next, 0) : Iterator();
}

template <typename Key, typename Val, typename Cmp>
size_t BpTree<Key, Val, Cmp>::RangeScan(const Key& lo, const Key& hi,
                                        std::vector<Val>* out) const {
  size_t n = 0;
  for (Iterator it = SeekGE(lo); it.Valid() && !Less(hi, it.key());
       it.Next()) {
    out->push_back(it.value());
    n++;
  }
  return n;
}

}  // namespace sebdb
