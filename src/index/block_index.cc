#include "index/block_index.h"

#include <algorithm>

namespace sebdb {

Status BlockIndex::Add(const BlockHeader& header) {
  if (header.height != num_blocks()) {
    return Status::InvalidArgument("non-consecutive block index entry");
  }
  if (header.timestamp < last_ts_) {
    return Status::InvalidArgument("block timestamp went backwards");
  }
  if (header.num_transactions > 0 && header.first_tid < next_tid_) {
    return Status::InvalidArgument("block first_tid went backwards");
  }
  BlockIndexKey key{header.height, header.first_tid, header.timestamp};
  BlockIndexEntry entry{header.height, header.first_tid,
                        header.num_transactions, header.timestamp};
  tree_.Insert(key, entry);
  last_ts_ = header.timestamp;
  if (header.num_transactions > 0) {
    next_tid_ = header.first_tid + header.num_transactions;
  }
  return Status::OK();
}

Status BlockIndex::FindByBlockId(BlockId bid, BlockIndexEntry* out) const {
  if (bid >= num_blocks()) {
    return Status::NotFound("no block with id " + std::to_string(bid));
  }
  if (bid >= frozen_blocks_) {
    auto it = tree_.SeekFirstTrue(
        [bid](const BlockIndexKey& k) { return k.bid >= bid; });
    if (!it.Valid() || it.key().bid != bid) {
      return Status::NotFound("no block with id " + std::to_string(bid));
    }
    *out = it.value();
    return Status::OK();
  }
  // Heights are dense, so the covering segment is found by range and the
  // entry by one disk descent.
  auto seg = std::upper_bound(
      segments_.begin(), segments_.end(), bid,
      [](BlockId b, const LiveSegment& s) { return b < s.ref.first; });
  if (seg == segments_.begin()) {
    return Status::NotFound("no block with id " + std::to_string(bid));
  }
  --seg;
  DiskTree tree(pool_, {seg->file, seg->ref.root, seg->ref.entries});
  auto it = tree.SeekFirstTrue(
      [bid](const BlockIndexKey& k) { return k.bid >= bid; });
  if (!it.status().ok()) return it.status();
  if (!it.Valid() || it.key().bid != bid) {
    return Status::Corruption("block " + std::to_string(bid) +
                              " missing from checkpoint segment");
  }
  *out = it.value();
  return Status::OK();
}

Status BlockIndex::VisitFrom(
    const std::function<bool(const BlockIndexKey&)>& pred,
    const std::function<bool(const BlockIndexEntry&)>& visit) const {
  // Once the first pred-true entry is found, every later entry is true too
  // (monotone predicate), so the scan streams through the remaining
  // segments and the in-memory tail with plain Begin().
  bool streaming = false;
  for (size_t i = 0; i < segments_.size(); i++) {
    if (!streaming) {
      // Segment i is all-false if the next segment's first key is false.
      if (i + 1 < segments_.size() &&
          !pred(segments_[i + 1].ref.first_key)) {
        continue;
      }
    }
    const LiveSegment& seg = segments_[i];
    DiskTree tree(pool_, {seg.file, seg.ref.root, seg.ref.entries});
    auto it = streaming ? tree.Begin() : tree.SeekFirstTrue(pred);
    for (; it.Valid(); it.Next()) {
      streaming = true;
      if (!visit(it.value())) return Status::OK();
    }
    if (!it.status().ok()) return it.status();
  }
  if (streaming) {
    for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
      if (!visit(it.value())) return Status::OK();
    }
  } else {
    for (auto it = tree_.SeekFirstTrue(pred); it.Valid(); it.Next()) {
      if (!visit(it.value())) return Status::OK();
    }
  }
  return Status::OK();
}

Status BlockIndex::FindByTid(TransactionId tid, BlockIndexEntry* out) const {
  // The containing block is the last one with first_tid <= tid. Seek the
  // first block with first_tid > tid; the answer is its predecessor (bids
  // are dense, so predecessor lookup is by id).
  std::optional<BlockIndexEntry> successor;
  Status s = VisitFrom(
      [tid](const BlockIndexKey& k) { return k.first_tid > tid; },
      [&successor](const BlockIndexEntry& e) {
        successor = e;
        return false;
      });
  if (!s.ok()) return s;
  BlockId candidate;
  if (successor.has_value()) {
    if (successor->bid == 0) {
      return Status::NotFound("tid precedes the chain");
    }
    candidate = successor->bid - 1;
  } else {
    if (num_blocks() == 0) return Status::NotFound("empty chain");
    candidate = num_blocks() - 1;
  }
  BlockIndexEntry entry;
  s = FindByBlockId(candidate, &entry);
  if (!s.ok()) return s;
  if (tid < entry.first_tid ||
      tid >= entry.first_tid + entry.num_transactions) {
    return Status::NotFound("no block contains tid " + std::to_string(tid));
  }
  *out = entry;
  return Status::OK();
}

Status BlockIndex::FindFirstAtOrAfter(Timestamp ts,
                                      BlockIndexEntry* out) const {
  std::optional<BlockIndexEntry> first;
  Status s =
      VisitFrom([ts](const BlockIndexKey& k) { return k.ts >= ts; },
                [&first](const BlockIndexEntry& e) {
                  first = e;
                  return false;
                });
  if (!s.ok()) return s;
  if (!first.has_value()) {
    return Status::NotFound("no block at or after the given timestamp");
  }
  *out = *first;
  return Status::OK();
}

Bitmap BlockIndex::BlocksInWindow(Timestamp start, Timestamp end) const {
  Bitmap result(num_blocks());
  if (end < start) return result;
  VisitFrom([start](const BlockIndexKey& k) { return k.ts >= start; },
            [&result, end](const BlockIndexEntry& e) {
              if (e.ts > end) return false;
              result.Set(e.bid);
              return true;
            })
      .ok();
  return result;
}

uint64_t BlockIndex::persisted_end() const {
  uint64_t n = 0;
  for (const SegmentRef& ref : adopted_) n += ref.entries;
  return n;
}

Status BlockIndex::WriteFrozenDelta(BufferManager* pool,
                                    BufferManager::FileId file,
                                    uint64_t up_to, SegmentRef* ref) const {
  const uint64_t from = persisted_end();
  if (up_to > num_blocks() || from < frozen_blocks_) {
    return Status::InvalidArgument("cannot freeze unindexed blocks");
  }
  *ref = SegmentRef{};
  ref->first = from;
  if (up_to <= from) return Status::OK();  // empty delta

  DiskBpTreeBuilder<BlockIndexKey, BlockIndexEntry, BlockIndexCodec,
                    BlockIndexKeyCmp>
      builder(pool, file);
  auto it = tree_.SeekFirstTrue(
      [from](const BlockIndexKey& k) { return k.bid >= from; });
  bool have_first = false;
  for (; it.Valid() && it.key().bid < up_to; it.Next()) {
    if (!have_first) {
      ref->first_key = it.key();
      have_first = true;
    }
    Status s = builder.Add(it.key(), it.value());
    if (!s.ok()) return s;
  }
  DiskTree::Ref built;
  Status s = builder.Finish(&built);
  if (!s.ok()) return s;
  ref->root = built.root;
  ref->entries = built.entries;
  if (built.entries != up_to - from) {
    return Status::Corruption("block index tail is missing entries");
  }
  return Status::OK();
}

void BlockIndex::AdoptFrozen(const SegmentRef& ref) {
  adopted_.push_back(ref);
}

void BlockIndex::EncodeCheckpointState(const SegmentRef* pending,
                                       std::string* dst) const {
  const size_t n = adopted_.size() + (pending != nullptr ? 1 : 0);
  PutVarint32(dst, static_cast<uint32_t>(n));
  auto put_ref = [dst](const SegmentRef& ref) {
    PutVarint32(dst, ref.root);
    PutVarint64(dst, ref.entries);
    PutVarint64(dst, ref.first);
    if (ref.entries > 0) BlockIndexCodec::EncodeKey(dst, ref.first_key);
  };
  for (const SegmentRef& ref : adopted_) put_ref(ref);
  if (pending != nullptr) put_ref(*pending);
  PutVarSigned64(dst, last_ts_);
  PutVarint64(dst, next_tid_);
}

Status BlockIndex::RestoreCheckpoint(BufferManager* pool,
                                     std::vector<BufferManager::FileId> files,
                                     Slice state) {
  if (num_blocks() != 0) {
    return Status::InvalidArgument("restore requires a fresh index");
  }
  Slice in = state;
  uint32_t nsegs;
  if (!GetVarint32(&in, &nsegs) || nsegs != files.size()) {
    return Status::Corruption("block index segment count mismatch");
  }
  uint64_t covered = 0;
  for (uint32_t i = 0; i < nsegs; i++) {
    SegmentRef ref;
    uint32_t root;
    if (!GetVarint32(&in, &root) || !GetVarint64(&in, &ref.entries) ||
        !GetVarint64(&in, &ref.first)) {
      return Status::Corruption("truncated block index segment ref");
    }
    ref.root = root;
    if (ref.entries > 0 && !BlockIndexCodec::DecodeKey(&in, &ref.first_key)) {
      return Status::Corruption("truncated block index segment key");
    }
    if (ref.first != covered) {
      return Status::Corruption("block index segments are not contiguous");
    }
    covered += ref.entries;
    adopted_.push_back(ref);
    if (ref.entries > 0) segments_.push_back({files[i], ref});
  }
  if (!GetVarSigned64(&in, &last_ts_) || !GetVarint64(&in, &next_tid_)) {
    return Status::Corruption("truncated block index cursors");
  }
  pool_ = pool;
  frozen_blocks_ = covered;
  return Status::OK();
}

}  // namespace sebdb
