#include "index/block_index.h"

namespace sebdb {

Status BlockIndex::Add(const BlockHeader& header) {
  if (header.height != tree_.size()) {
    return Status::InvalidArgument("non-consecutive block index entry");
  }
  if (header.timestamp < last_ts_) {
    return Status::InvalidArgument("block timestamp went backwards");
  }
  if (header.num_transactions > 0 && header.first_tid < next_tid_) {
    return Status::InvalidArgument("block first_tid went backwards");
  }
  BlockIndexKey key{header.height, header.first_tid, header.timestamp};
  BlockIndexEntry entry{header.height, header.first_tid,
                        header.num_transactions, header.timestamp};
  tree_.Insert(key, entry);
  last_ts_ = header.timestamp;
  if (header.num_transactions > 0) {
    next_tid_ = header.first_tid + header.num_transactions;
  }
  return Status::OK();
}

Status BlockIndex::FindByBlockId(BlockId bid, BlockIndexEntry* out) const {
  auto it = tree_.SeekFirstTrue(
      [bid](const BlockIndexKey& k) { return k.bid >= bid; });
  if (!it.Valid() || it.key().bid != bid) {
    return Status::NotFound("no block with id " + std::to_string(bid));
  }
  *out = it.value();
  return Status::OK();
}

Status BlockIndex::FindByTid(TransactionId tid, BlockIndexEntry* out) const {
  // The containing block is the last one with first_tid <= tid. Seek the
  // first block with first_tid > tid; the answer is its predecessor (bids
  // are dense, so predecessor lookup is by id).
  auto it = tree_.SeekFirstTrue(
      [tid](const BlockIndexKey& k) { return k.first_tid > tid; });
  BlockId candidate;
  if (it.Valid()) {
    if (it.key().bid == 0) {
      return Status::NotFound("tid precedes the chain");
    }
    candidate = it.key().bid - 1;
  } else {
    if (tree_.empty()) return Status::NotFound("empty chain");
    candidate = tree_.size() - 1;
  }
  BlockIndexEntry entry;
  Status s = FindByBlockId(candidate, &entry);
  if (!s.ok()) return s;
  if (tid < entry.first_tid ||
      tid >= entry.first_tid + entry.num_transactions) {
    return Status::NotFound("no block contains tid " + std::to_string(tid));
  }
  *out = entry;
  return Status::OK();
}

Status BlockIndex::FindFirstAtOrAfter(Timestamp ts,
                                      BlockIndexEntry* out) const {
  auto it =
      tree_.SeekFirstTrue([ts](const BlockIndexKey& k) { return k.ts >= ts; });
  if (!it.Valid()) {
    return Status::NotFound("no block at or after the given timestamp");
  }
  *out = it.value();
  return Status::OK();
}

Bitmap BlockIndex::BlocksInWindow(Timestamp start, Timestamp end) const {
  Bitmap result(tree_.size());
  if (end < start) return result;
  auto it = tree_.SeekFirstTrue(
      [start](const BlockIndexKey& k) { return k.ts >= start; });
  for (; it.Valid() && it.key().ts <= end; it.Next()) {
    result.Set(it.key().bid);
  }
  return result;
}

}  // namespace sebdb
