#include "sql/index_set.h"

#include <algorithm>
#include <sstream>

#include "common/coding.h"

namespace sebdb {

namespace {

ColumnExtractor MakeColumnExtractor(const std::string& table, int app_index) {
  return [table, app_index](const Transaction& txn, Value* out) {
    if (txn.tname() != table) return false;
    int pos = app_index - Schema::kNumSystemColumns;
    if (pos < 0 || pos >= static_cast<int>(txn.values().size())) return false;
    *out = txn.values()[pos];
    return true;
  };
}

}  // namespace

ColumnExtractor IndexSet::MakeSystemExtractor(bool sender) {
  return [sender](const Transaction& txn, Value* out) {
    *out = Value::Str(sender ? txn.sender() : txn.tname());
    return true;
  };
}

AuthenticatedLayeredIndex::BlockLoader IndexSet::MakeBlockLoader() const {
  BlockStore* store = store_;
  if (store == nullptr) return nullptr;
  return [store](BlockId bid, std::shared_ptr<const Block>* out) {
    return store->ReadBlock(bid, out);
  };
}

IndexSet::IndexSet(BlockStore* store, IndexSetOptions options)
    : store_(store), options_(std::move(options)) {
  LayeredIndexOptions discrete_options;
  discrete_options.discrete = true;
  senid_index_ = std::make_unique<LayeredIndex>(
      "sys.senid", discrete_options, MakeSystemExtractor(/*sender=*/true));
  tname_index_ = std::make_unique<LayeredIndex>(
      "sys.tname", discrete_options, MakeSystemExtractor(/*sender=*/false));
  if (options_.build_auth_indexes) {
    senid_ali_ = std::make_unique<AuthenticatedLayeredIndex>(
        "sys.senid.auth", discrete_options,
        MakeSystemExtractor(/*sender=*/true));
    tname_ali_ = std::make_unique<AuthenticatedLayeredIndex>(
        "sys.tname.auth", discrete_options,
        MakeSystemExtractor(/*sender=*/false));
    if (auto loader = MakeBlockLoader()) {
      senid_ali_->SetBlockLoader(loader);
      tname_ali_->SetBlockLoader(loader);
    }
  }
  if (!options_.manifest_path.empty()) LoadManifest();
}

void IndexSet::LoadManifest() {
  uint64_t size;
  if (!env()->FileSize(options_.manifest_path, &size).ok() || size == 0) {
    return;  // no manifest yet
  }
  std::unique_ptr<ReadableFile> file;
  if (!env()->NewReadableFile(options_.manifest_path, &file).ok()) return;
  std::string contents;
  if (!file->Read(0, size, &contents).ok()) return;
  std::istringstream stream(contents);
  std::string table, column;
  int schema_index, discrete;
  MutexLock lock(&mu_);
  while (stream >> table >> column >> schema_index >> discrete) {
    // Created before any block is replayed, so no backfill is needed; the
    // replay loop feeds every block through AddBlock.
    CreateLayeredIndexLocked(table, column, schema_index, discrete != 0)
        .ok();
  }
}

void IndexSet::AppendManifest(const std::string& table,
                              const std::string& column,
                              int schema_column_index, bool discrete) {
  if (options_.manifest_path.empty()) return;
  std::unique_ptr<WritableFile> file;
  if (!env()->NewWritableFile(options_.manifest_path, &file).ok()) return;
  std::string line = table + " " + column + " " +
                     std::to_string(schema_column_index) + " " +
                     (discrete ? "1" : "0") + "\n";
  (void)file->Append(line);
  (void)file->Sync();
  (void)file->Close();
}

Status IndexSet::AddBlock(const Block& block) {
  MutexLock lock(&mu_);
  if (block.height() != num_blocks_) {
    return Status::InvalidArgument("index set blocks must arrive in order");
  }
  Status s = block_index_.Add(block.header());
  if (!s.ok()) return s;
  table_index_.AddBlock(block);
  s = senid_index_->AddBlock(block);
  if (!s.ok()) return s;
  s = tname_index_->AddBlock(block);
  if (!s.ok()) return s;
  if (senid_ali_ != nullptr) {
    s = senid_ali_->AddBlock(block);
    if (!s.ok()) return s;
  }
  if (tname_ali_ != nullptr) {
    s = tname_ali_->AddBlock(block);
    if (!s.ok()) return s;
  }
  for (auto& [key, index] : user_indexes_) {
    s = index.layered->AddBlock(block);
    if (!s.ok()) return s;
    if (index.ali != nullptr) {
      s = index.ali->AddBlock(block);
      if (!s.ok()) return s;
    }
  }
  num_blocks_++;
  return Status::OK();
}

Status IndexSet::ApplyBlockScheduled(
    const Block& block, const std::vector<std::vector<uint32_t>>& waves,
    ThreadPool* pool, const ScheduledApplyHooks& hooks) {
  MutexLock lock(&mu_);
  if (block.height() != num_blocks_) {
    return Status::InvalidArgument("index set blocks must arrive in order");
  }
  const auto& txns = block.transactions();

  // The waves must partition [0, num txns): every delta slot below is
  // written exactly once before the merge phase reads it.
  std::vector<bool> covered(txns.size(), false);
  for (const auto& wave : waves) {
    for (uint32_t i : wave) {
      if (i >= txns.size() || covered[i]) {
        return Status::InvalidArgument("waves do not partition the block");
      }
      covered[i] = true;
    }
  }
  for (bool c : covered) {
    if (!c) return Status::InvalidArgument("waves do not partition the block");
  }

  // Layered/ALI targets, pointer-stable for the whole apply (mu_ serializes
  // against CreateLayeredIndex; accessors hand out raw pointers, so the
  // pointees never move). An ALI shares its plain twin's extractor, so one
  // extraction per pair feeds both.
  struct Target {
    LayeredIndex* layered = nullptr;
    AuthenticatedLayeredIndex* ali = nullptr;
  };
  std::vector<Target> targets;
  targets.push_back({senid_index_.get(), senid_ali_.get()});
  targets.push_back({tname_index_.get(), tname_ali_.get()});
  for (auto& [key, index] : user_indexes_) {
    targets.push_back({index.layered.get(), index.ali.get()});
  }
  const size_t num_targets = targets.size();

  // Execute phase: waves in order; within a wave, each transaction's
  // footprint lands in its own slot — workers never share a slot, and the
  // loop body takes no locks, so fanning out while holding mu_ is safe (the
  // ParallelFor caller participates and drains its own chunks).
  struct Extracted {
    bool present = false;
    Value value;
  };
  struct TxnDelta {
    std::vector<Extracted> values;  // one per target
    std::string record;             // encoded transaction (the ALI record)
    Hash256 record_hash{};          // SHA-256(record) — the MB-tree leaf
    bool has_record = false;
  };
  std::vector<TxnDelta> deltas(txns.size());
  for (uint32_t w = 0; w < waves.size(); w++) {
    const std::vector<uint32_t>& wave = waves[w];
    auto execute_one = [&](uint64_t j) {
      const uint32_t i = wave[j];
      if (hooks.execute) hooks.execute(i);
      TxnDelta& d = deltas[i];
      d.values.resize(num_targets);
      bool covered_by_ali = false;
      for (size_t t = 0; t < num_targets; t++) {
        d.values[t].present =
            targets[t].layered->extractor()(txns[i], &d.values[t].value);
        covered_by_ali |= d.values[t].present && targets[t].ali != nullptr;
      }
      if (covered_by_ali) {
        txns[i].EncodeTo(&d.record);
        d.record_hash = Sha256::Digest(d.record);
        d.has_record = true;
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(wave.size(), execute_one,
                        hooks.execute != nullptr ? 1 : 8);
    } else {
      for (uint64_t j = 0; j < wave.size(); j++) execute_one(j);
    }
    if (hooks.wave_done) hooks.wave_done(w);
  }

  // Merge phase: each structure ingests the deltas in original transaction
  // order (MergeTxnDeltas — the same code serial AddBlock runs after its
  // gather), so the committed state is byte-identical to serial apply for
  // any pool size. Structures are independent, so they fan out in parallel;
  // order across structures does not affect any structure's bytes.
  const uint64_t height = block.height();
  std::vector<std::function<Status()>> merges;
  merges.push_back([&]() -> Status {
    Status s = block_index_.Add(block.header());
    if (!s.ok()) return s;
    table_index_.MergeTxnDeltas(height,
                                TableBitmapIndex::CollectTables(block));
    return Status::OK();
  });
  for (size_t t = 0; t < num_targets; t++) {
    merges.push_back([&, t]() -> Status {
      std::vector<std::pair<Value, uint32_t>> entries;
      for (uint32_t i = 0; i < txns.size(); i++) {
        if (deltas[i].values[t].present) {
          entries.emplace_back(deltas[i].values[t].value, i);
        }
      }
      return targets[t].layered->MergeTxnDeltas(height, std::move(entries));
    });
    if (targets[t].ali != nullptr) {
      merges.push_back([&, t]() -> Status {
        std::vector<std::pair<Value, uint32_t>> entries;
        std::vector<MbTree::Entry> mb_entries;
        for (uint32_t i = 0; i < txns.size(); i++) {
          const TxnDelta& d = deltas[i];
          if (!d.values[t].present) continue;
          entries.emplace_back(d.values[t].value, i);
          MbTree::Entry entry;
          entry.key = d.values[t].value;
          entry.record = d.record;
          entry.record_hash = d.record_hash;
          entry.has_record_hash = d.has_record;
          mb_entries.push_back(std::move(entry));
        }
        return targets[t].ali->MergeTxnDeltas(height, std::move(entries),
                                              std::move(mb_entries));
      });
    }
  }
  Status s = ParallelForStatus(pool, merges.size(),
                               [&](uint64_t m) { return merges[m](); });
  if (!s.ok()) return s;
  num_blocks_++;
  return Status::OK();
}

uint64_t IndexSet::num_blocks() const {
  MutexLock lock(&mu_);
  return num_blocks_;
}

Status IndexSet::CreateLayeredIndex(const std::string& table,
                                    const std::string& column,
                                    int schema_column_index, bool discrete) {
  MutexLock lock(&mu_);
  Status s =
      CreateLayeredIndexLocked(table, column, schema_column_index, discrete);
  if (!s.ok()) return s;
  AppendManifest(table, column, schema_column_index, discrete);
  return Status::OK();
}

Status IndexSet::CreateLayeredIndexLocked(const std::string& table,
                                          const std::string& column,
                                          int schema_column_index,
                                          bool discrete) {
  auto key = std::make_pair(table, column);
  if (user_indexes_.contains(key)) {
    return Status::InvalidArgument("index already exists on " + table + "." +
                                   column);
  }
  if (schema_column_index < Schema::kNumSystemColumns) {
    return Status::InvalidArgument(
        "layered indices on system columns are built in (SenID, Tname)");
  }

  UserIndex index;
  index.schema_column_index = schema_column_index;
  index.discrete = discrete;
  LayeredIndexOptions layered_options;
  layered_options.discrete = discrete;
  layered_options.histogram_buckets = options_.histogram_buckets;
  ColumnExtractor extractor = MakeColumnExtractor(table, schema_column_index);
  std::string name = table + "." + column;
  index.layered = std::make_unique<LayeredIndex>(name, layered_options,
                                                 extractor);
  if (options_.build_auth_indexes) {
    index.ali = std::make_unique<AuthenticatedLayeredIndex>(
        name + ".auth", layered_options, extractor);
    if (auto loader = MakeBlockLoader()) index.ali->SetBlockLoader(loader);
  }

  Status backfill = BackfillIndex(&index, !discrete, extractor);
  if (!backfill.ok()) return backfill;
  user_indexes_[key] = std::move(index);
  return Status::OK();
}

Status IndexSet::BackfillIndex(UserIndex* index, bool continuous,
                               const ColumnExtractor& extractor) {
  if (num_blocks_ == 0) return Status::OK();
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "cannot backfill an index without a block store");
  }

  // Pass 1 (continuous only): sample historical values for the histogram.
  if (continuous) {
    std::vector<Value> sample;
    for (uint64_t bid = 0;
         bid < num_blocks_ && sample.size() < options_.histogram_sample_limit;
         bid++) {
      std::shared_ptr<const Block> block;
      Status s = store_->ReadBlock(bid, &block);
      if (!s.ok()) return s;
      for (const auto& txn : block->transactions()) {
        Value v;
        if (extractor(txn, &v)) sample.push_back(std::move(v));
      }
    }
    if (!sample.empty()) {
      EqualDepthHistogram histogram;
      Status s = EqualDepthHistogram::Build(
          std::move(sample), options_.histogram_buckets, &histogram);
      if (!s.ok()) return s;
      s = index->layered->SetHistogram(histogram);
      if (!s.ok()) return s;
      if (index->ali != nullptr) {
        s = index->ali->SetHistogram(std::move(histogram));
        if (!s.ok()) return s;
      }
    }
  }

  // Pass 2: index every existing block.
  for (uint64_t bid = 0; bid < num_blocks_; bid++) {
    std::shared_ptr<const Block> block;
    Status s = store_->ReadBlock(bid, &block);
    if (!s.ok()) return s;
    s = index->layered->AddBlock(*block);
    if (!s.ok()) return s;
    if (index->ali != nullptr) {
      s = index->ali->AddBlock(*block);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

LayeredIndex* IndexSet::GetLayered(const std::string& table,
                                   const std::string& column) {
  MutexLock lock(&mu_);
  auto it = user_indexes_.find(std::make_pair(table, column));
  return it == user_indexes_.end() ? nullptr : it->second.layered.get();
}

AuthenticatedLayeredIndex* IndexSet::GetAli(const std::string& table,
                                            const std::string& column) {
  MutexLock lock(&mu_);
  auto it = user_indexes_.find(std::make_pair(table, column));
  return it == user_indexes_.end() ? nullptr : it->second.ali.get();
}

bool IndexSet::HasLayered(const std::string& table,
                          const std::string& column) const {
  MutexLock lock(&mu_);
  return user_indexes_.contains(std::make_pair(table, column));
}

Status IndexSet::WriteCheckpoint(BufferManager* pool, const std::string& dir,
                                 const std::string& prefix,
                                 std::vector<CheckpointFile>* files,
                                 std::string* meta,
                                 PendingIndexCheckpoint* pending) {
  using Delta = PendingIndexCheckpoint::Delta;
  MutexLock lock(&mu_);
  pending->height = num_blocks_;
  pending->deltas.clear();

  // The manifest record must reference EVERY file this checkpoint needs —
  // the deltas of earlier checkpoints included — or Publish would collect
  // them as superseded and the restore would find the segment lists
  // dangling. Earlier deltas are immutable and synced, so their recorded
  // sizes double as the recovery-time integrity check.
  auto list_existing = [&](const std::vector<std::string>& names) -> Status {
    for (const std::string& name : names) {
      uint64_t size = 0;
      Status s = env()->FileSize(dir + "/" + name, &size);
      if (!s.ok()) return s;
      files->push_back({name, size});
    }
    return Status::OK();
  };
  Status listed = list_existing(bidx_files_);
  if (listed.ok()) listed = list_existing(senid_files_);
  if (listed.ok()) listed = list_existing(tname_files_);
  for (const auto& [key, index] : user_indexes_) {
    if (!listed.ok()) break;
    listed = list_existing(index.delta_files);
  }
  if (!listed.ok()) return listed;

  // Stage the block-index delta (skipped when no blocks arrived since the
  // last checkpoint — segment lists stay dense with non-empty files).
  if (num_blocks_ > block_index_.persisted_end()) {
    Delta d;
    d.target = Delta::kBlockIndex;
    d.name = prefix + "_bidx";
    Status s = pool->CreateFile(dir + "/" + d.name, &d.file);
    if (!s.ok()) return s;
    pending->deltas.push_back(std::move(d));
    Delta& slot = pending->deltas.back();
    s = block_index_.WriteFrozenDelta(pool, slot.file, num_blocks_,
                                      &slot.bidx_ref);
    if (s.ok()) s = pool->Flush(slot.file);
    if (!s.ok()) return s;
    files->push_back({slot.name, pool->file_size(slot.file)});
  }

  auto write_layered = [&](Delta::Target target, const std::string& table,
                           const std::string& column, const std::string& tag,
                           LayeredIndex* layered) -> Status {
    if (num_blocks_ <= layered->frozen_end()) return Status::OK();
    Delta d;
    d.target = target;
    d.table = table;
    d.column = column;
    d.name = prefix + "_" + tag;
    Status s = pool->CreateFile(dir + "/" + d.name, &d.file);
    if (!s.ok()) return s;
    pending->deltas.push_back(std::move(d));
    Delta& slot = pending->deltas.back();
    s = layered->WriteFrozenDelta(pool, slot.file, num_blocks_, &slot.refs);
    if (s.ok()) s = pool->Flush(slot.file);
    if (!s.ok()) return s;
    files->push_back({slot.name, pool->file_size(slot.file)});
    return Status::OK();
  };

  // The ALI twins freeze byte-identical trees (same extractor, same
  // blocks), so each delta file is written once and shared.
  Status s = write_layered(Delta::kSenid, "", "", "senid", senid_index_.get());
  if (!s.ok()) return s;
  s = write_layered(Delta::kTname, "", "", "tname", tname_index_.get());
  if (!s.ok()) return s;
  size_t ordinal = 0;
  for (auto& [key, index] : user_indexes_) {
    s = write_layered(Delta::kUser, key.first, key.second,
                      "u" + std::to_string(ordinal++), index.layered.get());
    if (!s.ok()) return s;
  }

  // Meta blob: the complete index-set state at this height, including the
  // staged (not yet adopted) deltas.
  auto find_delta = [&](Delta::Target target, const std::string& table,
                        const std::string& column) -> const Delta* {
    for (const auto& d : pending->deltas) {
      if (d.target == target && d.table == table && d.column == column) {
        return &d;
      }
    }
    return nullptr;
  };
  static const std::vector<LayeredIndex::FrozenTreeRef> kNoRefs;

  meta->clear();
  PutVarint32(meta, 1);  // version
  std::string blob;
  table_index_.EncodeTo(&blob);
  PutLengthPrefixed(meta, blob);

  auto put_names = [&](const std::vector<std::string>& names,
                       const Delta* extra) {
    PutVarint32(meta, static_cast<uint32_t>(names.size() +
                                            (extra != nullptr ? 1 : 0)));
    for (const auto& n : names) PutLengthPrefixed(meta, n);
    if (extra != nullptr) PutLengthPrefixed(meta, extra->name);
  };

  {
    const Delta* d = find_delta(Delta::kBlockIndex, "", "");
    put_names(bidx_files_, d);
    blob.clear();
    block_index_.EncodeCheckpointState(d != nullptr ? &d->bidx_ref : nullptr,
                                       &blob);
    PutLengthPrefixed(meta, blob);
  }

  auto put_layered = [&](Delta::Target target, const std::string& table,
                         const std::string& column,
                         const std::vector<std::string>& names,
                         const LayeredIndex* layered,
                         const AuthenticatedLayeredIndex* ali) {
    const Delta* d = find_delta(target, table, column);
    put_names(names, d);
    const auto& refs = d != nullptr ? d->refs : kNoRefs;
    blob.clear();
    layered->EncodeCheckpointState(refs, &blob);
    PutLengthPrefixed(meta, blob);
    meta->push_back(ali != nullptr ? 1 : 0);
    if (ali != nullptr) {
      blob.clear();
      ali->EncodeCheckpointState(refs, &blob);
      PutLengthPrefixed(meta, blob);
    }
  };
  put_layered(Delta::kSenid, "", "", senid_files_, senid_index_.get(),
              senid_ali_.get());
  put_layered(Delta::kTname, "", "", tname_files_, tname_index_.get(),
              tname_ali_.get());
  PutVarint32(meta, static_cast<uint32_t>(user_indexes_.size()));
  for (const auto& [key, index] : user_indexes_) {
    PutLengthPrefixed(meta, key.first);
    PutLengthPrefixed(meta, key.second);
    PutVarint32(meta, static_cast<uint32_t>(index.schema_column_index));
    meta->push_back(index.discrete ? 1 : 0);
    put_layered(Delta::kUser, key.first, key.second, index.delta_files,
                index.layered.get(), index.ali.get());
  }
  return Status::OK();
}

void IndexSet::AdoptCheckpoint(BufferManager* pool,
                               const PendingIndexCheckpoint& pending) {
  using Delta = PendingIndexCheckpoint::Delta;
  MutexLock lock(&mu_);
  for (const auto& d : pending.deltas) {
    switch (d.target) {
      case Delta::kBlockIndex:
        block_index_.AdoptFrozen(d.bidx_ref);
        bidx_files_.push_back(d.name);
        break;
      case Delta::kSenid:
        senid_index_->AdoptFrozen(pool, d.file, d.refs);
        if (senid_ali_ != nullptr) {
          senid_ali_->AdoptFrozen(pool, d.file, d.refs);
        }
        senid_files_.push_back(d.name);
        break;
      case Delta::kTname:
        tname_index_->AdoptFrozen(pool, d.file, d.refs);
        if (tname_ali_ != nullptr) {
          tname_ali_->AdoptFrozen(pool, d.file, d.refs);
        }
        tname_files_.push_back(d.name);
        break;
      case Delta::kUser: {
        auto it = user_indexes_.find(std::make_pair(d.table, d.column));
        if (it == user_indexes_.end()) break;  // dropped mid-checkpoint
        it->second.layered->AdoptFrozen(pool, d.file, d.refs);
        if (it->second.ali != nullptr) {
          it->second.ali->AdoptFrozen(pool, d.file, d.refs);
        }
        it->second.delta_files.push_back(d.name);
        break;
      }
    }
  }
}

void IndexSet::AbortCheckpoint(BufferManager* pool,
                               const PendingIndexCheckpoint& pending) {
  for (const auto& d : pending.deltas) {
    if (d.file != BufferManager::kInvalidFileId) pool->DropFile(d.file);
  }
}

Status IndexSet::OpenDeltaFiles(BufferManager* pool, const std::string& dir,
                                Slice* in, std::vector<std::string>* names,
                                std::vector<BufferManager::FileId>* ids) {
  uint32_t n;
  if (!GetVarint32(in, &n) || n > in->size()) {
    return Status::Corruption("truncated checkpoint file list");
  }
  for (uint32_t i = 0; i < n; i++) {
    Slice name;
    if (!GetLengthPrefixed(in, &name) || name.empty()) {
      return Status::Corruption("truncated checkpoint file name");
    }
    BufferManager::FileId id;
    Status s = pool->OpenFile(dir + "/" + name.ToString(), &id);
    if (!s.ok()) return s;
    names->push_back(name.ToString());
    ids->push_back(id);
  }
  return Status::OK();
}

Status IndexSet::RestoreCheckpoint(BufferManager* pool,
                                   const std::string& dir, uint64_t height,
                                   Slice meta) {
  MutexLock lock(&mu_);
  if (num_blocks_ != 0) {
    return Status::InvalidArgument("restore requires a fresh index set");
  }
  Slice in = meta;
  uint32_t version;
  if (!GetVarint32(&in, &version) || version != 1) {
    return Status::Corruption("unknown index checkpoint version");
  }
  Slice blob;
  if (!GetLengthPrefixed(&in, &blob)) {
    return Status::Corruption("truncated table index state");
  }
  Status s = table_index_.RestoreFrom(&blob);
  if (!s.ok()) return s;

  {
    std::vector<BufferManager::FileId> ids;
    s = OpenDeltaFiles(pool, dir, &in, &bidx_files_, &ids);
    if (!s.ok()) return s;
    if (!GetLengthPrefixed(&in, &blob)) {
      return Status::Corruption("truncated block index state");
    }
    s = block_index_.RestoreCheckpoint(pool, std::move(ids), blob);
    if (!s.ok()) return s;
  }

  auto restore_layered = [&](std::vector<std::string>* names,
                             LayeredIndex* layered,
                             AuthenticatedLayeredIndex* ali) -> Status {
    std::vector<BufferManager::FileId> ids;
    Status rs = OpenDeltaFiles(pool, dir, &in, names, &ids);
    if (!rs.ok()) return rs;
    Slice state;
    if (!GetLengthPrefixed(&in, &state)) {
      return Status::Corruption("truncated layered index state");
    }
    rs = layered->RestoreCheckpoint(pool, ids, state);
    if (!rs.ok()) return rs;
    if (in.empty()) return Status::Corruption("truncated ALI presence flag");
    const bool has_ali = in.data()[0] != 0;
    in.remove_prefix(1);
    if (has_ali) {
      Slice ali_state;
      if (!GetLengthPrefixed(&in, &ali_state)) {
        return Status::Corruption("truncated ALI state");
      }
      if (ali != nullptr) {
        rs = ali->RestoreCheckpoint(pool, ids, ali_state);
        if (!rs.ok()) return rs;
      }
    } else if (ali != nullptr) {
      // Auth indices were off when the checkpoint was written; a full
      // replay is the only way to rebuild the MB-tree roots.
      return Status::InvalidArgument(
          "checkpoint lacks authenticated index state");
    }
    return Status::OK();
  };

  s = restore_layered(&senid_files_, senid_index_.get(), senid_ali_.get());
  if (!s.ok()) return s;
  s = restore_layered(&tname_files_, tname_index_.get(), tname_ali_.get());
  if (!s.ok()) return s;

  uint32_t nuser;
  if (!GetVarint32(&in, &nuser) || nuser > in.size()) {
    return Status::Corruption("truncated user index count");
  }
  for (uint32_t i = 0; i < nuser; i++) {
    Slice table, column;
    uint32_t schema_index;
    if (!GetLengthPrefixed(&in, &table) || !GetLengthPrefixed(&in, &column) ||
        !GetVarint32(&in, &schema_index) || in.empty()) {
      return Status::Corruption("truncated user index header");
    }
    const bool discrete = in.data()[0] != 0;
    in.remove_prefix(1);
    auto key = std::make_pair(table.ToString(), column.ToString());
    auto it = user_indexes_.find(key);
    if (it == user_indexes_.end()) {
      // Not re-created from the manifest (e.g. the manifest was lost); the
      // checkpoint carries the full definition.
      s = CreateLayeredIndexLocked(key.first, key.second,
                                   static_cast<int>(schema_index), discrete);
      if (!s.ok()) return s;
      it = user_indexes_.find(key);
    }
    s = restore_layered(&it->second.delta_files, it->second.layered.get(),
                        it->second.ali.get());
    if (!s.ok()) return s;
  }

  if (block_index_.num_blocks() != height ||
      senid_index_->num_blocks() != height) {
    return Status::Corruption("checkpoint height mismatch");
  }
  num_blocks_ = height;

  // Manifest-listed indices the checkpoint predates start empty; backfill
  // them from raw blocks so every index covers [0, height) before replay.
  for (auto& [key, index] : user_indexes_) {
    if (index.layered->num_blocks() == num_blocks_) continue;
    if (index.layered->num_blocks() != 0) {
      return Status::Corruption("user index height mismatch");
    }
    s = BackfillIndex(&index, !index.discrete,
                      MakeColumnExtractor(key.first,
                                          index.schema_column_index));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace sebdb
