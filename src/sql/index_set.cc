#include "sql/index_set.h"

#include <algorithm>
#include <cstdio>

namespace sebdb {

namespace {

ColumnExtractor MakeColumnExtractor(const std::string& table, int app_index) {
  return [table, app_index](const Transaction& txn, Value* out) {
    if (txn.tname() != table) return false;
    int pos = app_index - Schema::kNumSystemColumns;
    if (pos < 0 || pos >= static_cast<int>(txn.values().size())) return false;
    *out = txn.values()[pos];
    return true;
  };
}

}  // namespace

ColumnExtractor IndexSet::MakeSystemExtractor(bool sender) {
  return [sender](const Transaction& txn, Value* out) {
    *out = Value::Str(sender ? txn.sender() : txn.tname());
    return true;
  };
}

IndexSet::IndexSet(BlockStore* store, IndexSetOptions options)
    : store_(store), options_(std::move(options)) {
  LayeredIndexOptions discrete_options;
  discrete_options.discrete = true;
  senid_index_ = std::make_unique<LayeredIndex>(
      "sys.senid", discrete_options, MakeSystemExtractor(/*sender=*/true));
  tname_index_ = std::make_unique<LayeredIndex>(
      "sys.tname", discrete_options, MakeSystemExtractor(/*sender=*/false));
  if (options_.build_auth_indexes) {
    senid_ali_ = std::make_unique<AuthenticatedLayeredIndex>(
        "sys.senid.auth", discrete_options,
        MakeSystemExtractor(/*sender=*/true));
    tname_ali_ = std::make_unique<AuthenticatedLayeredIndex>(
        "sys.tname.auth", discrete_options,
        MakeSystemExtractor(/*sender=*/false));
  }
  if (!options_.manifest_path.empty()) LoadManifest();
}

void IndexSet::LoadManifest() {
  FILE* f = fopen(options_.manifest_path.c_str(), "r");
  if (f == nullptr) return;  // no manifest yet
  char table[256], column[256];
  int schema_index, discrete;
  while (fscanf(f, "%255s %255s %d %d", table, column, &schema_index,
                &discrete) == 4) {
    // Created before any block is replayed, so no backfill is needed; the
    // replay loop feeds every block through AddBlock.
    CreateLayeredIndexLocked(table, column, schema_index, discrete != 0)
        .ok();
  }
  fclose(f);
}

void IndexSet::AppendManifest(const std::string& table,
                              const std::string& column,
                              int schema_column_index, bool discrete) {
  if (options_.manifest_path.empty()) return;
  FILE* f = fopen(options_.manifest_path.c_str(), "a");
  if (f == nullptr) return;
  fprintf(f, "%s %s %d %d\n", table.c_str(), column.c_str(),
          schema_column_index, discrete ? 1 : 0);
  fclose(f);
}

Status IndexSet::AddBlock(const Block& block) {
  MutexLock lock(&mu_);
  if (block.height() != num_blocks_) {
    return Status::InvalidArgument("index set blocks must arrive in order");
  }
  Status s = block_index_.Add(block.header());
  if (!s.ok()) return s;
  table_index_.AddBlock(block);
  s = senid_index_->AddBlock(block);
  if (!s.ok()) return s;
  s = tname_index_->AddBlock(block);
  if (!s.ok()) return s;
  if (senid_ali_ != nullptr) {
    s = senid_ali_->AddBlock(block);
    if (!s.ok()) return s;
  }
  if (tname_ali_ != nullptr) {
    s = tname_ali_->AddBlock(block);
    if (!s.ok()) return s;
  }
  for (auto& [key, index] : user_indexes_) {
    s = index.layered->AddBlock(block);
    if (!s.ok()) return s;
    if (index.ali != nullptr) {
      s = index.ali->AddBlock(block);
      if (!s.ok()) return s;
    }
  }
  num_blocks_++;
  return Status::OK();
}

uint64_t IndexSet::num_blocks() const {
  MutexLock lock(&mu_);
  return num_blocks_;
}

Status IndexSet::CreateLayeredIndex(const std::string& table,
                                    const std::string& column,
                                    int schema_column_index, bool discrete) {
  MutexLock lock(&mu_);
  Status s =
      CreateLayeredIndexLocked(table, column, schema_column_index, discrete);
  if (!s.ok()) return s;
  AppendManifest(table, column, schema_column_index, discrete);
  return Status::OK();
}

Status IndexSet::CreateLayeredIndexLocked(const std::string& table,
                                          const std::string& column,
                                          int schema_column_index,
                                          bool discrete) {
  auto key = std::make_pair(table, column);
  if (user_indexes_.contains(key)) {
    return Status::InvalidArgument("index already exists on " + table + "." +
                                   column);
  }
  if (schema_column_index < Schema::kNumSystemColumns) {
    return Status::InvalidArgument(
        "layered indices on system columns are built in (SenID, Tname)");
  }

  UserIndex index;
  LayeredIndexOptions layered_options;
  layered_options.discrete = discrete;
  layered_options.histogram_buckets = options_.histogram_buckets;
  ColumnExtractor extractor = MakeColumnExtractor(table, schema_column_index);
  std::string name = table + "." + column;
  index.layered = std::make_unique<LayeredIndex>(name, layered_options,
                                                 extractor);
  if (options_.build_auth_indexes) {
    index.ali = std::make_unique<AuthenticatedLayeredIndex>(
        name + ".auth", layered_options, extractor);
  }

  Status backfill = BackfillIndex(&index, !discrete, extractor);
  if (!backfill.ok()) return backfill;
  user_indexes_[key] = std::move(index);
  return Status::OK();
}

Status IndexSet::BackfillIndex(UserIndex* index, bool continuous,
                               const ColumnExtractor& extractor) {
  if (num_blocks_ == 0) return Status::OK();
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "cannot backfill an index without a block store");
  }

  // Pass 1 (continuous only): sample historical values for the histogram.
  if (continuous) {
    std::vector<Value> sample;
    for (uint64_t bid = 0;
         bid < num_blocks_ && sample.size() < options_.histogram_sample_limit;
         bid++) {
      std::shared_ptr<const Block> block;
      Status s = store_->ReadBlock(bid, &block);
      if (!s.ok()) return s;
      for (const auto& txn : block->transactions()) {
        Value v;
        if (extractor(txn, &v)) sample.push_back(std::move(v));
      }
    }
    if (!sample.empty()) {
      EqualDepthHistogram histogram;
      Status s = EqualDepthHistogram::Build(
          std::move(sample), options_.histogram_buckets, &histogram);
      if (!s.ok()) return s;
      s = index->layered->SetHistogram(histogram);
      if (!s.ok()) return s;
      if (index->ali != nullptr) {
        s = index->ali->SetHistogram(std::move(histogram));
        if (!s.ok()) return s;
      }
    }
  }

  // Pass 2: index every existing block.
  for (uint64_t bid = 0; bid < num_blocks_; bid++) {
    std::shared_ptr<const Block> block;
    Status s = store_->ReadBlock(bid, &block);
    if (!s.ok()) return s;
    s = index->layered->AddBlock(*block);
    if (!s.ok()) return s;
    if (index->ali != nullptr) {
      s = index->ali->AddBlock(*block);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

LayeredIndex* IndexSet::GetLayered(const std::string& table,
                                   const std::string& column) {
  MutexLock lock(&mu_);
  auto it = user_indexes_.find(std::make_pair(table, column));
  return it == user_indexes_.end() ? nullptr : it->second.layered.get();
}

AuthenticatedLayeredIndex* IndexSet::GetAli(const std::string& table,
                                            const std::string& column) {
  MutexLock lock(&mu_);
  auto it = user_indexes_.find(std::make_pair(table, column));
  return it == user_indexes_.end() ? nullptr : it->second.ali.get();
}

bool IndexSet::HasLayered(const std::string& table,
                          const std::string& column) const {
  MutexLock lock(&mu_);
  return user_indexes_.contains(std::make_pair(table, column));
}

}  // namespace sebdb
