#include "sql/catalog.h"

namespace sebdb {

Status Catalog::RegisterSchema(Schema schema) {
  MutexLock lock(&mu_);
  auto it = schemas_.find(schema.table_name());
  if (it != schemas_.end()) {
    if (it->second == schema) return Status::OK();  // idempotent replay
    return Status::InvalidArgument("table already exists with a different "
                                   "schema: " +
                                   schema.table_name());
  }
  schemas_[schema.table_name()] = std::move(schema);
  return Status::OK();
}

Status Catalog::GetSchema(const std::string& table, Schema* out) const {
  MutexLock lock(&mu_);
  auto it = schemas_.find(table);
  if (it == schemas_.end()) {
    return Status::NotFound("no on-chain table named " + table);
  }
  *out = it->second;
  return Status::OK();
}

bool Catalog::HasTable(const std::string& table) const {
  MutexLock lock(&mu_);
  return schemas_.contains(table);
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) names.push_back(name);
  return names;
}

Transaction Catalog::MakeSchemaTransaction(const Schema& schema) {
  std::string encoded;
  schema.EncodeTo(&encoded);
  return Transaction(kSchemaTable, {Value::Str(std::move(encoded))});
}

bool Catalog::MaybeApplySchemaTransaction(const Transaction& txn) {
  if (txn.tname() != kSchemaTable || txn.values().size() != 1 ||
      txn.values()[0].type() != ValueType::kString) {
    return false;
  }
  Slice input(txn.values()[0].AsString());
  Schema schema;
  if (!Schema::DecodeFrom(&input, &schema).ok()) return false;
  RegisterSchema(std::move(schema)).ok();
  return true;
}

}  // namespace sebdb
