#include "sql/catalog.h"

#include "common/coding.h"

namespace sebdb {

Status Catalog::RegisterSchema(Schema schema) {
  MutexLock lock(&mu_);
  auto it = schemas_.find(schema.table_name());
  if (it != schemas_.end()) {
    if (it->second == schema) return Status::OK();  // idempotent replay
    return Status::InvalidArgument("table already exists with a different "
                                   "schema: " +
                                   schema.table_name());
  }
  schemas_[schema.table_name()] = std::move(schema);
  return Status::OK();
}

Status Catalog::GetSchema(const std::string& table, Schema* out) const {
  MutexLock lock(&mu_);
  auto it = schemas_.find(table);
  if (it == schemas_.end()) {
    return Status::NotFound("no on-chain table named " + table);
  }
  *out = it->second;
  return Status::OK();
}

bool Catalog::HasTable(const std::string& table) const {
  MutexLock lock(&mu_);
  return schemas_.contains(table);
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) names.push_back(name);
  return names;
}

Transaction Catalog::MakeSchemaTransaction(const Schema& schema) {
  std::string encoded;
  schema.EncodeTo(&encoded);
  return Transaction(kSchemaTable, {Value::Str(std::move(encoded))});
}

bool Catalog::DecodeSchemaTransaction(const Transaction& txn, Schema* out) {
  if (txn.tname() != kSchemaTable || txn.values().size() != 1 ||
      txn.values()[0].type() != ValueType::kString) {
    return false;
  }
  Slice input(txn.values()[0].AsString());
  return Schema::DecodeFrom(&input, out).ok();
}

bool Catalog::MaybeApplySchemaTransaction(const Transaction& txn) {
  Schema schema;
  if (!DecodeSchemaTransaction(txn, &schema)) return false;
  RegisterSchema(std::move(schema)).ok();
  return true;
}

void Catalog::EncodeTo(std::string* dst) const {
  MutexLock lock(&mu_);
  PutVarint32(dst, static_cast<uint32_t>(schemas_.size()));
  for (const auto& [name, schema] : schemas_) {  // std::map: already sorted
    schema.EncodeTo(dst);
  }
}

Status Catalog::RestoreFrom(Slice* in) {
  uint32_t n;
  if (!GetVarint32(in, &n) || n > in->size()) {
    return Status::Corruption("truncated catalog");
  }
  MutexLock lock(&mu_);
  schemas_.clear();
  for (uint32_t i = 0; i < n; i++) {
    Schema schema;
    Status s = Schema::DecodeFrom(in, &schema);
    if (!s.ok()) return s;
    std::string name = schema.table_name();
    schemas_[std::move(name)] = std::move(schema);
  }
  return Status::OK();
}

void Catalog::Clear() {
  MutexLock lock(&mu_);
  schemas_.clear();
}

}  // namespace sebdb
