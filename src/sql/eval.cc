#include "sql/eval.h"

namespace sebdb {

void ColumnBindings::AddTable(const std::string& table,
                              const std::vector<std::string>& columns) {
  for (const auto& column : columns) {
    int index = static_cast<int>(names_.size());
    names_.push_back(table + "." + column);
    by_column_[column].push_back(index);
    by_qualified_[table + "." + column] = index;
  }
}

Status ColumnBindings::Resolve(const ColumnRef& ref, int* index) const {
  if (!ref.table.empty()) {
    auto it = by_qualified_.find(ref.table + "." + ref.column);
    if (it == by_qualified_.end()) {
      return Status::NotFound("unknown column " + ref.table + "." +
                              ref.column);
    }
    *index = it->second;
    return Status::OK();
  }
  auto it = by_column_.find(ref.column);
  if (it == by_column_.end()) {
    return Status::NotFound("unknown column " + ref.column);
  }
  if (it->second.size() > 1) {
    return Status::InvalidArgument("ambiguous column " + ref.column);
  }
  *index = it->second[0];
  return Status::OK();
}

namespace {

Status CompareValues(const Value& a, const Value& b, BinaryOp op, bool* out) {
  int cmp;
  Status s = a.Compare(b, &cmp);
  if (!s.ok()) return s;
  switch (op) {
    case BinaryOp::kEq:
      *out = cmp == 0;
      return Status::OK();
    case BinaryOp::kNe:
      *out = cmp != 0;
      return Status::OK();
    case BinaryOp::kLt:
      *out = cmp < 0;
      return Status::OK();
    case BinaryOp::kLe:
      *out = cmp <= 0;
      return Status::OK();
    case BinaryOp::kGt:
      *out = cmp > 0;
      return Status::OK();
    case BinaryOp::kGe:
      *out = cmp >= 0;
      return Status::OK();
    default:
      return Status::InvalidArgument("not a comparison operator");
  }
}

}  // namespace

Status EvalExpr(const Expr& expr, const ColumnBindings& bindings,
                const std::vector<Value>& row,
                const std::vector<Value>& params, Value* out) {
  if (const auto* col = std::get_if<ColumnRef>(&expr.node)) {
    int index;
    Status s = bindings.Resolve(*col, &index);
    if (!s.ok()) return s;
    if (index >= static_cast<int>(row.size())) {
      return Status::InvalidArgument("row narrower than bindings");
    }
    *out = row[index];
    return Status::OK();
  }
  if (const auto* lit = std::get_if<Literal>(&expr.node)) {
    *out = lit->value;
    return Status::OK();
  }
  if (const auto* param = std::get_if<Parameter>(&expr.node)) {
    if (param->index >= static_cast<int>(params.size())) {
      return Status::InvalidArgument(
          "missing bind parameter ?" + std::to_string(param->index + 1));
    }
    *out = params[param->index];
    return Status::OK();
  }
  if (const auto* between = std::get_if<BetweenExpr>(&expr.node)) {
    int index;
    Status s = bindings.Resolve(between->column, &index);
    if (!s.ok()) return s;
    Value lo, hi;
    s = EvalExpr(*between->lo, bindings, row, params, &lo);
    if (!s.ok()) return s;
    s = EvalExpr(*between->hi, bindings, row, params, &hi);
    if (!s.ok()) return s;
    bool ge, le;
    s = CompareValues(row[index], lo, BinaryOp::kGe, &ge);
    if (!s.ok()) return s;
    s = CompareValues(row[index], hi, BinaryOp::kLe, &le);
    if (!s.ok()) return s;
    *out = Value::Bool(ge && le);
    return Status::OK();
  }
  const auto& binary = std::get<BinaryExpr>(expr.node);
  if (binary.op == BinaryOp::kAnd || binary.op == BinaryOp::kOr) {
    Value left, right;
    Status s = EvalExpr(*binary.left, bindings, row, params, &left);
    if (!s.ok()) return s;
    // Short-circuit.
    bool lv = left.type() == ValueType::kBool && left.AsBool();
    if (binary.op == BinaryOp::kAnd && !lv) {
      *out = Value::Bool(false);
      return Status::OK();
    }
    if (binary.op == BinaryOp::kOr && lv) {
      *out = Value::Bool(true);
      return Status::OK();
    }
    s = EvalExpr(*binary.right, bindings, row, params, &right);
    if (!s.ok()) return s;
    bool rv = right.type() == ValueType::kBool && right.AsBool();
    *out = Value::Bool(binary.op == BinaryOp::kAnd ? (lv && rv) : (lv || rv));
    return Status::OK();
  }
  Value left, right;
  Status s = EvalExpr(*binary.left, bindings, row, params, &left);
  if (!s.ok()) return s;
  s = EvalExpr(*binary.right, bindings, row, params, &right);
  if (!s.ok()) return s;
  if (left.is_null() || right.is_null()) {
    *out = Value::Bool(false);  // SQL-ish: NULL comparisons are not true
    return Status::OK();
  }
  bool result;
  s = CompareValues(left, right, binary.op, &result);
  if (!s.ok()) return s;
  *out = Value::Bool(result);
  return Status::OK();
}

Status EvalConstExpr(const Expr& expr, const std::vector<Value>& params,
                     Value* out) {
  ColumnBindings empty;
  std::vector<Value> no_row;
  return EvalExpr(expr, empty, no_row, params, out);
}

Status EvalPredicate(const Expr& expr, const ColumnBindings& bindings,
                     const std::vector<Value>& row,
                     const std::vector<Value>& params, bool* out) {
  Value v;
  Status s = EvalExpr(expr, bindings, row, params, &v);
  if (!s.ok()) return s;
  *out = v.type() == ValueType::kBool && v.AsBool();
  return Status::OK();
}

namespace {

bool RefersTo(const ColumnRef& ref, const std::string& table,
              const std::string& column) {
  if (ref.column != column) return false;
  return ref.table.empty() || ref.table == table;
}

// Tightens `range` with a single comparison conjunct, if it constrains the
// target column.
void ApplyComparison(const ColumnRef& col, BinaryOp op, const Value& v,
                     const std::string& table, const std::string& column,
                     ColumnRange* range, bool* any) {
  if (!RefersTo(col, table, column) || v.is_null()) return;
  auto tighten_lo = [&](const Value& bound) {
    if (!range->lo.has_value() || range->lo->CompareTotal(bound) < 0) {
      range->lo = bound;
    }
  };
  auto tighten_hi = [&](const Value& bound) {
    if (!range->hi.has_value() || range->hi->CompareTotal(bound) > 0) {
      range->hi = bound;
    }
  };
  switch (op) {
    case BinaryOp::kEq:
      tighten_lo(v);
      tighten_hi(v);
      *any = true;
      break;
    case BinaryOp::kGe:
    case BinaryOp::kGt:  // conservative: treated as >= (rows re-filtered)
      tighten_lo(v);
      *any = true;
      break;
    case BinaryOp::kLe:
    case BinaryOp::kLt:  // conservative: treated as <=
      tighten_hi(v);
      *any = true;
      break;
    default:
      break;
  }
}

void WalkConjuncts(const Expr* expr, const std::string& table,
                   const std::string& column,
                   const std::vector<Value>& params, ColumnRange* range,
                   bool* any) {
  if (expr == nullptr) return;
  if (const auto* binary = std::get_if<BinaryExpr>(&expr->node)) {
    if (binary->op == BinaryOp::kAnd) {
      WalkConjuncts(binary->left.get(), table, column, params, range, any);
      WalkConjuncts(binary->right.get(), table, column, params, range, any);
      return;
    }
    if (binary->op == BinaryOp::kOr) return;  // not sargable
    // col op const  /  const op col
    const auto* lcol = std::get_if<ColumnRef>(&binary->left->node);
    const auto* rcol = std::get_if<ColumnRef>(&binary->right->node);
    Value v;
    if (lcol != nullptr && rcol == nullptr &&
        EvalConstExpr(*binary->right, params, &v).ok()) {
      ApplyComparison(*lcol, binary->op, v, table, column, range, any);
    } else if (rcol != nullptr && lcol == nullptr &&
               EvalConstExpr(*binary->left, params, &v).ok()) {
      // Flip the operator: const op col  ==  col flipped(op) const.
      BinaryOp flipped = binary->op;
      switch (binary->op) {
        case BinaryOp::kLt:
          flipped = BinaryOp::kGt;
          break;
        case BinaryOp::kLe:
          flipped = BinaryOp::kGe;
          break;
        case BinaryOp::kGt:
          flipped = BinaryOp::kLt;
          break;
        case BinaryOp::kGe:
          flipped = BinaryOp::kLe;
          break;
        default:
          break;
      }
      ApplyComparison(*rcol, flipped, v, table, column, range, any);
    }
    return;
  }
  if (const auto* between = std::get_if<BetweenExpr>(&expr->node)) {
    if (!RefersTo(between->column, table, column)) return;
    Value lo, hi;
    if (EvalConstExpr(*between->lo, params, &lo).ok() &&
        EvalConstExpr(*between->hi, params, &hi).ok() && !lo.is_null() &&
        !hi.is_null()) {
      ApplyComparison(between->column, BinaryOp::kGe, lo, table, column,
                      range, any);
      ApplyComparison(between->column, BinaryOp::kLe, hi, table, column,
                      range, any);
    }
  }
}

}  // namespace

std::optional<ColumnRange> ExtractColumnRange(
    const Expr* where, const std::string& table, const std::string& column,
    const std::vector<Value>& params) {
  ColumnRange range;
  bool any = false;
  WalkConjuncts(where, table, column, params, &range, &any);
  if (!any) return std::nullopt;
  return range;
}

}  // namespace sebdb
