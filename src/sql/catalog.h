// Catalog of on-chain table schemas. Schemas are created by CREATE
// statements, shipped between nodes as special "__schema" system
// transactions (paper §IV-A: "the system sends a special transaction to
// synchronize schema among nodes"), and replayed from the chain on recovery.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/schema.h"
#include "types/transaction.h"

namespace sebdb {

class Catalog {
 public:
  /// Table name of the schema-sync system transactions.
  static constexpr const char* kSchemaTable = "__schema";

  Status RegisterSchema(Schema schema);
  Status GetSchema(const std::string& table, Schema* out) const;
  bool HasTable(const std::string& table) const;
  std::vector<std::string> TableNames() const;

  /// Builds the schema-sync transaction carrying `schema` (sender/signature
  /// are filled by the submitting node).
  static Transaction MakeSchemaTransaction(const Schema& schema);

  /// If `txn` is a schema-sync transaction, registers the schema it carries
  /// and returns true (idempotent re-registration is OK — every node replays
  /// the chain).
  bool MaybeApplySchemaTransaction(const Transaction& txn);

  /// True when `txn` is a well-formed schema-sync transaction; decodes the
  /// carried schema into *out without applying it. The transaction scheduler
  /// uses this to type schema ops as table-level barriers when extracting
  /// write footprints (DESIGN.md §13); MaybeApplySchemaTransaction applies
  /// exactly the transactions this accepts.
  static bool DecodeSchemaTransaction(const Transaction& txn, Schema* out);

  /// Checkpoint codec: all schemas in table-name order (deterministic bytes).
  void EncodeTo(std::string* dst) const;
  Status RestoreFrom(Slice* in);

  /// Drops every schema (checkpoint-restore fallback to full replay).
  void Clear();

 private:
  mutable Mutex mu_;
  std::map<std::string, Schema> schemas_ GUARDED_BY(mu_);
};

}  // namespace sebdb
