#include "sql/result.h"

namespace sebdb {

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); i++) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); i++) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace sebdb
