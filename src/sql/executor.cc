#include "sql/executor.h"

#include <algorithm>
#include <unordered_map>

#include "sql/cost_model.h"
#include "sql/executor_internal.h"
#include "sql/parser.h"

namespace sebdb {

using sql_internal::AllBlocksBitmap;
using sql_internal::OffchainColumnNames;
using sql_internal::SchemaColumnNames;

namespace {

std::string RangeToString(const std::optional<Value>& lo,
                          const std::optional<Value>& hi) {
  std::string out = "[";
  out += lo.has_value() ? lo->ToString() : "-inf";
  out += ", ";
  out += hi.has_value() ? hi->ToString() : "+inf";
  out += "]";
  return out;
}

}  // namespace

Status Executor::Execute(const Statement& stmt, const ExecOptions& options,
                         ResultSet* result) {
  result->columns.clear();
  result->rows.clear();
  result->plan.clear();

  if (const auto* explain = std::get_if<ExplainStmt>(&stmt.node)) {
    // Plan the inner statement without running it.
    if (const auto* select = std::get_if<SelectStmt>(&explain->inner->node)) {
      return ExecSelect(*select, options, /*explain_only=*/true, result);
    }
    if (const auto* trace = std::get_if<TraceStmt>(&explain->inner->node)) {
      return ExecTrace(*trace, options, /*explain_only=*/true, result);
    }
    if (const auto* get = std::get_if<GetBlockStmt>(&explain->inner->node)) {
      return ExecGetBlock(*get, options, /*explain_only=*/true, result);
    }
    return Status::NotSupported("EXPLAIN supports SELECT, TRACE, GET BLOCK");
  }
  if (const auto* select = std::get_if<SelectStmt>(&stmt.node)) {
    return ExecSelect(*select, options, /*explain_only=*/false, result);
  }
  if (const auto* trace = std::get_if<TraceStmt>(&stmt.node)) {
    return ExecTrace(*trace, options, /*explain_only=*/false, result);
  }
  if (const auto* get = std::get_if<GetBlockStmt>(&stmt.node)) {
    return ExecGetBlock(*get, options, /*explain_only=*/false, result);
  }
  if (const auto* create_index = std::get_if<CreateIndexStmt>(&stmt.node)) {
    return ExecCreateIndex(*create_index, /*explain_only=*/false, result);
  }
  return Status::NotSupported(
      "CREATE TABLE and INSERT are write statements; submit them through a "
      "SEBDB node so they reach consensus");
}

Status Executor::ExecuteSql(std::string_view sql, const ExecOptions& options,
                            ResultSet* result) {
  StatementPtr stmt;
  Status s = ParseStatement(sql, &stmt);
  if (!s.ok()) return s;
  return Execute(*stmt, options, result);
}

Status Executor::ResolveWindow(const std::optional<TimeWindow>& window,
                               const std::vector<Value>& params,
                               std::optional<Bitmap>* out) const {
  out->reset();
  if (!window.has_value()) return Status::OK();
  Value start, end;
  Status s = EvalConstExpr(*window->start, params, &start);
  if (!s.ok()) return s;
  s = EvalConstExpr(*window->end, params, &end);
  if (!s.ok()) return s;
  auto as_ts = [](const Value& v, Timestamp* t) -> Status {
    if (v.type() == ValueType::kTimestamp) {
      *t = v.AsTimestamp();
    } else if (v.type() == ValueType::kInt64) {
      *t = v.AsInt();
    } else {
      return Status::InvalidArgument("window bounds must be timestamps");
    }
    return Status::OK();
  };
  Timestamp start_ts, end_ts;
  s = as_ts(start, &start_ts);
  if (!s.ok()) return s;
  s = as_ts(end, &end_ts);
  if (!s.ok()) return s;
  *out = indexes_->block_index().BlocksInWindow(start_ts, end_ts);
  return Status::OK();
}

std::vector<Value> Executor::TxnToRow(const Transaction& txn,
                                      int num_columns) {
  std::vector<Value> row;
  row.reserve(num_columns);
  for (int i = 0; i < num_columns; i++) row.push_back(txn.GetColumn(i));
  return row;
}

namespace {

// Folds a set of rows into one aggregate row.
Status FoldAggregates(const SelectStmt& stmt, const ColumnBindings& bindings,
                      const std::vector<const std::vector<Value>*>& rows,
                      std::vector<Value>* agg_row) {
  for (const auto& agg : stmt.aggregates) {
    int index = -1;
    if (!agg.star) {
      Status s = bindings.Resolve(agg.column, &index);
      if (!s.ok()) return s;
    }
    if (agg.fn == AggCall::Fn::kCount) {
      int64_t count = 0;
      for (const auto* row : rows) {
        if (agg.star || !(*row)[index].is_null()) count++;
      }
      agg_row->push_back(Value::Int(count));
      continue;
    }
    // SUM / AVG / MIN / MAX over non-null values.
    bool any = false;
    double sum = 0;
    int64_t count = 0;
    Value min_v, max_v;
    for (const auto* row : rows) {
      const Value& v = (*row)[index];
      if (v.is_null()) continue;
      if ((agg.fn == AggCall::Fn::kSum || agg.fn == AggCall::Fn::kAvg) &&
          !v.IsNumeric()) {
        return Status::InvalidArgument(agg.ToString() +
                                       " needs a numeric column");
      }
      if (!any) {
        min_v = v;
        max_v = v;
      } else {
        if (v.CompareTotal(min_v) < 0) min_v = v;
        if (v.CompareTotal(max_v) > 0) max_v = v;
      }
      any = true;
      if (v.IsNumeric()) sum += v.NumericValue();
      count++;
    }
    switch (agg.fn) {
      case AggCall::Fn::kSum:
        agg_row->push_back(any ? Value::Double(sum) : Value::Null());
        break;
      case AggCall::Fn::kAvg:
        agg_row->push_back(any ? Value::Double(sum / count) : Value::Null());
        break;
      case AggCall::Fn::kMin:
        agg_row->push_back(any ? min_v : Value::Null());
        break;
      case AggCall::Fn::kMax:
        agg_row->push_back(any ? max_v : Value::Null());
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

// Aggregation, optionally grouped by one column.
Status ComputeAggregates(const SelectStmt& stmt,
                         const ColumnBindings& bindings, ResultSet* result) {
  std::vector<std::string> names;
  if (stmt.group_by.has_value()) {
    int group_index;
    Status s = bindings.Resolve(*stmt.group_by, &group_index);
    if (!s.ok()) return s;
    names.push_back(bindings.qualified_names()[group_index]);
    for (const auto& agg : stmt.aggregates) names.push_back(agg.ToString());

    struct ValueCmp {
      bool operator()(const Value& a, const Value& b) const {
        return a.CompareTotal(b) < 0;
      }
    };
    std::map<Value, std::vector<const std::vector<Value>*>, ValueCmp> groups;
    for (const auto& row : result->rows) {
      groups[row[group_index]].push_back(&row);
    }
    std::vector<std::vector<Value>> out_rows;
    for (const auto& [key, rows] : groups) {
      std::vector<Value> out_row = {key};
      s = FoldAggregates(stmt, bindings, rows, &out_row);
      if (!s.ok()) return s;
      out_rows.push_back(std::move(out_row));
    }
    result->rows = std::move(out_rows);  // sorted by group key (map order)
    result->columns = std::move(names);
    return Status::OK();
  }

  for (const auto& agg : stmt.aggregates) names.push_back(agg.ToString());
  std::vector<const std::vector<Value>*> all;
  all.reserve(result->rows.size());
  for (const auto& row : result->rows) all.push_back(&row);
  std::vector<Value> agg_row;
  Status s = FoldAggregates(stmt, bindings, all, &agg_row);
  if (!s.ok()) return s;
  result->rows.clear();
  result->rows.push_back(std::move(agg_row));
  result->columns = std::move(names);
  return Status::OK();
}

}  // namespace

Status Executor::Project(const SelectStmt& stmt,
                         const ColumnBindings& bindings,
                         ResultSet* result) const {
  if (!stmt.aggregates.empty()) {
    Status s = ComputeAggregates(stmt, bindings, result);
    if (!s.ok()) return s;
    // Grouped rows come out in ascending key order; honor DESC on the key.
    if (stmt.order_by.has_value() && stmt.group_by.has_value()) {
      if (stmt.order_by->column.column != stmt.group_by->column) {
        return Status::NotSupported(
            "ORDER BY of a grouped query must use the GROUP BY column");
      }
      if (stmt.order_by->descending) {
        std::reverse(result->rows.begin(), result->rows.end());
      }
    }
    if (stmt.limit >= 0 &&
        result->rows.size() > static_cast<size_t>(stmt.limit)) {
      result->rows.resize(stmt.limit);
    }
    return Status::OK();
  }

  // ORDER BY binds against the full (pre-projection) row.
  if (stmt.order_by.has_value()) {
    int index;
    Status s = bindings.Resolve(stmt.order_by->column, &index);
    if (!s.ok()) return s;
    bool desc = stmt.order_by->descending;
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [index, desc](const std::vector<Value>& a,
                                   const std::vector<Value>& b) {
                       int cmp = a[index].CompareTotal(b[index]);
                       return desc ? cmp > 0 : cmp < 0;
                     });
  }
  if (stmt.limit >= 0 &&
      result->rows.size() > static_cast<size_t>(stmt.limit)) {
    result->rows.resize(stmt.limit);
  }

  if (stmt.star) return Status::OK();
  std::vector<int> keep;
  std::vector<std::string> names;
  for (const auto& col : stmt.projection) {
    int index;
    Status s = bindings.Resolve(col, &index);
    if (!s.ok()) return s;
    keep.push_back(index);
    names.push_back(bindings.qualified_names()[index]);
  }
  for (auto& row : result->rows) {
    std::vector<Value> projected;
    projected.reserve(keep.size());
    for (int index : keep) projected.push_back(std::move(row[index]));
    row = std::move(projected);
  }
  result->columns = std::move(names);
  return Status::OK();
}

Status Executor::ExecSelect(const SelectStmt& stmt, const ExecOptions& options,
                            bool explain_only, ResultSet* result) {
  if (stmt.tables.empty()) return Status::InvalidArgument("no FROM table");
  if (stmt.tables.size() == 1) {
    if (stmt.tables[0].offchain) {
      return ExecOffchainOnly(stmt, options, explain_only, result);
    }
    return ExecSingleTable(stmt, options, explain_only, result);
  }
  if (stmt.tables.size() == 2) {
    if (!stmt.join.has_value()) {
      return Status::InvalidArgument("two-table SELECT needs ON a = b");
    }
    bool left_off = stmt.tables[0].offchain;
    bool right_off = stmt.tables[1].offchain;
    if (left_off && right_off) {
      return Status::NotSupported("join of two off-chain tables");
    }
    if (left_off || right_off) {
      return ExecOnOffJoin(stmt, options, explain_only, result);
    }
    return ExecOnChainJoin(stmt, options, explain_only, result);
  }
  return Status::NotSupported("more than two tables in FROM");
}

Status Executor::ExecSingleTable(const SelectStmt& stmt,
                                 const ExecOptions& options,
                                 bool explain_only, ResultSet* result) {
  const std::string& table = stmt.tables[0].name;
  Schema schema;
  Status s = catalog_->GetSchema(table, &schema);
  if (!s.ok()) return s;

  ColumnBindings bindings;
  bindings.AddTable(table, SchemaColumnNames(schema));
  result->columns = bindings.qualified_names();

  std::optional<Bitmap> window;
  s = ResolveWindow(stmt.window, options.params, &window);
  if (!s.ok()) return s;

  // Pick the access path: a layered index on a constrained column, the
  // table-level bitmap, or a full scan.
  LayeredIndex* layered = nullptr;
  std::string layered_column;
  std::optional<ColumnRange> range;
  for (int i = Schema::kNumSystemColumns; i < schema.num_columns(); i++) {
    const std::string& column = schema.columns()[i].name;
    LayeredIndex* candidate = indexes_->GetLayered(table, column);
    if (candidate == nullptr) continue;
    auto extracted =
        ExtractColumnRange(stmt.where.get(), table, column, options.params);
    if (extracted.has_value()) {
      layered = candidate;
      layered_column = column;
      range = extracted;
      break;
    }
    if (layered == nullptr) {  // fallback: index without a constraint
      layered = candidate;
      layered_column = column;
    }
  }

  // Cost-based choice (paper Eqs. 1-3): the layered index pays one random
  // read per result tuple, so for large results the bitmap's sequential
  // block reads win.
  CostParams cost_params;
  const StorageStats& stats = store_->stats();
  if (stats.blocks_appended.load(std::memory_order_relaxed) > 0) {
    cost_params.chain_block_bytes =
        static_cast<double>(
            stats.bytes_appended.load(std::memory_order_relaxed)) /
        static_cast<double>(
            stats.blocks_appended.load(std::memory_order_relaxed));
  }
  AccessPathCosts costs = EstimateSelectCosts(
      store_->num_blocks(),
      indexes_->table_index().BlocksWithTable(table).Count(),
      range.has_value() ? layered : nullptr,
      range.has_value() && range->lo.has_value() ? &*range->lo : nullptr,
      range.has_value() && range->hi.has_value() ? &*range->hi : nullptr,
      cost_params);
  AccessPath path = options.access_path;
  if (path == AccessPath::kAuto) {
    path = (layered != nullptr && range.has_value() && costs.LayeredWins())
               ? AccessPath::kLayered
               : AccessPath::kBitmap;
  }
  if (path == AccessPath::kLayered && layered == nullptr) {
    return Status::InvalidArgument("no layered index on table " + table);
  }

  // Plan description.
  {
    std::string plan = "SingleTable(" + table + ") path=";
    switch (path) {
      case AccessPath::kScan:
        plan += "scan";
        break;
      case AccessPath::kBitmap:
        plan += "bitmap";
        break;
      case AccessPath::kLayered:
        plan += "layered(" + layered_column + " in " +
                (range.has_value()
                     ? RangeToString(range->lo, range->hi)
                     : std::string("[-inf, +inf]")) +
                ")";
        break;
      default:
        plan += "?";
    }
    if (window.has_value()) plan += " window";
    if (stmt.where != nullptr) plan += " filter=" + stmt.where->ToString();
    plan += " " + costs.ToString();
    result->plan = std::move(plan);
  }
  if (explain_only) return Status::OK();

  const uint64_t n = store_->num_blocks();
  auto row_passes = [&](const std::vector<Value>& row, bool* ok) -> Status {
    if (stmt.where == nullptr) {
      *ok = true;
      return Status::OK();
    }
    return EvalPredicate(*stmt.where, bindings, row, options.params, ok);
  };

  using RowVec = std::vector<std::vector<Value>>;
  std::vector<RowVec> buffers;
  if (path == AccessPath::kLayered) {
    Bitmap candidates = layered->CandidateBlocks(
        range.has_value() && range->lo.has_value() ? &*range->lo : nullptr,
        range.has_value() && range->hi.has_value() ? &*range->hi : nullptr);
    if (window.has_value()) candidates.And(*window);
    const std::vector<size_t> bids = candidates.SetBits();
    s = sql_internal::ParallelMapOrdered<RowVec>(
        pool_, bids.size(),
        [&](size_t i, RowVec* out) -> Status {
          std::vector<TxnPointer> pointers;
          Status ps = layered->SearchBlock(
              bids[i],
              range.has_value() && range->lo.has_value() ? &*range->lo
                                                         : nullptr,
              range.has_value() && range->hi.has_value() ? &*range->hi
                                                         : nullptr,
              &pointers);
          if (!ps.ok()) return ps;
          for (const auto& pointer : pointers) {
            std::shared_ptr<const Transaction> txn;
            ps = store_->ReadTransaction(pointer.block, pointer.index, &txn);
            if (!ps.ok()) return ps;
            std::vector<Value> row = TxnToRow(*txn, schema.num_columns());
            bool ok;
            ps = row_passes(row, &ok);
            if (!ps.ok()) return ps;
            if (ok) out->push_back(std::move(row));
          }
          return Status::OK();
        },
        &buffers);
    if (!s.ok()) return s;
  } else {
    Bitmap blocks = path == AccessPath::kBitmap
                        ? indexes_->table_index().BlocksWithTable(table)
                        : AllBlocksBitmap(n);
    if (window.has_value()) blocks.And(*window);
    const std::vector<size_t> bids = blocks.SetBits();
    s = sql_internal::ParallelMapOrdered<RowVec>(
        pool_, bids.size(),
        [&](size_t i, RowVec* out) -> Status {
          std::shared_ptr<const Block> block;
          Status ps = store_->ReadBlock(bids[i], &block);
          if (!ps.ok()) return ps;
          for (const auto& txn : block->transactions()) {
            if (txn.tname() != table) continue;
            std::vector<Value> row = TxnToRow(txn, schema.num_columns());
            bool ok;
            ps = row_passes(row, &ok);
            if (!ps.ok()) return ps;
            if (ok) out->push_back(std::move(row));
          }
          return Status::OK();
        },
        &buffers);
    if (!s.ok()) return s;
  }
  for (auto& buffer : buffers) {
    for (auto& row : buffer) result->rows.push_back(std::move(row));
  }
  return Project(stmt, bindings, result);
}

Status Executor::ExecOffchainOnly(const SelectStmt& stmt,
                                  const ExecOptions& options,
                                  bool explain_only, ResultSet* result) {
  if (offchain_ == nullptr) {
    return Status::InvalidArgument("no off-chain connector configured");
  }
  const std::string& table = stmt.tables[0].name;
  std::vector<ColumnDef> columns;
  Status s = offchain_->TableColumns(table, &columns);
  if (!s.ok()) return s;

  ColumnBindings bindings;
  bindings.AddTable(table, OffchainColumnNames(columns));
  result->columns = bindings.qualified_names();
  result->plan = "OffchainScan(" + table + ")";
  if (explain_only) return Status::OK();

  std::vector<OffchainRow> rows;
  s = offchain_->FetchAll(table, &rows);
  if (!s.ok()) return s;
  for (auto& row : rows) {
    bool ok = true;
    if (stmt.where != nullptr) {
      s = EvalPredicate(*stmt.where, bindings, row, options.params, &ok);
      if (!s.ok()) return s;
    }
    if (ok) result->rows.push_back(std::move(row));
  }
  return Project(stmt, bindings, result);
}

Status Executor::ExecTrace(const TraceStmt& stmt, const ExecOptions& options,
                           bool explain_only, ResultSet* result) {
  std::string operator_id, operation;
  bool has_operator = stmt.operator_id != nullptr;
  bool has_operation = stmt.operation != nullptr;
  if (has_operator) {
    Value v;
    Status s = EvalConstExpr(*stmt.operator_id, options.params, &v);
    if (!s.ok()) return s;
    operator_id = v.ToString();
  }
  if (has_operation) {
    Value v;
    Status s = EvalConstExpr(*stmt.operation, options.params, &v);
    if (!s.ok()) return s;
    operation = v.ToString();
  }

  std::optional<Bitmap> window;
  Status s = ResolveWindow(stmt.window, options.params, &window);
  if (!s.ok()) return s;

  AccessPath path = options.access_path;
  if (path == AccessPath::kAuto) path = AccessPath::kLayered;

  {
    std::string plan = "Trace path=";
    plan += path == AccessPath::kScan
                ? "scan"
                : (path == AccessPath::kBitmap ? "bitmap" : "layered");
    if (has_operator) plan += " operator=" + operator_id;
    if (has_operation) plan += " operation=" + operation;
    if (window.has_value()) plan += " window";
    result->plan = std::move(plan);
  }
  result->columns = {"tid", "ts", "senid", "tname", "data"};
  if (explain_only) return Status::OK();

  const uint64_t n = store_->num_blocks();
  auto txn_matches = [&](const Transaction& txn) {
    if (has_operator && txn.sender() != operator_id) return false;
    if (has_operation && txn.tname() != operation) return false;
    return true;
  };
  auto txn_to_row = [](const Transaction& txn) {
    std::string data;
    for (size_t i = 0; i < txn.values().size(); i++) {
      if (i > 0) data += ", ";
      data += txn.values()[i].ToString();
    }
    return std::vector<Value>{Value::Int(static_cast<int64_t>(txn.tid())),
                              Value::Ts(txn.ts()), Value::Str(txn.sender()),
                              Value::Str(txn.tname()), Value::Str(data)};
  };
  using RowVec = std::vector<std::vector<Value>>;
  std::vector<RowVec> buffers;
  auto merge_buffers = [&] {
    for (auto& buffer : buffers) {
      for (auto& row : buffer) result->rows.push_back(std::move(row));
    }
  };

  if (path == AccessPath::kScan || path == AccessPath::kBitmap) {
    Bitmap blocks = window.has_value() ? *window : AllBlocksBitmap(n);
    if (path == AccessPath::kBitmap) {
      // Bitmap method: filter through the first-level bitmaps of the system
      // SenID/Tname indices, then read the surviving blocks whole.
      if (has_operator) {
        blocks.And(
            indexes_->senid_index()->BlocksWithValue(Value::Str(operator_id)));
      }
      if (has_operation) {
        blocks.And(
            indexes_->tname_index()->BlocksWithValue(Value::Str(operation)));
      }
    }
    const std::vector<size_t> bids = blocks.SetBits();
    s = sql_internal::ParallelMapOrdered<RowVec>(
        pool_, bids.size(),
        [&](size_t i, RowVec* out) -> Status {
          std::shared_ptr<const Block> block;
          Status ps = store_->ReadBlock(bids[i], &block);
          if (!ps.ok()) return ps;
          for (const auto& txn : block->transactions()) {
            if (txn_matches(txn)) out->push_back(txn_to_row(txn));
          }
          return Status::OK();
        },
        &buffers);
    if (!s.ok()) return s;
    merge_buffers();
    return Status::OK();
  }

  // Layered method: the same first-level bitmap filter (paper Alg. 1 lines
  // 1-5), then a second-level search per block, intersect the position sets
  // of the two dimensions, and random-read only the result transactions
  // (paper Alg. 1 lines 6-13).
  Bitmap blocks = window.has_value() ? *window : AllBlocksBitmap(n);
  if (has_operator) {
    blocks.And(indexes_->senid_index()->BlocksWithValue(Value::Str(operator_id)));
  }
  if (has_operation) {
    blocks.And(indexes_->tname_index()->BlocksWithValue(Value::Str(operation)));
  }

  const std::vector<size_t> bids = blocks.SetBits();
  s = sql_internal::ParallelMapOrdered<RowVec>(
      pool_, bids.size(),
      [&](size_t i, RowVec* out) -> Status {
        const size_t bid = bids[i];
        std::vector<uint32_t> positions;
        Status ps;
        if (has_operator) {
          std::vector<TxnPointer> pointers;
          Value key = Value::Str(operator_id);
          ps = indexes_->senid_index()->SearchBlock(bid, &key, &key, &pointers);
          if (!ps.ok()) return ps;
          for (const auto& pointer : pointers) {
            positions.push_back(pointer.index);
          }
        }
        if (has_operation) {
          std::vector<TxnPointer> pointers;
          Value key = Value::Str(operation);
          ps = indexes_->tname_index()->SearchBlock(bid, &key, &key, &pointers);
          if (!ps.ok()) return ps;
          std::vector<uint32_t> op_positions;
          for (const auto& pointer : pointers) {
            op_positions.push_back(pointer.index);
          }
          if (has_operator) {
            std::sort(positions.begin(), positions.end());
            std::sort(op_positions.begin(), op_positions.end());
            std::vector<uint32_t> both;
            std::set_intersection(positions.begin(), positions.end(),
                                  op_positions.begin(), op_positions.end(),
                                  std::back_inserter(both));
            positions = std::move(both);
          } else {
            positions = std::move(op_positions);
          }
        }
        std::sort(positions.begin(), positions.end());
        for (uint32_t position : positions) {
          std::shared_ptr<const Transaction> txn;
          ps = store_->ReadTransaction(bid, position, &txn);
          if (!ps.ok()) return ps;
          out->push_back(txn_to_row(*txn));
        }
        return Status::OK();
      },
      &buffers);
  if (!s.ok()) return s;
  merge_buffers();
  return Status::OK();
}

Status Executor::ExecGetBlock(const GetBlockStmt& stmt,
                              const ExecOptions& options, bool explain_only,
                              ResultSet* result) {
  result->columns = {"block_id", "first_tid", "num_transactions", "timestamp",
                     "block_hash", "prev_hash"};
  result->plan = "GetBlock";
  if (explain_only) return Status::OK();

  Value v;
  Status s = EvalConstExpr(*stmt.value, options.params, &v);
  if (!s.ok()) return s;
  if (v.type() != ValueType::kInt64 && v.type() != ValueType::kTimestamp) {
    return Status::InvalidArgument("GET BLOCK expects an integer value");
  }
  int64_t key = v.type() == ValueType::kInt64 ? v.AsInt() : v.AsTimestamp();

  BlockIndexEntry entry;
  switch (stmt.by) {
    case GetBlockStmt::By::kId:
      s = indexes_->block_index().FindByBlockId(static_cast<BlockId>(key),
                                                &entry);
      break;
    case GetBlockStmt::By::kTid:
      s = indexes_->block_index().FindByTid(static_cast<TransactionId>(key),
                                            &entry);
      break;
    case GetBlockStmt::By::kTs:
      s = indexes_->block_index().FindFirstAtOrAfter(key, &entry);
      break;
  }
  if (!s.ok()) return s;

  BlockHeader header;
  s = store_->ReadHeader(entry.bid, &header);
  if (!s.ok()) return s;
  result->rows.push_back(
      {Value::Int(static_cast<int64_t>(entry.bid)),
       Value::Int(static_cast<int64_t>(entry.first_tid)),
       Value::Int(entry.num_transactions), Value::Ts(entry.ts),
       Value::Str(header.block_hash.ToHex()),
       Value::Str(header.prev_hash.ToHex())});
  return Status::OK();
}

Status Executor::ExecCreateIndex(const CreateIndexStmt& stmt,
                                 bool explain_only, ResultSet* result) {
  result->plan = "CreateIndex(" + stmt.table + "." + stmt.column + ")";
  if (explain_only) return Status::OK();
  Schema schema;
  Status s = catalog_->GetSchema(stmt.table, &schema);
  if (!s.ok()) return s;
  int index = schema.ColumnIndex(stmt.column);
  if (index < 0) {
    return Status::NotFound("no column " + stmt.column + " in " + stmt.table);
  }
  ValueType type = schema.columns()[index].type;
  bool discrete = stmt.discrete || type == ValueType::kString ||
                  type == ValueType::kBool;
  return indexes_->CreateLayeredIndex(stmt.table, stmt.column, index,
                                      discrete);
}

}  // namespace sebdb
