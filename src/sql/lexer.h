// Tokenizer for the SQL-like language (paper §III-A): CREATE / INSERT /
// SELECT plus the blockchain-specific TRACE and GET BLOCK clauses.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace sebdb {

enum class TokenType {
  kIdentifier,   // table, column names (lowercased)
  kKeyword,      // SELECT, FROM, ... (uppercased)
  kString,       // 'text' or "text"
  kInteger,      // 123
  kNumber,       // 12.5 (decimal literal)
  kParameter,    // ?
  kSymbol,       // ( ) , . ; [ ] *
  kOperator,     // = < > <= >= != <>
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalized (keywords uppercase, identifiers lowercase)
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes `input`; the final token is always kEnd. Fails on unterminated
/// strings or unexpected characters.
Status Tokenize(std::string_view input, std::vector<Token>* out);

}  // namespace sebdb
