// Cost model for select operations (paper §IV-B, Eqs. 1–3):
//   C_no-index = n·t_S + (f·n / b)·t_T          — scan every block
//   C_bitmap   = k·t_S + (f·k / b)·t_T (k <= n) — read candidate blocks
//   C_layered  = p·t_S + p·t_T                   — random-read p tuples
// where n = chain height, k = blocks containing the table, p = result
// tuples, f = packaged block size, b = disk block size, t_S = average disk
// block access (seek) time, t_T = transfer time per disk block.
//
// The planner uses these estimates to pick bitmap vs layered access when
// both are possible — the paper's observation that "if the size of the
// query result is large, using table-level bitmap index may outperform
// layered index since random I/O is slow".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "index/layered_index.h"
#include "types/value.h"

namespace sebdb {

struct CostParams {
  /// Average disk block access time t_S (micros per random access,
  /// including decode).
  double seek_micros = 10.0;
  /// Transfer time per disk block t_T (micros).
  double transfer_micros = 25.0;
  /// Disk block size b (bytes).
  double disk_block_bytes = 4096.0;
  /// Packaged block size f (bytes); the executor refines this from storage
  /// stats at plan time.
  double chain_block_bytes = 4.0 * 1024 * 1024;
  /// Average tuple size (bytes; the paper's workload uses 300 B txns).
  double tuple_bytes = 300.0;
};

/// Eq. 1: full scan of an n-block chain.
double ScanCost(uint64_t n, const CostParams& params);
/// Eq. 2: read the k blocks the table-level bitmap marks.
double BitmapCost(uint64_t k, const CostParams& params);
/// Eq. 3: random-read p result tuples through the layered index.
double LayeredCost(uint64_t p, const CostParams& params);

/// Estimated number of tuples a layered index returns for [lo, hi]:
/// total entries scaled by the fraction of histogram buckets the range
/// overlaps (continuous), or by the candidate-block share (discrete).
uint64_t EstimateLayeredResult(const LayeredIndex& index, const Value* lo,
                               const Value* hi);

struct AccessPathCosts {
  double scan = 0;
  double bitmap = 0;
  double layered = 0;
  uint64_t estimated_result = 0;

  bool LayeredWins() const { return layered <= bitmap; }
  std::string ToString() const;
};

/// Costs for one single-table select: n = chain blocks, k = table blocks,
/// layered estimate from the index (index may be null -> layered = +inf).
AccessPathCosts EstimateSelectCosts(uint64_t chain_blocks,
                                    uint64_t table_blocks,
                                    const LayeredIndex* index,
                                    const Value* lo, const Value* hi,
                                    const CostParams& params);

}  // namespace sebdb
