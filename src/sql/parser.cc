#include "sql/parser.h"

#include "sql/lexer.h"

namespace sebdb {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string Expr::ToString() const {
  struct Printer {
    std::string operator()(const ColumnRef& c) const {
      return c.table.empty() ? c.column : c.table + "." + c.column;
    }
    std::string operator()(const Literal& l) const {
      if (l.value.type() == ValueType::kString) {
        return "'" + l.value.ToString() + "'";
      }
      return l.value.ToString();
    }
    std::string operator()(const Parameter& p) const {
      return "?" + std::to_string(p.index + 1);
    }
    std::string operator()(const BinaryExpr& b) const {
      return "(" + b.left->ToString() + " " + BinaryOpName(b.op) + " " +
             b.right->ToString() + ")";
    }
    std::string operator()(const BetweenExpr& b) const {
      std::string col =
          b.column.table.empty() ? b.column.column
                                 : b.column.table + "." + b.column.column;
      return "(" + col + " BETWEEN " + b.lo->ToString() + " AND " +
             b.hi->ToString() + ")";
    }
  };
  return std::visit(Printer{}, node);
}

std::string AggCall::ToString() const {
  const char* name = "count";
  switch (fn) {
    case Fn::kCount:
      name = "count";
      break;
    case Fn::kSum:
      name = "sum";
      break;
    case Fn::kAvg:
      name = "avg";
      break;
    case Fn::kMin:
      name = "min";
      break;
    case Fn::kMax:
      name = "max";
      break;
  }
  std::string arg = star ? "*"
                         : (column.table.empty()
                                ? column.column
                                : column.table + "." + column.column);
  return std::string(name) + "(" + arg + ")";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status Parse(StatementPtr* out) {
    Status s = ParseStatementInternal(out);
    if (!s.ok()) return s;
    if (Cur().IsSymbol(";")) Advance();
    if (Cur().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) pos_++;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("parse error at position " +
                                   std::to_string(Cur().position) + ": " +
                                   message);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!Cur().IsKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view sym) {
    if (!Cur().IsSymbol(sym)) {
      return Error("expected '" + std::string(sym) + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectIdentifier(std::string* out) {
    // Non-reserved keywords may double as identifiers (e.g. a column named
    // "id" or "ts").
    if (Cur().type == TokenType::kIdentifier) {
      *out = Cur().text;
      Advance();
      return Status::OK();
    }
    if (Cur().type == TokenType::kKeyword &&
        (Cur().text == "ID" || Cur().text == "TID" || Cur().text == "TS" ||
         Cur().text == "OPERATOR" || Cur().text == "OPERATION" ||
         Cur().text == "BLOCK")) {
      std::string lower = Cur().text;
      for (auto& c : lower) c = static_cast<char>(std::tolower(c));
      *out = lower;
      Advance();
      return Status::OK();
    }
    return Error("expected identifier");
  }

  Status ParseStatementInternal(StatementPtr* out) {
    if (Cur().IsKeyword("EXPLAIN")) {
      Advance();
      ExplainStmt explain;
      Status s = ParseStatementInternal(&explain.inner);
      if (!s.ok()) return s;
      *out = std::make_unique<Statement>();
      (*out)->node = std::move(explain);
      return Status::OK();
    }
    if (Cur().IsKeyword("CREATE")) return ParseCreate(out);
    if (Cur().IsKeyword("INSERT")) return ParseInsert(out);
    if (Cur().IsKeyword("SELECT")) return ParseSelect(out);
    if (Cur().IsKeyword("TRACE")) return ParseTrace(out);
    if (Cur().IsKeyword("GET")) return ParseGetBlock(out);
    return Error("expected a statement");
  }

  Status ParseCreate(StatementPtr* out) {
    Advance();  // CREATE
    bool discrete = false;
    bool is_index = false;
    if (Cur().IsKeyword("LAYERED")) {
      Advance();
      is_index = true;
    } else if (Cur().IsKeyword("DISCRETE")) {
      Advance();
      discrete = true;
      is_index = true;
    }
    if (Cur().IsKeyword("INDEX")) {
      Advance();
      is_index = true;
    } else if (is_index) {
      return Error("expected INDEX");
    }

    if (is_index) {
      CreateIndexStmt stmt;
      stmt.discrete = discrete;
      Status s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      s = ExpectIdentifier(&stmt.table);
      if (!s.ok()) return s;
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      s = ExpectIdentifier(&stmt.column);
      if (!s.ok()) return s;
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      *out = std::make_unique<Statement>();
      (*out)->node = std::move(stmt);
      return Status::OK();
    }

    if (Cur().IsKeyword("TABLE")) Advance();
    CreateTableStmt stmt;
    Status s = ExpectIdentifier(&stmt.table);
    if (!s.ok()) return s;
    s = ExpectSymbol("(");
    if (!s.ok()) return s;
    while (true) {
      ColumnDef col;
      s = ExpectIdentifier(&col.name);
      if (!s.ok()) return s;
      std::string type_name;
      s = ExpectIdentifier(&type_name);
      if (!s.ok()) return s;
      if (!ParseValueType(type_name, &col.type)) {
        return Error("unknown column type " + type_name);
      }
      stmt.columns.push_back(std::move(col));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    s = ExpectSymbol(")");
    if (!s.ok()) return s;
    *out = std::make_unique<Statement>();
    (*out)->node = std::move(stmt);
    return Status::OK();
  }

  Status ParseInsert(StatementPtr* out) {
    Advance();  // INSERT
    Status s = ExpectKeyword("INTO");
    if (!s.ok()) return s;
    InsertStmt stmt;
    s = ExpectIdentifier(&stmt.table);
    if (!s.ok()) return s;
    s = ExpectKeyword("VALUES");
    if (!s.ok()) return s;
    while (true) {  // one or more value tuples
      s = ExpectSymbol("(");
      if (!s.ok()) return s;
      std::vector<ExprPtr> row;
      while (true) {
        ExprPtr expr;
        s = ParseOperand(&expr);
        if (!s.ok()) return s;
        row.push_back(std::move(expr));
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      stmt.rows.push_back(std::move(row));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    *out = std::make_unique<Statement>();
    (*out)->node = std::move(stmt);
    return Status::OK();
  }

  Status ParseTableRef(TableRef* out) {
    std::string first;
    Status s = ExpectIdentifier(&first);
    if (!s.ok()) return s;
    if (Cur().IsSymbol(".")) {
      Advance();
      std::string second;
      s = ExpectIdentifier(&second);
      if (!s.ok()) return s;
      if (first == "offchain") {
        out->offchain = true;
      } else if (first != "onchain") {
        return Error("table qualifier must be onchain or offchain, got " +
                     first);
      }
      out->name = second;
      return Status::OK();
    }
    out->name = first;
    return Status::OK();
  }

  Status ParseColumnRef(ColumnRef* out) {
    std::string first;
    Status s = ExpectIdentifier(&first);
    if (!s.ok()) return s;
    if (Cur().IsSymbol(".")) {
      Advance();
      std::string second;
      s = ExpectIdentifier(&second);
      if (!s.ok()) return s;
      // Strip on/off-chain qualifiers in column position ("onchain.t.c").
      if ((first == "onchain" || first == "offchain") && Cur().IsSymbol(".")) {
        Advance();
        out->table = second;
        return ExpectIdentifier(&out->column);
      }
      out->table = first;
      out->column = second;
      return Status::OK();
    }
    out->column = first;
    return Status::OK();
  }

  bool AggFnFromName(const std::string& name, AggCall::Fn* fn) {
    if (name == "count") *fn = AggCall::Fn::kCount;
    else if (name == "sum") *fn = AggCall::Fn::kSum;
    else if (name == "avg") *fn = AggCall::Fn::kAvg;
    else if (name == "min") *fn = AggCall::Fn::kMin;
    else if (name == "max") *fn = AggCall::Fn::kMax;
    else return false;
    return true;
  }

  Status ParseSelect(StatementPtr* out) {
    Advance();  // SELECT
    SelectStmt stmt;
    if (Cur().IsSymbol("*")) {
      stmt.star = true;
      Advance();
    } else {
      // Aggregate call: agg_fn '(' (* | column) ')'.
      AggCall::Fn fn;
      bool aggregated = Cur().type == TokenType::kIdentifier &&
                        AggFnFromName(Cur().text, &fn) && Peek().IsSymbol("(");
      while (true) {
        if (aggregated) {
          AggCall agg;
          if (Cur().type != TokenType::kIdentifier ||
              !AggFnFromName(Cur().text, &agg.fn)) {
            return Error("expected an aggregate function");
          }
          Advance();
          Status s = ExpectSymbol("(");
          if (!s.ok()) return s;
          if (Cur().IsSymbol("*")) {
            if (agg.fn != AggCall::Fn::kCount) {
              return Error("only COUNT accepts *");
            }
            agg.star = true;
            Advance();
          } else {
            s = ParseColumnRef(&agg.column);
            if (!s.ok()) return s;
          }
          s = ExpectSymbol(")");
          if (!s.ok()) return s;
          stmt.aggregates.push_back(std::move(agg));
        } else {
          ColumnRef col;
          Status s = ParseColumnRef(&col);
          if (!s.ok()) return s;
          stmt.projection.push_back(std::move(col));
        }
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (aggregated && !stmt.projection.empty()) {
        return Error("cannot mix aggregates with plain columns");
      }
    }
    Status s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    TableRef table;
    s = ParseTableRef(&table);
    if (!s.ok()) return s;
    stmt.tables.push_back(std::move(table));
    if (Cur().IsSymbol(",") || Cur().IsKeyword("JOIN")) {
      Advance();
      TableRef right;
      s = ParseTableRef(&right);
      if (!s.ok()) return s;
      stmt.tables.push_back(std::move(right));
      s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      JoinCondition join;
      s = ParseColumnRef(&join.left);
      if (!s.ok()) return s;
      if (!Cur().IsOperator("=")) return Error("join condition must be =");
      Advance();
      s = ParseColumnRef(&join.right);
      if (!s.ok()) return s;
      stmt.join = std::move(join);
    }
    if (Cur().IsKeyword("WHERE")) {
      Advance();
      s = ParseOrExpr(&stmt.where);
      if (!s.ok()) return s;
    }
    if (Cur().IsKeyword("WINDOW")) {
      Advance();
      TimeWindow window;
      s = ParseWindowBody(&window);
      if (!s.ok()) return s;
      stmt.window = std::move(window);
    }
    if (Cur().IsKeyword("GROUP")) {
      Advance();
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      ColumnRef col;
      s = ParseColumnRef(&col);
      if (!s.ok()) return s;
      if (stmt.aggregates.empty()) {
        return Error("GROUP BY requires aggregate functions in the "
                     "projection");
      }
      stmt.group_by = std::move(col);
    }
    if (Cur().IsKeyword("ORDER")) {
      Advance();
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      SelectStmt::OrderBy order;
      s = ParseColumnRef(&order.column);
      if (!s.ok()) return s;
      if (Cur().IsKeyword("DESC")) {
        order.descending = true;
        Advance();
      } else if (Cur().IsKeyword("ASC")) {
        Advance();
      }
      stmt.order_by = std::move(order);
    }
    if (Cur().IsKeyword("LIMIT")) {
      Advance();
      if (Cur().type != TokenType::kInteger) {
        return Error("LIMIT expects an integer");
      }
      stmt.limit = std::stoll(Cur().text);
      if (stmt.limit < 0) return Error("LIMIT must be non-negative");
      Advance();
    }
    *out = std::make_unique<Statement>();
    (*out)->node = std::move(stmt);
    return Status::OK();
  }

  Status ParseWindowBody(TimeWindow* out) {
    Status s = ExpectSymbol("[");
    if (!s.ok()) return s;
    s = ParseOperand(&out->start);
    if (!s.ok()) return s;
    s = ExpectSymbol(",");
    if (!s.ok()) return s;
    s = ParseOperand(&out->end);
    if (!s.ok()) return s;
    return ExpectSymbol("]");
  }

  Status ParseTrace(StatementPtr* out) {
    Advance();  // TRACE
    TraceStmt stmt;
    if (Cur().IsSymbol("[")) {
      TimeWindow window;
      Status s = ParseWindowBody(&window);
      if (!s.ok()) return s;
      stmt.window = std::move(window);
    }
    while (true) {
      if (Cur().IsKeyword("OPERATOR")) {
        Advance();
        if (!Cur().IsOperator("=")) return Error("expected = after OPERATOR");
        Advance();
        Status s = ParseOperand(&stmt.operator_id);
        if (!s.ok()) return s;
      } else if (Cur().IsKeyword("OPERATION")) {
        Advance();
        if (!Cur().IsOperator("=")) return Error("expected = after OPERATION");
        Advance();
        Status s = ParseOperand(&stmt.operation);
        if (!s.ok()) return s;
      } else {
        break;
      }
      if (Cur().IsSymbol(",") || Cur().IsKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    if (stmt.operator_id == nullptr && stmt.operation == nullptr) {
      return Error("TRACE needs OPERATOR and/or OPERATION");
    }
    *out = std::make_unique<Statement>();
    (*out)->node = std::move(stmt);
    return Status::OK();
  }

  Status ParseGetBlock(StatementPtr* out) {
    Advance();  // GET
    Status s = ExpectKeyword("BLOCK");
    if (!s.ok()) return s;
    GetBlockStmt stmt;
    if (Cur().IsKeyword("ID")) {
      stmt.by = GetBlockStmt::By::kId;
    } else if (Cur().IsKeyword("TID")) {
      stmt.by = GetBlockStmt::By::kTid;
    } else if (Cur().IsKeyword("TS")) {
      stmt.by = GetBlockStmt::By::kTs;
    } else {
      return Error("expected ID, TID or TS");
    }
    Advance();
    if (!Cur().IsOperator("=")) return Error("expected =");
    Advance();
    s = ParseOperand(&stmt.value);
    if (!s.ok()) return s;
    *out = std::make_unique<Statement>();
    (*out)->node = std::move(stmt);
    return Status::OK();
  }

  // where-expression grammar: Or := And (OR And)*; And := Term (AND Term)*;
  // Term := '(' Or ')' | Comparison | Between.
  Status ParseOrExpr(ExprPtr* out) {
    ExprPtr left;
    Status s = ParseAndExpr(&left);
    if (!s.ok()) return s;
    while (Cur().IsKeyword("OR")) {
      Advance();
      ExprPtr right;
      s = ParseAndExpr(&right);
      if (!s.ok()) return s;
      auto combined = std::make_unique<Expr>();
      combined->node =
          BinaryExpr{BinaryOp::kOr, std::move(left), std::move(right)};
      left = std::move(combined);
    }
    *out = std::move(left);
    return Status::OK();
  }

  Status ParseAndExpr(ExprPtr* out) {
    ExprPtr left;
    Status s = ParseTerm(&left);
    if (!s.ok()) return s;
    while (Cur().IsKeyword("AND")) {
      Advance();
      ExprPtr right;
      s = ParseTerm(&right);
      if (!s.ok()) return s;
      auto combined = std::make_unique<Expr>();
      combined->node =
          BinaryExpr{BinaryOp::kAnd, std::move(left), std::move(right)};
      left = std::move(combined);
    }
    *out = std::move(left);
    return Status::OK();
  }

  Status ParseTerm(ExprPtr* out) {
    if (Cur().IsSymbol("(")) {
      Advance();
      Status s = ParseOrExpr(out);
      if (!s.ok()) return s;
      return ExpectSymbol(")");
    }
    ExprPtr left;
    Status s = ParseOperand(&left);
    if (!s.ok()) return s;
    if (Cur().IsKeyword("BETWEEN")) {
      auto* col = std::get_if<ColumnRef>(&left->node);
      if (col == nullptr) {
        return Error("BETWEEN requires a column on the left");
      }
      Advance();
      BetweenExpr between;
      between.column = *col;
      s = ParseOperand(&between.lo);
      if (!s.ok()) return s;
      s = ExpectKeyword("AND");
      if (!s.ok()) return s;
      s = ParseOperand(&between.hi);
      if (!s.ok()) return s;
      *out = std::make_unique<Expr>();
      (*out)->node = std::move(between);
      return Status::OK();
    }
    if (Cur().type != TokenType::kOperator) {
      return Error("expected a comparison operator");
    }
    BinaryOp op;
    const std::string& text = Cur().text;
    if (text == "=") op = BinaryOp::kEq;
    else if (text == "!=") op = BinaryOp::kNe;
    else if (text == "<") op = BinaryOp::kLt;
    else if (text == "<=") op = BinaryOp::kLe;
    else if (text == ">") op = BinaryOp::kGt;
    else if (text == ">=") op = BinaryOp::kGe;
    else return Error("unknown operator " + text);
    Advance();
    ExprPtr right;
    s = ParseOperand(&right);
    if (!s.ok()) return s;
    *out = std::make_unique<Expr>();
    (*out)->node = BinaryExpr{op, std::move(left), std::move(right)};
    return Status::OK();
  }

  Status ParseOperand(ExprPtr* out) {
    auto expr = std::make_unique<Expr>();
    if (Cur().type == TokenType::kString) {
      expr->node = Literal{Value::Str(Cur().text)};
      Advance();
    } else if (Cur().type == TokenType::kInteger) {
      expr->node = Literal{Value::Int(std::stoll(Cur().text))};
      Advance();
    } else if (Cur().type == TokenType::kNumber) {
      Decimal d;
      Status s = Decimal::FromString(Cur().text, &d);
      if (!s.ok()) return Error("bad decimal literal " + Cur().text);
      expr->node = Literal{Value::Dec(d)};
      Advance();
    } else if (Cur().type == TokenType::kParameter) {
      expr->node = Parameter{next_param_++};
      Advance();
    } else if (Cur().IsKeyword("NULL")) {
      expr->node = Literal{Value::Null()};
      Advance();
    } else if (Cur().IsKeyword("TRUE") || Cur().IsKeyword("FALSE")) {
      expr->node = Literal{Value::Bool(Cur().text == "TRUE")};
      Advance();
    } else if (Cur().type == TokenType::kIdentifier ||
               Cur().type == TokenType::kKeyword) {
      ColumnRef col;
      Status s = ParseColumnRef(&col);
      if (!s.ok()) return s;
      expr->node = std::move(col);
    } else {
      return Error("expected an operand");
    }
    *out = std::move(expr);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

Status ParseStatement(std::string_view sql, StatementPtr* out) {
  std::vector<Token> tokens;
  Status s = Tokenize(sql, &tokens);
  if (!s.ok()) return s;
  Parser parser(std::move(tokens));
  return parser.Parse(out);
}

}  // namespace sebdb
