// Materialized query result.
#pragma once

#include <string>
#include <vector>

#include "types/value.h"

namespace sebdb {

struct ResultSet {
  std::vector<std::string> columns;        // qualified names, row order
  std::vector<std::vector<Value>> rows;
  std::string plan;                        // EXPLAIN text (set when planned)

  size_t num_rows() const { return rows.size(); }

  /// Tabular rendering for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace sebdb
