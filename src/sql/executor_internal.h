// Shared helpers between executor.cc and executor_join.cc. Internal to the
// sql module.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/layered_index.h"
#include "offchain/offchain_db.h"
#include "types/schema.h"
#include "types/value.h"

namespace sebdb {
namespace sql_internal {

inline std::vector<std::string> SchemaColumnNames(const Schema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) names.push_back(col.name);
  return names;
}

inline std::vector<std::string> OffchainColumnNames(
    const std::vector<ColumnDef>& columns) {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const auto& col : columns) names.push_back(col.name);
  return names;
}

inline Bitmap AllBlocksBitmap(uint64_t n) {
  Bitmap b(n);
  for (uint64_t i = 0; i < n; i++) b.Set(i);
  return b;
}

/// The parallel scan primitive: produce(i, &out[i]) fills a private buffer
/// for candidate i (block read + decode + predicate), fanned out across the
/// pool; the caller then consumes `outputs` in candidate order, so results
/// are byte-identical to the serial loop. A nullptr pool runs the exact
/// serial loop (same code path, early exit on error).
template <typename T, typename Fn>
Status ParallelMapOrdered(ThreadPool* pool, size_t n, const Fn& produce,
                          std::vector<T>* outputs) {
  outputs->clear();
  outputs->resize(n);
  return ParallelForStatus(pool, n, [&](uint64_t i) -> Status {
    return produce(static_cast<size_t>(i), &(*outputs)[i]);
  });
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.HashCode(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.CompareTotal(b) == 0;
  }
};

/// Value range covered by one set bucket: (lo, hi], open at the extremes.
struct ValueRange {
  std::optional<Value> lo;  // exclusive
  std::optional<Value> hi;  // inclusive
};

std::vector<ValueRange> BucketRangesOf(const LayeredIndex& index, BlockId bid);
bool RangesOverlap(const ValueRange& a, const ValueRange& b);
/// intersect(b_r, b_s) for continuous join attributes (paper Alg. 2).
bool BlocksIntersectContinuous(const LayeredIndex& ir, BlockId br,
                               const LayeredIndex& is, BlockId bs);
/// intersect for discrete attributes: a common value occurs in both blocks.
bool BlocksIntersectDiscrete(const LayeredIndex& ir, BlockId br,
                             const LayeredIndex& is, BlockId bs);
/// intersect(b_r, (lo, hi)) for the on-off join (paper Alg. 3).
bool BlockIntersectsRange(const LayeredIndex& index, BlockId bid,
                          const Value& lo, const Value& hi);

}  // namespace sql_internal
}  // namespace sebdb
