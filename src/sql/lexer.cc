#include "sql/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace sebdb {

namespace {

const std::array<std::string_view, 37> kKeywords = {
    "SELECT", "FROM",   "WHERE",    "INSERT", "INTO",     "VALUES",
    "CREATE", "TABLE",  "ON",       "AND",    "OR",       "NOT",
    "BETWEEN", "TRACE", "OPERATOR", "OPERATION", "GET",   "BLOCK",
    "ID",     "TID",    "TS",       "WINDOW", "EXPLAIN",  "JOIN",
    "NULL",   "TRUE",   "FALSE",    "INDEX",  "LAYERED",  "DISCRETE",
    "AS",     "GROUP",  "ORDER",    "BY",     "ASC",      "DESC",
    "LIMIT",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Status Tokenize(std::string_view input, std::vector<Token>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    Token token;
    token.position = i;

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) i++;
      std::string word(input.substr(start, i - start));
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (std::find(kKeywords.begin(), kKeywords.end(), upper) !=
          kKeywords.end()) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        std::transform(word.begin(), word.end(), word.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        token.text = word;
      }
      out->push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
         (out->empty() || out->back().type == TokenType::kOperator ||
          out->back().IsSymbol("(") || out->back().IsSymbol(",") ||
          out->back().IsSymbol("[") || out->back().IsKeyword("BETWEEN") ||
          out->back().IsKeyword("AND") || out->back().IsKeyword("VALUES")))) {
      size_t start = i;
      if (c == '-') i++;
      bool saw_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !saw_dot))) {
        if (input[i] == '.') saw_dot = true;
        i++;
      }
      token.type = saw_dot ? TokenType::kNumber : TokenType::kInteger;
      token.text = std::string(input.substr(start, i - start));
      out->push_back(std::move(token));
      continue;
    }

    if (c == '\'' || c == '"') {
      char quote = c;
      i++;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          if (i + 1 < n && input[i + 1] == quote) {  // escaped quote
            text.push_back(quote);
            i += 2;
            continue;
          }
          closed = true;
          i++;
          break;
        }
        text.push_back(input[i]);
        i++;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at position " +
            std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
      out->push_back(std::move(token));
      continue;
    }

    if (c == '?') {
      token.type = TokenType::kParameter;
      token.text = "?";
      i++;
      out->push_back(std::move(token));
      continue;
    }

    if (c == '<' || c == '>' || c == '=' || c == '!') {
      std::string op(1, c);
      i++;
      if (i < n && (input[i] == '=' || (c == '<' && input[i] == '>'))) {
        op.push_back(input[i]);
        i++;
      }
      if (op == "<>") op = "!=";
      if (op == "!") {
        return Status::InvalidArgument("unexpected '!' at position " +
                                       std::to_string(token.position));
      }
      token.type = TokenType::kOperator;
      token.text = std::move(op);
      out->push_back(std::move(token));
      continue;
    }

    if (c == '(' || c == ')' || c == ',' || c == '.' || c == ';' ||
        c == '[' || c == ']' || c == '*') {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      i++;
      out->push_back(std::move(token));
      continue;
    }

    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at position " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out->push_back(std::move(end));
  return Status::OK();
}

}  // namespace sebdb
