// Recursive-descent parser for the SQL-like language.
#pragma once

#include "common/status.h"
#include "sql/ast.h"

namespace sebdb {

/// Parses exactly one statement (an optional trailing ';' is allowed).
Status ParseStatement(std::string_view sql, StatementPtr* out);

}  // namespace sebdb
