// Query execution engine (paper §V). Plans and runs SELECT / TRACE /
// GET BLOCK / CREATE INDEX statements against the block store, the index
// set, the catalog and the off-chain connector. Write statements (CREATE
// TABLE, INSERT) become on-chain transactions and are handled by the node
// (core/), not here.
//
// Access paths implement the three methods the paper benchmarks side by
// side (scan / table-level bitmap / layered index), selectable per query
// through ExecOptions for the method-comparison figures.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "offchain/offchain_db.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/eval.h"
#include "sql/index_set.h"
#include "sql/result.h"
#include "storage/block_store.h"

namespace sebdb {

enum class AccessPath {
  kAuto,     // layered if usable, else bitmap, else scan
  kScan,     // read every block
  kBitmap,   // table-level bitmap index
  kLayered,  // layered index on the constrained column
};

enum class JoinStrategy {
  kAuto,          // layered-merge if indices exist, else bitmap-hash
  kScanHash,      // hash join over a full chain scan
  kBitmapHash,    // hash join over bitmap-filtered blocks
  kLayeredMerge,  // per-block-pair sort-merge via layered indices (Alg. 2/3)
};

struct ExecOptions {
  AccessPath access_path = AccessPath::kAuto;
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  /// Positional bindings for '?' parameters.
  std::vector<Value> params;
};

class Executor {
 public:
  /// `pool` drives the parallel scan pipeline: candidate blocks fan out to
  /// workers that read + decode + filter into per-block row buffers, merged
  /// back in (block, index) order so output is byte-identical to the serial
  /// path. nullptr executes every scan serially.
  Executor(BlockStore* store, IndexSet* indexes, Catalog* catalog,
           OffchainConnector* offchain, ThreadPool* pool = nullptr)
      : store_(store),
        indexes_(indexes),
        catalog_(catalog),
        offchain_(offchain),
        pool_(pool) {}

  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  /// Executes one parsed statement. EXPLAIN fills only ResultSet::plan.
  Status Execute(const Statement& stmt, const ExecOptions& options,
                 ResultSet* result);

  /// Convenience: parse + execute.
  Status ExecuteSql(std::string_view sql, const ExecOptions& options,
                    ResultSet* result);

 private:
  Status ExecSelect(const SelectStmt& stmt, const ExecOptions& options,
                    bool explain_only, ResultSet* result);
  Status ExecSingleTable(const SelectStmt& stmt, const ExecOptions& options,
                         bool explain_only, ResultSet* result);
  Status ExecOffchainOnly(const SelectStmt& stmt, const ExecOptions& options,
                          bool explain_only, ResultSet* result);
  Status ExecOnChainJoin(const SelectStmt& stmt, const ExecOptions& options,
                         bool explain_only, ResultSet* result);
  Status ExecOnOffJoin(const SelectStmt& stmt, const ExecOptions& options,
                       bool explain_only, ResultSet* result);
  Status ExecTrace(const TraceStmt& stmt, const ExecOptions& options,
                   bool explain_only, ResultSet* result);
  Status ExecGetBlock(const GetBlockStmt& stmt, const ExecOptions& options,
                      bool explain_only, ResultSet* result);
  Status ExecCreateIndex(const CreateIndexStmt& stmt, bool explain_only,
                         ResultSet* result);

  /// Evaluates an optional time window into a block bitmap (nullopt when the
  /// statement has no window).
  Status ResolveWindow(const std::optional<TimeWindow>& window,
                       const std::vector<Value>& params,
                       std::optional<Bitmap>* out) const;

  /// Appends a transaction as a full schema row (system + app columns).
  static std::vector<Value> TxnToRow(const Transaction& txn, int num_columns);

  /// Applies projection to assembled rows (in place on `result`).
  Status Project(const SelectStmt& stmt, const ColumnBindings& bindings,
                 ResultSet* result) const;

  BlockStore* store_;
  IndexSet* indexes_;
  Catalog* catalog_;
  OffchainConnector* offchain_;
  ThreadPool* pool_;
};

}  // namespace sebdb
