#include "sql/cost_model.h"

#include <cmath>
#include <limits>

namespace sebdb {

namespace {

double BlocksToDiskBlocks(double chain_blocks, const CostParams& params) {
  return chain_blocks * params.chain_block_bytes / params.disk_block_bytes;
}

}  // namespace

double ScanCost(uint64_t n, const CostParams& params) {
  return static_cast<double>(n) * params.seek_micros +
         BlocksToDiskBlocks(static_cast<double>(n), params) *
             params.transfer_micros;
}

double BitmapCost(uint64_t k, const CostParams& params) {
  return static_cast<double>(k) * params.seek_micros +
         BlocksToDiskBlocks(static_cast<double>(k), params) *
             params.transfer_micros;
}

double LayeredCost(uint64_t p, const CostParams& params) {
  // One random access plus a tuple-sized transfer per result tuple.
  double per_tuple =
      params.seek_micros +
      params.transfer_micros * (params.tuple_bytes / params.disk_block_bytes);
  return static_cast<double>(p) * per_tuple;
}

uint64_t EstimateLayeredResult(const LayeredIndex& index, const Value* lo,
                               const Value* hi) {
  uint64_t total = index.ApproximateEntryCount();
  if (total == 0) return 0;
  if (index.options().discrete) {
    // Point lookup: entries spread over the candidate blocks; assume the
    // per-value share of entries equals its share of block occurrences.
    Bitmap candidates = index.CandidateBlocks(lo, hi);
    Bitmap with_entries = index.BlocksWithEntries();
    size_t all = with_entries.Count();
    if (all == 0) return 0;
    return total * candidates.Count() / all;
  }
  const auto& histogram = index.histogram();
  if (histogram.num_buckets() == 0) return total;
  Bitmap overlap = histogram.BucketsOverlapping(lo, hi);
  // Equal-depth histogram: each bucket holds ~the same number of tuples.
  return total * overlap.Count() / histogram.num_buckets();
}

std::string AccessPathCosts::ToString() const {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "cost{scan=%.0f, bitmap=%.0f, layered=%.0f, est_rows=%llu}", scan,
           bitmap, layered, static_cast<unsigned long long>(estimated_result));
  return buf;
}

AccessPathCosts EstimateSelectCosts(uint64_t chain_blocks,
                                    uint64_t table_blocks,
                                    const LayeredIndex* index,
                                    const Value* lo, const Value* hi,
                                    const CostParams& params) {
  AccessPathCosts costs;
  costs.scan = ScanCost(chain_blocks, params);
  costs.bitmap = BitmapCost(table_blocks, params);
  if (index == nullptr) {
    costs.layered = std::numeric_limits<double>::infinity();
    return costs;
  }
  costs.estimated_result = EstimateLayeredResult(*index, lo, hi);
  costs.layered = LayeredCost(costs.estimated_result, params);
  return costs;
}

}  // namespace sebdb
