// All indices of one node, updated together as blocks are chained
// (paper §IV-B): the block-level B+-tree, the table-level bitmap index, the
// two system-wide discrete layered indices on SenID and Tname that power
// TRACE, any user-created per-column layered indices, and (optionally) their
// authenticated twins (ALI) for thin-client queries.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "auth/ali.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/bitmap_index.h"
#include "index/block_index.h"
#include "index/layered_index.h"
#include "storage/block_store.h"

namespace sebdb {

struct IndexSetOptions {
  /// Buckets of the equal-depth histogram for continuous layered indices
  /// (the paper sets "the depth of histogram" to 100).
  size_t histogram_buckets = 100;
  /// Sample cap when backfilling a histogram from existing blocks.
  size_t histogram_sample_limit = 100000;
  /// Also maintain MB-tree-based authenticated indices alongside every
  /// layered index (and the system Tname/SenID indices).
  bool build_auth_indexes = true;
  /// When set, user-created indices are recorded here and recreated on the
  /// next open (before chain replay), so CREATE INDEX survives restarts.
  std::string manifest_path;
};

class IndexSet {
 public:
  /// `store` is used only to backfill when an index is created after blocks
  /// already exist; may be nullptr if indices always precede data.
  IndexSet(BlockStore* store, IndexSetOptions options = IndexSetOptions());

  /// Indexes a newly chained block in every structure. Must be called once
  /// per block, in height order.
  Status AddBlock(const Block& block);

  uint64_t num_blocks() const;

  const BlockIndex& block_index() const { return block_index_; }
  const TableBitmapIndex& table_index() const { return table_index_; }

  /// System-wide layered indices (discrete, spanning all tables).
  LayeredIndex* senid_index() { return senid_index_.get(); }
  LayeredIndex* tname_index() { return tname_index_.get(); }
  AuthenticatedLayeredIndex* senid_ali() { return senid_ali_.get(); }
  AuthenticatedLayeredIndex* tname_ali() { return tname_ali_.get(); }

  /// Creates a layered index on table.column, where `schema_column_index` is
  /// the column's position in the table schema (resolved by the caller from
  /// the catalog; must be an application-level column). When blocks already
  /// exist the index is backfilled: a first pass samples values for the
  /// histogram (continuous only), a second pass indexes every block.
  Status CreateLayeredIndex(const std::string& table,
                            const std::string& column,
                            int schema_column_index, bool discrete);

  /// nullptr when no such index exists.
  LayeredIndex* GetLayered(const std::string& table,
                           const std::string& column);
  AuthenticatedLayeredIndex* GetAli(const std::string& table,
                                    const std::string& column);
  bool HasLayered(const std::string& table, const std::string& column) const;

 private:
  struct UserIndex {
    std::unique_ptr<LayeredIndex> layered;
    std::unique_ptr<AuthenticatedLayeredIndex> ali;  // null unless enabled
  };

  static ColumnExtractor MakeSystemExtractor(bool sender);
  Status BackfillIndex(UserIndex* index, bool continuous,
                       const ColumnExtractor& extractor) REQUIRES(mu_);
  Status CreateLayeredIndexLocked(const std::string& table,
                                  const std::string& column,
                                  int schema_column_index, bool discrete)
      REQUIRES(mu_);
  void LoadManifest() EXCLUDES(mu_);
  void AppendManifest(const std::string& table, const std::string& column,
                      int schema_column_index, bool discrete) REQUIRES(mu_);

  BlockStore* store_;
  IndexSetOptions options_;

  mutable Mutex mu_;
  // The index structures are pointer-stable: accessors hand out raw
  // pointers (senid_index() & co), so only the containers and counters —
  // not the pointees — are guarded.
  BlockIndex block_index_;
  TableBitmapIndex table_index_;
  std::unique_ptr<LayeredIndex> senid_index_;
  std::unique_ptr<LayeredIndex> tname_index_;
  std::unique_ptr<AuthenticatedLayeredIndex> senid_ali_;
  std::unique_ptr<AuthenticatedLayeredIndex> tname_ali_;
  std::map<std::pair<std::string, std::string>, UserIndex> user_indexes_
      GUARDED_BY(mu_);
  uint64_t num_blocks_ GUARDED_BY(mu_) = 0;
};

}  // namespace sebdb
