// All indices of one node, updated together as blocks are chained
// (paper §IV-B): the block-level B+-tree, the table-level bitmap index, the
// two system-wide discrete layered indices on SenID and Tname that power
// TRACE, any user-created per-column layered indices, and (optionally) their
// authenticated twins (ALI) for thin-client queries.
//
// The IndexSet is also the checkpoint unit: WriteCheckpoint streams every
// index's new-blocks delta into fresh page files and encodes one meta blob;
// after the manifest publishes, AdoptCheckpoint commits the deltas (dropping
// the frozen blocks' in-memory trees); RestoreCheckpoint rebuilds a fresh
// IndexSet from a published checkpoint's files + meta. An ALI shares its
// plain twin's delta file: both layered indices freeze byte-identical trees
// (same extractor, same blocks), so one copy on disk serves both.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/ali.h"
#include "common/env.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/bitmap_index.h"
#include "index/block_index.h"
#include "common/thread_pool.h"
#include "index/layered_index.h"
#include "storage/block_store.h"
#include "storage/buffer_manager.h"
#include "storage/checkpoint.h"

namespace sebdb {

struct IndexSetOptions {
  /// Buckets of the equal-depth histogram for continuous layered indices
  /// (the paper sets "the depth of histogram" to 100).
  size_t histogram_buckets = 100;
  /// Sample cap when backfilling a histogram from existing blocks.
  size_t histogram_sample_limit = 100000;
  /// Also maintain MB-tree-based authenticated indices alongside every
  /// layered index (and the system Tname/SenID indices).
  bool build_auth_indexes = true;
  /// When set, user-created indices are recorded here and recreated on the
  /// next open (before chain replay), so CREATE INDEX survives restarts.
  std::string manifest_path;
  /// File system for the manifest. nullptr means Env::Default(); tests plug
  /// a FaultInjectionEnv.
  Env* env = nullptr;
};

/// In-flight checkpoint: files staged by WriteCheckpoint, waiting for the
/// manifest to publish. Opaque bookkeeping handed back to AdoptCheckpoint
/// (success) or AbortCheckpoint (failed publish).
struct PendingIndexCheckpoint {
  struct Delta {
    enum Target { kBlockIndex, kSenid, kTname, kUser };
    Target target = kUser;
    std::string table, column;  // target == kUser only
    std::string name;           // file name, relative to the checkpoint dir
    BufferManager::FileId file = BufferManager::kInvalidFileId;
    BlockIndex::SegmentRef bidx_ref;               // target == kBlockIndex
    std::vector<LayeredIndex::FrozenTreeRef> refs;  // layered targets
  };
  uint64_t height = 0;
  std::vector<Delta> deltas;
};

class IndexSet {
 public:
  /// `store` is used only to backfill when an index is created after blocks
  /// already exist; may be nullptr if indices always precede data.
  IndexSet(BlockStore* store, IndexSetOptions options = IndexSetOptions());

  /// Indexes a newly chained block in every structure. Must be called once
  /// per block, in height order. Serial reference path; the production apply
  /// flows through ApplyBlockScheduled (byte-identical state either way).
  Status AddBlock(const Block& block);

  /// Hooks of the scheduled (order-then-execute) apply; see
  /// ApplyBlockScheduled.
  struct ScheduledApplyHooks {
    /// Runs on a worker for each transaction (by block position) during its
    /// wave's execute phase — the seam where per-transaction execution work
    /// (stored procedures, off-chain reads, simulated execute cost) lives.
    std::function<void(uint32_t)> execute;
    /// Runs on the calling thread after wave `w`'s deltas are complete and
    /// before wave w+1 executes — the MVCC snapshot advance point (the
    /// ChainManager applies the wave's schema ops to the catalog here).
    std::function<void(uint32_t)> wave_done;
  };

  /// Order-then-execute parallel apply of one block (DESIGN.md §13).
  /// `waves[w]` lists the block positions of wave w's transactions in
  /// ascending order; together the waves must partition [0, num txns).
  ///
  /// Execute phase: waves run in order; within a wave every transaction's
  /// footprint — one extracted value per layered/ALI target plus the
  /// encoded record and its SHA-256 (the MB-tree leaf) — is computed on the
  /// pool into a private per-transaction delta slot. Transactions in one
  /// wave are conflict-free by construction, so any interleaving is safe.
  ///
  /// Merge phase: every index ingests the deltas in original transaction
  /// order (MergeTxnDeltas); independent indexes fan out across the pool.
  /// The merge is deterministic, so the resulting bitmaps, trees, MB roots
  /// and histograms are byte-identical to serial AddBlock for any pool size
  /// — a nullptr pool runs the same code serially.
  Status ApplyBlockScheduled(const Block& block,
                             const std::vector<std::vector<uint32_t>>& waves,
                             ThreadPool* pool,
                             const ScheduledApplyHooks& hooks) EXCLUDES(mu_);

  uint64_t num_blocks() const;

  const BlockIndex& block_index() const { return block_index_; }
  const TableBitmapIndex& table_index() const { return table_index_; }

  /// System-wide layered indices (discrete, spanning all tables).
  LayeredIndex* senid_index() { return senid_index_.get(); }
  LayeredIndex* tname_index() { return tname_index_.get(); }
  AuthenticatedLayeredIndex* senid_ali() { return senid_ali_.get(); }
  AuthenticatedLayeredIndex* tname_ali() { return tname_ali_.get(); }

  /// Creates a layered index on table.column, where `schema_column_index` is
  /// the column's position in the table schema (resolved by the caller from
  /// the catalog; must be an application-level column). When blocks already
  /// exist the index is backfilled: a first pass samples values for the
  /// histogram (continuous only), a second pass indexes every block.
  Status CreateLayeredIndex(const std::string& table,
                            const std::string& column,
                            int schema_column_index, bool discrete);

  /// nullptr when no such index exists.
  LayeredIndex* GetLayered(const std::string& table,
                           const std::string& column);
  AuthenticatedLayeredIndex* GetAli(const std::string& table,
                                    const std::string& column);
  bool HasLayered(const std::string& table, const std::string& column) const;

  // --- checkpoint protocol (driven by ChainManager under its commit lock) --

  /// Phase 1: streams every index's delta of blocks chained since the last
  /// checkpoint into fresh page files named "<prefix>_<tag>" under `dir`
  /// (through `pool`, flushed and synced), appends them to *files, and
  /// encodes the full index-set meta state (frozen refs + first levels +
  /// cursors + per-index file lists) into *meta. No index state changes. On
  /// failure the files staged so far stay recorded in *pending — call
  /// AbortCheckpoint.
  Status WriteCheckpoint(BufferManager* pool, const std::string& dir,
                         const std::string& prefix,
                         std::vector<CheckpointFile>* files, std::string* meta,
                         PendingIndexCheckpoint* pending) EXCLUDES(mu_);

  /// Phase 2, after the manifest published: registers the delta files and
  /// drops the now-frozen blocks' in-memory trees (layered tails and MB
  /// trees; the block index keeps its cheap in-memory tail).
  void AdoptCheckpoint(BufferManager* pool,
                       const PendingIndexCheckpoint& pending) EXCLUDES(mu_);

  /// Abort path for a failed publish: drops the staged files from the pool.
  /// The orphaned on-disk files are garbage-collected at the next
  /// CheckpointManager::Open.
  void AbortCheckpoint(BufferManager* pool,
                       const PendingIndexCheckpoint& pending);

  /// Rebuilds every index from a published checkpoint taken at `height`:
  /// opens each recorded delta file from `dir` through `pool` and restores
  /// the structures to exactly their state at the checkpoint (all blocks
  /// frozen). Requires a fresh IndexSet. Manifest-listed indices the
  /// checkpoint predates are backfilled from the block store over
  /// [0, height). Any error leaves the set unusable — the caller falls back
  /// to a fresh IndexSet and full replay.
  Status RestoreCheckpoint(BufferManager* pool, const std::string& dir,
                           uint64_t height, Slice meta) EXCLUDES(mu_);

 private:
  struct UserIndex {
    std::unique_ptr<LayeredIndex> layered;
    std::unique_ptr<AuthenticatedLayeredIndex> ali;  // null unless enabled
    int schema_column_index = 0;
    bool discrete = false;
    std::vector<std::string> delta_files;  // checkpoint order
  };

  static ColumnExtractor MakeSystemExtractor(bool sender);
  Env* env() const {
    return options_.env != nullptr ? options_.env : Env::Default();
  }
  AuthenticatedLayeredIndex::BlockLoader MakeBlockLoader() const;
  Status BackfillIndex(UserIndex* index, bool continuous,
                       const ColumnExtractor& extractor) REQUIRES(mu_);
  Status CreateLayeredIndexLocked(const std::string& table,
                                  const std::string& column,
                                  int schema_column_index, bool discrete)
      REQUIRES(mu_);
  void LoadManifest() EXCLUDES(mu_);
  void AppendManifest(const std::string& table, const std::string& column,
                      int schema_column_index, bool discrete) REQUIRES(mu_);
  Status OpenDeltaFiles(BufferManager* pool, const std::string& dir,
                        Slice* in, std::vector<std::string>* names,
                        std::vector<BufferManager::FileId>* ids);

  BlockStore* store_;
  IndexSetOptions options_;

  mutable Mutex mu_;
  // The index structures are pointer-stable: accessors hand out raw
  // pointers (senid_index() & co), so only the containers and counters —
  // not the pointees — are guarded.
  BlockIndex block_index_;
  TableBitmapIndex table_index_;
  std::unique_ptr<LayeredIndex> senid_index_;
  std::unique_ptr<LayeredIndex> tname_index_;
  std::unique_ptr<AuthenticatedLayeredIndex> senid_ali_;
  std::unique_ptr<AuthenticatedLayeredIndex> tname_ali_;
  std::map<std::pair<std::string, std::string>, UserIndex> user_indexes_
      GUARDED_BY(mu_);
  uint64_t num_blocks_ GUARDED_BY(mu_) = 0;

  // Delta file names per structure, checkpoint order (serialized into every
  // checkpoint meta so restore can reopen them).
  std::vector<std::string> bidx_files_ GUARDED_BY(mu_);
  std::vector<std::string> senid_files_ GUARDED_BY(mu_);
  std::vector<std::string> tname_files_ GUARDED_BY(mu_);
};

}  // namespace sebdb
