// Abstract syntax for the SQL-like language. Statements (Table II of the
// paper):
//   CREATE [TABLE] t (col type, ...)
//   CREATE [LAYERED|DISCRETE] INDEX ON t(col)      -- index DDL
//   INSERT INTO t VALUES (...)
//   SELECT cols FROM t [WHERE pred] [WINDOW [s, e]]
//   SELECT cols FROM t1, t2 ON t1.a = t2.b ...     -- on-chain join (Q5)
//   SELECT cols FROM onchain.t, offchain.s ON ...  -- on-off join (Q6)
//   TRACE [s, e] OPERATOR = 'x', OPERATION = 'y'   -- tracking (Q2, Q3)
//   GET BLOCK ID|TID|TS = v                        -- block lookup (Q7)
//   EXPLAIN <statement>
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace sebdb {

// ---- expressions ----

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct ColumnRef {
  std::string table;  // optional qualifier ("" if unqualified)
  std::string column;
};

struct Literal {
  Value value;
};

struct Parameter {
  int index = 0;  // 0-based position among '?' in the statement
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// col BETWEEN lo AND hi (kept as its own node: directly sargable).
struct BetweenExpr {
  ColumnRef column;
  ExprPtr lo;
  ExprPtr hi;
};

struct Expr {
  std::variant<ColumnRef, Literal, Parameter, BinaryExpr, BetweenExpr> node;

  std::string ToString() const;
};

// ---- statements ----

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
  std::string table;
  std::string column;
  bool discrete = false;  // CREATE DISCRETE INDEX ...
};

struct InsertStmt {
  std::string table;
  /// One or more VALUES tuples: INSERT INTO t VALUES (..), (..), ...
  std::vector<std::vector<ExprPtr>> rows;
};

struct TableRef {
  std::string name;
  bool offchain = false;  // offchain.<name> qualifier
};

struct JoinCondition {
  ColumnRef left;
  ColumnRef right;
};

struct TimeWindow {
  ExprPtr start;
  ExprPtr end;
};

/// Aggregate call in the projection: COUNT(*) / COUNT(c) / SUM / AVG /
/// MIN / MAX. A select is either plain (projection) or fully aggregated
/// (aggregates) — no GROUP BY (future work the paper defers too).
struct AggCall {
  enum class Fn { kCount, kSum, kAvg, kMin, kMax };
  Fn fn = Fn::kCount;
  bool star = false;  // COUNT(*)
  ColumnRef column;   // when !star

  std::string ToString() const;
};

struct SelectStmt {
  bool star = false;
  std::vector<ColumnRef> projection;  // empty when star or aggregated
  std::vector<AggCall> aggregates;    // non-empty = aggregate query
  std::vector<TableRef> tables;       // 1 (scan) or 2 (join)
  std::optional<JoinCondition> join;  // required when tables.size() == 2
  ExprPtr where;                      // may be null
  std::optional<TimeWindow> window;
  /// GROUP BY column (aggregate queries only; single grouping key).
  std::optional<ColumnRef> group_by;
  struct OrderBy {
    ColumnRef column;
    bool descending = false;
  };
  std::optional<OrderBy> order_by;
  int64_t limit = -1;  // -1 = unlimited
};

struct TraceStmt {
  std::optional<TimeWindow> window;
  ExprPtr operator_id;  // OPERATOR = <expr> (SenID dimension); may be null
  ExprPtr operation;    // OPERATION = <expr> (Tname dimension); may be null
};

struct GetBlockStmt {
  enum class By { kId, kTid, kTs };
  By by = By::kId;
  ExprPtr value;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

struct ExplainStmt {
  StatementPtr inner;
};

struct Statement {
  std::variant<CreateTableStmt, CreateIndexStmt, InsertStmt, SelectStmt,
               TraceStmt, GetBlockStmt, ExplainStmt>
      node;
};

}  // namespace sebdb
