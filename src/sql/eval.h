// Expression evaluation and predicate analysis for the executor.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "types/value.h"

namespace sebdb {

/// Maps column references to positions in the executor's working row.
/// Qualified names ("t.col") and unqualified names ("col") both resolve;
/// ambiguous unqualified names fail at bind time.
class ColumnBindings {
 public:
  /// Adds the columns of one table instance, in row order.
  void AddTable(const std::string& table,
                const std::vector<std::string>& columns);

  /// Position of a reference, or an error for unknown/ambiguous columns.
  Status Resolve(const ColumnRef& ref, int* index) const;

  const std::vector<std::string>& qualified_names() const { return names_; }

 private:
  std::vector<std::string> names_;  // "table.column", row order
  std::map<std::string, std::vector<int>> by_column_;  // unqualified
  std::map<std::string, int> by_qualified_;
};

/// Evaluates an expression against a row. Parameters come from `params`
/// (bound positionally). Boolean-valued expressions yield Value::Bool;
/// comparisons on incomparable types fail.
Status EvalExpr(const Expr& expr, const ColumnBindings& bindings,
                const std::vector<Value>& row,
                const std::vector<Value>& params, Value* out);

/// Evaluates an expression that must not reference any column (literals,
/// parameters) — INSERT values, window bounds, TRACE operands.
Status EvalConstExpr(const Expr& expr, const std::vector<Value>& params,
                     Value* out);

/// Evaluates a predicate to a boolean (NULL -> false).
Status EvalPredicate(const Expr& expr, const ColumnBindings& bindings,
                     const std::vector<Value>& row,
                     const std::vector<Value>& params, bool* out);

/// A sargable range constraint on one column extracted from the top-level
/// conjuncts of a WHERE clause: lo <= col <= hi (either bound may be open).
struct ColumnRange {
  std::optional<Value> lo;
  std::optional<Value> hi;

  bool IsPoint() const {
    return lo.has_value() && hi.has_value() &&
           lo->CompareTotal(*hi) == 0;
  }
};

/// Extracts a range on `column` (unqualified, or qualified with `table`)
/// from the AND-conjuncts of `where`. OR anywhere above a conjunct makes it
/// non-sargable. Returns nullopt when no constraint on the column exists.
/// The full WHERE is still applied to every candidate row afterwards.
std::optional<ColumnRange> ExtractColumnRange(
    const Expr* where, const std::string& table, const std::string& column,
    const std::vector<Value>& params);

}  // namespace sebdb
