// On-chain join (paper Algorithm 2) and on-off-chain join (Algorithm 3),
// each in the three strategies the evaluation compares: hash join over a
// full scan, hash join over bitmap-filtered blocks, and layered-index
// sort-merge over block pairs that may produce results.
#include <algorithm>
#include <set>
#include <unordered_map>

#include "sql/executor.h"
#include "sql/executor_internal.h"

namespace sebdb {

namespace sql_internal {

std::vector<ValueRange> BucketRangesOf(const LayeredIndex& index,
                                       BlockId bid) {
  std::vector<ValueRange> out;
  const Bitmap* buckets = index.BlockBuckets(bid);
  if (buckets == nullptr) return out;
  const auto& boundaries = index.histogram().boundaries();
  for (size_t b : buckets->SetBits()) {
    ValueRange range;
    if (b > 0) range.lo = boundaries[b - 1];
    if (b < boundaries.size()) range.hi = boundaries[b];
    out.push_back(std::move(range));
  }
  return out;
}

bool RangesOverlap(const ValueRange& a, const ValueRange& b) {
  // a = (a.lo, a.hi], b = (b.lo, b.hi]: disjoint iff one ends at or before
  // the other begins.
  if (a.hi.has_value() && b.lo.has_value() &&
      a.hi->CompareTotal(*b.lo) <= 0) {
    return false;
  }
  if (b.hi.has_value() && a.lo.has_value() &&
      b.hi->CompareTotal(*a.lo) <= 0) {
    return false;
  }
  return true;
}

bool BlocksIntersectContinuous(const LayeredIndex& ir, BlockId br,
                               const LayeredIndex& is, BlockId bs) {
  std::vector<ValueRange> ar = BucketRangesOf(ir, br);
  std::vector<ValueRange> as = BucketRangesOf(is, bs);
  size_t i = 0, j = 0;
  while (i < ar.size() && j < as.size()) {
    if (RangesOverlap(ar[i], as[j])) return true;
    bool a_ends_first;
    if (!ar[i].hi.has_value()) a_ends_first = false;
    else if (!as[j].hi.has_value()) a_ends_first = true;
    else a_ends_first = ar[i].hi->CompareTotal(*as[j].hi) <= 0;
    if (a_ends_first) i++;
    else j++;
  }
  return false;
}

bool BlocksIntersectDiscrete(const LayeredIndex& ir, BlockId br,
                             const LayeredIndex& is, BlockId bs) {
  for (const auto& [value, blocks] : ir.discrete_values()) {
    if (!blocks.Test(br)) continue;
    if (is.BlocksWithValue(value).Test(bs)) return true;
  }
  return false;
}

bool BlockIntersectsRange(const LayeredIndex& index, BlockId bid,
                          const Value& lo, const Value& hi) {
  if (index.options().discrete) {
    for (const auto& [value, blocks] : index.discrete_values()) {
      if (value.CompareTotal(lo) >= 0 && value.CompareTotal(hi) <= 0 &&
          blocks.Test(bid)) {
        return true;
      }
    }
    return false;
  }
  ValueRange query;
  query.lo = lo;  // conservative exclusive-lo; the bucket holding lo is
  query.hi = hi;  // re-checked below
  for (const auto& range : BucketRangesOf(index, bid)) {
    if (RangesOverlap(range, query)) return true;
  }
  const Bitmap* buckets = index.BlockBuckets(bid);
  return buckets != nullptr &&
         buckets->Test(index.histogram().BucketOf(lo));
}

}  // namespace sql_internal

using sql_internal::AllBlocksBitmap;
using sql_internal::BlockIntersectsRange;
using sql_internal::BlocksIntersectContinuous;
using sql_internal::BlocksIntersectDiscrete;
using sql_internal::OffchainColumnNames;
using sql_internal::SchemaColumnNames;
using sql_internal::ValueEq;
using sql_internal::ValueHash;

namespace {

const char* StrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kScanHash:
      return "scan-hash";
    case JoinStrategy::kBitmapHash:
      return "bitmap-hash";
    case JoinStrategy::kLayeredMerge:
      return "layered-merge";
    default:
      return "auto";
  }
}

// Resolves which side of the join condition belongs to which table; fails
// when a reference matches neither table.
Status SplitJoinColumns(const JoinCondition& join, const std::string& left,
                        const std::string& right, std::string* left_col,
                        std::string* right_col) {
  auto side_of = [&](const ColumnRef& ref) -> int {
    if (!ref.table.empty()) {
      if (ref.table == left) return 0;
      if (ref.table == right) return 1;
      return -1;
    }
    return -2;  // unqualified: resolved by position below
  };
  int a = side_of(join.left);
  int b = side_of(join.right);
  if (a == -2 && b == -2) {
    // Both unqualified: first refers to left table, second to right.
    *left_col = join.left.column;
    *right_col = join.right.column;
    return Status::OK();
  }
  if (a == 0 || b == 1) {
    *left_col = (a == 0 ? join.left : join.right).column;
    *right_col = (a == 0 ? join.right : join.left).column;
    if (a == 0 && b != 1 && b != -2) {
      return Status::InvalidArgument("join condition references unknown table");
    }
    return Status::OK();
  }
  if (a == 1 || b == 0) {  // condition written right-to-left
    *left_col = (b == 0 ? join.right : join.left).column;
    *right_col = (b == 0 ? join.left : join.right).column;
    return Status::OK();
  }
  return Status::InvalidArgument("join condition references unknown table");
}

std::vector<Value> ConcatRows(const std::vector<Value>& a,
                              const std::vector<Value>& b) {
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

Status Executor::ExecOnChainJoin(const SelectStmt& stmt,
                                 const ExecOptions& options,
                                 bool explain_only, ResultSet* result) {
  const std::string& left = stmt.tables[0].name;
  const std::string& right = stmt.tables[1].name;
  Schema left_schema, right_schema;
  Status s = catalog_->GetSchema(left, &left_schema);
  if (!s.ok()) return s;
  s = catalog_->GetSchema(right, &right_schema);
  if (!s.ok()) return s;

  std::string left_col, right_col;
  s = SplitJoinColumns(*stmt.join, left, right, &left_col, &right_col);
  if (!s.ok()) return s;
  int left_idx = left_schema.ColumnIndex(left_col);
  int right_idx = right_schema.ColumnIndex(right_col);
  if (left_idx < 0 || right_idx < 0) {
    return Status::NotFound("join column not found");
  }

  ColumnBindings bindings;
  bindings.AddTable(left, SchemaColumnNames(left_schema));
  bindings.AddTable(right, SchemaColumnNames(right_schema));
  result->columns = bindings.qualified_names();

  std::optional<Bitmap> window;
  s = ResolveWindow(stmt.window, options.params, &window);
  if (!s.ok()) return s;

  LayeredIndex* left_index = indexes_->GetLayered(left, left_col);
  LayeredIndex* right_index = indexes_->GetLayered(right, right_col);
  JoinStrategy strategy = options.join_strategy;
  if (strategy == JoinStrategy::kAuto) {
    strategy = (left_index != nullptr && right_index != nullptr)
                   ? JoinStrategy::kLayeredMerge
                   : JoinStrategy::kBitmapHash;
  }
  if (strategy == JoinStrategy::kLayeredMerge &&
      (left_index == nullptr || right_index == nullptr)) {
    return Status::InvalidArgument(
        "layered-merge join needs layered indices on both join columns");
  }

  result->plan = "OnChainJoin(" + left + "." + left_col + " = " + right +
                 "." + right_col + ") strategy=" + StrategyName(strategy);
  if (window.has_value()) result->plan += " window";
  if (explain_only) return Status::OK();

  const uint64_t n = store_->num_blocks();
  // Concatenate + filter one joined row into `out`. Workers pass private
  // buffers; the buffers are merged in candidate order afterwards so the
  // result is byte-identical to the serial nested loop.
  auto emit = [&](const std::vector<Value>& lrow,
                  const std::vector<Value>& rrow,
                  std::vector<std::vector<Value>>* out) -> Status {
    std::vector<Value> row = ConcatRows(lrow, rrow);
    bool ok = true;
    if (stmt.where != nullptr) {
      Status es =
          EvalPredicate(*stmt.where, bindings, row, options.params, &ok);
      if (!es.ok()) return es;
    }
    if (ok) out->push_back(std::move(row));
    return Status::OK();
  };
  using RowVec = std::vector<std::vector<Value>>;

  if (strategy == JoinStrategy::kScanHash ||
      strategy == JoinStrategy::kBitmapHash) {
    Bitmap blocks;
    if (strategy == JoinStrategy::kScanHash) {
      blocks = AllBlocksBitmap(n);
    } else {
      blocks = indexes_->table_index().BlocksWithTable(left);
      blocks.Or(indexes_->table_index().BlocksWithTable(right));
    }
    if (window.has_value()) blocks.And(*window);

    // One pass over the candidate blocks partitions both inputs; then a
    // hash table on the right input is probed with the left. The partition
    // phase (read + decode + row materialization) fans out per block; the
    // per-block partitions are merged serially in block order so the hash
    // table's insertion order — and hence equal_range iteration order —
    // matches the serial pass exactly.
    struct Partition {
      std::vector<std::pair<Value, std::vector<Value>>> left, right;
    };
    const std::vector<size_t> bids = blocks.SetBits();
    std::vector<Partition> parts;
    s = sql_internal::ParallelMapOrdered<Partition>(
        pool_, bids.size(),
        [&](size_t i, Partition* out) -> Status {
          std::shared_ptr<const Block> block;
          Status ps = store_->ReadBlock(bids[i], &block);
          if (!ps.ok()) return ps;
          for (const auto& txn : block->transactions()) {
            if (txn.tname() == left) {
              Value key = txn.GetColumn(left_idx);
              out->left.emplace_back(std::move(key),
                                     TxnToRow(txn, left_schema.num_columns()));
            }
            if (txn.tname() == right) {
              Value key = txn.GetColumn(right_idx);
              out->right.emplace_back(
                  std::move(key), TxnToRow(txn, right_schema.num_columns()));
            }
          }
          return Status::OK();
        },
        &parts);
    if (!s.ok()) return s;

    std::unordered_multimap<Value, std::vector<Value>, ValueHash, ValueEq>
        right_rows;
    std::vector<std::pair<Value, std::vector<Value>>> left_rows;
    for (auto& part : parts) {
      for (auto& [key, lrow] : part.left) {
        left_rows.emplace_back(std::move(key), std::move(lrow));
      }
      for (auto& [key, rrow] : part.right) {
        right_rows.emplace(std::move(key), std::move(rrow));
      }
    }
    for (const auto& [key, lrow] : left_rows) {
      auto [begin, end] = right_rows.equal_range(key);
      for (auto it = begin; it != end; ++it) {
        s = emit(lrow, it->second, &result->rows);
        if (!s.ok()) return s;
      }
    }
    return Project(stmt, bindings, result);
  }

  // Layered-merge (Algorithm 2): pair up candidate blocks of the two
  // indices, skip pairs whose first-level entries cannot intersect, and
  // sort-merge the second-level trees of the surviving pairs.
  Bitmap left_blocks = left_index->BlocksWithEntries();
  Bitmap right_blocks = right_index->BlocksWithEntries();
  if (window.has_value()) {
    left_blocks.And(*window);
    right_blocks.And(*window);
  }
  bool discrete =
      left_index->options().discrete || right_index->options().discrete;
  if (left_index->options().discrete != right_index->options().discrete) {
    return Status::InvalidArgument(
        "join columns must both be discrete or both continuous");
  }

  // Enumerate block pairs that may produce join results. For a discrete
  // attribute, walk the value -> blocks maps directly (a pair qualifies iff
  // some value occurs in both blocks) — equivalent to the paper's per-pair
  // intersect() but linear in the number of values rather than quadratic in
  // blocks. For a continuous attribute, test bucket-range overlap per pair.
  std::vector<std::pair<size_t, size_t>> pairs;
  if (discrete) {
    std::set<std::pair<size_t, size_t>> pair_set;
    for (const auto& [value, lblocks] : left_index->discrete_values()) {
      Bitmap lb = lblocks;
      lb.And(left_blocks);
      if (!lb.AnySet()) continue;
      Bitmap rb = right_index->BlocksWithValue(value);
      rb.And(right_blocks);
      if (!rb.AnySet()) continue;
      for (size_t br : lb.SetBits()) {
        for (size_t bs : rb.SetBits()) pair_set.insert({br, bs});
      }
    }
    pairs.assign(pair_set.begin(), pair_set.end());
  } else {
    for (size_t br : left_blocks.SetBits()) {
      for (size_t bs : right_blocks.SetBits()) {
        if (BlocksIntersectContinuous(*left_index, br, *right_index, bs)) {
          pairs.emplace_back(br, bs);
        }
      }
    }
  }

  // Each surviving pair sort-merges independently into a private buffer;
  // buffers are concatenated in pair order.
  std::vector<RowVec> buffers;
  s = sql_internal::ParallelMapOrdered<RowVec>(
      pool_, pairs.size(),
      [&](size_t i, RowVec* out) -> Status {
        const auto [br, bs] = pairs[i];
        // Sort-merge over the two blocks' second-level trees (leaves are in
        // attribute order).
        std::shared_ptr<const LayeredIndex::SecondLevelTree> ltree, rtree;
        Status ts = left_index->Tree(br, &ltree);
        if (ts.ok()) ts = right_index->Tree(bs, &rtree);
        if (!ts.ok()) return ts;
        if (ltree == nullptr || rtree == nullptr) return Status::OK();
        auto lit = ltree->Begin();
        auto rit = rtree->Begin();
        Status ps;
        while (lit.Valid() && rit.Valid()) {
          int cmp = lit.key().CompareTotal(rit.key());
          if (cmp < 0) {
            lit.Next();
            continue;
          }
          if (cmp > 0) {
            rit.Next();
            continue;
          }
          // Equal keys: cross product of both duplicate groups.
          Value key = lit.key();
          std::vector<uint32_t> lpos, rpos;
          while (lit.Valid() && lit.key().CompareTotal(key) == 0) {
            lpos.push_back(lit.value());
            lit.Next();
          }
          while (rit.Valid() && rit.key().CompareTotal(key) == 0) {
            rpos.push_back(rit.value());
            rit.Next();
          }
          for (uint32_t lp : lpos) {
            std::shared_ptr<const Transaction> ltxn;
            ps = store_->ReadTransaction(br, lp, &ltxn);
            if (!ps.ok()) return ps;
            std::vector<Value> lrow =
                TxnToRow(*ltxn, left_schema.num_columns());
            for (uint32_t rp : rpos) {
              std::shared_ptr<const Transaction> rtxn;
              ps = store_->ReadTransaction(bs, rp, &rtxn);
              if (!ps.ok()) return ps;
              ps = emit(lrow, TxnToRow(*rtxn, right_schema.num_columns()),
                        out);
              if (!ps.ok()) return ps;
            }
          }
        }
        return Status::OK();
      },
      &buffers);
  if (!s.ok()) return s;
  for (auto& buffer : buffers) {
    for (auto& row : buffer) result->rows.push_back(std::move(row));
  }
  return Project(stmt, bindings, result);
}

Status Executor::ExecOnOffJoin(const SelectStmt& stmt,
                               const ExecOptions& options, bool explain_only,
                               ResultSet* result) {
  if (offchain_ == nullptr) {
    return Status::InvalidArgument("no off-chain connector configured");
  }
  // Normalize: r = on-chain side, s = off-chain side; remember the original
  // column order for output.
  bool left_is_off = stmt.tables[0].offchain;
  const TableRef& on_ref = left_is_off ? stmt.tables[1] : stmt.tables[0];
  const TableRef& off_ref = left_is_off ? stmt.tables[0] : stmt.tables[1];

  Schema on_schema;
  Status s = catalog_->GetSchema(on_ref.name, &on_schema);
  if (!s.ok()) return s;
  std::vector<ColumnDef> off_columns;
  s = offchain_->TableColumns(off_ref.name, &off_columns);
  if (!s.ok()) return s;

  std::string first_col, second_col;
  s = SplitJoinColumns(*stmt.join, stmt.tables[0].name, stmt.tables[1].name,
                       &first_col, &second_col);
  if (!s.ok()) return s;
  const std::string& on_col = left_is_off ? second_col : first_col;
  const std::string& off_col = left_is_off ? first_col : second_col;

  int on_idx = on_schema.ColumnIndex(on_col);
  if (on_idx < 0) {
    return Status::NotFound("join column " + on_col + " not in " +
                            on_ref.name);
  }
  int off_idx = -1;
  for (size_t i = 0; i < off_columns.size(); i++) {
    if (off_columns[i].name == off_col) off_idx = static_cast<int>(i);
  }
  if (off_idx < 0) {
    return Status::NotFound("join column " + off_col + " not in " +
                            off_ref.name);
  }

  // Output binding order follows the statement's table order.
  ColumnBindings bindings;
  if (left_is_off) {
    bindings.AddTable(off_ref.name, OffchainColumnNames(off_columns));
    bindings.AddTable(on_ref.name, SchemaColumnNames(on_schema));
  } else {
    bindings.AddTable(on_ref.name, SchemaColumnNames(on_schema));
    bindings.AddTable(off_ref.name, OffchainColumnNames(off_columns));
  }
  result->columns = bindings.qualified_names();

  std::optional<Bitmap> window;
  s = ResolveWindow(stmt.window, options.params, &window);
  if (!s.ok()) return s;

  LayeredIndex* on_index = indexes_->GetLayered(on_ref.name, on_col);
  JoinStrategy strategy = options.join_strategy;
  if (strategy == JoinStrategy::kAuto) {
    strategy = on_index != nullptr ? JoinStrategy::kLayeredMerge
                                   : JoinStrategy::kBitmapHash;
  }
  if (strategy == JoinStrategy::kLayeredMerge && on_index == nullptr) {
    return Status::InvalidArgument(
        "layered-merge on-off join needs a layered index on the on-chain "
        "join column");
  }

  result->plan = "OnOffJoin(onchain." + on_ref.name + "." + on_col +
                 " = offchain." + off_ref.name + "." + off_col +
                 ") strategy=" + StrategyName(strategy);
  if (window.has_value()) result->plan += " window";
  if (explain_only) return Status::OK();

  // As in ExecOnChainJoin: emit into a caller-supplied buffer so probe work
  // can run on private per-block buffers, merged in block order.
  auto emit = [&](const std::vector<Value>& on_row,
                  const std::vector<Value>& off_row,
                  std::vector<std::vector<Value>>* out) -> Status {
    std::vector<Value> row = left_is_off ? ConcatRows(off_row, on_row)
                                         : ConcatRows(on_row, off_row);
    bool ok = true;
    if (stmt.where != nullptr) {
      Status es =
          EvalPredicate(*stmt.where, bindings, row, options.params, &ok);
      if (!es.ok()) return es;
    }
    if (ok) out->push_back(std::move(row));
    return Status::OK();
  };
  using RowVec = std::vector<std::vector<Value>>;

  const uint64_t n = store_->num_blocks();

  if (strategy == JoinStrategy::kScanHash ||
      strategy == JoinStrategy::kBitmapHash) {
    // Fetch the whole off-chain table once and build a hash table on the
    // join attribute; candidate blocks are then read and probed in parallel
    // (the hash table is read-only during the probe phase).
    std::vector<OffchainRow> off_rows;
    s = offchain_->FetchAll(off_ref.name, &off_rows);
    if (!s.ok()) return s;
    std::unordered_multimap<Value, const OffchainRow*, ValueHash, ValueEq>
        hash;
    for (const auto& row : off_rows) hash.emplace(row[off_idx], &row);

    Bitmap blocks = strategy == JoinStrategy::kScanHash
                        ? AllBlocksBitmap(n)
                        : indexes_->table_index().BlocksWithTable(on_ref.name);
    if (window.has_value()) blocks.And(*window);
    const std::vector<size_t> bids = blocks.SetBits();
    std::vector<RowVec> buffers;
    s = sql_internal::ParallelMapOrdered<RowVec>(
        pool_, bids.size(),
        [&](size_t i, RowVec* out) -> Status {
          std::shared_ptr<const Block> block;
          Status ps = store_->ReadBlock(bids[i], &block);
          if (!ps.ok()) return ps;
          for (const auto& txn : block->transactions()) {
            if (txn.tname() != on_ref.name) continue;
            Value key = txn.GetColumn(on_idx);
            auto [begin, end] = hash.equal_range(key);
            if (begin == end) continue;
            std::vector<Value> on_row = TxnToRow(txn, on_schema.num_columns());
            for (auto it = begin; it != end; ++it) {
              ps = emit(on_row, *it->second, out);
              if (!ps.ok()) return ps;
            }
          }
          return Status::OK();
        },
        &buffers);
    if (!s.ok()) return s;
    for (auto& buffer : buffers) {
      for (auto& row : buffer) result->rows.push_back(std::move(row));
    }
    return Project(stmt, bindings, result);
  }

  // Layered-merge (Algorithm 3): off-chain rows sorted on the join
  // attribute; filter blocks by (s_min, s_max) — or the distinct values for
  // a discrete attribute — then sort-merge each surviving block against the
  // sorted off-chain rows using the second-level index.
  std::vector<OffchainRow> off_sorted;
  s = offchain_->FetchSortedBy(off_ref.name, off_col, &off_sorted);
  if (!s.ok()) return s;
  if (off_sorted.empty()) return Project(stmt, bindings, result);

  Bitmap candidates(n);
  if (on_index->options().discrete) {
    std::vector<Value> distinct;
    s = offchain_->Distinct(off_ref.name, off_col, &distinct);
    if (!s.ok()) return s;
    for (const auto& v : distinct) {
      candidates.Or(on_index->BlocksWithValue(v));
    }
  } else {
    Value smin, smax;
    s = offchain_->MinMax(off_ref.name, off_col, &smin, &smax);
    if (!s.ok()) return s;
    Bitmap with_entries = on_index->BlocksWithEntries();
    for (size_t bid : with_entries.SetBits()) {
      if (BlockIntersectsRange(*on_index, bid, smin, smax)) {
        candidates.Set(bid);
      }
    }
  }
  if (window.has_value()) candidates.And(*window);

  // Each candidate block merges independently against the shared sorted
  // off-chain rows (read-only); per-block buffers concatenate in block order.
  const std::vector<size_t> cand_bids = candidates.SetBits();
  std::vector<RowVec> buffers;
  s = sql_internal::ParallelMapOrdered<RowVec>(
      pool_, cand_bids.size(),
      [&](size_t i, RowVec* out) -> Status {
        const size_t bid = cand_bids[i];
        std::shared_ptr<const LayeredIndex::SecondLevelTree> tree;
        Status ts = on_index->Tree(bid, &tree);
        if (!ts.ok()) return ts;
        if (tree == nullptr) return Status::OK();
        auto onit = tree->Begin();
        size_t off_i = 0;
        Status ps;
        while (onit.Valid() && off_i < off_sorted.size()) {
          int cmp = onit.key().CompareTotal(off_sorted[off_i][off_idx]);
          if (cmp < 0) {
            onit.Next();
            continue;
          }
          if (cmp > 0) {
            off_i++;
            continue;
          }
          Value key = onit.key();
          std::vector<uint32_t> on_pos;
          while (onit.Valid() && onit.key().CompareTotal(key) == 0) {
            on_pos.push_back(onit.value());
            onit.Next();
          }
          size_t off_start = off_i;
          while (off_i < off_sorted.size() &&
                 off_sorted[off_i][off_idx].CompareTotal(key) == 0) {
            off_i++;
          }
          for (uint32_t pos : on_pos) {
            std::shared_ptr<const Transaction> txn;
            ps = store_->ReadTransaction(bid, pos, &txn);
            if (!ps.ok()) return ps;
            std::vector<Value> on_row =
                TxnToRow(*txn, on_schema.num_columns());
            for (size_t j = off_start; j < off_i; j++) {
              ps = emit(on_row, off_sorted[j], out);
              if (!ps.ok()) return ps;
            }
          }
          // Off-chain duplicates were consumed; the merge continues after
          // them for the next on-chain key.
        }
        return Status::OK();
      },
      &buffers);
  if (!s.ok()) return s;
  for (auto& buffer : buffers) {
    for (auto& row : buffer) result->rows.push_back(std::move(row));
  }
  return Project(stmt, bindings, result);
}

}  // namespace sebdb
