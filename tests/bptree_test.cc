// Unit and property tests for the in-memory B+-tree.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "index/bptree.h"

namespace sebdb {
namespace {

TEST(BpTreeTest, EmptyTree) {
  BpTree<int, int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.SeekGE(5).Valid());
}

TEST(BpTreeTest, InsertAndIterateInOrder) {
  BpTree<int, int> tree;
  for (int i = 99; i >= 0; i--) tree.Insert(i, i * 10);
  EXPECT_EQ(tree.size(), 100u);
  int expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expected);
    EXPECT_EQ(it.value(), expected * 10);
    expected++;
  }
  EXPECT_EQ(expected, 100);
}

TEST(BpTreeTest, SeekSemantics) {
  BpTree<int, int> tree;
  for (int i = 0; i < 100; i += 2) tree.Insert(i, i);
  auto it = tree.SeekGE(10);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 10);
  it = tree.SeekGE(11);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 12);
  it = tree.SeekGT(10);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 12);
  EXPECT_FALSE(tree.SeekGE(99).Valid());
  EXPECT_TRUE(tree.SeekGE(98).Valid());
}

TEST(BpTreeTest, DuplicateKeys) {
  BpTree<int, int> tree;
  for (int i = 0; i < 50; i++) tree.Insert(7, i);
  tree.Insert(6, -1);
  tree.Insert(8, -2);
  std::vector<int> values;
  size_t n = tree.RangeScan(7, 7, &values);
  EXPECT_EQ(n, 50u);
}

TEST(BpTreeTest, SeekFirstTrueMonotonePredicate) {
  BpTree<int, int> tree;
  for (int i = 0; i < 1000; i++) tree.Insert(i, i);
  for (int threshold : {0, 1, 63, 64, 500, 998, 999}) {
    auto it = tree.SeekFirstTrue([&](const int& k) { return k >= threshold; });
    ASSERT_TRUE(it.Valid()) << threshold;
    EXPECT_EQ(it.key(), threshold);
  }
  EXPECT_FALSE(
      tree.SeekFirstTrue([](const int& k) { return k >= 1000; }).Valid());
  auto it = tree.SeekFirstTrue([](const int&) { return true; });
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 0);
}

TEST(BpTreeTest, BulkLoadPacksLeavesFull) {
  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < 1000; i++) entries.push_back({i, i * 2});
  BpTree<int, int> tree;
  tree.BulkLoad(std::move(entries));
  EXPECT_EQ(tree.size(), 1000u);
  int expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expected);
    EXPECT_EQ(it.value(), expected * 2);
    expected++;
  }
  EXPECT_EQ(expected, 1000);
  auto it = tree.SeekGE(777);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value(), 1554);
}

TEST(BpTreeTest, BulkLoadEmptyAndSingle) {
  BpTree<int, int> tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  tree.BulkLoad({{5, 50}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.SeekGE(5).value(), 50);
}

TEST(BpTreeTest, RangeScan) {
  BpTree<int, int> tree;
  for (int i = 0; i < 200; i++) tree.Insert(i, i);
  std::vector<int> out;
  EXPECT_EQ(tree.RangeScan(50, 59, &out), 10u);
  EXPECT_EQ(out.front(), 50);
  EXPECT_EQ(out.back(), 59);
  out.clear();
  EXPECT_EQ(tree.RangeScan(500, 600, &out), 0u);
}

TEST(BpTreeTest, StringKeys) {
  BpTree<std::string, int> tree;
  tree.Insert("banana", 2);
  tree.Insert("apple", 1);
  tree.Insert("cherry", 3);
  auto it = tree.Begin();
  EXPECT_EQ(it.key(), "apple");
  it = tree.SeekGE("b");
  EXPECT_EQ(it.key(), "banana");
}

TEST(BpTreeTest, HeightGrowsLogarithmically) {
  BpTree<int, int> tree;
  for (int i = 0; i < 100000; i++) tree.Insert(i, i);
  // fanout 64: 100k entries fit within height 4.
  EXPECT_LE(tree.height(), 4);
  EXPECT_GE(tree.height(), 3);
}

// Property test: random interleaved inserts match std::multimap across
// several seeds and sizes.
class BpTreePropertyTest
    : public ::testing::TestWithParam<std::pair<uint64_t, int>> {};

TEST_P(BpTreePropertyTest, MatchesMultimap) {
  auto [seed, n] = GetParam();
  Random rng(seed);
  BpTree<int, int> tree;
  std::multimap<int, int> ref;
  for (int i = 0; i < n; i++) {
    int key = static_cast<int>(rng.Uniform(n / 2 + 1));
    tree.Insert(key, i);
    ref.emplace(key, i);
  }
  ASSERT_EQ(tree.size(), ref.size());
  // Full iteration yields the same key sequence.
  auto it = tree.Begin();
  for (auto& [key, value] : ref) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), key);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
  // Random range scans agree on count.
  for (int q = 0; q < 50; q++) {
    int lo = static_cast<int>(rng.Uniform(n / 2 + 1));
    int hi = lo + static_cast<int>(rng.Uniform(20));
    std::vector<int> got;
    tree.RangeScan(lo, hi, &got);
    size_t expected = 0;
    for (auto iter = ref.lower_bound(lo);
         iter != ref.end() && iter->first <= hi; ++iter) {
      expected++;
    }
    EXPECT_EQ(got.size(), expected) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, BpTreePropertyTest,
    ::testing::Values(std::make_pair(1ull, 10), std::make_pair(2ull, 100),
                      std::make_pair(3ull, 1000), std::make_pair(4ull, 5000),
                      std::make_pair(5ull, 20000)));

}  // namespace
}  // namespace sebdb
