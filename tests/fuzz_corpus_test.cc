// Replays the checked-in fuzz seed corpora (fuzz/corpus/**) through the
// harness entry points, plus a deterministic mutation neighborhood of each
// seed — the same mutations the standalone fuzz driver applies, so a crash
// found by the smoke run reproduces here under the debugger. Also pins the
// reject-or-equal contract explicitly for the seeds themselves: every seed
// is a valid input, so decoders must accept it and round-trip it exactly.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "common/slice.h"
#include "fuzz/harnesses.h"
#include "fuzz/mutate.h"
#include "network/frame.h"
#include "storage/block.h"
#include "types/transaction.h"

#ifndef SEBDB_FUZZ_CORPUS_DIR
#error "build with -DSEBDB_FUZZ_CORPUS_DIR=\"<repo>/fuzz/corpus\""
#endif

namespace sebdb {
namespace {

using FuzzEntry = int (*)(const uint8_t*, size_t);

std::vector<std::string> CorpusFiles(const std::string& subdir) {
  const std::string dir = std::string(SEBDB_FUZZ_CORPUS_DIR) + "/" + subdir;
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return files;
  while (struct dirent* entry = readdir(d)) {
    if (entry->d_name[0] == '.') continue;
    files.push_back(dir + "/" + entry->d_name);
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void ReplayCorpus(const std::string& subdir, FuzzEntry entry) {
  const auto files = CorpusFiles(subdir);
  ASSERT_FALSE(files.empty())
      << "no seeds under " << SEBDB_FUZZ_CORPUS_DIR << "/" << subdir
      << " — regenerate with: build/fuzz/make_corpus fuzz/corpus";
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const std::string seed = ReadFileOrDie(path);
    entry(reinterpret_cast<const uint8_t*>(seed.data()), seed.size());
    for (uint64_t round = 0; round < 256; round++) {
      const std::string mutated = fuzz::MutateInput(seed, /*seed=*/1, round);
      entry(reinterpret_cast<const uint8_t*>(mutated.data()), mutated.size());
    }
  }
}

TEST(FuzzCorpusTest, TransactionDecode) {
  ReplayCorpus("transaction_decode", fuzz::FuzzTransactionDecode);
}

TEST(FuzzCorpusTest, BlockDecode) {
  ReplayCorpus("block_decode", fuzz::FuzzBlockDecode);
}

TEST(FuzzCorpusTest, Coding) { ReplayCorpus("coding", fuzz::FuzzCoding); }

TEST(FuzzCorpusTest, SqlParser) {
  ReplayCorpus("sql_parser", fuzz::FuzzSqlParser);
}

TEST(FuzzCorpusTest, VoVerify) {
  ReplayCorpus("vo_verify", fuzz::FuzzVoVerify);
}

TEST(FuzzCorpusTest, PageDecode) {
  ReplayCorpus("page_decode", fuzz::FuzzPageDecode);
}

TEST(FuzzCorpusTest, TcpFrame) {
  ReplayCorpus("tcp_frame", fuzz::FuzzTcpFrame);
}

// Every TCP frame seed is a valid frame: the strict decoder must accept it
// and round-trip it byte-exactly (the reject-or-round-trip contract's
// accept half, pinned on the checked-in corpus itself; the harness pins it
// on the mutation neighborhood).
TEST(FuzzCorpusTest, TcpFrameSeedsRoundTrip) {
  for (const auto& path : CorpusFiles("tcp_frame")) {
    const std::string bytes = ReadFileOrDie(path);
    Slice input(bytes);
    Message message;
    // frame_pair holds two concatenated frames; each must decode in turn.
    while (!input.empty()) {
      ASSERT_TRUE(DecodeFrame(&input, kDefaultMaxFrameBytes, &message).ok())
          << Basename(path);
      std::string reencoded;
      EncodeFrame(message, &reencoded);
      ASSERT_NE(bytes.find(reencoded), std::string::npos) << Basename(path);
    }
  }
}

// The transaction seeds are valid encodings: decode must accept them and
// re-encoding must reproduce the input bytes exactly (a byte of slack would
// mean hashes — and therefore consensus — diverge between encoder versions).
TEST(FuzzCorpusTest, TransactionSeedsRoundTripExactly) {
  for (const auto& path : CorpusFiles("transaction_decode")) {
    if (Basename(path).rfind("txn_", 0) != 0) continue;  // bare Value seeds
    SCOPED_TRACE(path);
    const std::string seed = ReadFileOrDie(path);
    Slice input(seed);
    Transaction txn;
    ASSERT_TRUE(Transaction::DecodeFrom(&input, &txn).ok());
    EXPECT_TRUE(input.empty()) << "trailing bytes after a full decode";
    std::string reencoded;
    txn.EncodeTo(&reencoded);
    EXPECT_EQ(reencoded, seed);
  }
}

// Block seeds must decode, validate (Merkle root + header hash), and
// round-trip byte-exactly.
TEST(FuzzCorpusTest, BlockSeedsValidateAndRoundTrip) {
  for (const auto& path : CorpusFiles("block_decode")) {
    if (Basename(path).rfind("block_", 0) != 0) continue;  // header seeds
    SCOPED_TRACE(path);
    const std::string seed = ReadFileOrDie(path);
    Slice input(seed);
    Block block;
    ASSERT_TRUE(Block::DecodeFrom(&input, &block).ok());
    EXPECT_TRUE(block.Validate().ok());
    std::string reencoded;
    block.EncodeTo(&reencoded);
    EXPECT_EQ(reencoded, seed);
  }
}

}  // namespace
}  // namespace sebdb
