// Shared test helpers: scratch directories and direct chain construction
// (bypassing consensus) for storage/index/executor tests.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/chain_manager.h"
#include "storage/file.h"
#include "types/transaction.h"

namespace sebdb {
namespace testing_util {

/// Creates a unique scratch directory under the build tree and removes it at
/// scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = "/tmp/sebdb_test_" + tag + "_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter.fetch_add(1));
    RemoveDirRecursive(path_);
    EXPECT_TRUE(CreateDirIfMissing(path_).ok());
  }
  ~ScratchDir() { RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Builds an unsigned transaction with explicit sender/timestamp.
inline Transaction MakeTxn(const std::string& tname,
                           const std::string& sender, Timestamp ts,
                           std::vector<Value> values) {
  Transaction txn(tname, std::move(values));
  txn.set_sender(sender);
  txn.set_ts(ts);
  txn.set_signature("test-sig");
  return txn;
}

/// A chain opened in a scratch dir with signature verification off; append
/// batches directly (no consensus) for deterministic storage/index tests.
class TestChain {
 public:
  explicit TestChain(const std::string& tag, ChainOptions options = {})
      : dir_(tag), chain_("test-node", nullptr) {
    options.verify_signatures = false;
    EXPECT_TRUE(chain_.Open(options, dir_.path()).ok());
  }

  /// Appends one block holding `txns`; block timestamp = max txn ts.
  Status AppendBlock(std::vector<Transaction> txns) {
    Timestamp ts = 0;
    for (const auto& txn : txns) ts = std::max(ts, txn.ts());
    uint64_t seq = chain_.height() - 1;  // genesis at height 0
    return chain_.AppendBatch(seq, std::move(txns), ts, "sig");
  }

  ChainManager& chain() { return chain_; }
  BlockStore* store() { return chain_.store(); }
  IndexSet* indexes() { return chain_.indexes(); }
  Catalog* catalog() { return chain_.catalog(); }

 private:
  ScratchDir dir_;
  ChainManager chain_;
};

}  // namespace testing_util
}  // namespace sebdb
