// Crash-loop tests for the fault-injection Env and the block store's
// self-healing recovery: a simulated kill at EVERY write boundary of a
// 200-block append workload must leave a store that reopens cleanly with a
// contiguous prefix of the chain, matches the clean replay bit for bit, and
// accepts new appends. A node-level variant restarts a full SebdbNode over
// a crashed data directory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "core/node.h"
#include "storage/block_store.h"
#include "storage/file.h"
#include "tests/test_util.h"
#include "network/sim_network.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;
using testing_util::ScratchDir;

constexpr int kNumBlocks = 200;

// Deterministic chained workload: block h links to block h-1's hash, so a
// recovered prefix is only bit-identical to the clean replay if recovery
// kept exactly the committed records in order.
std::vector<Block> MakeWorkload() {
  std::vector<Block> blocks;
  blocks.reserve(kNumBlocks);
  Hash256 prev{};
  TransactionId tid = 1;
  for (int h = 0; h < kNumBlocks; h++) {
    BlockBuilder builder;
    builder.SetHeight(h).SetPrevHash(prev).SetTimestamp(1000 + h).SetFirstTid(
        tid);
    builder.AddTransaction(MakeTxn("t", "org" + std::to_string(h % 5),
                                   1000 + h,
                                   {Value::Int(h), Value::Str("v")}));
    builder.AddTransaction(MakeTxn("t", "org" + std::to_string((h + 1) % 5),
                                   1000 + h, {Value::Int(-h), Value::Str("w")}));
    tid += 2;
    blocks.push_back(std::move(builder).Build("packager-sig"));
    prev = blocks.back().header().block_hash;
  }
  return blocks;
}

std::string Encoded(const Block& block) {
  std::string record;
  block.EncodeTo(&record);
  return record;
}

TEST(CrashLoopTest, RecoversFromEveryWritePoint) {
  const std::vector<Block> blocks = MakeWorkload();

  // Small segments so the workload rolls across many files and crash points
  // land near segment boundaries too.
  BlockStoreOptions small;
  small.segment_size = 4096;

  // Clean run: count the write ops the workload performs.
  uint64_t total_writes;
  {
    ScratchDir dir("crash_clean");
    FaultInjectionEnv env(Env::Default());
    BlockStoreOptions options = small;
    options.env = &env;
    BlockStore store;
    ASSERT_TRUE(store.Open(options, dir.path()).ok());
    for (const auto& block : blocks) ASSERT_TRUE(store.Append(block).ok());
    store.Close();
    total_writes = env.stats().write_ops;
  }
  ASSERT_GE(total_writes, static_cast<uint64_t>(kNumBlocks));

  for (uint64_t crash_at = 1; crash_at <= total_writes; crash_at++) {
    SCOPED_TRACE("crash point " + std::to_string(crash_at));
    ScratchDir dir("crash_pt");
    FaultInjectionEnv env(Env::Default());
    BlockStoreOptions options = small;
    options.env = &env;
    // Vary how much of the fatal write reaches disk: nothing, one byte, a
    // mid-frame fragment, or the whole frame (the crash hit after the write
    // but before the caller learned of it).
    static constexpr uint64_t kKeepChoices[] = {0, 1, 57, 1 << 20};
    env.ScheduleCrash(crash_at, kKeepChoices[crash_at % 4]);

    size_t appended = 0;
    {
      BlockStore store;
      ASSERT_TRUE(store.Open(options, dir.path()).ok());
      for (const auto& block : blocks) {
        if (!store.Append(block).ok()) break;
        appended++;
      }
      ASSERT_TRUE(env.crashed());
      ASSERT_LT(appended, blocks.size());
      store.Close();  // best effort; the env is dead
    }

    // "Restart": reopen the same directory against the real file system.
    BlockStore store;
    ASSERT_TRUE(store.Open(small, dir.path()).ok());
    const uint64_t recovered = store.num_blocks();
    // At most the crashed append itself can exceed what the caller saw
    // committed (its bytes may have fully reached disk).
    ASSERT_LE(recovered, appended + 1);
    // Contiguous prefix from genesis, bit-identical to the clean replay.
    for (uint64_t h = 0; h < recovered; h++) {
      std::string record;
      ASSERT_TRUE(store.ReadRawRecord(h, &record).ok()) << "height " << h;
      ASSERT_EQ(record, Encoded(blocks[h])) << "height " << h;
    }
    if (recovered > 0) {
      BlockHeader tip;
      ASSERT_TRUE(store.ReadHeader(recovered - 1, &tip).ok());
      ASSERT_EQ(tip.block_hash, blocks[recovered - 1].header().block_hash);
    }
    // The store resumes where recovery left off: the rest of the workload
    // appends and reads back.
    for (uint64_t h = recovered; h < blocks.size(); h++) {
      ASSERT_TRUE(store.Append(blocks[h]).ok()) << "height " << h;
    }
    ASSERT_EQ(store.num_blocks(), blocks.size());
    std::string record;
    ASSERT_TRUE(store.ReadRawRecord(kNumBlocks - 1, &record).ok());
    ASSERT_EQ(record, Encoded(blocks.back()));
    store.Close();
  }
}

TEST(CrashLoopTest, FailedWriteWedgesStoreUntilReopen) {
  const std::vector<Block> blocks = MakeWorkload();
  ScratchDir dir("crash_wedge");
  FaultInjectionEnv env(Env::Default());
  BlockStoreOptions options;
  options.env = &env;
  BlockStore store;
  ASSERT_TRUE(store.Open(options, dir.path()).ok());
  ASSERT_TRUE(store.Append(blocks[0]).ok());

  env.SetFailWrites(true);
  ASSERT_FALSE(store.Append(blocks[1]).ok());
  // Even after the transient failure clears, the tail is in an unknown
  // state: the store refuses to append until it is reopened and rescanned.
  env.SetFailWrites(false);
  EXPECT_TRUE(store.Append(blocks[1]).IsIOError());
  store.Close();

  BlockStore reopened;
  ASSERT_TRUE(reopened.Open(options, dir.path()).ok());
  const uint64_t recovered = reopened.num_blocks();
  ASSERT_GE(recovered, 1u);
  for (uint64_t h = recovered; h < 3; h++) {
    ASSERT_TRUE(reopened.Append(blocks[h]).ok());
  }
  std::string record;
  ASSERT_TRUE(reopened.ReadRawRecord(2, &record).ok());
  EXPECT_EQ(record, Encoded(blocks[2]));
  reopened.Close();
}

TEST(CrashLoopTest, SyncFailureWedgesStore) {
  const std::vector<Block> blocks = MakeWorkload();
  ScratchDir dir("crash_sync");
  FaultInjectionEnv env(Env::Default());
  BlockStoreOptions options;
  options.sync_on_append = true;
  options.env = &env;
  BlockStore store;
  ASSERT_TRUE(store.Open(options, dir.path()).ok());
  ASSERT_TRUE(store.Append(blocks[0]).ok());

  env.SetFailSyncs(true);
  ASSERT_FALSE(store.Append(blocks[1]).ok());
  env.SetFailSyncs(false);
  EXPECT_TRUE(store.Append(blocks[1]).IsIOError());
  store.Close();

  // The record's bytes reached the file before the failed fdatasync, so
  // recovery keeps both blocks.
  BlockStore reopened;
  ASSERT_TRUE(reopened.Open(options, dir.path()).ok());
  EXPECT_EQ(reopened.num_blocks(), 2u);
  reopened.Close();
}

// ---- corruption-position sweep (degraded open) -----------------------------

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> files, segments;
  EXPECT_TRUE(ListDir(dir, &files).ok());
  for (const auto& f : files) {
    if (f.size() == 14 && f.rfind("seg_", 0) == 0 && f.rfind(".blk") == 10) {
      segments.push_back(f);
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string ReadFileBytes(const std::string& path) {
  std::string bytes;
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return bytes;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  fclose(f);
  return bytes;
}

// Byte offsets of every frame start in a segment image:
// [magic u32][len u32][payload][crc u32].
std::vector<size_t> FrameOffsets(const std::string& image) {
  std::vector<size_t> offsets;
  size_t offset = 0;
  while (offset + 12 <= image.size()) {
    offsets.push_back(offset);
    offset += 8 + DecodeFixed32(image.data() + offset + 4) + 4;
  }
  return offsets;
}

enum class Field { kMagic, kLen, kPayload, kCrc };

const char* FieldName(Field f) {
  switch (f) {
    case Field::kMagic: return "magic";
    case Field::kLen: return "len";
    case Field::kPayload: return "payload";
    case Field::kCrc: return "crc";
  }
  return "?";
}

// Where in the chain the corrupted segment sits (position within the
// segment is swept by the chaos matrix; here we sweep the segment itself).
// Every field × every position: a defect anywhere but the tail must refuse
// a strict open, and a degraded open must expose exactly the records
// strictly before the defect, bit-identical to the clean replay.
TEST(CrashLoopTest, CorruptionPositionSweepDegradedOpen) {
  const std::vector<Block> blocks = MakeWorkload();
  BlockStoreOptions small;
  small.segment_size = 4096;

  // Clean reference run: on-disk bytes and the frame layout per segment.
  ScratchDir clean_dir("sweep_clean");
  {
    BlockStore store;
    ASSERT_TRUE(store.Open(small, clean_dir.path()).ok());
    for (const auto& block : blocks) ASSERT_TRUE(store.Append(block).ok());
    store.Close();
  }
  const std::vector<std::string> segments = SegmentFiles(clean_dir.path());
  ASSERT_GE(segments.size(), 4u) << "workload too small for the sweep";
  std::vector<uint64_t> frames_before(segments.size() + 1, 0);
  for (size_t i = 0; i < segments.size(); i++) {
    frames_before[i + 1] =
        frames_before[i] +
        FrameOffsets(ReadFileBytes(clean_dir.path() + "/" + segments[i]))
            .size();
  }
  ASSERT_EQ(frames_before.back(), blocks.size());

  const size_t kSegmentPositions[] = {0, segments.size() / 2,
                                      segments.size() - 2};
  for (size_t seg : kSegmentPositions) {
    for (Field field :
         {Field::kMagic, Field::kLen, Field::kPayload, Field::kCrc}) {
      SCOPED_TRACE("segment " + std::to_string(seg) + "/" +
                   std::to_string(segments.size()) + ", " + FieldName(field) +
                   " field");
      ScratchDir dir("sweep_pt");
      {
        BlockStore store;
        ASSERT_TRUE(store.Open(small, dir.path()).ok());
        for (const auto& block : blocks) ASSERT_TRUE(store.Append(block).ok());
        store.Close();
      }

      // Corrupt the middle frame of the target segment.
      const std::string path = dir.path() + "/" + segments[seg];
      std::string image = ReadFileBytes(path);
      const std::vector<size_t> frames = FrameOffsets(image);
      const size_t idx = frames.size() / 2;
      const size_t frame = frames[idx];
      const uint32_t len = DecodeFixed32(image.data() + frame + 4);
      size_t target = frame;
      switch (field) {
        case Field::kMagic: target = frame + 1; break;
        case Field::kLen: target = frame + 4; break;
        case Field::kPayload: target = frame + 8 + len / 2; break;
        case Field::kCrc: target = frame + 8 + len + 2; break;
      }
      image[target] = static_cast<char>(image[target] ^ 0x40);
      {
        FILE* f = fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(fwrite(image.data(), 1, image.size(), f), image.size());
        fclose(f);
      }
      // First record the defect can reach: everything before it is trusted.
      const uint64_t defect_height = frames_before[seg] + idx;

      // Strict mode (the default) keeps the refuse-to-open contract.
      {
        BlockStore strict;
        Status s = strict.Open(small, dir.path());
        ASSERT_FALSE(s.ok());
        EXPECT_TRUE(s.IsCorruption()) << s.ToString();
      }

      // Degraded open exposes exactly the trusted prefix...
      BlockStoreOptions lenient = small;
      lenient.degraded_open = true;
      BlockStore store;
      ASSERT_TRUE(store.Open(lenient, dir.path()).ok());
      const BlockStore::RecoveryStats recovery = store.recovery_stats();
      EXPECT_TRUE(recovery.degraded);
      EXPECT_GE(recovery.segments_quarantined, 1u);
      EXPECT_GT(recovery.bytes_quarantined, 0u);
      ASSERT_EQ(store.num_blocks(), defect_height);
      for (uint64_t h = 0; h < defect_height; h++) {
        std::string record;
        ASSERT_TRUE(store.ReadRawRecord(h, &record).ok()) << "height " << h;
        ASSERT_EQ(record, Encoded(blocks[h])) << "height " << h;
      }

      // ...and re-appending the quarantined remainder (what peer repair
      // does) restores a store byte-identical to the clean replay.
      for (uint64_t h = defect_height; h < blocks.size(); h++) {
        ASSERT_TRUE(store.Append(blocks[h]).ok()) << "height " << h;
      }
      ASSERT_EQ(store.num_blocks(), blocks.size());
      store.Close();
      ASSERT_EQ(SegmentFiles(dir.path()), segments);
      for (const auto& name : segments) {
        EXPECT_EQ(ReadFileBytes(dir.path() + "/" + name),
                  ReadFileBytes(clean_dir.path() + "/" + name))
            << name;
      }
    }
  }
}

// Full-node variant at sampled crash points: a SebdbNode whose block store
// runs over a FaultInjectionEnv dies mid-workload; a fresh node over the
// same data directory must start, self-heal and accept writes again.
TEST(CrashLoopTest, NodeRestartsAfterInjectedCrash) {
  for (uint64_t crash_at : {2u, 4u, 9u}) {
    SCOPED_TRACE("crash at write op " + std::to_string(crash_at));
    ScratchDir dir("crash_node");
    SimNetwork net;
    KeyStore keystore;
    keystore.AddIdentity("n0", "s-n0");
    FaultInjectionEnv env(Env::Default());

    NodeOptions options;
    options.node_id = "n0";
    options.data_dir = dir.path() + "/n0";
    options.consensus = ConsensusKind::kKafka;
    options.participants = {"n0"};
    options.consensus_options.max_batch_txns = 1;
    options.consensus_options.batch_timeout_millis = 5;
    options.chain.store.env = &env;
    // The crashed store rejects the commit apply; don't wait long for it.
    options.write_timeout_millis = 500;

    {
      SebdbNode node(options, &keystore, nullptr);
      ASSERT_TRUE(node.Start(&net).ok());
      env.ScheduleCrash(crash_at, crash_at % 3 == 0 ? 0 : 25);
      ResultSet rs;
      // Statuses past the crash are unreliable (the batch commits in
      // consensus even when the local append fails); drive by env state.
      node.ExecuteSql("CREATE t (v int)", {}, &rs);
      for (int i = 0; i < 30 && !env.crashed(); i++) {
        node.ExecuteSql("INSERT INTO t VALUES (" + std::to_string(i) + ")",
                        {}, &rs);
      }
      ASSERT_TRUE(env.crashed());
      node.Stop();
    }

    // Restart over the same directory with the real file system.
    NodeOptions clean = options;
    clean.chain.store.env = nullptr;
    clean.write_timeout_millis = 30000;
    SebdbNode revived(clean, &keystore, nullptr);
    ASSERT_TRUE(revived.Start(&net).ok());
    ASSERT_GE(revived.chain().height(), 1u);  // at least genesis survived
    ResultSet rs;
    if (!revived.chain().catalog()->HasTable("t")) {
      // The CREATE's block was the torn record; issue it again.
      ASSERT_TRUE(revived.ExecuteSql("CREATE t (v int)", {}, &rs).ok());
    }
    ASSERT_TRUE(revived.ExecuteSql("INSERT INTO t VALUES (100)", {}, &rs).ok());
    ResultSet count;
    ASSERT_TRUE(
        revived.ExecuteSql("SELECT count(*) FROM t", {}, &count).ok());
    EXPECT_GE(count.rows[0][0].AsInt(), 1);
    revived.Stop();
  }
}

}  // namespace
}  // namespace sebdb
