// Tests for src/auth: MB-tree VOs (soundness, completeness, tamper
// rejection), the ALI two-phase protocol and the credibility formula.
#include <gtest/gtest.h>

#include "auth/ali.h"
#include "auth/credibility.h"
#include "auth/mbtree.h"
#include "common/random.h"
#include "index/layered_index.h"
#include "storage/block.h"
#include "tests/test_util.h"

namespace sebdb {
namespace {

using testing_util::MakeTxn;

// Records are "rec<key>" strings; keys recoverable by stripping the prefix.
std::vector<MbTree::Entry> MakeEntries(const std::vector<int64_t>& keys) {
  std::vector<MbTree::Entry> entries;
  for (int64_t k : keys) {
    entries.push_back({Value::Int(k), "rec" + std::to_string(k)});
  }
  return entries;
}

Status RecKeyFn(const Slice& record, Value* key) {
  std::string text = record.ToString();
  if (text.rfind("rec", 0) != 0) return Status::Corruption("bad record");
  *key = Value::Int(std::stoll(text.substr(3)));
  return Status::OK();
}

TEST(MbTreeTest, RootDeterministic) {
  auto a = MbTree::Build(MakeEntries({1, 2, 3, 4, 5}));
  auto b = MbTree::Build(MakeEntries({1, 2, 3, 4, 5}));
  EXPECT_EQ(a->root_hash(), b->root_hash());
  auto c = MbTree::Build(MakeEntries({1, 2, 3, 4, 6}));
  EXPECT_NE(a->root_hash(), c->root_hash());
}

TEST(MbTreeTest, PlainRangeLookup) {
  auto tree = MbTree::Build(MakeEntries({10, 20, 20, 30, 40}));
  std::vector<size_t> indices;
  Value lo = Value::Int(20), hi = Value::Int(30);
  tree->Range(&lo, &hi, &indices);
  EXPECT_EQ(indices.size(), 3u);
}

class MbTreeProofTest : public ::testing::TestWithParam<int> {};

TEST_P(MbTreeProofTest, RangeProofsVerifyExactResults) {
  int n = GetParam();
  std::vector<int64_t> keys;
  for (int i = 0; i < n; i++) keys.push_back(i * 2);  // even keys 0..2n-2
  auto tree = MbTree::Build(MakeEntries(keys));

  Random rng(n);
  for (int q = 0; q < 30; q++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(2 * n + 4)) - 2;
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(2 * n / 2 + 2));
    Value vlo = Value::Int(lo), vhi = Value::Int(hi);
    VerificationObject vo;
    ASSERT_TRUE(tree->ProveRange(&vlo, &vhi, &vo).ok());
    std::vector<std::string> records;
    ASSERT_TRUE(MbTree::VerifyRange(tree->root_hash(), vo, &vlo, &vhi,
                                    RecKeyFn, &records)
                    .ok())
        << "n=" << n << " range [" << lo << "," << hi << "]";
    size_t expected = 0;
    for (int64_t k : keys) {
      if (k >= lo && k <= hi) expected++;
    }
    EXPECT_EQ(records.size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MbTreeProofTest,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 64, 200));

TEST(MbTreeTest, EmptyResultProofVerifies) {
  auto tree = MbTree::Build(MakeEntries({10, 20, 30}));
  Value lo = Value::Int(21), hi = Value::Int(29);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&lo, &hi, &vo).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(
      MbTree::VerifyRange(tree->root_hash(), vo, &lo, &hi, RecKeyFn, &records)
          .ok());
  EXPECT_TRUE(records.empty());
}

TEST(MbTreeTest, EmptyTreeProof) {
  auto tree = MbTree::Build({});
  Value lo = Value::Int(0), hi = Value::Int(100);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&lo, &hi, &vo).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(
      MbTree::VerifyRange(tree->root_hash(), vo, &lo, &hi, RecKeyFn, &records)
          .ok());
  EXPECT_TRUE(records.empty());
}

TEST(MbTreeTest, UnboundedRangeDisclosesAll) {
  auto tree = MbTree::Build(MakeEntries({1, 2, 3, 4, 5}));
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(nullptr, nullptr, &vo).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(MbTree::VerifyRange(tree->root_hash(), vo, nullptr, nullptr,
                                  RecKeyFn, &records)
                  .ok());
  EXPECT_EQ(records.size(), 5u);
}

TEST(MbTreeTest, DuplicateKeysAllReturned) {
  auto tree = MbTree::Build(MakeEntries({5, 5, 5, 7, 7}));
  Value k = Value::Int(5);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&k, &k, &vo).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(
      MbTree::VerifyRange(tree->root_hash(), vo, &k, &k, RecKeyFn, &records)
          .ok());
  EXPECT_EQ(records.size(), 3u);
}

TEST(MbTreeTest, TamperedRecordRejected) {
  auto tree = MbTree::Build(MakeEntries({10, 20, 30, 40}));
  Value lo = Value::Int(20), hi = Value::Int(30);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&lo, &hi, &vo).ok());
  // Find and modify a full record anywhere in the VO.
  std::function<bool(VerificationObject::Node&)> tamper =
      [&](VerificationObject::Node& node) -> bool {
    for (auto& entry : node.entries) {
      if (entry.full && entry.record == "rec20") {
        entry.record = "rec21";  // forged value
        return true;
      }
    }
    for (auto& child : node.children) {
      if (tamper(child)) return true;
    }
    return false;
  };
  ASSERT_TRUE(tamper(vo.root));
  std::vector<std::string> records;
  EXPECT_TRUE(
      MbTree::VerifyRange(tree->root_hash(), vo, &lo, &hi, RecKeyFn, &records)
          .IsVerificationFailed());
}

TEST(MbTreeTest, WithheldResultRejected) {
  auto tree = MbTree::Build(MakeEntries({10, 20, 30, 40}));
  Value lo = Value::Int(15), hi = Value::Int(35);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&lo, &hi, &vo).ok());
  // Maliciously hide the in-range record "rec20" behind its hash.
  std::function<bool(VerificationObject::Node&)> hide =
      [&](VerificationObject::Node& node) -> bool {
    for (auto& entry : node.entries) {
      if (entry.full && entry.record == "rec20") {
        entry.hash = Sha256::Digest(entry.record);
        entry.full = false;
        entry.record.clear();
        return true;
      }
    }
    for (auto& child : node.children) {
      if (hide(child)) return true;
    }
    return false;
  };
  ASSERT_TRUE(hide(vo.root));
  std::vector<std::string> records;
  Status s =
      MbTree::VerifyRange(tree->root_hash(), vo, &lo, &hi, RecKeyFn, &records);
  EXPECT_TRUE(s.IsVerificationFailed()) << s.ToString();
}

TEST(MbTreeTest, WrongRootRejected) {
  auto tree = MbTree::Build(MakeEntries({1, 2, 3}));
  Value lo = Value::Int(1), hi = Value::Int(2);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&lo, &hi, &vo).ok());
  std::vector<std::string> records;
  Hash256 wrong = Sha256::Digest(Slice("not the root"));
  EXPECT_TRUE(MbTree::VerifyRange(wrong, vo, &lo, &hi, RecKeyFn, &records)
                  .IsVerificationFailed());
}

TEST(MbTreeTest, VoSerializationRoundTrip) {
  auto tree = MbTree::Build(MakeEntries({1, 2, 3, 4, 5, 6, 7, 8}));
  Value lo = Value::Int(3), hi = Value::Int(5);
  VerificationObject vo;
  ASSERT_TRUE(tree->ProveRange(&lo, &hi, &vo).ok());
  std::string buf;
  vo.EncodeTo(&buf);
  EXPECT_EQ(vo.ByteSize(), buf.size());
  Slice input(buf);
  VerificationObject decoded;
  ASSERT_TRUE(VerificationObject::DecodeFrom(&input, &decoded).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(MbTree::VerifyRange(tree->root_hash(), decoded, &lo, &hi,
                                  RecKeyFn, &records)
                  .ok());
  EXPECT_EQ(records.size(), 3u);
}

// ---- ALI ----

Block MakeBlockOf(BlockId height, std::vector<Transaction> txns) {
  BlockBuilder builder;
  builder.SetHeight(height).SetTimestamp(height * 100).SetFirstTid(height * 100 + 1);
  for (auto& txn : txns) builder.AddTransaction(std::move(txn));
  return std::move(builder).Build("sig");
}

ColumnExtractor AmountExtractor() {
  return [](const Transaction& txn, Value* out) {
    if (txn.tname() != "donate" || txn.values().empty()) return false;
    *out = txn.values()[0];
    return true;
  };
}

Status TxnAmountKeyFn(const Slice& record, Value* key) {
  Transaction txn;
  Slice input = record;
  Status s = Transaction::DecodeFrom(&input, &txn);
  if (!s.ok()) return s;
  *key = txn.GetColumn(5);  // first app column
  return Status::OK();
}

class AliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LayeredIndexOptions options;
    options.histogram_buckets = 8;
    ali_ = std::make_unique<AuthenticatedLayeredIndex>("donate.amount.auth",
                                                       options,
                                                       AmountExtractor());
    // 10 blocks, block b holds amounts b*100 .. b*100+49.
    for (int b = 0; b < 10; b++) {
      std::vector<Transaction> txns;
      for (int i = 0; i < 50; i++) {
        txns.push_back(
            MakeTxn("donate", "org1", b * 100 + i, {Value::Int(b * 100 + i)}));
      }
      ASSERT_TRUE(ali_->AddBlock(MakeBlockOf(b, std::move(txns))).ok());
    }
  }

  std::unique_ptr<AuthenticatedLayeredIndex> ali_;
};

TEST_F(AliTest, TwoPhaseProtocolVerifies) {
  Value lo = Value::Int(120), hi = Value::Int(335);
  AuthQueryResponse response;
  ASSERT_TRUE(ali_->ProveRange(&lo, &hi, nullptr, 10, &response).ok());
  EXPECT_GE(response.proofs.size(), 3u);  // blocks 1, 2, 3

  Hash256 digest;
  ASSERT_TRUE(ali_->ComputeDigest(&lo, &hi, nullptr, 10, &digest).ok());

  std::vector<std::string> records;
  ASSERT_TRUE(AuthenticatedLayeredIndex::VerifyResponse(
                  response, &lo, &hi, TxnAmountKeyFn, {digest, digest},
                  /*required_matching=*/2, &records)
                  .ok());
  // Amounts 120..149, 200..249, 300..335.
  EXPECT_EQ(records.size(), 30u + 50u + 36u);
}

TEST_F(AliTest, MismatchedDigestRejected) {
  Value lo = Value::Int(120), hi = Value::Int(140);
  AuthQueryResponse response;
  ASSERT_TRUE(ali_->ProveRange(&lo, &hi, nullptr, 10, &response).ok());
  Hash256 bogus = Sha256::Digest(Slice("byzantine"));
  std::vector<std::string> records;
  EXPECT_TRUE(AuthenticatedLayeredIndex::VerifyResponse(
                  response, &lo, &hi, TxnAmountKeyFn, {bogus, bogus}, 2,
                  &records)
                  .IsVerificationFailed());
}

TEST_F(AliTest, OmittedBlockProofChangesDigest) {
  Value lo = Value::Int(120), hi = Value::Int(335);
  AuthQueryResponse response;
  ASSERT_TRUE(ali_->ProveRange(&lo, &hi, nullptr, 10, &response).ok());
  Hash256 digest;
  ASSERT_TRUE(ali_->ComputeDigest(&lo, &hi, nullptr, 10, &digest).ok());
  // A malicious full node drops one visited block entirely.
  response.proofs.erase(response.proofs.begin() + 1);
  std::vector<std::string> records;
  EXPECT_TRUE(AuthenticatedLayeredIndex::VerifyResponse(
                  response, &lo, &hi, TxnAmountKeyFn, {digest, digest}, 2,
                  &records)
                  .IsVerificationFailed());
}

TEST_F(AliTest, SnapshotPinnedAtLowerHeight) {
  Value lo = Value::Int(0), hi = Value::Int(10000);
  // Height pinned at 5: only blocks 0..4 participate.
  AuthQueryResponse response;
  ASSERT_TRUE(ali_->ProveRange(&lo, &hi, nullptr, 5, &response).ok());
  EXPECT_EQ(response.proofs.size(), 5u);
  Hash256 digest;
  ASSERT_TRUE(ali_->ComputeDigest(&lo, &hi, nullptr, 5, &digest).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(AuthenticatedLayeredIndex::VerifyResponse(
                  response, &lo, &hi, TxnAmountKeyFn, {digest}, 1, &records)
                  .ok());
  EXPECT_EQ(records.size(), 250u);
}

TEST_F(AliTest, ResponseSerializationRoundTrip) {
  Value lo = Value::Int(120), hi = Value::Int(140);
  AuthQueryResponse response;
  ASSERT_TRUE(ali_->ProveRange(&lo, &hi, nullptr, 10, &response).ok());
  std::string buf;
  response.EncodeTo(&buf);
  Slice input(buf);
  AuthQueryResponse decoded;
  ASSERT_TRUE(AuthQueryResponse::DecodeFrom(&input, &decoded).ok());
  EXPECT_EQ(decoded.chain_height, response.chain_height);
  EXPECT_EQ(decoded.proofs.size(), response.proofs.size());
}

// ---- credibility (Eqs. 4-6) ----

TEST(CredibilityTest, ZeroWhenMatchingExceedsByzantineBound) {
  CredibilityParams params{0.25, 4, 2, 1};  // m=2 > max=1
  EXPECT_EQ(DigestWrongProbability(params), 0.0);
}

TEST(CredibilityTest, MonotoneInM) {
  double prev = 1.0;
  for (int m = 1; m <= 5; m++) {
    CredibilityParams params{0.2, 10, m, 10};
    double theta = DigestWrongProbability(params);
    EXPECT_LE(theta, prev + 1e-12) << m;
    prev = theta;
  }
}

TEST(CredibilityTest, HalfByzantineGivesHalf) {
  // p = 0.5: wrong and right digests are symmetric.
  CredibilityParams params{0.5, 10, 3, 10};
  EXPECT_NEAR(DigestWrongProbability(params), 0.5, 1e-9);
}

TEST(CredibilityTest, SmallPGivesSmallTheta) {
  CredibilityParams params{0.1, 10, 3, 10};
  double theta = DigestWrongProbability(params);
  EXPECT_LT(theta, 0.02);
  EXPECT_GT(theta, 0.0);
}

TEST(CredibilityTest, MinMatchingForTarget) {
  int m = MinMatchingForCredibility(0.2, 10, 10, 0.01);
  ASSERT_GT(m, 0);
  CredibilityParams params{0.2, 10, m, 10};
  EXPECT_LE(DigestWrongProbability(params), 0.01);
  if (m > 1) {
    CredibilityParams weaker{0.2, 10, m - 1, 10};
    EXPECT_GT(DigestWrongProbability(weaker), 0.01);
  }
  // With a single auxiliary node, a near-half Byzantine fraction and a
  // Byzantine bound that never rules digests out, no m can reach 1e-9.
  EXPECT_EQ(MinMatchingForCredibility(0.49, 1, 10, 1e-9), -1);
}

TEST(CredibilityTest, InvalidMGivesOne) {
  EXPECT_EQ(DigestWrongProbability({0.2, 4, 0, 4}), 1.0);
  EXPECT_EQ(DigestWrongProbability({0.2, 4, 5, 4}), 1.0);
}

}  // namespace
}  // namespace sebdb
